// Package repro is a from-scratch Go reproduction of "Towards Modern
// Development of Cloud Applications" (HotOS '23) — the Service Weaver
// vision paper. The public programming model lives in package
// repro/weaver; the runtime, deployers, and evaluation substrates live
// under internal/; runnable applications live under examples/ and cmd/.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every quantitative claim in the paper's
// evaluation; run them with:
//
//	go test -bench=. -benchmem .
package repro
