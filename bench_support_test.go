package repro

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/codegen"
)

// findRegistration looks up a component registration by full name.
func findRegistration(name string) (*codegen.Registration, bool) {
	return codegen.Find(name)
}

// newEchoHTTP builds the echo handler used by the HTTP transport bench.
func newEchoHTTP() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	return mux
}

func serveHTTP(lis net.Listener, handler http.Handler) {
	srv := &http.Server{Handler: handler}
	_ = srv.Serve(lis)
}

func newHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

func postJSON(client *http.Client, url string, payload []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}
