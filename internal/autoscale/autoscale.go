// Package autoscale implements the replica autoscaler, this repository's
// substitute for the Horizontal Pod Autoscaler the paper's prototype uses
// on GKE (§6.1). Given the aggregate load on a component group, it decides
// how many replicas the group should run, with hysteresis so transient dips
// do not thrash replica counts.
package autoscale

import (
	"math"
	"sync"
	"time"
)

// Config parameterizes scaling decisions for one group.
type Config struct {
	// MinReplicas and MaxReplicas bound the replica count.
	MinReplicas int
	MaxReplicas int
	// TargetLoadPerReplica is the load (e.g. calls/sec) one replica should
	// carry at steady state. The desired replica count is
	// ceil(totalLoad / TargetLoadPerReplica), as in the HPA formula.
	TargetLoadPerReplica float64
	// ScaleDownDelay is how long load must remain below the scale-down
	// threshold before replicas are removed. Scale-ups are immediate.
	ScaleDownDelay time.Duration
	// Tolerance suppresses scaling when the desired count is within
	// ±Tolerance (fraction) of current capacity, mirroring the HPA's 10%
	// dead band. Defaults to 0.1.
	Tolerance float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 64
	}
	if c.MaxReplicas < c.MinReplicas {
		c.MaxReplicas = c.MinReplicas
	}
	if c.TargetLoadPerReplica <= 0 {
		c.TargetLoadPerReplica = 100
	}
	if c.ScaleDownDelay <= 0 {
		c.ScaleDownDelay = 30 * time.Second
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	return c
}

// Autoscaler tracks one group's load history and recommends replica counts.
// It is safe for concurrent use.
type Autoscaler struct {
	cfg Config

	mu          sync.Mutex
	lowSince    time.Time // earliest time load has continuously suggested scale-down
	lastDesired int
}

// New returns an autoscaler with the given configuration.
func New(cfg Config) *Autoscaler {
	return &Autoscaler{cfg: cfg.withDefaults()}
}

// Config returns the autoscaler's effective (defaulted) configuration.
func (a *Autoscaler) Config() Config { return a.cfg }

// Desired returns the recommended replica count given the current count and
// the group's total observed load at time now.
func (a *Autoscaler) Desired(current int, totalLoad float64, now time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()

	if current < a.cfg.MinReplicas {
		return a.cfg.MinReplicas
	}

	raw := int(math.Ceil(totalLoad / a.cfg.TargetLoadPerReplica))
	desired := clamp(raw, a.cfg.MinReplicas, a.cfg.MaxReplicas)

	// Dead band: if within tolerance of current capacity, hold.
	capacity := float64(current) * a.cfg.TargetLoadPerReplica
	if capacity > 0 {
		ratio := totalLoad / capacity
		if ratio > 1-a.cfg.Tolerance && ratio < 1+a.cfg.Tolerance {
			a.lowSince = time.Time{}
			a.lastDesired = current
			return current
		}
	}

	if desired > current {
		// Scale up immediately.
		a.lowSince = time.Time{}
		a.lastDesired = desired
		return desired
	}
	if desired < current {
		// Scale down only after sustained low load.
		if a.lowSince.IsZero() {
			a.lowSince = now
		}
		if now.Sub(a.lowSince) >= a.cfg.ScaleDownDelay {
			a.lastDesired = desired
			return desired
		}
		a.lastDesired = current
		return current
	}
	a.lowSince = time.Time{}
	a.lastDesired = current
	return current
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
