package autoscale

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000000, 0)

func TestScaleUpImmediate(t *testing.T) {
	a := New(Config{MinReplicas: 1, MaxReplicas: 10, TargetLoadPerReplica: 100})
	if got := a.Desired(1, 450, t0); got != 5 {
		t.Errorf("desired = %d, want 5", got)
	}
}

func TestScaleDownDelayed(t *testing.T) {
	a := New(Config{MinReplicas: 1, MaxReplicas: 10, TargetLoadPerReplica: 100, ScaleDownDelay: 10 * time.Second})
	// Load drops: no immediate scale-down.
	if got := a.Desired(5, 100, t0); got != 5 {
		t.Errorf("immediate scale-down: desired = %d", got)
	}
	// Still low 5s later: hold.
	if got := a.Desired(5, 100, t0.Add(5*time.Second)); got != 5 {
		t.Errorf("early scale-down: desired = %d", got)
	}
	// Low for the full delay: scale down.
	if got := a.Desired(5, 100, t0.Add(11*time.Second)); got != 1 {
		t.Errorf("after delay: desired = %d, want 1", got)
	}
}

func TestScaleDownCanceledBySpike(t *testing.T) {
	a := New(Config{MinReplicas: 1, MaxReplicas: 10, TargetLoadPerReplica: 100, ScaleDownDelay: 10 * time.Second})
	a.Desired(5, 100, t0)
	// Spike resets the scale-down clock.
	if got := a.Desired(5, 900, t0.Add(5*time.Second)); got != 9 {
		t.Errorf("spike: desired = %d, want 9", got)
	}
	// Low again, but the timer restarted.
	if got := a.Desired(9, 100, t0.Add(6*time.Second)); got != 9 {
		t.Errorf("restarted timer: desired = %d", got)
	}
}

func TestDeadBand(t *testing.T) {
	a := New(Config{MinReplicas: 1, MaxReplicas: 10, TargetLoadPerReplica: 100, Tolerance: 0.1})
	// 4 replicas, load 410: ratio 1.025 is inside the ±10% band -> hold.
	if got := a.Desired(4, 410, t0); got != 4 {
		t.Errorf("dead band: desired = %d", got)
	}
}

func TestBounds(t *testing.T) {
	a := New(Config{MinReplicas: 2, MaxReplicas: 4, TargetLoadPerReplica: 100})
	if got := a.Desired(2, 100000, t0); got != 4 {
		t.Errorf("max bound: desired = %d", got)
	}
	if got := a.Desired(1, 0, t0); got != 2 {
		t.Errorf("min bound: desired = %d", got)
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{})
	cfg := a.Config()
	if cfg.MinReplicas != 1 || cfg.MaxReplicas < 1 || cfg.TargetLoadPerReplica <= 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestZeroLoadHoldsUntilDelay(t *testing.T) {
	a := New(Config{MinReplicas: 1, MaxReplicas: 8, TargetLoadPerReplica: 50, ScaleDownDelay: time.Minute})
	if got := a.Desired(8, 0, t0); got != 8 {
		t.Errorf("zero load scaled down immediately: %d", got)
	}
	if got := a.Desired(8, 0, t0.Add(2*time.Minute)); got != 1 {
		t.Errorf("zero load after delay: %d, want 1", got)
	}
}
