package rollout

import "time"

// A Plan is the pure description of a gradual traffic shift: Steps equal
// weight increments, each held for Step. It is the rollout counterpart of
// the control plane's reconcilers — a value that maps elapsed time to the
// desired new-version weight — so the shift schedule is unit-testable
// without a director, a proxy, or a clock. The actuator (cmd/weaver's
// rollout loop) reads WeightAt and applies it with Director.SetWeight.
type Plan struct {
	Steps int           // number of weight increments
	Step  time.Duration // how long each increment is held
}

// WeightAt returns the new-version traffic fraction the rollout should
// serve once elapsed time has passed since the shift began: 1/Steps
// immediately, one increment more after each further Step, clamped to 1.
// A degenerate plan (no steps or no duration) shifts everything at once.
func (p Plan) WeightAt(elapsed time.Duration) float64 {
	if p.Steps <= 0 || p.Step <= 0 {
		return 1
	}
	if elapsed < 0 {
		elapsed = 0
	}
	step := int(elapsed/p.Step) + 1
	if step > p.Steps {
		step = p.Steps
	}
	return float64(step) / float64(p.Steps)
}

// Done reports whether the shift has run its full course after elapsed
// time: every increment has been held for its Step.
func (p Plan) Done(elapsed time.Duration) bool {
	if p.Steps <= 0 || p.Step <= 0 {
		return true
	}
	return elapsed >= time.Duration(p.Steps)*p.Step
}
