package rollout

import (
	"testing"
	"testing/quick"
)

func TestRollingUnversionedFails(t *testing.T) {
	res := Run(RollingUnversioned, Config{Replicas: 10, RequestsPerStep: 500, Seed: 1})
	if res.CrossVersion == 0 {
		t.Fatal("rolling update produced no cross-version requests")
	}
	// Every cross-version request with the unversioned codec must fail:
	// the schemas genuinely disagree.
	if res.Failed != res.CrossVersion {
		t.Errorf("failed = %d, crossVersion = %d; want equal", res.Failed, res.CrossVersion)
	}
	if res.FailureRate < 0.05 {
		t.Errorf("failure rate = %.3f, implausibly low for a rolling update", res.FailureRate)
	}
	if res.PeakFleet != 10 {
		t.Errorf("peak fleet = %d, want 10", res.PeakFleet)
	}
}

func TestRollingTaggedSurvives(t *testing.T) {
	res := Run(RollingTagged, Config{Replicas: 10, RequestsPerStep: 500, Seed: 2})
	if res.CrossVersion == 0 {
		t.Fatal("no cross-version requests")
	}
	if res.Failed != 0 {
		t.Errorf("tagged codec failed %d requests across versions", res.Failed)
	}
}

func TestAtomicUnversionedSurvives(t *testing.T) {
	res := Run(AtomicUnversioned, Config{Replicas: 10, RequestsPerStep: 500, Seed: 3})
	if res.CrossVersion != 0 {
		t.Errorf("atomic rollout produced %d cross-version requests; atomicity broken", res.CrossVersion)
	}
	if res.Failed != 0 {
		t.Errorf("atomic rollout failed %d requests", res.Failed)
	}
	if res.PeakFleet != 20 {
		t.Errorf("peak fleet = %d, want 20 (blue/green runs both fleets)", res.PeakFleet)
	}
}

func TestDirectorPinsRequests(t *testing.T) {
	d := NewDirector("v1")
	d.Begin("v2")
	d.SetWeight(0.5)
	// The same key must always land on the same version at a fixed weight.
	for key := uint64(1); key < 1000; key += 13 {
		first := d.Pick(key)
		for i := 0; i < 10; i++ {
			if got := d.Pick(key); got != first {
				t.Fatalf("key %d flapped between versions", key)
			}
		}
	}
}

func TestDirectorWeightMonotonic(t *testing.T) {
	// As weight grows, a key assigned to v2 must never return to v1.
	d := NewDirector("v1")
	d.Begin("v2")
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 7
	}
	onNew := map[uint64]bool{}
	for w := 0.0; w <= 1.0; w += 0.1 {
		d.SetWeight(w)
		for _, k := range keys {
			v := d.Pick(k)
			if onNew[k] && v != "v2" {
				t.Fatalf("key %d regressed to v1 at weight %.1f", k, w)
			}
			if v == "v2" {
				onNew[k] = true
			}
		}
	}
	d.SetWeight(1)
	for _, k := range keys {
		if d.Pick(k) != "v2" {
			t.Fatalf("key %d not on v2 at weight 1", k)
		}
	}
}

func TestDirectorFinishAndAbort(t *testing.T) {
	d := NewDirector("v1")
	d.Begin("v2")
	d.SetWeight(0.7)
	d.Finish()
	if v := d.Pick(12345); v != "v2" {
		t.Errorf("after Finish, Pick = %s", v)
	}

	d2 := NewDirector("v1")
	d2.Begin("v2")
	d2.SetWeight(0.9)
	d2.Abort()
	if v := d2.Pick(12345); v != "v1" {
		t.Errorf("after Abort, Pick = %s", v)
	}
}

func TestQuickDirectorTotalWeightBounds(t *testing.T) {
	// At weight 0 everything is old; at weight 1 everything is new.
	f := func(key uint64) bool {
		d := NewDirector("old")
		d.Begin("new")
		d.SetWeight(0)
		if d.Pick(key) != "old" {
			return false
		}
		d.SetWeight(1)
		return d.Pick(key) == "new"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultsDeterministic(t *testing.T) {
	a := Run(RollingUnversioned, Config{Replicas: 8, RequestsPerStep: 200, Seed: 9})
	b := Run(RollingUnversioned, Config{Replicas: 8, RequestsPerStep: 200, Seed: 9})
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
