// Package rollout implements application version rollouts and the
// cross-version interaction experiment motivated by the paper (§4.4,
// §5.3). The paper's position, following the upgrade-failure study it
// cites as [78], is that rolling updates force different versions of an
// application to communicate, which causes the majority of update
// failures; atomic (blue/green) rollouts eliminate cross-version
// communication entirely, which in turn makes it safe to use unversioned
// wire formats.
//
// The package provides both the mechanism — a traffic Director that pins
// every request to one version and shifts weight gradually — and an
// experiment harness that replays an update under three policies:
//
//   - Rolling + unversioned codec: replicas are replaced one by one;
//     requests that cross versions decode garbage (counted as failures).
//     This is what would happen if one used the paper's fast wire format
//     WITHOUT atomic rollouts.
//   - Rolling + tagged codec: the status quo. Cross-version requests
//     survive because the format carries field tags — the flexibility the
//     baseline pays for on every single message.
//   - Atomic blue/green + unversioned codec: the paper's proposal. A
//     full new-version fleet starts alongside the old one and traffic
//     shifts gradually; no request ever crosses versions, so the
//     unversioned codec is safe.
package rollout

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/codec"
	"repro/internal/codec/tagged"
)

// Version identifies an application version in a rollout.
type Version string

// Director routes requests to application versions during a rollout,
// guaranteeing that a request, once assigned, is handled entirely within
// one version (the paper's atomicity property). Assignment is by request
// key hash, so a user's session stays on one version as weight shifts.
type Director struct {
	mu     sync.RWMutex
	old    Version
	new    Version
	weight float64 // fraction of the key space served by new
}

// NewDirector returns a director sending all traffic to old.
func NewDirector(old Version) *Director {
	return &Director{old: old}
}

// Begin starts shifting traffic to a new version.
func (d *Director) Begin(new Version) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.new = new
	d.weight = 0
}

// SetWeight sets the fraction of traffic served by the new version.
func (d *Director) SetWeight(w float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	d.weight = w
}

// Finish completes the rollout: the new version becomes the only version.
func (d *Director) Finish() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.new != "" {
		d.old = d.new
		d.new = ""
		d.weight = 0
	}
}

// Abort cancels the rollout, returning all traffic to the old version.
func (d *Director) Abort() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.new = ""
	d.weight = 0
}

// Pick returns the version that should process the request with the given
// key hash. Requests with equal keys get equal answers at equal weights,
// and a request never straddles versions.
func (d *Director) Pick(keyHash uint64) Version {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.new == "" {
		return d.old
	}
	// Map the key into [0,1) and compare against the weight.
	frac := float64(keyHash>>11) / float64(1<<53)
	if frac < d.weight {
		return d.new
	}
	return d.old
}

// Versions returns the current (old, new, weight) state.
func (d *Director) Versions() (Version, Version, float64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.old, d.new, d.weight
}

// --- The cross-version interaction experiment ---

// orderV1 is the request payload in application version 1.
type orderV1 struct {
	User     string
	Amount   int64
	Priority bool
}

// orderV2 is the same payload in version 2, which inserted a field — a
// routine, innocuous-looking schema change.
type orderV2 struct {
	User     string
	Coupon   string // new in v2
	Amount   int64
	Priority bool
}

// Tagged variants: field numbers make the same change safe.
type orderV1Tagged struct {
	User     string `tag:"1"`
	Amount   int64  `tag:"2"`
	Priority bool   `tag:"3"`
}

type orderV2Tagged struct {
	User     string `tag:"1"`
	Amount   int64  `tag:"2"`
	Priority bool   `tag:"3"`
	Coupon   string `tag:"4"`
}

// Policy selects an update strategy + wire format combination.
type Policy int

// The three policies compared by the experiment.
const (
	RollingUnversioned Policy = iota
	RollingTagged
	AtomicUnversioned
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RollingUnversioned:
		return "rolling+unversioned"
	case RollingTagged:
		return "rolling+tagged"
	case AtomicUnversioned:
		return "atomic+unversioned"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes the experiment.
type Config struct {
	// Replicas is the fleet size being updated.
	Replicas int
	// RequestsPerStep is the number of requests served between replica
	// replacements (rolling) or weight increments (atomic).
	RequestsPerStep int
	// Seed makes runs reproducible.
	Seed uint64
}

// Result summarizes one simulated update.
type Result struct {
	Policy       Policy
	Total        int     // requests served during the update
	CrossVersion int     // requests whose caller and callee versions differed
	Failed       int     // requests that returned wrong results or errors
	FailureRate  float64 // Failed / Total
	PeakFleet    int     // maximum simultaneous replicas (capacity cost)
}

// Run simulates updating a fleet from v1 to v2 under the given policy and
// returns failure statistics. Every request really is encoded with one
// version's schema and decoded with the other's when it crosses versions —
// the failures are genuine decode failures or corrupted fields, not coin
// flips.
func Run(p Policy, cfg Config) Result {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 10
	}
	if cfg.RequestsPerStep <= 0 {
		cfg.RequestsPerStep = 1000
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(p)))

	res := Result{Policy: p, PeakFleet: cfg.Replicas}

	// serve simulates one request: a caller replica serializes the order
	// with its version's schema; a callee replica deserializes with its
	// own. It reports whether the request succeeded with correct data.
	serve := func(callerV2, calleeV2 bool) bool {
		user := fmt.Sprintf("u%d", rng.IntN(10000))
		amount := int64(rng.IntN(100000)) + 1
		cross := callerV2 != calleeV2
		if cross {
			res.CrossVersion++
		}
		switch p {
		case RollingTagged:
			// Status quo: tagged encoding, any version mix.
			if callerV2 {
				data, err := tagged.Marshal(orderV2Tagged{User: user, Amount: amount, Priority: true, Coupon: "C"})
				if err != nil {
					return false
				}
				if calleeV2 {
					var out orderV2Tagged
					return tagged.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
				}
				var out orderV1Tagged
				return tagged.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
			}
			data, err := tagged.Marshal(orderV1Tagged{User: user, Amount: amount, Priority: true})
			if err != nil {
				return false
			}
			if calleeV2 {
				var out orderV2Tagged
				return tagged.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
			}
			var out orderV1Tagged
			return tagged.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority

		default:
			// Unversioned codec: schemas must match exactly.
			if callerV2 {
				data := codec.Marshal(orderV2{User: user, Coupon: "C", Amount: amount, Priority: true})
				if calleeV2 {
					var out orderV2
					return codec.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
				}
				var out orderV1
				return codec.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
			}
			data := codec.Marshal(orderV1{User: user, Amount: amount, Priority: true})
			if calleeV2 {
				var out orderV2
				return codec.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
			}
			var out orderV1
			return codec.Unmarshal(data, &out) == nil && out.User == user && out.Amount == amount && out.Priority
		}
	}

	switch p {
	case RollingUnversioned, RollingTagged:
		// Replace replicas one by one. Between replacements, requests pick
		// independent caller and callee replicas (a front tier calling a
		// back tier through a version-oblivious balancer).
		v2 := make([]bool, cfg.Replicas)
		for step := 0; step <= cfg.Replicas; step++ {
			for i := 0; i < cfg.RequestsPerStep; i++ {
				caller := v2[rng.IntN(cfg.Replicas)]
				callee := v2[rng.IntN(cfg.Replicas)]
				res.Total++
				if !serve(caller, callee) {
					res.Failed++
				}
			}
			if step < cfg.Replicas {
				v2[step] = true
			}
		}

	case AtomicUnversioned:
		// Blue/green: a full v2 fleet starts beside v1 (capacity cost),
		// and the director shifts traffic in steps. Caller and callee are
		// always in the same fleet.
		res.PeakFleet = 2 * cfg.Replicas
		d := NewDirector("v1")
		d.Begin("v2")
		steps := cfg.Replicas // same number of shift steps as rolling has replacement steps
		for step := 0; step <= steps; step++ {
			d.SetWeight(float64(step) / float64(steps))
			for i := 0; i < cfg.RequestsPerStep; i++ {
				v := d.Pick(rng.Uint64())
				isV2 := v == "v2"
				res.Total++
				if !serve(isV2, isV2) {
					res.Failed++
				}
			}
		}
		d.Finish()
	}

	if res.Total > 0 {
		res.FailureRate = float64(res.Failed) / float64(res.Total)
	}
	return res
}
