package rollout

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/routing"
	"repro/internal/testpkg"
	"repro/weaver"
)

func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

// TestLiveBlueGreenRollout drives the Director against two complete,
// independently running deployments — the real mechanics of an atomic
// rollout (§4.4): a full "green" fleet starts beside "blue", traffic
// shifts by key, every request is served entirely by one fleet, and a
// rollback (Abort) is a pure routing change.
func TestLiveBlueGreenRollout(t *testing.T) {
	ctx := context.Background()

	start := func(version string) (*deploy.InProcess, testpkg.Echo) {
		d, err := deploy.StartInProcess(ctx, deploy.Options{
			Config: manager.Config{App: "live", Version: version},
			Fill:   fill,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		echoClient, err := deploy.Get[testpkg.Echo](ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		return d, echoClient
	}

	_, blueEcho := start("v1")
	_, greenEcho := start("v2")

	dir := NewDirector("v1")
	dir.Begin("v2")

	// serve sends one request through the fleet the director picks,
	// verifying the response and recording which version served it.
	served := map[Version]int{}
	keyVersion := map[string]Version{}
	serve := func(user string, weightStep int) {
		v := dir.Pick(routing.KeyHash(user))
		var echoClient testpkg.Echo
		if v == "v2" {
			echoClient = greenEcho
		} else {
			echoClient = blueEcho
		}
		msg := fmt.Sprintf("%s@%d", user, weightStep)
		got, err := echoClient.Echo(ctx, msg)
		if err != nil {
			t.Fatalf("echo on %s: %v", v, err)
		}
		if got != msg {
			t.Fatalf("corrupted response: %q", got)
		}
		served[v]++
		// A user pinned to v2 must never fall back to v1 as weight grows.
		if prev, ok := keyVersion[user]; ok && prev == "v2" && v == "v1" {
			t.Fatalf("user %s regressed from v2 to v1", user)
		}
		keyVersion[user] = v
	}

	users := make([]string, 40)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}

	for step := 0; step <= 10; step++ {
		dir.SetWeight(float64(step) / 10)
		for _, u := range users {
			serve(u, step)
		}
	}
	if served["v1"] == 0 || served["v2"] == 0 {
		t.Fatalf("traffic did not split during rollout: %v", served)
	}

	// Finish: all traffic on v2.
	dir.Finish()
	for _, u := range users {
		if v := dir.Pick(routing.KeyHash(u)); v != "v2" {
			t.Fatalf("user %s on %s after Finish", u, v)
		}
	}

	// A second rollout aborts: all traffic returns to the incumbent (v2).
	dir.Begin("v3")
	dir.SetWeight(0.5)
	dir.Abort()
	for _, u := range users {
		if v := dir.Pick(routing.KeyHash(u)); v != "v2" {
			t.Fatalf("user %s on %s after Abort", u, v)
		}
	}
}
