package rollout

import (
	"testing"
	"time"
)

func TestPlanWeightSchedule(t *testing.T) {
	p := Plan{Steps: 5, Step: 3 * time.Second}
	cases := []struct {
		elapsed time.Duration
		want    float64
	}{
		{0, 0.2},
		{time.Second, 0.2},
		{3*time.Second - time.Nanosecond, 0.2},
		{3 * time.Second, 0.4},
		{6 * time.Second, 0.6},
		{12 * time.Second, 1.0},
		{14 * time.Second, 1.0},
		{time.Hour, 1.0}, // clamps past the last step
		{-time.Second, 0.2},
	}
	for _, c := range cases {
		if got := p.WeightAt(c.elapsed); got != c.want {
			t.Errorf("WeightAt(%v) = %v, want %v", c.elapsed, got, c.want)
		}
	}
}

func TestPlanDone(t *testing.T) {
	p := Plan{Steps: 5, Step: 3 * time.Second}
	if p.Done(0) {
		t.Error("done at start")
	}
	if p.Done(15*time.Second - time.Nanosecond) {
		t.Error("done before the last step was held")
	}
	if !p.Done(15 * time.Second) {
		t.Error("not done after all steps elapsed")
	}
}

func TestPlanActuationMatchesStepSequence(t *testing.T) {
	// Driving a Plan the way cmd/weaver does must reproduce the classic
	// step/Steps weight sequence exactly, once per step.
	p := Plan{Steps: 4, Step: time.Second}
	var got []float64
	for elapsed := time.Duration(0); !p.Done(elapsed); elapsed += p.Step {
		got = append(got, p.WeightAt(elapsed))
	}
	want := []float64{0.25, 0.5, 0.75, 1.0}
	if len(got) != len(want) {
		t.Fatalf("actuation produced %d weights %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d weight = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	for _, p := range []Plan{{}, {Steps: 3}, {Step: time.Second}, {Steps: -1, Step: time.Second}} {
		if w := p.WeightAt(0); w != 1 {
			t.Errorf("%+v WeightAt(0) = %v, want 1 (shift everything at once)", p, w)
		}
		if !p.Done(0) {
			t.Errorf("%+v not immediately done", p)
		}
	}
}
