package httprpc

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/routing"
)

// A minimal hand-registered component for transport testing.

type Adder interface {
	Add(ctx context.Context, a, b int) (int, error)
}

type adderImpl struct{}

func (adderImpl) Add(_ context.Context, a, b int) (int, error) {
	if a == 13 {
		return 0, errors.New("unlucky")
	}
	return a + b, nil
}

type addArgs struct {
	P0 int
	P1 int
}

type addRes struct {
	R0     int
	Err    string
	HasErr bool
}

var addSpec = &codegen.MethodSpec{
	Name:    "Add",
	NewArgs: func() any { return &addArgs{} },
	NewRes:  func() any { return &addRes{} },
	Do: func(ctx context.Context, impl, args, res any) {
		a := args.(*addArgs)
		r := res.(*addRes)
		var err error
		r.R0, err = impl.(Adder).Add(ctx, a.P0, a.P1)
		r.Err, r.HasErr = codegen.ErrorToWire(err)
	},
}

var adderReg = &codegen.Registration{
	Name:    "httprpc_test/Adder",
	Iface:   reflect.TypeOf((*Adder)(nil)).Elem(),
	Impl:    reflect.TypeOf(struct{}{}),
	Methods: []*codegen.MethodSpec{addSpec},
}

func startServer(t *testing.T) string {
	t.Helper()
	srv := NewServer()
	srv.Host(adderReg, adderImpl{}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestInvokeRoundTrip(t *testing.T) {
	addr := startServer(t)
	conn := NewConn(adderReg.Name, routing.NewRoundRobin(addr))
	defer conn.Close()

	args := addArgs{P0: 2, P1: 3}
	var res addRes
	if err := conn.Invoke(context.Background(), adderReg.Name, addSpec, &args, &res, 0, false); err != nil {
		t.Fatal(err)
	}
	if res.R0 != 5 || res.HasErr {
		t.Errorf("res = %+v", res)
	}
}

func TestApplicationErrorCrossesJSON(t *testing.T) {
	addr := startServer(t)
	conn := NewConn(adderReg.Name, routing.NewRoundRobin(addr))
	defer conn.Close()
	args := addArgs{P0: 13}
	var res addRes
	if err := conn.Invoke(context.Background(), adderReg.Name, addSpec, &args, &res, 0, false); err != nil {
		t.Fatal(err)
	}
	if !res.HasErr || res.Err != "unlucky" {
		t.Errorf("res = %+v", res)
	}
}

func TestUnknownEndpoint404(t *testing.T) {
	addr := startServer(t)
	conn := NewConn("nope/Missing", routing.NewRoundRobin(addr))
	defer conn.Close()
	var res addRes
	err := conn.Invoke(context.Background(), "nope/Missing", addSpec, &addArgs{}, &res, 0, false)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("err = %v", err)
	}
}

func TestNoReplicas(t *testing.T) {
	conn := NewConn(adderReg.Name, routing.NewRoundRobin())
	defer conn.Close()
	var res addRes
	if err := conn.Invoke(context.Background(), adderReg.Name, addSpec, &addArgs{}, &res, 0, false); err == nil {
		t.Error("invoke with no replicas succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	addr := startServer(t)
	conn := NewConn(adderReg.Name, routing.NewRoundRobin(addr))
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res addRes
	if err := conn.Invoke(ctx, adderReg.Name, addSpec, &addArgs{}, &res, 0, false); err == nil {
		t.Error("canceled invoke succeeded")
	}
}

func TestServerCloseStopsServing(t *testing.T) {
	srv := NewServer()
	srv.Host(adderReg, adderImpl{}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	conn := NewConn(adderReg.Name, routing.NewRoundRobin(addr))
	defer conn.Close()
	var res addRes
	if err := conn.Invoke(context.Background(), adderReg.Name, addSpec, &addArgs{}, &res, 0, false); err == nil {
		t.Error("invoke after Close succeeded")
	}
}
