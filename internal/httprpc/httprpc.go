// Package httprpc is the "status quo" baseline RPC stack used in the
// paper's evaluation (§6.1): a self-describing, versioned protocol — JSON
// bodies over HTTP/1.1 — standing in for the gRPC + Protocol Buffers stack
// of the original microservice deployment. Like that stack, it pays for
// field names/types on every message and for general-purpose HTTP framing
// on every call, which is precisely the overhead the weaver data plane
// eliminates by exploiting atomic rollouts.
//
// The package implements the same codegen.Conn contract as the weaver data
// plane, so the identical generated stubs and component implementations run
// over either transport; only the deployment wiring differs.
package httprpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/metrics"
	"repro/internal/routing"
)

// pathPrefix is the URL prefix for component method endpoints:
// /rpc/<component full name>/<method>.
const pathPrefix = "/rpc/"

// Server hosts component implementations over HTTP.
type Server struct {
	mux  *http.ServeMux
	srv  *http.Server
	mu   sync.Mutex
	lis  net.Listener
	reqs *metrics.Counter
}

// NewServer returns an empty HTTP RPC server.
func NewServer() *Server {
	return &Server{
		mux:  http.NewServeMux(),
		reqs: metrics.Default.Counter("httprpc.server.requests"),
	}
}

// Host exposes a component implementation. served, if non-nil, is
// incremented once per handled call (the baseline's load accounting).
func (s *Server) Host(reg *codegen.Registration, impl any, served *metrics.Counter) {
	for _, m := range reg.Methods {
		m := m
		pattern := pathPrefix + reg.Name + "/" + m.Name
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.reqs.Inc()
			if served != nil {
				served.Inc()
			}
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			args := m.NewArgs()
			if err := json.Unmarshal(body, args); err != nil {
				http.Error(w, fmt.Sprintf("bad arguments: %v", err), http.StatusBadRequest)
				return
			}
			res := m.NewRes()
			m.Do(r.Context(), impl, args, res)
			out, err := json.Marshal(res)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(out)
		})
	}
}

// Listen starts serving on addr (use "127.0.0.1:0" for ephemeral) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = lis
	s.srv = &http.Server{Handler: s.mux}
	srv := s.srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	s.srv = nil
	return err
}

// Conn invokes component methods over HTTP+JSON, picking replicas with a
// balancer. It implements codegen.Conn.
type Conn struct {
	component string
	balancer  routing.Balancer
	client    *http.Client
}

// NewConn returns a baseline connection for one component.
func NewConn(component string, balancer routing.Balancer) *Conn {
	return &Conn{
		component: component,
		balancer:  balancer,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// Balancer returns the conn's balancer for replica updates.
func (c *Conn) Balancer() routing.Balancer { return c.balancer }

// Close releases idle connections.
func (c *Conn) Close() {
	c.client.CloseIdleConnections()
}

// Invoke implements codegen.Conn.
func (c *Conn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	addr, err := c.balancer.Pick(shard, hasShard)
	if err != nil {
		return err
	}
	body, err := json.Marshal(args)
	if err != nil {
		return fmt.Errorf("httprpc: encoding %s.%s args: %w", c.component, m.Name, err)
	}
	url := "http://" + addr + pathPrefix + c.component + "/" + m.Name
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("httprpc: calling %s: %w", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("httprpc: %s returned %s: %s", url, resp.Status, strings.TrimSpace(string(out)))
	}
	return json.Unmarshal(out, res)
}
