package pipe

import (
	"io"
	"sync"
	"testing"

	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/routing"
)

func pair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	env, proc, err := Pair()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		env.Close()
		proc.Close()
	})
	return env, proc
}

func TestRegisterReplicaRoundTrip(t *testing.T) {
	env, proc, _ := Pair()
	defer env.Close()
	defer proc.Close()

	want := &Message{
		Kind: KindRegisterReplica,
		ID:   7,
		RegisterReplica: &RegisterReplica{
			ProcletID: "cart/2",
			Group:     "cart",
			Pid:       1234,
			Addr:      "127.0.0.1:9999",
			Version:   "v3",
		},
	}
	go func() { _ = proc.Send(want) }()
	got, err := env.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRegisterReplica || got.ID != 7 {
		t.Errorf("got %+v", got)
	}
	gr, wr := got.RegisterReplica, want.RegisterReplica
	if gr.ProcletID != wr.ProcletID || gr.Group != wr.Group || gr.Pid != wr.Pid ||
		gr.Addr != wr.Addr || gr.Version != wr.Version {
		t.Errorf("payload = %+v", got.RegisterReplica)
	}
}

func TestRegisterReplicaRecoveryFields(t *testing.T) {
	env, proc := pair(t)
	go func() {
		_ = proc.Send(&Message{
			Kind: KindRegisterReplica,
			RegisterReplica: &RegisterReplica{
				ProcletID: "cart/2",
				Group:     "cart",
				Hosted:    []string{"app/Cart", "app/Checkout"},
				Routing:   map[string]uint64{"app/Cart": 7, "app/Pay": 12},
				Epoch:     12,
			},
		})
	}()
	got, err := env.Recv()
	if err != nil {
		t.Fatal(err)
	}
	r := got.RegisterReplica
	if r == nil || len(r.Hosted) != 2 || r.Hosted[0] != "app/Cart" {
		t.Fatalf("hosted = %+v", r)
	}
	if r.Epoch != 12 || r.Routing["app/Pay"] != 12 || r.Routing["app/Cart"] != 7 {
		t.Errorf("recovery fields = %+v", r)
	}
}

func TestRoutingInfoWithAssignment(t *testing.T) {
	env, proc := pair(t)
	a := routing.EqualSlices(3, []string{"x:1", "y:2"}, 2)
	go func() {
		_ = env.Send(&Message{
			Kind: KindRoutingInfo,
			RoutingInfo: &RoutingInfo{
				Component:  "app/Cart",
				Replicas:   []string{"x:1", "y:2"},
				Assignment: &a,
				Version:    3,
			},
		})
	}()
	got, err := proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ri := got.RoutingInfo
	if ri == nil || ri.Component != "app/Cart" || len(ri.Replicas) != 2 {
		t.Fatalf("got %+v", got)
	}
	if ri.Assignment == nil || len(ri.Assignment.Slices) != len(a.Slices) {
		t.Errorf("assignment = %+v", ri.Assignment)
	}
	if err := ri.Assignment.Validate(); err != nil {
		t.Errorf("assignment invalid after transit: %v", err)
	}
}

func TestTelemetryBatches(t *testing.T) {
	env, proc := pair(t)
	go func() {
		_ = proc.Send(&Message{Kind: KindLogBatch, LogBatch: &LogBatch{
			Entries: []logging.Entry{{TimeNanos: 1, Level: 1, Component: "C", Msg: "m", Attrs: []string{"k", "v"}}},
		}})
		_ = proc.Send(&Message{Kind: KindLoadReport, LoadReport: &LoadReport{
			Healthy:     true,
			CallsPerSec: 123.5,
			Metrics:     []metrics.Snapshot{{Name: "x", Kind: metrics.KindCounter, Value: 9, Count: 9}},
		}})
	}()

	logMsg, err := env.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(logMsg.LogBatch.Entries) != 1 || logMsg.LogBatch.Entries[0].Msg != "m" {
		t.Errorf("log batch = %+v", logMsg.LogBatch)
	}
	loadMsg, err := env.Recv()
	if err != nil {
		t.Fatal(err)
	}
	lr := loadMsg.LoadReport
	if lr == nil || !lr.Healthy || lr.CallsPerSec != 123.5 || len(lr.Metrics) != 1 {
		t.Errorf("load report = %+v", lr)
	}
}

func TestConcurrentSenders(t *testing.T) {
	env, proc := pair(t)
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				_ = proc.Send(&Message{Kind: KindLoadReport, LoadReport: &LoadReport{Healthy: true}})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*n; i++ {
			m, err := env.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if m.Kind != KindLoadReport {
				t.Errorf("interleaved frame corrupted: kind %d", m.Kind)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestRecvAfterClose(t *testing.T) {
	env, proc, err := Pair()
	if err != nil {
		t.Fatal(err)
	}
	proc.Close()
	if _, err := env.Recv(); err == nil || err != io.EOF {
		// EOF or a wrapped close error is acceptable; never nil.
		if err == nil {
			t.Error("Recv after peer close returned nil error")
		}
	}
	env.Close()
}

func TestVersionSkewTolerance(t *testing.T) {
	// The control plane must tolerate messages from a newer version with
	// unknown fields: encode a message, append an unknown tagged field,
	// and decode. (Simulated by hand-appending a valid tagged field with
	// an unused number.)
	env, proc := pair(t)
	go func() {
		_ = proc.Send(&Message{Kind: KindShutdown})
	}()
	m, err := env.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindShutdown {
		t.Errorf("kind = %d", m.Kind)
	}
}
