// Package pipe implements the control-plane protocol between a proclet and
// its envelope (paper §4.3, Table 1). Proclets inherit two pipe file
// descriptors from the envelope that spawned them and exchange
// length-prefixed messages encoded with the *versioned* tagged codec —
// unlike the data plane, the control plane must keep working while a new
// application version is rolling out next to an old one.
//
// The message vocabulary implements Table 1 and Figure 3:
//
//	proclet → envelope: RegisterReplica, ComponentsToHost (request),
//	                    StartComponent, LoadReport, LogBatch, TraceBatch,
//	                    GraphBatch
//	envelope → proclet: HostComponents, RoutingInfo, StopComponent, Shutdown
//
// Acks flow in both directions: either side may set Message.ID on a request
// and the peer answers with a KindAck carrying the same ID. Proclets use
// odd IDs and envelopes even ones, so the two request streams can never
// collide on the shared pipe. Envelope-initiated acked requests
// (HostComponents, RoutingInfo, StopComponent) are what make live
// re-placement drain-safe: the manager knows when a proclet has applied a
// placement or routing change, not merely received it.
package pipe

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/codec/tagged"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/tracing"
)

// Message kinds.
const (
	KindRegisterReplica  = 1  // proclet -> envelope
	KindComponentsToHost = 2  // proclet -> envelope (request; Ack carries HostComponents)
	KindStartComponent   = 3  // proclet -> envelope
	KindLoadReport       = 4  // proclet -> envelope
	KindLogBatch         = 5  // proclet -> envelope
	KindTraceBatch       = 6  // proclet -> envelope
	KindGraphBatch       = 7  // proclet -> envelope
	KindHostComponents   = 8  // envelope -> proclet (push; acked when ID is set)
	KindRoutingInfo      = 9  // envelope -> proclet (push; acked when ID is set)
	KindShutdown         = 10 // envelope -> proclet
	KindAck              = 11 // either direction (reply to ID-carrying requests)
	KindStopComponent    = 12 // envelope -> proclet (request; acked once drained)
	KindReregister       = 13 // envelope -> proclet (re-send RegisterReplica after a manager rebuild)
)

// Message is the single wire envelope for all control-plane traffic. Kind
// selects which payload field is set (a poor man's oneof).
type Message struct {
	Kind uint32 `tag:"1"`
	// ID correlates a request with its Ack. Zero for unsolicited pushes.
	ID uint64 `tag:"2"`
	// Err carries an error message in an Ack.
	Err string `tag:"3"`

	RegisterReplica *RegisterReplica `tag:"4"`
	StartComponent  *StartComponent  `tag:"5"`
	LoadReport      *LoadReport      `tag:"6"`
	LogBatch        *LogBatch        `tag:"7"`
	TraceBatch      *TraceBatch      `tag:"8"`
	GraphBatch      *GraphBatch      `tag:"9"`
	HostComponents  *HostComponents  `tag:"10"`
	RoutingInfo     *RoutingInfo     `tag:"11"`
	StopComponent   *StopComponent   `tag:"12"`
}

// RegisterReplica announces a proclet as alive and ready (Table 1).
type RegisterReplica struct {
	ProcletID string `tag:"1"` // unique replica id, e.g. "cart/2"
	Group     string `tag:"2"` // colocation group this replica belongs to
	Pid       int64  `tag:"3"`
	// Addr is the data-plane address on which the proclet serves hosted
	// components.
	Addr    string `tag:"4"`
	Version string `tag:"5"` // application version, for atomic rollouts

	// The remaining fields let a rebuilt manager recover observed state
	// from re-registration alone (the envelope pushes KindReregister after
	// a manager restart, and the proclet answers with a fresh, complete
	// registration). Hosted lists the components this proclet currently
	// hosts; Routing carries the newest routing epoch it has applied per
	// component; Epoch is the highest routing/placement epoch it has seen
	// anywhere. A recovering manager floors its epoch counter at the
	// maximum reported Epoch so fresh broadcasts are never fenced out as
	// stale.
	Hosted  []string          `tag:"6"`
	Routing map[string]uint64 `tag:"7"`
	Epoch   uint64            `tag:"8"`
}

// StartComponent asks the runtime to ensure a component is started,
// potentially in another process (Table 1).
type StartComponent struct {
	Component string `tag:"1"`
	Routed    bool   `tag:"2"`
}

// HostComponents tells a proclet which components it should host
// (the reply to ComponentsToHost, and pushed when placement changes).
type HostComponents struct {
	Components []string `tag:"1"`
	// Version is the routing epoch of the placement decision behind this
	// push (0 for the initial assignment). A proclet applies a host flip
	// only if it is newer than what it has already applied, so a delayed
	// push can never resurrect hosting that a later move revoked.
	Version uint64 `tag:"2"`
}

// StopComponent tells a proclet to stop hosting one component: flip local
// callers to the data plane, stop admitting new remote calls for it,
// finish the in-flight ones, and release its handlers. The proclet acks
// once drained; the manager waits for those acks before considering a
// re-placement move complete.
type StopComponent struct {
	Component string `tag:"1"`
	// Version is the routing epoch that moved the component away.
	Version uint64 `tag:"2"`
}

// RoutingInfo tells a proclet how to reach one component's replicas.
type RoutingInfo struct {
	Component string   `tag:"1"`
	Replicas  []string `tag:"2"`
	// Assignment is set for routed components.
	Assignment *routing.Assignment `tag:"3"`
	Version    uint64              `tag:"4"`
}

// LoadReport carries a proclet's health and load, plus a metrics snapshot,
// to the manager (Figure 3: collect health and load information; aggregate
// metrics).
type LoadReport struct {
	Healthy     bool               `tag:"1"`
	CallsPerSec float64            `tag:"2"` // served component calls per second
	Metrics     []metrics.Snapshot `tag:"3"`
}

// LogBatch ships component log entries to the manager.
type LogBatch struct {
	Entries []logging.Entry `tag:"1"`
}

// TraceBatch ships completed spans to the manager.
type TraceBatch struct {
	Spans []tracing.Span `tag:"1"`
}

// GraphBatch ships call-graph edges to the manager.
type GraphBatch struct {
	Edges []callgraph.Edge `tag:"1"`
}

// maxMessageSize bounds control-plane messages.
const maxMessageSize = 64 << 20

// A Conn exchanges Messages over a byte stream (a Unix pipe in production,
// net.Pipe or os.Pipe in tests). Send is safe for concurrent use; Recv
// must be called from a single reader goroutine.
type Conn struct {
	r   io.Reader
	w   io.Writer
	wmu sync.Mutex
	c   []io.Closer
}

// NewConn builds a Conn from a reader and writer. Any of them implementing
// io.Closer is closed by Close.
func NewConn(r io.Reader, w io.Writer) *Conn {
	conn := &Conn{r: r, w: w}
	if c, ok := r.(io.Closer); ok {
		conn.c = append(conn.c, c)
	}
	if c, ok := w.(io.Closer); ok {
		conn.c = append(conn.c, c)
	}
	return conn
}

// Close closes the underlying stream(s).
func (c *Conn) Close() error {
	var first error
	for _, cl := range c.c {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Send writes one message.
func (c *Conn) Send(m *Message) error {
	data, err := tagged.Marshal(m)
	if err != nil {
		return fmt.Errorf("pipe: encoding message kind %d: %w", m.Kind, err)
	}
	if len(data) > maxMessageSize {
		return fmt.Errorf("pipe: message kind %d too large (%d bytes)", m.Kind, len(data))
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(data)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = c.w.Write(data)
	return err
}

// Recv reads one message.
func (c *Conn) Recv() (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxMessageSize {
		return nil, fmt.Errorf("pipe: message length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	var m Message
	if err := tagged.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("pipe: decoding message: %w", err)
	}
	return &m, nil
}

// Proclet-side file descriptors. The envelope passes its ends of two pipes
// as fds 3 (proclet reads) and 4 (proclet writes) via exec.Cmd.ExtraFiles.
const (
	ProcletReadFD  = 3
	ProcletWriteFD = 4
)

// ProcletConn opens the control-plane connection inherited from the
// envelope. It fails if the process was not spawned by an envelope.
func ProcletConn() (*Conn, error) {
	r := os.NewFile(ProcletReadFD, "weaver-pipe-r")
	w := os.NewFile(ProcletWriteFD, "weaver-pipe-w")
	if r == nil || w == nil {
		return nil, fmt.Errorf("pipe: control-plane file descriptors not inherited")
	}
	return NewConn(r, w), nil
}

// Pair returns two connected Conns over in-process OS pipes: one for the
// envelope side, one for the proclet side. Used by in-process deployers
// and tests; the byte-level protocol is identical to the subprocess case.
func Pair() (envelope, proclet *Conn, err error) {
	// envelope -> proclet
	epR, epW, err := os.Pipe()
	if err != nil {
		return nil, nil, err
	}
	// proclet -> envelope
	peR, peW, err := os.Pipe()
	if err != nil {
		epR.Close()
		epW.Close()
		return nil, nil, err
	}
	return NewConn(peR, epW), NewConn(epR, peW), nil
}
