package codegen

import "sync"

// A Pool recycles pointers to T. Generated code declares one pool per
// method args/results struct so steady-state calls reuse structs instead
// of allocating them: the stub draws from the pool on the caller side, and
// the hosting path draws from it (via MethodSpec.ArgsPool/ResPool) on the
// server side.
//
// Ownership rule: a struct obtained from Get belongs to the caller until
// Put, at which point it is zeroed — so pooling never resurrects stale
// field values, and anything the struct pointed at is released to the GC.
// Callers must not retain the struct, or interior pointers (slices,
// strings, maps) read out of it, past Put.
type Pool[T any] struct{ p sync.Pool }

// Get returns a zeroed *T, recycled when possible.
func (p *Pool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

// Put zeroes x and returns it to the pool.
func (p *Pool[T]) Put(x *T) {
	if x == nil {
		return
	}
	var zero T
	*x = zero
	p.p.Put(x)
}

// GetAny and PutAny implement AnyPool.
func (p *Pool[T]) GetAny() any { return p.Get() }

func (p *Pool[T]) PutAny(v any) {
	if x, ok := v.(*T); ok {
		p.Put(x)
	}
}

// AnyPool is the untyped view of a Pool, used where the concrete struct
// type is only known to generated code (e.g. MethodSpec).
type AnyPool interface {
	GetAny() any
	PutAny(any)
}
