package codegen

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

type TestIface interface {
	M(ctx context.Context) error
}

type testImpl struct{}

func (*testImpl) M(context.Context) error { return nil }

func validReg(name string) Registration {
	return Registration{
		Name:  name,
		Iface: reflect.TypeOf((*TestIface)(nil)).Elem(),
		Impl:  reflect.TypeOf(testImpl{}),
		Methods: []*MethodSpec{{
			Name:    "M",
			NewArgs: func() any { return &struct{}{} },
			NewRes:  func() any { return &struct{}{} },
			Do:      func(context.Context, any, any, any) {},
		}},
		ClientStub: func(conn Conn) any { return nil },
	}
}

func TestValidate(t *testing.T) {
	r := validReg("a/B")
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := r
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}

	bad = r
	bad.Iface = reflect.TypeOf(0)
	if err := bad.Validate(); err == nil {
		t.Error("non-interface Iface accepted")
	}

	bad = r
	bad.Impl = reflect.TypeOf("")
	if err := bad.Validate(); err == nil {
		t.Error("non-struct Impl accepted")
	}

	bad = r
	bad.ClientStub = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing ClientStub accepted")
	}

	bad = r
	bad.Methods = append([]*MethodSpec{}, r.Methods[0], r.Methods[0])
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate method: %v", err)
	}
}

func TestValidateImplMustImplementIface(t *testing.T) {
	r := validReg("a/C")
	type notImpl struct{}
	r.Impl = reflect.TypeOf(notImpl{})
	if err := r.Validate(); err == nil {
		t.Error("non-implementing Impl accepted")
	}
}

func TestMethodLookup(t *testing.T) {
	r := validReg("a/D")
	if r.Method("M") == nil {
		t.Error("Method(M) = nil")
	}
	if r.Method("Nope") != nil {
		t.Error("Method(Nope) != nil")
	}
	if got := r.FullMethod("M"); got != "a/D.M" {
		t.Errorf("FullMethod = %q", got)
	}
}

func TestErrorWireHelpers(t *testing.T) {
	msg, ok := ErrorToWire(nil)
	if msg != "" || ok {
		t.Errorf("ErrorToWire(nil) = %q, %v", msg, ok)
	}
	msg, ok = ErrorToWire(errors.New("boom"))
	if msg != "boom" || !ok {
		t.Errorf("ErrorToWire = %q, %v", msg, ok)
	}
	if err := WireToError("", false); err != nil {
		t.Errorf("WireToError nil case = %v", err)
	}
	err := WireToError("boom", true)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "boom" {
		t.Errorf("WireToError = %v", err)
	}
}
