// Package codegen is the runtime support library for code produced by
// cmd/weavergen (paper §4.2). Generated files register each component's
// interface, implementation, method table, and stub constructors here; the
// weaver runtime consults the registry to wire applications together.
//
// The method table is designed so that no transport performs reflection on
// the hot path: for every component method the generator emits
//
//   - an args struct and a results struct (so both the unversioned data
//     plane codec and the JSON baseline can serialize them),
//   - a Do closure that type-asserts the implementation and argument
//     struct to their concrete types and performs a direct method call.
package codegen

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// A MethodSpec describes one method of a component interface.
type MethodSpec struct {
	// Name is the bare method name, e.g. "Greet".
	Name string

	// NewArgs returns a pointer to a fresh args struct for this method.
	NewArgs func() any

	// NewRes returns a pointer to a fresh results struct.
	NewRes func() any

	// Do invokes the method on impl with the given args struct, filling
	// the caller-provided results struct. Application errors are recorded
	// inside the results struct, not returned, so they can cross the wire.
	Do func(ctx context.Context, impl, args, res any)

	// Shard extracts the routing key hash from an args struct, for routed
	// components. Nil for unrouted methods.
	Shard func(args any) uint64

	// NoRetry marks the method as non-idempotent: the runtime must not
	// retry it on transport failures, preserving at-most-once execution.
	// Declared with a "weaver:noretry" directive in the method's doc
	// comment.
	NoRetry bool

	// Priority is the method's admission class, mirroring the rpc
	// package's numbering (0 normal, 1 low, 2 high, 3 critical) without
	// importing it. Declared with a "weaver:priority=low|high|critical"
	// directive in the method's doc comment; under server overload, lower
	// classes are shed first and the class rides the wire with each call.
	Priority int

	// ArgsPool and ResPool, when non-nil, recycle this method's args and
	// results structs (see Pool). The hosting path uses them to serve a
	// steady-state call without allocating either struct; NewArgs/NewRes
	// remain the fallback for transports that retain the structs.
	ArgsPool AnyPool
	ResPool  AnyPool
}

// A Conn delivers method invocations to a (possibly remote) component
// implementation. The weaver data plane, the HTTP/JSON baseline, and the
// in-process local path all implement Conn.
type Conn interface {
	// Invoke calls method m of the named component. args is a pointer to
	// the method's args struct; res is a pointer to its results struct,
	// filled in on success. hasShard reports whether shard carries a
	// routing affinity key.
	Invoke(ctx context.Context, component string, m *MethodSpec, args, res any, shard uint64, hasShard bool) error
}

// A Registration records everything the runtime needs to know about one
// component. Generated code (or, in tests, hand-written code) constructs
// one Registration per component and passes it to Register.
type Registration struct {
	// Name is the component's full name, e.g.
	// "repro/internal/boutique/CartService".
	Name string

	// Iface is the component's interface type.
	Iface reflect.Type

	// Impl is the concrete implementation struct type (not a pointer).
	Impl reflect.Type

	// Routed reports whether calls to this component use affinity routing.
	Routed bool

	// Methods lists the component's methods sorted by name.
	Methods []*MethodSpec

	// ClientStub returns a value implementing Iface that forwards every
	// method call through conn.
	ClientStub func(conn Conn) any

	// NoRetry lists methods that must not be retried automatically (e.g.
	// non-idempotent payment operations). Reserved for future use by the
	// runtime's retry policy.
	NoRetry []string
}

// Validate checks internal consistency of a registration.
func (r *Registration) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("codegen: registration with empty name")
	}
	if r.Iface == nil || r.Iface.Kind() != reflect.Interface {
		return fmt.Errorf("codegen: %s: Iface must be an interface type", r.Name)
	}
	if r.Impl == nil || r.Impl.Kind() != reflect.Struct {
		return fmt.Errorf("codegen: %s: Impl must be a struct type", r.Name)
	}
	if !reflect.PointerTo(r.Impl).Implements(r.Iface) {
		return fmt.Errorf("codegen: %s: *%v does not implement %v", r.Name, r.Impl, r.Iface)
	}
	if r.ClientStub == nil {
		return fmt.Errorf("codegen: %s: missing ClientStub", r.Name)
	}
	seen := map[string]bool{}
	for _, m := range r.Methods {
		if m.Name == "" || m.NewArgs == nil || m.NewRes == nil || m.Do == nil {
			return fmt.Errorf("codegen: %s: malformed method spec %q", r.Name, m.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("codegen: %s: duplicate method %q", r.Name, m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// Method returns the spec for the named method, or nil.
func (r *Registration) Method(name string) *MethodSpec {
	for _, m := range r.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// FullMethod returns the wire name of a method of this component.
func (r *Registration) FullMethod(m string) string { return r.Name + "." + m }

var (
	regMu    sync.RWMutex
	registry = map[string]*Registration{}
	byIface  = map[reflect.Type]*Registration{}
)

// Register adds a component registration. Generated files call Register
// from init functions. It panics on invalid or duplicate registrations,
// surfacing programmer errors at process start.
func Register(r Registration) {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[r.Name]; ok {
		panic(fmt.Sprintf("codegen: component %q registered twice", r.Name))
	}
	if _, ok := byIface[r.Iface]; ok {
		panic(fmt.Sprintf("codegen: interface %v registered twice", r.Iface))
	}
	cp := r
	sort.Slice(cp.Methods, func(i, j int) bool { return cp.Methods[i].Name < cp.Methods[j].Name })
	registry[r.Name] = &cp
	byIface[r.Iface] = &cp
}

// Find returns the registration with the given full name.
func Find(name string) (*Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// FindByInterface returns the registration for the given interface type.
func FindByInterface(t reflect.Type) (*Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := byIface[t]
	return r, ok
}

// All returns every registration, sorted by name. The sort order is the
// canonical component order used for deterministic placement decisions.
func All() []*Registration {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Registration, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClearForTesting removes all registrations. Only tests may call it.
func ClearForTesting() {
	regMu.Lock()
	defer regMu.Unlock()
	registry = map[string]*Registration{}
	byIface = map[reflect.Type]*Registration{}
}
