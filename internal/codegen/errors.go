package codegen

// RemoteError is the concrete error type delivered to callers when a
// component method invoked across a process boundary returned a non-nil
// error. Only the error's message survives serialization; wrapped error
// chains do not cross the wire, exactly as in the paper's prototype.
type RemoteError struct {
	Message string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return e.Message }

// ErrorToWire converts a method's error return for embedding in a results
// struct: ("", false) for nil, (msg, true) otherwise. Generated code calls
// it when filling results structs.
func ErrorToWire(err error) (string, bool) {
	if err == nil {
		return "", false
	}
	return err.Error(), true
}

// WireToError is the inverse of ErrorToWire, called by generated client
// stubs when unpacking results structs.
func WireToError(msg string, ok bool) error {
	if !ok {
		return nil
	}
	return &RemoteError{Message: msg}
}
