// Package logging implements the structured logging substrate shared by
// proclets, envelopes, and the global manager. Log entries produced inside
// application binaries are shipped over the control-plane pipe to the
// envelope, which forwards them to the manager for aggregation (paper
// Figure 3: "Metrics, traces, logs").
package logging

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's human-readable name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// An Entry is one structured log record. Entries cross the control-plane
// pipe, so the struct is tagged for the versioned codec.
type Entry struct {
	TimeNanos int64    `tag:"1"`
	Level     int32    `tag:"2"`
	Component string   `tag:"3"`
	Replica   string   `tag:"4"`
	Msg       string   `tag:"5"`
	Attrs     []string `tag:"6"` // alternating key, value
}

// Format renders the entry in a single human-readable line.
func (e Entry) Format() string {
	var b strings.Builder
	t := time.Unix(0, e.TimeNanos).UTC()
	fmt.Fprintf(&b, "%s %-5s %s", t.Format("15:04:05.000"), Level(e.Level), e.Component)
	if e.Replica != "" {
		fmt.Fprintf(&b, "[%s]", e.Replica)
	}
	b.WriteString(" ")
	b.WriteString(e.Msg)
	for i := 0; i+1 < len(e.Attrs); i += 2 {
		fmt.Fprintf(&b, " %s=%s", e.Attrs[i], e.Attrs[i+1])
	}
	return b.String()
}

// A Sink receives completed log entries.
type Sink interface {
	Log(Entry)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Entry)

// Log calls f(e).
func (f SinkFunc) Log(e Entry) { f(e) }

// A Logger produces structured entries bound to a component and replica.
// Loggers are safe for concurrent use.
type Logger struct {
	component string
	replica   string
	min       Level
	sink      Sink
	now       func() time.Time
}

// Options configures a Logger.
type Options struct {
	Component string
	Replica   string
	Min       Level
	Sink      Sink             // defaults to a TextSink on os.Stderr
	Now       func() time.Time // defaults to time.Now; tests may override
}

// New returns a logger with the given options.
func New(opts Options) *Logger {
	if opts.Sink == nil {
		opts.Sink = NewTextSink(os.Stderr)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Logger{
		component: opts.Component,
		replica:   opts.Replica,
		min:       opts.Min,
		sink:      opts.Sink,
		now:       opts.Now,
	}
}

// With returns a copy of l bound to a different component name.
func (l *Logger) With(component string) *Logger {
	cp := *l
	cp.component = component
	return &cp
}

func (l *Logger) log(level Level, msg string, attrs ...string) {
	if level < l.min {
		return
	}
	l.sink.Log(Entry{
		TimeNanos: l.now().UnixNano(),
		Level:     int32(level),
		Component: l.component,
		Replica:   l.replica,
		Msg:       msg,
		Attrs:     attrs,
	})
}

// Debug logs at debug severity. Attrs are alternating key/value strings.
func (l *Logger) Debug(msg string, attrs ...string) { l.log(LevelDebug, msg, attrs...) }

// Info logs at info severity.
func (l *Logger) Info(msg string, attrs ...string) { l.log(LevelInfo, msg, attrs...) }

// Warn logs at warn severity.
func (l *Logger) Warn(msg string, attrs ...string) { l.log(LevelWarn, msg, attrs...) }

// Error logs at error severity.
func (l *Logger) Error(msg string, err error, attrs ...string) {
	if err != nil {
		attrs = append(attrs, "err", err.Error())
	}
	l.log(LevelError, msg, attrs...)
}

// TextSink writes formatted entries to an io.Writer, one per line.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a sink writing human-readable lines to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Log writes e to the sink's writer.
func (s *TextSink) Log(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintln(s.w, e.Format())
}

// Buffer is a sink that retains entries in memory. It is used by the
// envelope (to batch entries bound for the manager) and by tests.
type Buffer struct {
	mu      sync.Mutex
	entries []Entry
	max     int
}

// NewBuffer returns a buffer retaining at most max entries (0 = unlimited).
func NewBuffer(max int) *Buffer { return &Buffer{max: max} }

// Log appends e, evicting the oldest entry if the buffer is full.
func (b *Buffer) Log(e Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = append(b.entries, e)
	if b.max > 0 && len(b.entries) > b.max {
		b.entries = b.entries[len(b.entries)-b.max:]
	}
}

// Drain removes and returns all buffered entries.
func (b *Buffer) Drain() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.entries
	b.entries = nil
	return out
}

// Len reports the number of buffered entries.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Aggregator collects entries from many replicas and serves ordered views,
// playing the manager's log-aggregation role from Figure 3.
type Aggregator struct {
	mu      sync.Mutex
	entries []Entry
	max     int
}

// NewAggregator returns an aggregator retaining at most max entries
// (0 = unlimited).
func NewAggregator(max int) *Aggregator { return &Aggregator{max: max} }

// Add ingests a batch of entries from one replica.
func (a *Aggregator) Add(batch []Entry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, batch...)
	if a.max > 0 && len(a.entries) > a.max {
		a.entries = a.entries[len(a.entries)-a.max:]
	}
}

// Ordered returns all retained entries sorted by timestamp.
func (a *Aggregator) Ordered() []Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]Entry(nil), a.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNanos < out[j].TimeNanos })
	return out
}

// Filter returns retained entries for one component, ordered by time.
func (a *Aggregator) Filter(component string) []Entry {
	var out []Entry
	for _, e := range a.Ordered() {
		if e.Component == component {
			out = append(out, e)
		}
	}
	return out
}

// Discard is a sink that drops all entries.
var Discard Sink = SinkFunc(func(Entry) {})
