package logging

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time { return time.Unix(1700000000, 123e6).UTC() }

func TestLoggerLevels(t *testing.T) {
	buf := NewBuffer(0)
	l := New(Options{Component: "C", Replica: "r1", Min: LevelInfo, Sink: buf, Now: fixedNow})
	l.Debug("hidden")
	l.Info("shown", "k", "v")
	l.Warn("warned")
	l.Error("failed", nil)

	entries := buf.Drain()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Msg != "shown" || entries[0].Attrs[0] != "k" {
		t.Errorf("entry = %+v", entries[0])
	}
	if Level(entries[1].Level) != LevelWarn {
		t.Errorf("level = %v", entries[1].Level)
	}
}

func TestErrorAttachesErr(t *testing.T) {
	buf := NewBuffer(0)
	l := New(Options{Sink: buf, Now: fixedNow})
	l.Error("boom", errTest("kaput"))
	e := buf.Drain()[0]
	joined := strings.Join(e.Attrs, " ")
	if !strings.Contains(joined, "kaput") {
		t.Errorf("attrs = %v", e.Attrs)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestFormat(t *testing.T) {
	e := Entry{
		TimeNanos: fixedNow().UnixNano(),
		Level:     int32(LevelWarn),
		Component: "Cart",
		Replica:   "cart/2",
		Msg:       "slow",
		Attrs:     []string{"ms", "250"},
	}
	got := e.Format()
	for _, want := range []string{"WARN", "Cart[cart/2]", "slow", "ms=250"} {
		if !strings.Contains(got, want) {
			t.Errorf("format %q missing %q", got, want)
		}
	}
}

func TestWith(t *testing.T) {
	buf := NewBuffer(0)
	l := New(Options{Component: "A", Sink: buf, Now: fixedNow})
	l.With("B").Info("from B")
	if e := buf.Drain()[0]; e.Component != "B" {
		t.Errorf("component = %q", e.Component)
	}
}

func TestBufferEviction(t *testing.T) {
	buf := NewBuffer(3)
	for i := 0; i < 5; i++ {
		buf.Log(Entry{TimeNanos: int64(i)})
	}
	entries := buf.Drain()
	if len(entries) != 3 || entries[0].TimeNanos != 2 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestAggregatorOrdering(t *testing.T) {
	a := NewAggregator(0)
	a.Add([]Entry{{TimeNanos: 30, Component: "X"}, {TimeNanos: 10, Component: "Y"}})
	a.Add([]Entry{{TimeNanos: 20, Component: "X"}})
	ordered := a.Ordered()
	if len(ordered) != 3 || ordered[0].TimeNanos != 10 || ordered[2].TimeNanos != 30 {
		t.Errorf("ordered = %+v", ordered)
	}
	xs := a.Filter("X")
	if len(xs) != 2 || xs[0].TimeNanos != 20 {
		t.Errorf("filtered = %+v", xs)
	}
}

func TestTextSinkConcurrent(t *testing.T) {
	var sb syncBuilder
	sink := NewTextSink(&sb)
	l := New(Options{Component: "C", Sink: sink, Now: fixedNow})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("line")
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 400 {
		t.Errorf("lines = %d", len(lines))
	}
}

type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestDiscard(t *testing.T) {
	Discard.Log(Entry{}) // must not panic
}
