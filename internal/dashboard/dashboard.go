// Package dashboard implements the deployer's web UI and debugging
// endpoints (paper Figure 3: "Web UI", "Debugging Tools", "Profiling
// Tools"). It serves the global manager's aggregated view of a running
// deployment:
//
//	GET /status     groups, replicas, health, and load
//	GET /graph      the component call graph in Graphviz dot
//	GET /metrics    merged metrics across replicas, text exposition format
//	GET /traces     slowest sampled traces with their critical paths
//	GET /logs       recent aggregated log entries (?component= filters)
//	GET /placement  live re-placement: grouping, plan, scores, moves
//	GET /control    control plane: desired vs observed state, actuator log
package dashboard

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// Handler returns the dashboard HTTP handler for a manager.
func Handler(m *manager.Manager) http.Handler {
	d := &dash{mgr: m}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", d.status)
	mux.HandleFunc("/graph", d.graph)
	mux.HandleFunc("/metrics", d.metrics)
	mux.HandleFunc("/traces", d.traces)
	mux.HandleFunc("/logs", d.logs)
	mux.HandleFunc("/placement", d.placement)
	mux.HandleFunc("/control", d.control)
	// Profiling tools (Figure 3): the deployer process's own profiles.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/heap", pprof.Index)
	mux.HandleFunc("/", d.index)
	return mux
}

// Serve starts the dashboard on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func Serve(m *manager.Manager, addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(m)}
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

type dash struct {
	mgr *manager.Manager
}

func (d *dash) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `weaver deployment dashboard
  /status     groups, replicas, health, load
  /graph      component call graph (dot)
  /metrics    merged metrics
  /traces     slowest traces and critical paths
  /logs       aggregated logs (?component=Name)
  /placement  live re-placement: grouping, plan, scores, moves
  /control    control plane: desired vs observed state, actuator log
  /debug/pprof  deployer profiles
`)
}

func (d *dash) status(w http.ResponseWriter, _ *http.Request) {
	for _, g := range d.mgr.Status() {
		shorts := make([]string, len(g.Components))
		for i, c := range g.Components {
			shorts[i] = core.ShortName(c)
		}
		fmt.Fprintf(w, "group %-16s components=[%s]\n", g.Name, strings.Join(shorts, ","))
		for _, rep := range g.Replicas {
			health := "healthy"
			if !rep.Healthy {
				health = "UNHEALTHY"
			}
			fmt.Fprintf(w, "  %-14s pid=%-7d addr=%-21s %-9s %.1f calls/s\n",
				rep.ID, rep.Pid, rep.Addr, health, rep.Rate)
		}
	}
}

func (d *dash) graph(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprint(w, d.mgr.Graph().Analyze().Dot())
}

func (d *dash) metrics(w http.ResponseWriter, _ *http.Request) {
	merged := d.mgr.MergedMetrics()
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := merged[name]
		key := strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
		switch s.Kind {
		case metrics.KindCounter, metrics.KindGauge:
			fmt.Fprintf(w, "%s %g\n", key, s.Value)
		case metrics.KindHistogram:
			fmt.Fprintf(w, "%s_count %d\n", key, s.Count)
			fmt.Fprintf(w, "%s_sum %g\n", key, s.Sum)
			fmt.Fprintf(w, "%s_p50 %g\n", key, s.Quantile(0.5))
			fmt.Fprintf(w, "%s_p99 %g\n", key, s.Quantile(0.99))
		}
	}
}

func (d *dash) traces(w http.ResponseWriter, _ *http.Request) {
	spans := d.mgr.Spans()
	// Group by trace, find roots, sort by root duration.
	byTrace := map[uint64][]tracing.Span{}
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	type traceInfo struct {
		id   uint64
		root tracing.Span
		all  []tracing.Span
	}
	var infos []traceInfo
	for id, group := range byTrace {
		root := group[0]
		for _, s := range group {
			if s.Duration() > root.Duration() {
				root = s
			}
		}
		infos = append(infos, traceInfo{id: id, root: root, all: group})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].root.Duration() > infos[j].root.Duration() })
	if len(infos) > 20 {
		infos = infos[:20]
	}

	fmt.Fprintf(w, "%d traces collected; slowest %d:\n\n", len(byTrace), len(infos))
	for _, ti := range infos {
		fmt.Fprintf(w, "trace %016x  %s.%s  %v\n",
			ti.id, core.ShortName(ti.root.Component), ti.root.Method, ti.root.Duration().Round(time.Microsecond))
		for _, s := range callgraph.CriticalPath(ti.all) {
			kind := "local"
			if s.Remote {
				kind = "remote"
			}
			fmt.Fprintf(w, "  -> %-24s %-18s %8v %s\n",
				core.ShortName(s.Component), s.Method, s.Duration().Round(time.Microsecond), kind)
		}
		fmt.Fprintln(w)
	}
}

func (d *dash) placement(w http.ResponseWriter, _ *http.Request) {
	st := d.mgr.PlacementStatus()
	writePlan := func(title string, plan map[string][]string, score float64) {
		fmt.Fprintf(w, "%s (locality %.1f%%):\n", title, 100*score)
		names := make([]string, 0, len(plan))
		for name := range plan {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			shorts := make([]string, len(plan[name]))
			for i, c := range plan[name] {
				shorts[i] = core.ShortName(c)
			}
			sort.Strings(shorts)
			fmt.Fprintf(w, "  %-16s [%s]\n", name, strings.Join(shorts, ","))
		}
	}
	writePlan("current grouping", st.Current, st.CurrentScore)
	fmt.Fprintln(w)
	writePlan("recommended plan", st.Recommended, st.RecommendedScore)
	fmt.Fprintf(w, "\nscored over %d observed calls\n", st.TotalCalls)

	fmt.Fprintf(w, "\napplied moves (%d):\n", len(st.Moves))
	for _, mv := range st.Moves {
		fmt.Fprintf(w, "  %s  %-24s %s -> %s  (epoch %d)\n",
			mv.When.Format(time.RFC3339), core.ShortName(mv.Component), mv.From, mv.To, mv.Version)
	}
}

func (d *dash) control(w http.ResponseWriter, _ *http.Request) {
	st := d.mgr.ControlStatus()
	fmt.Fprintf(w, "control-plane state version %d, routing epoch %d\n\n", st.StateVersion, st.RouteEpoch)

	fmt.Fprintf(w, "%-16s %7s %9s %5s %6s %9s %4s  components\n",
		"group", "desired", "starting", "live", "ready", "restarts", "lag")
	for _, g := range st.Groups {
		shorts := make([]string, len(g.Components))
		for i, c := range g.Components {
			shorts[i] = core.ShortName(c)
		}
		converged := " "
		if g.Live != g.Target || g.Starting > 0 || g.Lag > 0 {
			converged = "*" // reconciliation in flight
		}
		fmt.Fprintf(w, "%-16s %7d %9d %5d %6d %9d %4d %s [%s]\n",
			g.Name, g.Target, g.Starting, g.Live, g.Ready, g.Restarts, g.Lag,
			converged, strings.Join(shorts, ","))
	}

	actions := st.Actions
	const maxShow = 40
	if len(actions) > maxShow {
		actions = actions[len(actions)-maxShow:]
	}
	fmt.Fprintf(w, "\nactuator actions (last %d of %d):\n", len(actions), len(st.Actions))
	for _, a := range actions {
		epoch := ""
		if a.Epoch != 0 {
			epoch = fmt.Sprintf("  epoch=%d", a.Epoch)
		}
		fmt.Fprintf(w, "  %s  %-8s %s%s\n", a.When.Format(time.RFC3339), a.Kind, a.Detail, epoch)
	}
}

func (d *dash) logs(w http.ResponseWriter, r *http.Request) {
	component := r.URL.Query().Get("component")
	entries := d.mgr.LogAggregator().Ordered()
	if component != "" {
		kept := entries[:0]
		for _, e := range entries {
			if core.ShortName(e.Component) == component || e.Component == component {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if len(entries) > 500 {
		entries = entries[len(entries)-500:]
	}
	for _, e := range entries {
		fmt.Fprintln(w, e.Format())
	}
}
