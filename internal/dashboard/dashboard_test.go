package dashboard

import (
	"context"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/testpkg"
	"repro/weaver"
)

func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDashboardEndpoints(t *testing.T) {
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config:        manager.Config{App: "dash-test"},
		Fill:          fill,
		TraceFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	chain, err := deploy.Get[testpkg.Chain](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := chain.Relay(ctx, "x", 2); err != nil {
			t.Fatal(err)
		}
	}
	// Let telemetry reports flow to the manager.
	time.Sleep(400 * time.Millisecond)

	addr, err := Serve(d.Manager, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	index := get(t, base+"/")
	if !strings.Contains(index, "/status") {
		t.Errorf("index = %q", index)
	}

	status := get(t, base+"/status")
	for _, want := range []string{"group", "main", "Chain", "Echo", "healthy"} {
		if !strings.Contains(status, want) {
			t.Errorf("status missing %q:\n%s", want, status)
		}
	}

	graph := get(t, base+"/graph")
	if !strings.Contains(graph, "digraph") || !strings.Contains(graph, `"Chain" -> "Echo"`) {
		t.Errorf("graph:\n%s", graph)
	}

	metricsOut := get(t, base+"/metrics")
	if !strings.Contains(metricsOut, "component_served_Echo") {
		t.Errorf("metrics missing served counter:\n%s", firstLines(metricsOut, 20))
	}
	// Per-priority-class admission outcomes must surface on /metrics so an
	// operator can see which classes are being shed.
	for _, want := range []string{
		"rpc_server_admitted_normal", "rpc_server_admitted_high",
		"rpc_server_shed_low", "rpc_server_shed_critical",
		"rpc_server_hedge_dropped",
	} {
		if !strings.Contains(metricsOut, want) {
			t.Errorf("metrics missing per-priority admission counter %q", want)
		}
	}

	traces := get(t, base+"/traces")
	if !strings.Contains(traces, "traces collected") {
		t.Errorf("traces:\n%s", firstLines(traces, 10))
	}
	if !strings.Contains(traces, "Chain") {
		t.Errorf("no Chain trace:\n%s", firstLines(traces, 20))
	}

	_ = get(t, base+"/logs") // must not error

	// Apply one live move so /placement has a non-empty move log.
	if err := d.Manager.MoveComponent(ctx, "repro/internal/testpkg/Echo", "Chain"); err != nil {
		t.Fatal(err)
	}
	placement := get(t, base+"/placement")
	for _, want := range []string{"current grouping", "recommended plan", "applied moves (1)", "Echo -> Chain", "scored over"} {
		if !strings.Contains(placement, want) {
			t.Errorf("placement missing %q:\n%s", want, placement)
		}
	}
	if !strings.Contains(get(t, base+"/"), "/placement") {
		t.Error("index does not link /placement")
	}

	// /control shows the versioned control-plane state and the actuator
	// log; the move above must appear as routing pushes.
	control := get(t, base+"/control")
	for _, want := range []string{
		"control-plane state version", "routing epoch",
		"group", "desired", "starting", "live", "ready", "restarts", "lag",
		"main", "actuator actions",
	} {
		if !strings.Contains(control, want) {
			t.Errorf("control missing %q:\n%s", want, control)
		}
	}
	if !strings.Contains(control, "push") {
		t.Errorf("control shows no routing-push actions:\n%s", control)
	}
	if !strings.Contains(get(t, base+"/"), "/control") {
		t.Error("index does not link /control")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
