package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Error("key survives delete")
	}
	if err := s.Delete("absent"); err != nil {
		t.Errorf("deleting absent key: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k050"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k000", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if s2.Len() != 99 {
		t.Errorf("len = %d, want 99", s2.Len())
	}
	v, ok, _ := s2.Get("k000")
	if !ok || string(v) != "updated" {
		t.Errorf("k000 = %q, %v", v, ok)
	}
	if _, ok, _ := s2.Get("k050"); ok {
		t.Error("deleted key resurrected")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Put("good", []byte("value"))
	s.Close()

	// Simulate a crash mid-append: garbage at the tail.
	f, err := os.OpenFile(filepath.Join(dir, "store.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}) // truncated record
	f.Close()

	s2 := open(t, dir)
	v, ok, _ := s2.Get("good")
	if !ok || string(v) != "value" {
		t.Fatalf("good record lost after torn tail: %q %v", v, ok)
	}
	// The store must be writable after truncation.
	if err := s2.Put("after", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := open(t, dir)
	if v, ok, _ := s3.Get("after"); !ok || string(v) != "crash" {
		t.Errorf("post-recovery write lost: %q %v", v, ok)
	}
}

func TestCorruptedRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	_ = s.Put("a", []byte("1"))
	_ = s.Put("b", []byte("2"))
	s.Close()

	// Flip a byte in the middle of the log (the second record's payload).
	path := filepath.Join(dir, "store.log")
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	_ = os.WriteFile(path, data, 0o644)

	s2 := open(t, dir)
	if _, ok, _ := s2.Get("a"); !ok {
		t.Error("first record lost")
	}
	if _, ok, _ := s2.Get("b"); ok {
		t.Error("corrupt record decoded")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 50; i++ {
		_ = s.Put("hot", []byte(fmt.Sprintf("v%d", i)))
	}
	_ = s.Put("cold", []byte("x"))
	before, _ := os.Stat(filepath.Join(dir, "store.log"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, "store.log"))
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	v, ok, _ := s.Get("hot")
	if !ok || string(v) != "v49" {
		t.Errorf("hot = %q %v", v, ok)
	}
	// Writes after compaction must persist.
	_ = s.Put("post", []byte("compact"))
	s.Close()
	s2 := open(t, dir)
	if v, ok, _ := s2.Get("post"); !ok || string(v) != "compact" {
		t.Errorf("post-compact write lost: %q %v", v, ok)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactAt: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		_ = s.Put("k", []byte(fmt.Sprintf("%d", i)))
	}
	st, _ := os.Stat(filepath.Join(dir, "store.log"))
	// Without compaction the log would hold 100 records (~15 bytes each).
	if st.Size() > 500 {
		t.Errorf("auto compaction never ran: log is %d bytes", st.Size())
	}
}

func TestRange(t *testing.T) {
	s := open(t, t.TempDir())
	for _, k := range []string{"user/1", "user/2", "order/1", "user/3"} {
		_ = s.Put(k, []byte(k))
	}
	var got []string
	_ = s.Range("user/", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != "user/1" || got[2] != "user/3" {
		t.Errorf("range = %v", got)
	}
	// Early termination.
	count := 0
	_ = s.Range("", func(k string, v []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := open(t, t.TempDir())
	s.Close()
	if err := s.Put("k", nil); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Error("Get on closed store succeeded")
	}
}

func TestValueIsolation(t *testing.T) {
	s := open(t, t.TempDir())
	buf := []byte("mutable")
	_ = s.Put("k", buf)
	buf[0] = 'X'
	v, _, _ := s.Get("k")
	if string(v) != "mutable" {
		t.Error("store aliased caller's buffer")
	}
}

func TestQuickRoundTripThroughReopen(t *testing.T) {
	dir := t.TempDir()
	f := func(pairs map[string][]byte) bool {
		_ = os.RemoveAll(dir)
		s, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		for k, v := range pairs {
			if err := s.Put(k, v); err != nil {
				s.Close()
				return false
			}
		}
		s.Close()
		s2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(pairs) {
			return false
		}
		for k, v := range pairs {
			got, ok, err := s2.Get(k)
			if err != nil || !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
