// Package store implements a small, crash-safe, disk-backed key-value
// store. It is the persistent-storage substrate for stateful components in
// this repository: the boutique's cart service and the affinity-routed
// cache example (§5.2: "an in-memory cache component backed by an
// underlying disk-based storage system").
//
// The design is a log-structured store: writes append CRC-protected
// records to a log file, reads are served from an in-memory index rebuilt
// by replaying the log at open, and Compact rewrites the log to drop
// superseded records. A torn tail (e.g. from a crash mid-write) is
// detected by CRC and truncated at open.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// tombstone marks deletions in the log.
const tombstone = ^uint64(0)

// Options configures a Store.
type Options struct {
	// Sync forces an fsync after every write. Durability versus
	// throughput; defaults to false (rely on OS flushing), which matches
	// how the evaluation uses the store.
	Sync bool
	// CompactAt triggers automatic compaction when the log holds this many
	// superseded records (default 100000; 0 uses the default, negative
	// disables).
	CompactAt int
}

// Store is a disk-backed key-value store. It is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.RWMutex
	index map[string][]byte
	log   *os.File
	dead  int // superseded records in the log
	live  int // records in index
}

// Open opens (creating if necessary) the store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactAt == 0 {
		opts.CompactAt = 100000
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, index: map[string][]byte{}}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.log = f
	return s, nil
}

func (s *Store) logPath() string { return filepath.Join(s.dir, "store.log") }

// replay rebuilds the index from the log, truncating a corrupt tail.
func (s *Store) replay() error {
	data, err := os.ReadFile(s.logPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	valid := 0
	off := 0
	for off < len(data) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			break // torn tail
		}
		if rec.del {
			if _, exists := s.index[rec.key]; exists {
				delete(s.index, rec.key)
				s.dead += 2 // the put and the delete are both dead
			} else {
				s.dead++
			}
		} else {
			if _, exists := s.index[rec.key]; exists {
				s.dead++
			}
			s.index[rec.key] = rec.val
		}
		off += n
		valid = off
	}
	if valid < len(data) {
		// Truncate the torn tail so subsequent appends are well-formed.
		if err := os.Truncate(s.logPath(), int64(valid)); err != nil {
			return fmt.Errorf("store: truncating torn log tail: %w", err)
		}
	}
	s.live = len(s.index)
	return nil
}

type record struct {
	key string
	val []byte
	del bool
}

// encodeRecord appends a record: crc32(payload) + payload, where payload is
// [klen uvarint][vlen uvarint or tombstone][key][val].
func encodeRecord(buf []byte, key string, val []byte, del bool) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	if del {
		payload = binary.AppendUvarint(payload, tombstone)
	} else {
		payload = binary.AppendUvarint(payload, uint64(len(val)))
	}
	payload = append(payload, key...)
	if !del {
		payload = append(payload, val...)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, crcBuf[:]...)
	return append(buf, payload...)
}

// decodeRecord parses one record, reporting its total size and validity.
func decodeRecord(data []byte) (record, int, bool) {
	if len(data) < 8 {
		return record{}, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[0:])
	crc := binary.LittleEndian.Uint32(data[4:])
	if uint32(len(data)-8) < plen {
		return record{}, 0, false
	}
	payload := data[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return record{}, 0, false
	}
	klen, n1 := binary.Uvarint(payload)
	if n1 <= 0 {
		return record{}, 0, false
	}
	vlen, n2 := binary.Uvarint(payload[n1:])
	if n2 <= 0 {
		return record{}, 0, false
	}
	rest := payload[n1+n2:]
	if uint64(len(rest)) < klen {
		return record{}, 0, false
	}
	key := string(rest[:klen])
	rest = rest[klen:]
	if vlen == tombstone {
		return record{key: key, del: true}, 8 + int(plen), true
	}
	if uint64(len(rest)) < vlen {
		return record{}, 0, false
	}
	val := make([]byte, vlen)
	copy(val, rest[:vlen])
	return record{key: key, val: val}, 8 + int(plen), true
}

// Get returns the value for key and whether it exists. The returned slice
// must not be modified.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.log == nil {
		return nil, false, fmt.Errorf("store: closed")
	}
	v, ok := s.index[key]
	return v, ok, nil
}

// Put stores a value.
func (s *Store) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("store: closed")
	}
	if err := s.appendLocked(key, cp, false); err != nil {
		return err
	}
	if _, existed := s.index[key]; existed {
		s.dead++
	}
	s.index[key] = cp
	s.live = len(s.index)
	return s.maybeCompactLocked()
}

// Delete removes a key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	if err := s.appendLocked(key, nil, true); err != nil {
		return err
	}
	delete(s.index, key)
	s.dead += 2
	s.live = len(s.index)
	return s.maybeCompactLocked()
}

func (s *Store) appendLocked(key string, val []byte, del bool) error {
	rec := encodeRecord(nil, key, val, del)
	if _, err := s.log.Write(rec); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.opts.Sync {
		return s.log.Sync()
	}
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Range calls fn for every key with the given prefix, in sorted key order,
// until fn returns false.
func (s *Store) Range(prefix string, fn func(key string, val []byte) bool) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	type kv struct {
		k string
		v []byte
	}
	pairs := make([]kv, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, kv{k, s.index[k]})
	}
	s.mu.RUnlock()

	for _, p := range pairs {
		if !fn(p.k, p.v) {
			return nil
		}
	}
	return nil
}

func (s *Store) maybeCompactLocked() error {
	if s.opts.CompactAt < 0 || s.dead < s.opts.CompactAt {
		return nil
	}
	return s.compactLocked()
}

// Compact rewrites the log, dropping superseded records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := s.logPath() + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = encodeRecord(buf[:0], k, s.index[k], false)
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.logPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	old := s.log
	nf, err := os.OpenFile(s.logPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	s.log = nf
	s.dead = 0
	return nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	cerr := s.log.Close()
	s.log = nil
	if err != nil {
		return err
	}
	return cerr
}
