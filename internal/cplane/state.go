// Package cplane holds the manager's control-plane state as an immutable,
// versioned value: which colocation groups exist, which replicas each one
// runs, which group hosts each component, the newest routing info stamped
// per component, and the global routing epoch. The state lives in a
// copy-on-write Store (store.go); decision logic is expressed as pure
// reconcilers (reconcile.go) that read an observed snapshot and return a
// desired state, and Diff (diff.go) turns observed-vs-desired into the
// actions a single actuator executes. See DESIGN.md §14.
package cplane

import (
	"fmt"
	"sort"
	"time"
)

// Replica is the control plane's view of one running (or starting) replica
// of a colocation group.
type Replica struct {
	ID   string
	Addr string // data-plane address, set at registration

	Ready    bool // has registered and serves data-plane traffic
	Healthy  bool // reported healthy and not stale
	Stopping bool // a scale-down or resize picked it for graceful stop

	Rate       float64   // calls/sec from the latest load report
	LastReport time.Time // when the replica last reported (or was created)

	// Applied records, per component, the newest routing epoch this
	// replica's proclet has acknowledged applying. It is the observed side
	// of routing convergence: LastPush says what was asked, Applied says
	// what each replica has done.
	Applied map[string]uint64
}

// Group is one colocation group: a named set of components sharing an OS
// process, and the replicas running them.
type Group struct {
	Name       string
	Components []string        // sorted full component names hosted here
	Routed     map[string]bool // which hosted components use affinity routing
	Replicas   map[string]*Replica

	NextID   int // suffix for the next replica name "<group>/<n>"
	Restarts int // crash restarts consumed against Config.MaxRestarts
	Starting int // replicas being started right now
	Target   int // last reconciler-desired replica count (informational)
}

// Push snapshots the newest routing info stamped for one component: the
// epoch and the replica addresses it carried. Harnesses use it as the
// settle barrier; the /control page shows it against each replica's
// Applied epoch.
type Push struct {
	Version uint64
	Addrs   []string
}

// State is one immutable version of the control plane. Values handed out
// by Store.Snapshot must not be mutated; all mutation happens on the
// working copy inside Store.Update.
type State struct {
	// Version counts store updates. It is assigned by the store and resets
	// when a manager is rebuilt; RouteEpoch does not.
	Version uint64

	// RouteEpoch is the global routing epoch: every routing broadcast and
	// every re-placement step draws a fresh, strictly increasing value.
	// Proclets and balancers discard anything older than what they have
	// applied, so delayed or reordered pushes can never resurrect a
	// superseded placement.
	RouteEpoch uint64

	Groups    map[string]*Group
	CompGroup map[string]string // component -> hosting group
	LastPush  map[string]Push   // component -> newest stamped routing
}

// NewState returns an empty control-plane state.
func NewState() *State {
	return &State{
		Groups:    map[string]*Group{},
		CompGroup: map[string]string{},
		LastPush:  map[string]Push{},
	}
}

// Clone deep-copies the state. The control plane is small (tens of groups,
// hundreds of replicas at most), so copy-on-write clones whole versions
// rather than sharing structure.
func (s *State) Clone() *State {
	c := &State{
		Version:    s.Version,
		RouteEpoch: s.RouteEpoch,
		Groups:     make(map[string]*Group, len(s.Groups)),
		CompGroup:  make(map[string]string, len(s.CompGroup)),
		LastPush:   make(map[string]Push, len(s.LastPush)),
	}
	for name, g := range s.Groups {
		c.Groups[name] = g.clone()
	}
	for comp, g := range s.CompGroup {
		c.CompGroup[comp] = g
	}
	for comp, p := range s.LastPush {
		c.LastPush[comp] = p // Addrs slices are treated as immutable
	}
	return c
}

func (g *Group) clone() *Group {
	c := &Group{
		Name:       g.Name,
		Components: append([]string(nil), g.Components...),
		Routed:     make(map[string]bool, len(g.Routed)),
		Replicas:   make(map[string]*Replica, len(g.Replicas)),
		NextID:     g.NextID,
		Restarts:   g.Restarts,
		Starting:   g.Starting,
		Target:     g.Target,
	}
	for comp, r := range g.Routed {
		c.Routed[comp] = r
	}
	for id, r := range g.Replicas {
		c.Replicas[id] = r.clone()
	}
	return c
}

func (r *Replica) clone() *Replica {
	c := *r
	c.Applied = make(map[string]uint64, len(r.Applied))
	for comp, v := range r.Applied {
		c.Applied[comp] = v
	}
	return &c
}

// NextEpoch draws a fresh global routing epoch. Call only on the working
// copy inside Store.Update.
func (s *State) NextEpoch() uint64 {
	s.RouteEpoch++
	return s.RouteEpoch
}

// AddGroup creates a colocation group hosting the given components, each
// flagged routed or not per routedSet. The caller is responsible for
// validating that the components exist in the inventory.
func (s *State) AddGroup(name string, components []string, routedSet map[string]bool) (*Group, error) {
	if _, dup := s.Groups[name]; dup {
		return nil, fmt.Errorf("duplicate group %q", name)
	}
	g := &Group{
		Name:       name,
		Components: append([]string(nil), components...),
		Routed:     map[string]bool{},
		Replicas:   map[string]*Replica{},
	}
	for _, c := range components {
		if prev, taken := s.CompGroup[c]; taken {
			return nil, fmt.Errorf("component %q in groups %q and %q", c, prev, name)
		}
		s.CompGroup[c] = name
		g.Routed[c] = routedSet[c]
	}
	sort.Strings(g.Components)
	s.Groups[name] = g
	return g, nil
}

// Relocate moves a component's hosting from its current group to dest,
// updating the component lists and routed sets of both. It is the
// ownership-flip half of a move; the caller stamps and pushes routing.
func (s *State) Relocate(component, dest string) error {
	src, ok := s.CompGroup[component]
	if !ok {
		return fmt.Errorf("unknown component %q", component)
	}
	if src == dest {
		return nil
	}
	srcG, dstG := s.Groups[src], s.Groups[dest]
	if dstG == nil {
		return fmt.Errorf("unknown group %q", dest)
	}
	routed := srcG.Routed[component]
	srcG.Components = removeString(srcG.Components, component)
	delete(srcG.Routed, component)
	dstG.Components = append(dstG.Components, component)
	sort.Strings(dstG.Components)
	dstG.Routed[component] = routed
	s.CompGroup[component] = dest
	return nil
}

// ReadyAddrs returns the sorted data-plane addresses of a group's routable
// replicas: ready, healthy, and not stopping.
func (s *State) ReadyAddrs(group string) []string {
	g := s.Groups[group]
	if g == nil {
		return nil
	}
	var addrs []string
	for _, r := range g.Replicas {
		if r.Ready && r.Healthy && !r.Stopping {
			addrs = append(addrs, r.Addr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// ReadyReplicaIDs returns the sorted IDs of a group's routable replicas.
func (s *State) ReadyReplicaIDs(group string) []string {
	g := s.Groups[group]
	if g == nil {
		return nil
	}
	var ids []string
	for id, r := range g.Replicas {
		if r.Ready && r.Healthy && !r.Stopping {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ReplaceWith overwrites s's contents with the desired state des, keeping
// s's store-assigned Version. It is how an Update adopts a reconciler's
// desired state as the new truth after diffing.
func (s *State) ReplaceWith(des *State) {
	v := s.Version
	*s = *des
	s.Version = v
}

// SortedGroupNames returns the group names in sorted order, for
// deterministic iteration.
func (s *State) SortedGroupNames() []string {
	names := make([]string, 0, len(s.Groups))
	for name := range s.Groups {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func removeString(s []string, v string) []string {
	out := make([]string, 0, len(s))
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
