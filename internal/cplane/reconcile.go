package cplane

// Reconcilers: pure functions from an observed State (plus a decision
// oracle or event) to a desired State. They never touch envelopes, draw
// epochs, or sleep — Diff turns observed-vs-desired into actions, and the
// manager's actuator executes them. Purity is the point: each control
// loop's decision logic is unit-testable with plain values.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/callgraph"
	"repro/internal/placement"
)

// DesiredFunc is the autoscaling oracle: given a group, its current
// replica count (live + starting), and its aggregate healthy load, it
// returns the replica count the group should have. The manager supplies
// autoscale.Autoscaler.Desired; tests supply decision tables. The oracle
// may keep internal hysteresis state (scale-down delay), which is why it
// is injected rather than recomputed from the snapshot.
type DesiredFunc func(group string, current int, load float64, now time.Time) int

// ReconcileScale is the autoscale + health reconciler. For every group but
// "main" and the empty on-demand ones it marks stale replicas unhealthy
// (no load report within staleAfter), asks the oracle for a desired count,
// raises Starting to scale up, and marks the newest replicas Stopping to
// scale down. It returns the desired state; Diff against the observed
// snapshot yields the starts, stops, and routing pushes.
func ReconcileScale(obs *State, desired DesiredFunc, now time.Time, staleAfter time.Duration) *State {
	des := obs.Clone()
	for _, name := range des.SortedGroupNames() {
		g := des.Groups[name]
		if name == "main" || len(g.Replicas)+g.Starting == 0 {
			continue // main is the driver; empty groups start on demand
		}

		// Health: mark stale replicas unhealthy so routing skips them.
		var totalRate float64
		for _, r := range g.Replicas {
			if now.Sub(r.LastReport) > staleAfter {
				r.Healthy = false
			}
			if r.Healthy && r.Ready && !r.Stopping {
				totalRate += r.Rate
			}
		}

		current := len(g.Replicas) + g.Starting
		want := desired(name, current, totalRate, now)
		g.Target = want
		if want > current {
			g.Starting += want - current
		} else if want < current && len(g.Replicas) > want {
			// Stop the newest replicas first.
			ids := make([]string, 0, len(g.Replicas))
			for id := range g.Replicas {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			stopped := 0
			for i := len(ids) - 1; i >= 0 && len(ids)-stopped > want; i-- {
				r := g.Replicas[ids[i]]
				if !r.Stopping {
					r.Stopping = true
					stopped++
				}
			}
		}
	}
	return des
}

// ReconcileRestart is the crash-restart policy: called after a replica of
// the group exited. A deliberate exit (manager stopping, replica marked
// Stopping, clean exit) never restarts; a crash restarts until the group's
// restart budget is exhausted, and only if the group hosts components
// worth serving. Returns the desired state with one more replica starting,
// or nil when no restart is warranted.
func ReconcileRestart(obs *State, group string, deliberate bool, maxRestarts int) *State {
	g := obs.Groups[group]
	if g == nil {
		return nil
	}
	if deliberate || g.Restarts >= maxRestarts || len(g.Components) == 0 {
		return nil
	}
	des := obs.Clone()
	dg := des.Groups[group]
	dg.Restarts++
	dg.Starting++
	dg.Target = len(dg.Replicas) + dg.Starting
	return des
}

// ReconcileResize expresses "run exactly n replicas of this group" as a
// desired state: raise Starting when below, mark the newest non-stopping
// replicas Stopping when above. It is the scriptable lifecycle used by
// ResizeGroup.
func ReconcileResize(obs *State, group string, n int) (*State, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative replica target %d for group %q", n, group)
	}
	g := obs.Groups[group]
	if g == nil {
		return nil, fmt.Errorf("unknown group %q", group)
	}
	des := obs.Clone()
	dg := des.Groups[group]
	dg.Target = n
	live := dg.Starting
	for _, r := range dg.Replicas {
		if !r.Stopping {
			live++
		}
	}
	if n > live {
		dg.Starting += n - live
		return des, nil
	}
	ids := make([]string, 0, len(dg.Replicas))
	for id := range dg.Replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i := len(ids) - 1; i >= 0 && live > n; i-- {
		r := dg.Replicas[ids[i]]
		if !r.Stopping {
			r.Stopping = true
			live--
		}
	}
	return des, nil
}

// ReconcilePlacement is the re-placement reconciler: given the observed
// grouping and the merged call graph, it returns the component moves worth
// applying — or nothing when the graph is too thin to trust (fewer than
// minCalls observed calls) or the best plan's locality gain is below
// minGain. Components of the "main" group — the driver process — are never
// moved automatically in either direction.
func ReconcilePlacement(obs *State, g *callgraph.Graph, cfg placement.Config, minGain float64, minCalls uint64) []placement.Move {
	var total uint64
	for _, e := range g.Edges {
		if e.Caller != "" {
			total += e.Calls
		}
	}
	if total < minCalls {
		return nil // not enough signal yet
	}
	current := make(map[string][]string, len(obs.Groups))
	for name, grp := range obs.Groups {
		current[name] = append([]string(nil), grp.Components...)
	}
	ev := placement.Evaluate(g, cfg)
	if ev.Score-placement.Score(g, current) < minGain {
		return nil // running grouping is good enough
	}
	var out []placement.Move
	for _, mv := range placement.Diff(current, ev.Plan) {
		if mv.From == "main" || mv.To == "main" {
			continue
		}
		out = append(out, mv)
	}
	return out
}

// CheckInvariants verifies the structural invariants every published state
// must satisfy. The sim harness asserts it after every op; a violation is
// a control-plane bug, not a test flake.
//
//   - hosting is a bijection: CompGroup and the groups' Components lists
//     agree exactly (no orphaned or doubly-hosted component);
//   - Routed flags only cover hosted components;
//   - no stamped push and no replica-applied version exceeds RouteEpoch
//     (the epoch counter is the upper bound of everything ever issued);
//   - replica bookkeeping is sane (IDs match keys, Starting >= 0).
func CheckInvariants(s *State) error {
	seen := map[string]string{}
	for name, g := range s.Groups {
		if g.Starting < 0 {
			return fmt.Errorf("group %q has negative starting count %d", name, g.Starting)
		}
		for _, c := range g.Components {
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("component %q hosted by both %q and %q", c, prev, name)
			}
			seen[c] = name
			if s.CompGroup[c] != name {
				return fmt.Errorf("component %q listed in group %q but CompGroup says %q", c, name, s.CompGroup[c])
			}
		}
		for c := range g.Routed {
			if seen[c] != name {
				return fmt.Errorf("group %q has routed flag for unhosted component %q", name, c)
			}
		}
		for id, r := range g.Replicas {
			if r.ID != id {
				return fmt.Errorf("group %q replica keyed %q has ID %q", name, id, r.ID)
			}
			for c, v := range r.Applied {
				if v > s.RouteEpoch {
					return fmt.Errorf("replica %q applied epoch %d for %q beyond RouteEpoch %d", id, v, c, s.RouteEpoch)
				}
			}
		}
	}
	for c, gname := range s.CompGroup {
		if s.Groups[gname] == nil {
			return fmt.Errorf("component %q mapped to missing group %q", c, gname)
		}
		if seen[c] != gname {
			return fmt.Errorf("component %q in CompGroup (%q) but not in that group's list", c, gname)
		}
	}
	for c, p := range s.LastPush {
		if p.Version > s.RouteEpoch {
			return fmt.Errorf("component %q push epoch %d beyond RouteEpoch %d", c, p.Version, s.RouteEpoch)
		}
	}
	return nil
}
