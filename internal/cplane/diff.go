package cplane

import (
	"sort"
	"time"
)

// StartAction asks the actuator to launch N replicas of a group, after an
// optional backoff (crash restarts wait a beat before relaunching).
type StartAction struct {
	Group   string
	N       int
	Backoff time.Duration
}

// StopAction asks the actuator to gracefully stop one replica.
type StopAction struct {
	Group   string
	Replica string
}

// Actions is the plan the actuator executes to drive the observed state
// toward the desired one. Ordering guarantee: routing pushes for a group
// are broadcast before its stops are issued, so no proclet keeps routing
// to a replica that is draining.
type Actions struct {
	Start []StartAction
	Stop  []StopAction
	Push  []string // groups whose routing must be re-broadcast
}

// Empty reports whether the plan contains no work.
func (a Actions) Empty() bool {
	return len(a.Start) == 0 && len(a.Stop) == 0 && len(a.Push) == 0
}

// Diff compares an observed state against a reconciler's desired state and
// returns the actions that drive the fabric toward it:
//
//   - a group whose desired Starting exceeds the observed one gets a
//     StartAction for the difference;
//   - replicas newly marked Stopping get StopActions;
//   - groups whose routable surface changed — replicas added or removed,
//     health or stopping flips, component hosting changed — get a routing
//     Push.
//
// Diff is pure: it never touches envelopes and never draws epochs. The
// actuator owns both.
func Diff(obs, des *State) Actions {
	var acts Actions
	names := map[string]bool{}
	for name := range obs.Groups {
		names[name] = true
	}
	for name := range des.Groups {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		og, dg := obs.Groups[name], des.Groups[name]
		if dg == nil {
			continue // groups are never removed at runtime
		}
		if og == nil {
			// New group: nothing runs yet, nothing to push.
			if dg.Starting > 0 {
				acts.Start = append(acts.Start, StartAction{Group: name, N: dg.Starting})
			}
			continue
		}
		if n := dg.Starting - og.Starting; n > 0 {
			acts.Start = append(acts.Start, StartAction{Group: name, N: n})
		}
		dirty := !equalStrings(og.Components, dg.Components)
		ids := make([]string, 0, len(dg.Replicas))
		for id := range dg.Replicas {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			dr := dg.Replicas[id]
			or := og.Replicas[id]
			switch {
			case or == nil:
				dirty = true // replica appeared
			case dr.Stopping && !or.Stopping:
				acts.Stop = append(acts.Stop, StopAction{Group: name, Replica: id})
				dirty = true
			case dr.Healthy != or.Healthy || dr.Ready != or.Ready || dr.Addr != or.Addr:
				dirty = true
			}
		}
		for id := range og.Replicas {
			if dg.Replicas[id] == nil {
				dirty = true // replica removed
			}
		}
		if dirty {
			acts.Push = append(acts.Push, name)
		}
	}
	return acts
}

// Commit adopts the desired state as the working copy's new contents.
// Reconcilers express launches by raising Starting in the desired state,
// so committing it is the start bookkeeping: concurrent reconcile passes
// see the in-flight launches immediately. Call inside Store.Update, after
// Diff.
func Commit(s, des *State) {
	s.ReplaceWith(des)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
