package cplane

import "sync"

// Store holds the current control-plane State and evolves it
// copy-on-write: every Update clones the current version, applies the
// mutation to the clone, bumps Version, and publishes it atomically.
// Snapshots handed out are immutable — readers never see a torn state and
// never block writers.
type Store struct {
	mu       sync.Mutex
	cur      *State
	watchers map[int]chan *State
	nextW    int
}

// NewStore builds a store seeded with init (which the store takes
// ownership of).
func NewStore(init *State) *Store {
	if init == nil {
		init = NewState()
	}
	init.Version = 1
	return &Store{cur: init, watchers: map[int]chan *State{}}
}

// Snapshot returns the current state. The caller must not mutate it.
func (st *Store) Snapshot() *State {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur
}

// Update clones the current state, applies fn to the clone, assigns the
// next version, and publishes it. fn sees the pre-bump Version and must
// not retain the working copy beyond the call. The published state is
// returned.
func (st *Store) Update(fn func(s *State)) *State {
	st.mu.Lock()
	defer st.mu.Unlock()
	work := st.cur.Clone()
	fn(work)
	work.Version = st.cur.Version + 1
	st.cur = work
	for _, ch := range st.watchers {
		// Latest-wins: drop the stale buffered version, never block.
		select {
		case ch <- work:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- work:
			default:
			}
		}
	}
	return work
}

// Watch returns a channel that receives new state versions as they are
// published (latest-wins: intermediate versions may be skipped under a
// slow consumer) and a cancel function that releases the watch.
func (st *Store) Watch() (<-chan *State, func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := st.nextW
	st.nextW++
	ch := make(chan *State, 1)
	ch <- st.cur
	st.watchers[id] = ch
	cancel := func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		delete(st.watchers, id)
	}
	return ch, cancel
}
