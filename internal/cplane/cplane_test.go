package cplane

// Pure-function tests for the extracted reconcilers: no envelopes, no
// subprocesses, no clocks beyond explicit time values. This is the direct
// payoff of the reconciler/actuator split — the control plane's decision
// logic is exercised as plain values.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/callgraph"
	"repro/internal/placement"
)

// mkState builds a state with one group of n ready replicas hosting comps.
func mkState(group string, n int, comps ...string) *State {
	s := NewState()
	g, err := s.AddGroup(group, comps, map[string]bool{})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		id := group + "/" + string(rune('0'+i))
		g.Replicas[id] = &Replica{
			ID: id, Addr: "addr-" + id, Ready: true, Healthy: true,
			LastReport: time.Unix(1000, 0), Applied: map[string]uint64{},
		}
		g.NextID++
	}
	return s
}

func countStopping(s *State, group string) int {
	n := 0
	for _, r := range s.Groups[group].Replicas {
		if r.Stopping {
			n++
		}
	}
	return n
}

// TestReconcileScaleDecisionTable drives the autoscale reconciler through
// a decision table: (current replicas, oracle answer) -> (starts, stops).
func TestReconcileScaleDecisionTable(t *testing.T) {
	now := time.Unix(1000, 0)
	cases := []struct {
		name      string
		current   int
		want      int
		wantStart int
		wantStop  int
	}{
		{"steady", 3, 3, 0, 0},
		{"scale-up-one", 2, 3, 1, 0},
		{"scale-up-burst", 1, 4, 3, 0},
		{"scale-down-one", 3, 2, 0, 1},
		{"scale-down-floor", 4, 1, 0, 3},
		{"down-to-zero-keeps-nothing-starting", 2, 0, 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := mkState("g", tc.current, "app/X")
			oracle := func(group string, current int, load float64, _ time.Time) int {
				if group != "g" {
					t.Fatalf("oracle asked about group %q", group)
				}
				if current != tc.current {
					t.Fatalf("oracle got current=%d, want %d", current, tc.current)
				}
				return tc.want
			}
			des := ReconcileScale(obs, oracle, now, 5*time.Second)
			acts := Diff(obs, des)
			gotStart := 0
			for _, a := range acts.Start {
				gotStart += a.N
			}
			if gotStart != tc.wantStart {
				t.Errorf("starts = %d, want %d", gotStart, tc.wantStart)
			}
			if len(acts.Stop) != tc.wantStop {
				t.Errorf("stops = %d, want %d", len(acts.Stop), tc.wantStop)
			}
			if got := countStopping(des, "g"); got != tc.wantStop {
				t.Errorf("stopping marks = %d, want %d", got, tc.wantStop)
			}
			if (tc.wantStart > 0 || tc.wantStop > 0) && len(acts.Push) == 0 && tc.wantStop > 0 {
				t.Error("scale-down produced no routing push")
			}
			// Observed snapshot must be untouched (copy-on-write contract).
			if countStopping(obs, "g") != 0 || obs.Groups["g"].Starting != 0 {
				t.Error("reconciler mutated the observed state")
			}
		})
	}
}

func TestReconcileScaleStopsNewestFirst(t *testing.T) {
	obs := mkState("g", 3, "app/X")
	des := ReconcileScale(obs, func(string, int, float64, time.Time) int { return 2 },
		time.Unix(1000, 0), 5*time.Second)
	if !des.Groups["g"].Replicas["g/2"].Stopping {
		t.Error("newest replica g/2 not chosen for stop")
	}
	if des.Groups["g"].Replicas["g/0"].Stopping {
		t.Error("oldest replica g/0 chosen for stop")
	}
}

func TestReconcileScaleMarksStaleUnhealthy(t *testing.T) {
	obs := mkState("g", 2, "app/X")
	obs.Groups["g"].Replicas["g/0"].LastReport = time.Unix(100, 0) // long ago
	now := time.Unix(1000, 0)
	des := ReconcileScale(obs, func(_ string, current int, _ float64, _ time.Time) int { return current },
		now, 5*time.Second)
	if des.Groups["g"].Replicas["g/0"].Healthy {
		t.Error("stale replica still healthy")
	}
	if !des.Groups["g"].Replicas["g/1"].Healthy {
		t.Error("fresh replica marked unhealthy")
	}
	// A health flip must re-broadcast routing.
	acts := Diff(obs, des)
	if len(acts.Push) != 1 || acts.Push[0] != "g" {
		t.Errorf("push = %v, want [g]", acts.Push)
	}
}

func TestReconcileScaleSkipsMainAndEmptyGroups(t *testing.T) {
	obs := mkState("main", 1)
	if _, err := obs.AddGroup("empty", []string{"app/E"}, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	des := ReconcileScale(obs, func(string, int, float64, time.Time) int { return 5 },
		time.Unix(1000, 0), 5*time.Second)
	if !Diff(obs, des).Empty() {
		t.Error("reconciler acted on main or an empty group")
	}
}

// TestReconcileRestartPolicy is the crash-restart decision table.
func TestReconcileRestartPolicy(t *testing.T) {
	cases := []struct {
		name        string
		deliberate  bool
		restarts    int
		maxRestarts int
		comps       []string
		want        bool
	}{
		{"crash-restarts", false, 0, 8, []string{"app/X"}, true},
		{"deliberate-exit-does-not", true, 0, 8, []string{"app/X"}, false},
		{"budget-exhausted", false, 8, 8, []string{"app/X"}, false},
		{"last-budget-slot", false, 7, 8, []string{"app/X"}, true},
		{"empty-group-not-worth-it", false, 0, 8, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := mkState("g", 1, tc.comps...)
			obs.Groups["g"].Restarts = tc.restarts
			des := ReconcileRestart(obs, "g", tc.deliberate, tc.maxRestarts)
			if got := des != nil; got != tc.want {
				t.Fatalf("restart = %v, want %v", got, tc.want)
			}
			if des == nil {
				return
			}
			if des.Groups["g"].Starting != 1 {
				t.Errorf("starting = %d, want 1", des.Groups["g"].Starting)
			}
			if des.Groups["g"].Restarts != tc.restarts+1 {
				t.Errorf("restarts = %d, want %d", des.Groups["g"].Restarts, tc.restarts+1)
			}
			acts := Diff(obs, des)
			if len(acts.Start) != 1 || acts.Start[0].N != 1 {
				t.Errorf("diff starts = %+v, want one single-replica start", acts.Start)
			}
		})
	}
	if ReconcileRestart(mkState("g", 1, "app/X"), "nope", false, 8) != nil {
		t.Error("unknown group restarted")
	}
}

func TestReconcileResize(t *testing.T) {
	obs := mkState("g", 3, "app/X")
	des, err := ReconcileResize(obs, "g", 5)
	if err != nil {
		t.Fatal(err)
	}
	if des.Groups["g"].Starting != 2 {
		t.Errorf("starting = %d, want 2", des.Groups["g"].Starting)
	}
	des, err = ReconcileResize(obs, "g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := countStopping(des, "g"); got != 2 {
		t.Errorf("stopping = %d, want 2", got)
	}
	if des.Groups["g"].Replicas["g/0"].Stopping {
		t.Error("oldest replica stopped first")
	}
	if _, err := ReconcileResize(obs, "g", -1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := ReconcileResize(obs, "nope", 1); err == nil {
		t.Error("unknown group accepted")
	}
	// Already-stopping replicas count toward neither live nor re-stop.
	obs.Groups["g"].Replicas["g/2"].Stopping = true
	des, err = ReconcileResize(obs, "g", 2)
	if err != nil {
		t.Fatal(err)
	}
	if acts := Diff(obs, des); len(acts.Stop) != 0 || len(acts.Start) != 0 {
		t.Errorf("resize to current live size produced work: %+v", acts)
	}
}

// TestReconcilePlacementDiffApplication: the placement reconciler turns an
// observed grouping plus a lopsided call graph into concrete moves, and
// applying them via Relocate yields a state whose grouping matches what
// placement.Diff asked for.
func TestReconcilePlacementDiffApplication(t *testing.T) {
	// A and B are chatty; B lives alone. The planner should colocate them.
	g := &callgraph.Graph{Edges: []callgraph.Edge{
		{Caller: "app/A", Callee: "app/B", Calls: 10000, Remote: 10000},
		{Caller: "", Callee: "app/A", Calls: 1},
	}}
	obs := NewState()
	routed := map[string]bool{}
	if _, err := obs.AddGroup("ga", []string{"app/A"}, routed); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.AddGroup("gb", []string{"app/B"}, routed); err != nil {
		t.Fatal(err)
	}
	moves := ReconcilePlacement(obs, g, placement.Config{MaxGroupSize: 4}, 0.05, 100)
	if len(moves) == 0 {
		t.Fatal("no moves recommended for a chatty remote pair")
	}
	work := obs.Clone()
	for _, mv := range moves {
		if work.Groups[mv.To] == nil {
			if _, err := work.AddGroup(mv.To, nil, routed); err != nil {
				t.Fatal(err)
			}
		}
		if err := work.Relocate(mv.Component, mv.To); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckInvariants(work); err != nil {
		t.Fatalf("post-move invariants: %v", err)
	}
	if work.CompGroup["app/A"] != work.CompGroup["app/B"] {
		t.Errorf("A in %q, B in %q after applying moves; want colocated",
			work.CompGroup["app/A"], work.CompGroup["app/B"])
	}

	// Below the call threshold the reconciler must stay quiet.
	thin := &callgraph.Graph{Edges: []callgraph.Edge{
		{Caller: "app/A", Callee: "app/B", Calls: 10, Remote: 10},
	}}
	if mv := ReconcilePlacement(obs, thin, placement.Config{MaxGroupSize: 4}, 0.05, 100); mv != nil {
		t.Errorf("moves on a thin graph: %v", mv)
	}
}

func TestStoreCopyOnWriteAndWatch(t *testing.T) {
	st := NewStore(mkState("g", 1, "app/X"))
	before := st.Snapshot()
	ch, cancel := st.Watch()
	defer cancel()
	<-ch // initial version

	after := st.Update(func(s *State) {
		s.Groups["g"].Replicas["g/0"].Healthy = false
		s.NextEpoch()
	})
	if before.Groups["g"].Replicas["g/0"].Healthy == false {
		t.Error("update mutated the prior snapshot")
	}
	if after.Version != before.Version+1 {
		t.Errorf("version = %d, want %d", after.Version, before.Version+1)
	}
	if after.RouteEpoch != before.RouteEpoch+1 {
		t.Errorf("epoch = %d, want %d", after.RouteEpoch, before.RouteEpoch+1)
	}
	select {
	case got := <-ch:
		if got.Version != after.Version {
			t.Errorf("watch delivered version %d, want %d", got.Version, after.Version)
		}
	case <-time.After(time.Second):
		t.Fatal("watch never delivered the update")
	}
	// Latest-wins under a slow consumer: two quick updates, newest sticks.
	st.Update(func(s *State) {})
	last := st.Update(func(s *State) {})
	if got := <-ch; got.Version != last.Version {
		t.Errorf("slow watch got version %d, want latest %d", got.Version, last.Version)
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	s := mkState("g", 1, "app/X")
	if err := CheckInvariants(s); err != nil {
		t.Fatalf("clean state rejected: %v", err)
	}
	orphan := s.Clone()
	orphan.CompGroup["app/X"] = "elsewhere"
	if err := CheckInvariants(orphan); err == nil {
		t.Error("orphaned hosting accepted")
	}
	stale := s.Clone()
	stale.LastPush["app/X"] = Push{Version: 99}
	if err := CheckInvariants(stale); err == nil || !strings.Contains(err.Error(), "RouteEpoch") {
		t.Errorf("push beyond epoch accepted: %v", err)
	}
	double := s.Clone()
	double.Groups["g2"] = &Group{Name: "g2", Components: []string{"app/X"},
		Routed: map[string]bool{}, Replicas: map[string]*Replica{}}
	if err := CheckInvariants(double); err == nil {
		t.Error("doubly-hosted component accepted")
	}
}

func TestRelocate(t *testing.T) {
	s := NewState()
	routed := map[string]bool{"app/R": true}
	if _, err := s.AddGroup("src", []string{"app/R", "app/S"}, routed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGroup("dst", nil, routed); err != nil {
		t.Fatal(err)
	}
	if err := s.Relocate("app/R", "dst"); err != nil {
		t.Fatal(err)
	}
	if s.CompGroup["app/R"] != "dst" || !s.Groups["dst"].Routed["app/R"] {
		t.Error("routed flag or hosting lost in relocation")
	}
	if len(s.Groups["src"].Components) != 1 || s.Groups["src"].Components[0] != "app/S" {
		t.Errorf("src components = %v", s.Groups["src"].Components)
	}
	if err := CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}
