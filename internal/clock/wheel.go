package clock

import (
	"sync"
	"time"
)

// An Expirer receives a Wheel's expiry callback. The wheel takes an
// interface rather than a func value so callers embedding a WheelEntry can
// schedule a deadline without allocating a closure per request.
type Expirer interface{ Expire() }

// A Wheel is a hashed timing wheel: a fixed ring of slots, each holding an
// intrusive doubly-linked list of scheduled entries, advanced by a single
// ticking goroutine. Scheduling and stopping an entry are O(1), and one
// tick touches only the entries hashed into the slot indexes that came due
// — so a server tracking one deadline per in-flight request pays one
// runtime timer per tick for the whole process instead of one per request.
//
// Expiry is quantized to the tick: an entry fires within one tick of its
// deadline, never before it. That is the right trade for request
// deadlines, which are best-effort bounds rather than precise alarms.
//
// The runner goroutine exists only while entries are scheduled: the first
// Schedule on an idle wheel starts it, and it exits when the wheel drains.
// A Wheel draws its timers from an injected Clock, so deterministic tests
// drive expiry with a Fake clock's Advance.
type Wheel struct {
	clk  Clock
	tick time.Duration

	mu       sync.Mutex
	slots    []wheelEntry // ring of sentinel list heads
	count    int          // scheduled entries
	running  bool
	prevTick uint64 // last tick index the runner swept
}

// A WheelEntry is one scheduled callback. Entries are embeddable and
// reusable: after the entry has fired or been stopped, Schedule may link
// it again, so a pool of entries serves an unbounded stream of deadlines.
type WheelEntry struct{ e wheelEntry }

type wheelEntry struct {
	deadline time.Time
	x        Expirer
	// Intrusive list links; nil next means unlinked. Slot sentinels link
	// to themselves when empty.
	next, prev *wheelEntry
}

// NewWheel returns a wheel with the given tick resolution and slot count
// (rounded up to a power of two, minimum 8). clk may be nil for the wall
// clock.
func NewWheel(clk Clock, tick time.Duration, slots int) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	n := 8
	for n < slots {
		n <<= 1
	}
	w := &Wheel{clk: Or(clk), tick: tick, slots: make([]wheelEntry, n)}
	for i := range w.slots {
		s := &w.slots[i]
		s.next, s.prev = s, s
	}
	return w
}

// Tick returns the wheel's expiry resolution.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len reports how many entries are scheduled, for tests and introspection.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Schedule links e to call x.Expire once deadline has passed (within one
// tick). A deadline already in the past fires on the next tick, not
// inline, so callers may hold locks across Schedule. e must not currently
// be scheduled; entries are single-shot but reusable after they fire or
// are stopped.
func (w *Wheel) Schedule(e *WheelEntry, deadline time.Time, x Expirer) {
	en := &e.e
	en.deadline = deadline
	en.x = x
	w.mu.Lock()
	if en.next != nil {
		w.mu.Unlock()
		panic("clock: WheelEntry scheduled twice")
	}
	start := !w.running
	if start {
		w.running = true
		w.prevTick = w.tickOf(w.clk.Now())
	}
	// Never link into a slot index the runner has already swept this
	// revolution: a deadline at or before the sweep line waits a full
	// revolution before its slot comes around again. Clamping to the next
	// unswept tick keeps "fires within one tick" true for tight and
	// already-past deadlines alike.
	t := w.tickOf(deadline)
	if t <= w.prevTick {
		t = w.prevTick + 1
	}
	slot := &w.slots[int(t)&(len(w.slots)-1)]
	en.prev = slot.prev
	en.next = slot
	slot.prev.next = en
	slot.prev = en
	w.count++
	w.mu.Unlock()
	if start {
		go w.run()
	}
}

// Stop unlinks e, reporting whether it prevented the callback from firing.
// Stopping an entry that already fired (or was never scheduled) returns
// false. Stop never blocks on a firing callback.
func (w *Wheel) Stop(e *WheelEntry) bool {
	en := &e.e
	w.mu.Lock()
	defer w.mu.Unlock()
	if en.next == nil {
		return false
	}
	en.prev.next = en.next
	en.next.prev = en.prev
	en.next, en.prev = nil, nil
	en.x = nil
	w.count--
	return true
}

func (w *Wheel) tickOf(t time.Time) uint64 {
	ns := t.UnixNano()
	if ns < 0 {
		// Pre-epoch deadlines would wrap the uint64 conversion into a huge
		// tick index; treat them as tick 0 so Schedule's clamp fires them on
		// the next tick.
		return 0
	}
	return uint64(ns) / uint64(w.tick)
}

// run is the single ticking goroutine: each tick it visits the slot
// indexes that came due since the previous sweep and fires every entry
// whose deadline has passed. It exits once the wheel is empty; the next
// Schedule restarts it.
func (w *Wheel) run() {
	for {
		<-w.clk.After(w.tick)
		now := w.clk.Now()
		var due []Expirer
		w.mu.Lock()
		from, to := w.prevTick, w.tickOf(now)
		if to > from {
			// Visit each slot index that elapsed in (from, to]; when the
			// advance spans a full revolution, every slot is visited once.
			if to-from > uint64(len(w.slots)) {
				from = to - uint64(len(w.slots))
			}
			for i := from + 1; i <= to; i++ {
				slot := &w.slots[int(i)&(len(w.slots)-1)]
				for en := slot.next; en != slot; {
					next := en.next
					if !en.deadline.After(now) {
						en.prev.next = en.next
						en.next.prev = en.prev
						en.next, en.prev = nil, nil
						w.count--
						due = append(due, en.x)
						en.x = nil
					}
					en = next
				}
			}
			w.prevTick = to
		}
		empty := w.count == 0
		if empty {
			w.running = false
		}
		w.mu.Unlock()
		for _, x := range due {
			x.Expire()
		}
		if empty {
			return
		}
	}
}
