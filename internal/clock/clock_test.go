package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestFakeAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewFakeAt(time.Unix(1000, 0))
	first := c.After(10 * time.Millisecond)
	second := c.After(20 * time.Millisecond)

	select {
	case <-first:
		t.Fatal("timer fired before Advance")
	default:
	}

	c.Advance(15 * time.Millisecond)
	select {
	case <-first:
	case <-time.After(time.Second):
		t.Fatal("first timer did not fire")
	}
	select {
	case <-second:
		t.Fatal("second timer fired early")
	default:
	}

	c.Advance(15 * time.Millisecond)
	select {
	case <-second:
	case <-time.After(time.Second):
		t.Fatal("second timer did not fire")
	}
	if got, want := c.Now(), time.Unix(1000, 0).Add(30*time.Millisecond); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestFakeTimerStop(t *testing.T) {
	c := NewFake()
	timer := c.NewTimer(10 * time.Millisecond)
	if !timer.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	c.Advance(time.Hour)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if n := c.Waiting(); n != 0 {
		t.Fatalf("Waiting = %d after Stop, want 0", n)
	}
}

func TestFakeAfterFunc(t *testing.T) {
	c := NewFake()
	var fired atomic.Int32
	c.AfterFunc(5*time.Millisecond, func() { fired.Add(1) })
	late := c.AfterFunc(10*time.Millisecond, func() { fired.Add(100) })

	c.Advance(5 * time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for fired.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("fired = %d after first Advance, want 1", got)
	}

	late.Stop()
	c.Advance(time.Hour)
	time.Sleep(10 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Fatalf("stopped AfterFunc ran: fired = %d", got)
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	c := NewFake()
	done := make(chan struct{})
	go func() {
		c.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait until the sleeper has registered, then release it.
	deadline := time.Now().Add(time.Second)
	for c.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake on Advance")
	}
}

func TestOrDefaultsToRealClock(t *testing.T) {
	if Or(nil) != Default {
		t.Fatal("Or(nil) is not the real clock")
	}
	f := NewFake()
	if Or(f) != f {
		t.Fatal("Or did not pass through the given clock")
	}
	// The real clock's timers must actually fire.
	select {
	case <-Default.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real clock After never fired")
	}
}
