// Package clock abstracts time for the runtime's scheduling decisions so
// tests can inject a controlled clock instead of sleeping. The data plane
// (rpc server delay injection), the resilience layer (replica-wait polling,
// hedge timers), and the chaos/sim harnesses all draw their timers from a
// Clock; production code uses Real, deterministic tests use Fake.
//
// Only *scheduling* time goes through a Clock. Measurements that feed
// telemetry (latency histograms, breaker windows) intentionally stay on
// real time: they describe what actually happened, not what should happen
// next.
package clock

import (
	"sort"
	"sync"
	"time"
)

// A Timer is a started one-shot timer. C fires at most once; Stop reports
// whether it prevented the firing.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// A Clock tells time and makes timers.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After returns a channel that receives the current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a running one-shot timer.
	NewTimer(d time.Duration) Timer
	// AfterFunc runs f on its own goroutine once d has elapsed.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real is the wall clock.
type Real struct{}

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// Default is the process-wide wall clock. Code that takes an optional
// Clock falls back to it when handed nil.
var Default Clock = Real{}

// Or returns c, or Default when c is nil — the one-liner every Options
// struct with an optional Clock field uses.
func Or(c Clock) Clock {
	if c == nil {
		return Default
	}
	return c
}

// Fake is a manually advanced clock. Time only moves when Advance is
// called; timers and sleepers due at or before the new time fire, in
// deadline order. The zero value starts at the zero time; NewFakeAt picks
// the origin.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	clk      *Fake
	deadline time.Time
	ch       chan time.Time
	fn       func()
	fired    bool
	stopped  bool
}

// NewFake returns a Fake clock starting at the Unix epoch.
func NewFake() *Fake { return NewFakeAt(time.Unix(0, 0)) }

// NewFakeAt returns a Fake clock whose current time is origin.
func NewFakeAt(origin time.Time) *Fake { return &Fake{now: origin} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d and fires everything that came due,
// in deadline order. Functions registered with AfterFunc run on their own
// goroutines, matching time.AfterFunc.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var due []*fakeWaiter
	rest := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	f.waiters = rest
	sort.SliceStable(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		w.fired = true
	}
	f.mu.Unlock()

	for _, w := range due {
		if w.fn != nil {
			go w.fn()
			continue
		}
		// Timer channels are buffered (cap 1) so delivery cannot block.
		w.ch <- now
	}
}

func (f *Fake) addWaiter(d time.Duration, fn func()) *fakeWaiter {
	w := &fakeWaiter{clk: f, fn: fn, ch: make(chan time.Time, 1)}
	f.mu.Lock()
	w.deadline = f.now.Add(d)
	if d <= 0 {
		w.fired = true
		now := f.now
		f.mu.Unlock()
		if fn != nil {
			go fn()
		} else {
			w.ch <- now
		}
		return w
	}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	return w
}

// Sleep implements Clock: it blocks until Advance moves time past d.
func (f *Fake) Sleep(d time.Duration) { <-f.addWaiter(d, nil).ch }

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.addWaiter(d, nil).ch }

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer { return f.addWaiter(d, nil) }

// AfterFunc implements Clock.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer { return f.addWaiter(d, fn) }

// Waiting reports how many timers and sleepers are pending, so tests can
// synchronize before advancing.
func (f *Fake) Waiting() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

func (w *fakeWaiter) C() <-chan time.Time { return w.ch }

// Stop implements Timer.
func (w *fakeWaiter) Stop() bool {
	w.clk.mu.Lock()
	defer w.clk.mu.Unlock()
	if w.fired || w.stopped {
		return false
	}
	w.stopped = true
	for i, x := range w.clk.waiters {
		if x == w {
			w.clk.waiters = append(w.clk.waiters[:i], w.clk.waiters[i+1:]...)
			break
		}
	}
	return true
}
