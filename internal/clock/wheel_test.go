package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

// recorder counts Expire callbacks.
type recorder struct{ fired atomic.Int32 }

func (r *recorder) Expire() { r.fired.Add(1) }

// eventually polls cond until it holds or the test deadline budget runs
// out. The wheel's runner goroutine does its sweep asynchronously after a
// Fake Advance unblocks it, so tests synchronize on observable effects.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitRunnerWaiting blocks until the wheel's runner goroutine is parked on
// the fake clock, so the next Advance deterministically wakes it.
func waitRunnerWaiting(t *testing.T, f *Fake) {
	t.Helper()
	eventually(t, "wheel runner to park on the clock", func() bool { return f.Waiting() >= 1 })
}

func TestWheelFiresWithinOneTick(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	var r recorder
	var e WheelEntry
	w.Schedule(&e, f.Now().Add(5*time.Millisecond), &r)
	if got := w.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	waitRunnerWaiting(t, f)
	// Ticks 1..4: before the deadline, nothing may fire.
	for i := 0; i < 4; i++ {
		f.Advance(time.Millisecond)
		waitRunnerWaiting(t, f)
		if n := r.fired.Load(); n != 0 {
			t.Fatalf("fired %d ticks early", 5-1-i)
		}
	}
	// Tick 5 reaches the deadline.
	f.Advance(time.Millisecond)
	eventually(t, "entry to fire at its deadline", func() bool { return r.fired.Load() == 1 })
	if got := w.Len(); got != 0 {
		t.Fatalf("Len after fire = %d, want 0", got)
	}
}

func TestWheelStop(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	var r recorder
	var e WheelEntry
	w.Schedule(&e, f.Now().Add(3*time.Millisecond), &r)
	waitRunnerWaiting(t, f)
	if !w.Stop(&e) {
		t.Fatal("Stop of a scheduled entry returned false")
	}
	if w.Stop(&e) {
		t.Fatal("second Stop returned true")
	}
	for i := 0; i < 6; i++ {
		f.Advance(time.Millisecond)
		// The wheel drained, so the runner exits after its first wake; stop
		// advancing once no one is listening.
		if f.Waiting() == 0 {
			break
		}
	}
	if n := r.fired.Load(); n != 0 {
		t.Fatalf("stopped entry fired %d times", n)
	}
	eventually(t, "runner to exit once the wheel drains", func() bool { return f.Waiting() == 0 })
}

func TestWheelEntryReuse(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	var r recorder
	var e WheelEntry
	for round := int32(1); round <= 3; round++ {
		w.Schedule(&e, f.Now().Add(2*time.Millisecond), &r)
		waitRunnerWaiting(t, f)
		f.Advance(2 * time.Millisecond)
		eventually(t, "reused entry to fire", func() bool { return r.fired.Load() == round })
		// Let the runner observe the drained wheel and exit so the next
		// round restarts it from a clean state.
		if f.Waiting() > 0 {
			f.Advance(time.Millisecond)
		}
		eventually(t, "runner to exit between rounds", func() bool { return f.Waiting() == 0 })
	}
}

// A deadline already in the past must fire on the next tick — not wait a
// full revolution for its natural slot index to come around again.
func TestWheelPastDeadlineFiresNextTick(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	var r recorder
	var e WheelEntry
	w.Schedule(&e, f.Now().Add(-10*time.Millisecond), &r)
	waitRunnerWaiting(t, f)
	f.Advance(time.Millisecond)
	eventually(t, "past-deadline entry to fire on the next tick", func() bool { return r.fired.Load() == 1 })
}

// Scheduling a deadline at a tick index the runner has already swept this
// revolution must clamp to the next unswept tick. Without the clamp the
// entry's natural slot is not visited again until the ring wraps (slots ×
// tick later).
func TestWheelTightDeadlineAfterSweep(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)

	// A far-out entry keeps the runner alive while time advances past the
	// victim's natural slot.
	var keeper recorder
	var ke WheelEntry
	w.Schedule(&ke, f.Now().Add(100*time.Millisecond), &keeper)
	waitRunnerWaiting(t, f)
	f.Advance(10 * time.Millisecond) // sweep line now at tick 10
	waitRunnerWaiting(t, f)

	// Tick 3 was swept seven ticks ago; its slot index (3) won't be visited
	// again until tick 11 — which is exactly the next tick, thanks to the
	// clamp. A correct wheel fires this entry one tick from now; a wheel
	// without the clamp would also pass here by accident (3 mod 8 = 3,
	// 11 mod 8 = 3), so pick tick 5 instead: 5 mod 8 = 5 is next visited at
	// tick 13, two ticks late.
	var r recorder
	var e WheelEntry
	w.Schedule(&e, time.Unix(0, int64(5*time.Millisecond)), &r)
	f.Advance(time.Millisecond)
	eventually(t, "already-swept deadline to fire on the next tick", func() bool { return r.fired.Load() == 1 })
	if keeper.fired.Load() != 0 {
		t.Fatal("keeper fired early")
	}
}

// Entries spread across several revolutions of a small ring must each fire
// within one tick of their deadline, including slot-index collisions.
func TestWheelManyEntriesAcrossRevolutions(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	const n = 40
	recs := make([]recorder, n)
	entries := make([]WheelEntry, n)
	for i := 0; i < n; i++ {
		// Deadlines 1..40ms: five revolutions of the 8-slot ring.
		w.Schedule(&entries[i], f.Now().Add(time.Duration(i+1)*time.Millisecond), &recs[i])
	}
	waitRunnerWaiting(t, f)
	for tick := 1; tick <= n; tick++ {
		f.Advance(time.Millisecond)
		i := tick - 1
		eventually(t, "due entry to fire", func() bool { return recs[i].fired.Load() == 1 })
		for j := tick; j < n; j++ {
			if recs[j].fired.Load() != 0 {
				t.Fatalf("entry %d fired %d ticks early", j, j+1-tick)
			}
		}
		if tick < n {
			waitRunnerWaiting(t, f)
		}
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len after all fired = %d, want 0", got)
	}
}

func TestWheelDoubleSchedulePanics(t *testing.T) {
	f := NewFake()
	w := NewWheel(f, time.Millisecond, 8)
	var r recorder
	var e WheelEntry
	w.Schedule(&e, f.Now().Add(50*time.Millisecond), &r)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling a linked entry did not panic")
		}
		w.Stop(&e)
	}()
	w.Schedule(&e, f.Now().Add(60*time.Millisecond), &r)
}
