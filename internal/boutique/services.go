package boutique

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strings"
	"sync"

	"repro/weaver"
)

// --- Recommendation service ---

// Recommendation suggests products related to the ones a user is viewing.
type Recommendation interface {
	ListRecommendations(ctx context.Context, userID string, productIDs []string) ([]string, error)
}

type recommendation struct {
	weaver.Implements[Recommendation]
	catalog weaver.Ref[ProductCatalog]
}

// ListRecommendations returns up to five catalog products the user is not
// already looking at, like the original recommendation service.
func (r *recommendation) ListRecommendations(ctx context.Context, userID string, productIDs []string) ([]string, error) {
	products, err := r.catalog.Get().ListProducts(ctx)
	if err != nil {
		return nil, fmt.Errorf("recommendation: listing products: %w", err)
	}
	exclude := map[string]bool{}
	for _, id := range productIDs {
		exclude[id] = true
	}
	var out []string
	for _, p := range products {
		if !exclude[p.ID] {
			out = append(out, p.ID)
		}
	}
	// Deterministic pseudo-shuffle seeded by the inputs, so results vary
	// by user without consuming global randomness (and tests can assert).
	h := fnv.New64a()
	_, _ = h.Write([]byte(userID))
	for _, id := range productIDs {
		_, _ = h.Write([]byte(id))
	}
	rng := rand.New(rand.NewPCG(h.Sum64(), 0))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > 5 {
		out = out[:5]
	}
	return out, nil
}

// --- Shipping service ---

// Shipping quotes and ships orders.
type Shipping interface {
	GetQuote(ctx context.Context, addr Address, items []CartItem) (Money, error)
	// ShipOrder dispatches a shipment. It must execute at most once.
	//
	//weaver:noretry
	ShipOrder(ctx context.Context, addr Address, items []CartItem) (string, error)
}

type shipping struct {
	weaver.Implements[Shipping]
	mu      sync.Mutex
	shipped int64
}

// GetQuote computes a flat-rate quote: $8.99 when there is anything to
// ship, matching the original shipping service.
func (s *shipping) GetQuote(_ context.Context, _ Address, items []CartItem) (Money, error) {
	var count int64
	for _, it := range items {
		count += int64(it.Quantity)
	}
	if count == 0 {
		return Money{CurrencyCode: "USD"}, nil
	}
	return Money{CurrencyCode: "USD", Units: 8, Nanos: 990000000}, nil
}

// ShipOrder "ships" the order and returns a tracking id.
func (s *shipping) ShipOrder(_ context.Context, addr Address, items []CartItem) (string, error) {
	if len(items) == 0 {
		return "", fmt.Errorf("shipping: nothing to ship")
	}
	s.mu.Lock()
	s.shipped++
	n := s.shipped
	s.mu.Unlock()
	seed := fnv.New64a()
	fmt.Fprintf(seed, "%s/%s/%d", addr.StreetAddress, addr.City, n)
	return fmt.Sprintf("TRK-%012X", seed.Sum64()&0xffffffffffff), nil
}

// --- Payment service ---

// Payment charges credit cards.
type Payment interface {
	// Charge debits the card. It is not idempotent: the runtime must never
	// retry it automatically on transport failures.
	//
	//weaver:noretry
	Charge(ctx context.Context, amount Money, card CreditCard) (string, error)
}

type payment struct {
	weaver.Implements[Payment]
	mu  sync.Mutex
	seq int64
}

// Charge validates the card (Luhn checksum, expiry, supported network) and
// returns a transaction id. Only VISA (4...) and MasterCard (5...) are
// accepted, like the original payment service.
func (p *payment) Charge(_ context.Context, amount Money, card CreditCard) (string, error) {
	if !amount.Valid() {
		return "", fmt.Errorf("payment: invalid amount %+v", amount)
	}
	digits := strings.ReplaceAll(strings.ReplaceAll(card.Number, " ", ""), "-", "")
	if len(digits) < 13 || len(digits) > 19 || !luhnValid(digits) {
		return "", fmt.Errorf("payment: invalid credit card number")
	}
	switch digits[0] {
	case '4', '5':
	default:
		return "", fmt.Errorf("payment: only VISA and MasterCard are accepted")
	}
	if card.ExpirationYear < 2000 || card.ExpirationMonth < 1 || card.ExpirationMonth > 12 {
		return "", fmt.Errorf("payment: malformed expiration date")
	}
	// The original treats any past date as expired; we pin "now" to the
	// card-processing epoch of the demo dataset.
	if card.ExpirationYear < 2024 {
		return "", fmt.Errorf("payment: card expired %d/%d", card.ExpirationMonth, card.ExpirationYear)
	}
	p.mu.Lock()
	p.seq++
	n := p.seq
	p.mu.Unlock()
	return fmt.Sprintf("TXN-%08d", n), nil
}

// luhnValid reports whether digits passes the Luhn checksum.
func luhnValid(digits string) bool {
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		c := digits[i]
		if c < '0' || c > '9' {
			return false
		}
		d := int(c - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

// --- Email service ---

// Email sends transactional mail. The demo implementation records the mail
// instead of delivering it.
type Email interface {
	SendOrderConfirmation(ctx context.Context, email string, order Order) error
}

type emailService struct {
	weaver.Implements[Email]
	mu   sync.Mutex
	sent int64
}

// SendOrderConfirmation "sends" the confirmation email.
func (e *emailService) SendOrderConfirmation(_ context.Context, email string, order Order) error {
	if !strings.Contains(email, "@") {
		return fmt.Errorf("email: invalid address %q", email)
	}
	e.mu.Lock()
	e.sent++
	e.mu.Unlock()
	e.Logger().Debug("order confirmation sent", "to", email, "order", order.OrderID)
	return nil
}

// --- Ad service ---

// AdService serves contextual advertisements.
type AdService interface {
	// GetAds is best-effort decoration: the first traffic to shed when a
	// replica saturates.
	//
	//weaver:priority=low
	GetAds(ctx context.Context, contextKeys []string) ([]Ad, error)
}

type adService struct {
	weaver.Implements[AdService]
}

// GetAds returns ads matching the context keys, or random ads when nothing
// matches, like the original ad service.
func (a *adService) GetAds(_ context.Context, contextKeys []string) ([]Ad, error) {
	var out []Ad
	for _, key := range contextKeys {
		out = append(out, adsData[key]...)
	}
	if len(out) == 0 {
		// Random ads: pick two deterministically-pseudo-randomly.
		var all []Ad
		keys := make([]string, 0, len(adsData))
		for k := range adsData {
			keys = append(keys, k)
		}
		// Map iteration order is random enough for ad selection, but sort
		// for determinism and pick via rand.
		sortStrings(keys)
		for _, k := range keys {
			all = append(all, adsData[k]...)
		}
		for i := 0; i < 2 && len(all) > 0; i++ {
			out = append(out, all[rand.IntN(len(all))])
		}
	}
	return out, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
