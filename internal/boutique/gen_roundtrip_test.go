package boutique

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/codec"
)

// These tests pin the contract between weavergen's generated marshalers and
// the reflection codec: every generated args/results struct must round-trip
// byte-exactly through EncodePtr/Unmarshal, including compound fields that
// take the reflection fallback path.

func TestGeneratedArgsImplementMarshaler(t *testing.T) {
	// Compile-time-ish check that generated structs actually wire into the
	// codec's fast path.
	var _ codec.Marshaler = frontend_Checkout_Args{}
	var _ codec.Unmarshaler = (*frontend_Checkout_Args)(nil)
	var _ codec.Marshaler = checkout_PlaceOrder_Res{}
}

func roundTrip[T any](t *testing.T, in T) T {
	t.Helper()
	var e codec.Encoder
	codec.EncodePtr(&e, &in)
	var out T
	if err := codec.Unmarshal(e.Data(), &out); err != nil {
		t.Fatalf("unmarshal %T: %v", in, err)
	}
	return out
}

func TestCheckoutArgsRoundTrip(t *testing.T) {
	in := frontend_Checkout_Args{P0: PlaceOrderRequest{
		UserID:       "u1",
		UserCurrency: "EUR",
		Address:      Address{StreetAddress: "s", City: "c", State: "st", Country: "cc", ZipCode: 9},
		Email:        "a@b",
		CreditCard:   CreditCard{Number: "4111", CVV: 1, ExpirationYear: 2030, ExpirationMonth: 12},
	}}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("in=%+v out=%+v", in, out)
	}
}

func TestOrderResRoundTrip(t *testing.T) {
	in := checkout_PlaceOrder_Res{
		R0: Order{
			OrderID:            "ORD-1",
			ShippingTrackingID: "TRK-1",
			ShippingCost:       Money{CurrencyCode: "USD", Units: 8, Nanos: 99},
			Items: []OrderItem{
				{Item: CartItem{ProductID: "P", Quantity: 2}, Cost: Money{CurrencyCode: "USD", Units: 1}},
			},
			Total: Money{CurrencyCode: "USD", Units: 9},
		},
		Err:    "boom",
		HasErr: true,
	}
	out := roundTrip(t, in)
	if out.Err != "boom" || !out.HasErr || !reflect.DeepEqual(in.R0, out.R0) {
		t.Errorf("out=%+v", out)
	}
}

func TestQuickGeneratedStructsRoundTrip(t *testing.T) {
	f := func(user, currency, product string, qty int32) bool {
		a := roundTrip(t, frontend_AddToCart_Args{P0: user, P1: product, P2: qty})
		if a.P0 != user || a.P1 != product || a.P2 != qty {
			return false
		}
		h := roundTrip(t, frontend_Home_Args{P0: user, P1: currency})
		return h.P0 == user && h.P1 == currency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCartItemsRoundTrip(t *testing.T) {
	f := func(userID string, ids []string, qty []int32) bool {
		var items []CartItem
		for i := range ids {
			q := int32(1)
			if i < len(qty) {
				q = qty[i]
			}
			items = append(items, CartItem{ProductID: ids[i], Quantity: q})
		}
		in := cart_GetCart_Res{R0: items}
		out := roundTrip(t, in)
		if len(out.R0) != len(in.R0) {
			return false
		}
		for i := range in.R0 {
			if in.R0[i] != out.R0[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
