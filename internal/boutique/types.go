// Package boutique is a full Go port of the "Online Boutique" microservice
// demo used in the paper's evaluation (§6.1, reference [41]): an
// e-commerce application with eleven services — frontend, product catalog,
// currency, cart, recommendation, shipping, payment, email, checkout, ad,
// and a load generator. Each service is rewritten as a weaver component,
// exactly as the paper describes porting the app to the prototype. The
// same component code also runs over the HTTP/JSON baseline transport for
// the apples-to-apples comparison in Table 2.
package boutique

import (
	"fmt"
)

// Money represents an amount in a currency, as units plus nanos
// (1e-9 units), mirroring the original application's money type. Nanos
// always carries the same sign as Units.
type Money struct {
	CurrencyCode string
	Units        int64
	Nanos        int32
}

const nanosMod = 1000000000

// Valid reports whether the money value is well-formed: signs agree and
// nanos is within range.
func (m Money) Valid() bool {
	if m.Nanos <= -nanosMod || m.Nanos >= nanosMod {
		return false
	}
	sameSign := (m.Units == 0 || m.Nanos == 0) ||
		(m.Units > 0 && m.Nanos > 0) || (m.Units < 0 && m.Nanos < 0)
	return sameSign && m.CurrencyCode != ""
}

// IsZero reports whether the amount is zero.
func (m Money) IsZero() bool { return m.Units == 0 && m.Nanos == 0 }

// Add returns m+n. Both must be valid and share a currency.
func (m Money) Add(n Money) (Money, error) {
	if m.CurrencyCode != n.CurrencyCode {
		return Money{}, fmt.Errorf("boutique: mismatched currencies %q and %q", m.CurrencyCode, n.CurrencyCode)
	}
	units := m.Units + n.Units
	nanos := int64(m.Nanos) + int64(n.Nanos)
	// Carry.
	units += nanos / nanosMod
	nanos %= nanosMod
	// Normalize signs.
	if units > 0 && nanos < 0 {
		units--
		nanos += nanosMod
	} else if units < 0 && nanos > 0 {
		units++
		nanos -= nanosMod
	}
	return Money{CurrencyCode: m.CurrencyCode, Units: units, Nanos: int32(nanos)}, nil
}

// MultiplyInt returns m*k.
func (m Money) MultiplyInt(k int64) Money {
	totalNanos := int64(m.Nanos) * k
	units := m.Units*k + totalNanos/nanosMod
	nanos := totalNanos % nanosMod
	if units > 0 && nanos < 0 {
		units--
		nanos += nanosMod
	} else if units < 0 && nanos > 0 {
		units++
		nanos -= nanosMod
	}
	return Money{CurrencyCode: m.CurrencyCode, Units: units, Nanos: int32(nanos)}
}

// Float returns the amount as a float64 (for display only).
func (m Money) Float() float64 {
	return float64(m.Units) + float64(m.Nanos)/nanosMod
}

// String renders the amount like "19.99 USD".
func (m Money) String() string {
	return fmt.Sprintf("%.2f %s", m.Float(), m.CurrencyCode)
}

// Product is one catalog item.
type Product struct {
	ID          string
	Name        string
	Description string
	Picture     string
	Price       Money
	Categories  []string
}

// CartItem is a product and quantity in a user's cart.
type CartItem struct {
	ProductID string
	Quantity  int32
}

// Address is a shipping address.
type Address struct {
	StreetAddress string
	City          string
	State         string
	Country       string
	ZipCode       int32
}

// CreditCard is the payment instrument for checkout.
type CreditCard struct {
	Number          string
	CVV             int32
	ExpirationYear  int32
	ExpirationMonth int32
}

// OrderItem is one purchased item with its cost at purchase time.
type OrderItem struct {
	Item CartItem
	Cost Money
}

// Order is the result of a successful checkout.
type Order struct {
	OrderID            string
	ShippingTrackingID string
	ShippingCost       Money
	ShippingAddress    Address
	Items              []OrderItem
	Total              Money
}

// PlaceOrderRequest carries everything checkout needs.
type PlaceOrderRequest struct {
	UserID       string
	UserCurrency string
	Address      Address
	Email        string
	CreditCard   CreditCard
}

// Ad is one advertisement.
type Ad struct {
	RedirectURL string
	Text        string
}
