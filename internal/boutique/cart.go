package boutique

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/codec"
	"repro/internal/store"
	"repro/weaver"
)

// Cart is the shopping cart service. It is a routed component: all
// operations for one user are directed to the same replica (§5.2), so the
// per-replica in-memory state behaves like a sharded cache in front of the
// persistent store.
//
// Persistence is optional: when CART_STORE_DIR is set, carts are written
// through to a disk-backed log-structured store and survive replica
// restarts — the "external service" integration pattern of §8.2, with the
// store playing the database's role.
type Cart interface {
	AddItem(ctx context.Context, userID string, item CartItem) error
	GetCart(ctx context.Context, userID string) ([]CartItem, error)
	EmptyCart(ctx context.Context, userID string) error
}

type cartRouter struct{}

func (cartRouter) AddItem(userID string, item CartItem) string { return userID }
func (cartRouter) GetCart(userID string) string                { return userID }
func (cartRouter) EmptyCart(userID string) string              { return userID }

type cart struct {
	weaver.Implements[Cart]
	weaver.WithRouter[cartRouter]

	mu    sync.Mutex
	carts map[string][]CartItem
	db    *store.Store // nil when persistence is disabled
}

// Init prepares the cart state, loading persisted carts when CART_STORE_DIR
// is configured.
func (c *cart) Init(context.Context) error {
	c.carts = map[string][]CartItem{}
	dir := os.Getenv("CART_STORE_DIR")
	if dir == "" {
		return nil
	}
	db, err := store.Open(dir, store.Options{})
	if err != nil {
		return fmt.Errorf("cart: opening store: %w", err)
	}
	c.db = db
	err = db.Range("cart/", func(key string, val []byte) bool {
		var items []CartItem
		if codec.Unmarshal(val, &items) == nil {
			c.carts[key[len("cart/"):]] = items
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("cart: loading persisted carts: %w", err)
	}
	return nil
}

// Shutdown closes the persistent store, if any.
func (c *cart) Shutdown(context.Context) error {
	if c.db != nil {
		return c.db.Close()
	}
	return nil
}

// persistLocked writes a user's cart through to disk. Call with c.mu held.
func (c *cart) persistLocked(userID string) error {
	if c.db == nil {
		return nil
	}
	items, ok := c.carts[userID]
	if !ok || len(items) == 0 {
		return c.db.Delete("cart/" + userID)
	}
	return c.db.Put("cart/"+userID, codec.Marshal(items))
}

// AddItem adds (or merges) an item into a user's cart.
func (c *cart) AddItem(_ context.Context, userID string, item CartItem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	items := c.carts[userID]
	merged := false
	for i := range items {
		if items[i].ProductID == item.ProductID {
			items[i].Quantity += item.Quantity
			merged = true
			break
		}
	}
	if !merged {
		c.carts[userID] = append(items, item)
	}
	return c.persistLocked(userID)
}

// GetCart returns a user's cart items.
func (c *cart) GetCart(_ context.Context, userID string) ([]CartItem, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CartItem(nil), c.carts[userID]...), nil
}

// EmptyCart discards a user's cart.
func (c *cart) EmptyCart(_ context.Context, userID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.carts, userID)
	return c.persistLocked(userID)
}
