package boutique

// The product catalog, currency table, and ad inventory mirror the data
// shipped with the original Online Boutique demo.

var catalogData = []Product{
	{
		ID: "OLJCESPC7Z", Name: "Sunglasses",
		Description: "Add a modern touch to your outfits with these sleek aviator sunglasses.",
		Picture:     "/static/img/products/sunglasses.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 19, Nanos: 990000000},
		Categories:  []string{"accessories"},
	},
	{
		ID: "66VCHSJNUP", Name: "Tank Top",
		Description: "Perfectly cropped cotton tank, with a scooped neckline.",
		Picture:     "/static/img/products/tank-top.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 18, Nanos: 990000000},
		Categories:  []string{"clothing", "tops"},
	},
	{
		ID: "1YMWWN1N4O", Name: "Watch",
		Description: "This gold-tone stainless steel watch will work with most of your outfits.",
		Picture:     "/static/img/products/watch.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 109, Nanos: 990000000},
		Categories:  []string{"accessories"},
	},
	{
		ID: "L9ECAV7KIM", Name: "Loafers",
		Description: "A neat addition to your summer wardrobe.",
		Picture:     "/static/img/products/loafers.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 89, Nanos: 990000000},
		Categories:  []string{"footwear"},
	},
	{
		ID: "2ZYFJ3GM2N", Name: "Hairdryer",
		Description: "This lightweight hairdryer has 3 heat and speed settings.",
		Picture:     "/static/img/products/hairdryer.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 24, Nanos: 990000000},
		Categories:  []string{"hair", "beauty"},
	},
	{
		ID: "0PUK6V6EV0", Name: "Candle Holder",
		Description: "This small but intricate candle holder is an excellent gift.",
		Picture:     "/static/img/products/candle-holder.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 18, Nanos: 990000000},
		Categories:  []string{"decor", "home"},
	},
	{
		ID: "LS4PSXUNUM", Name: "Salt & Pepper Shakers",
		Description: "Add some flavor to your kitchen.",
		Picture:     "/static/img/products/salt-and-pepper-shakers.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 18, Nanos: 490000000},
		Categories:  []string{"kitchen"},
	},
	{
		ID: "9SIQT8TOJO", Name: "Bamboo Glass Jar",
		Description: "This bamboo glass jar can hold 57 oz (1.7 l) and is perfect for any kitchen.",
		Picture:     "/static/img/products/bamboo-glass-jar.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 5, Nanos: 490000000},
		Categories:  []string{"kitchen"},
	},
	{
		ID: "6E92ZMYYFZ", Name: "Mug",
		Description: "A simple mug with a mustard interior.",
		Picture:     "/static/img/products/mug.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 8, Nanos: 990000000},
		Categories:  []string{"kitchen"},
	},
	{
		ID: "A1B2C3D4E5", Name: "City Bike",
		Description: "This single gear bike is the perfect fit for city riding.",
		Picture:     "/static/img/products/city-bike.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 789, Nanos: 500000000},
		Categories:  []string{"cycling"},
	},
	{
		ID: "F6G7H8I9J0", Name: "Air Plant",
		Description: "Low-maintenance and hardy, this air plant thrives indoors.",
		Picture:     "/static/img/products/air-plant.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 12, Nanos: 300000000},
		Categories:  []string{"gardening"},
	},
	{
		ID: "K1L2M3N4O5", Name: "Typewriter",
		Description: "This typewriter looks good in your living room.",
		Picture:     "/static/img/products/typewriter.jpg",
		Price:       Money{CurrencyCode: "USD", Units: 67, Nanos: 990000000},
		Categories:  []string{"vintage"},
	},
}

// currencyRates is the EUR-based conversion table from the original
// currency service.
var currencyRates = map[string]float64{
	"EUR": 1.0,
	"USD": 1.1305,
	"JPY": 126.40,
	"BGN": 1.9558,
	"CZK": 25.592,
	"DKK": 7.4609,
	"GBP": 0.85970,
	"HUF": 315.51,
	"PLN": 4.2996,
	"RON": 4.7463,
	"SEK": 10.5375,
	"CHF": 1.1360,
	"ISK": 136.80,
	"NOK": 9.8040,
	"HRK": 7.4210,
	"RUB": 74.4208,
	"TRY": 6.1247,
	"AUD": 1.6072,
	"BRL": 4.2682,
	"CAD": 1.5128,
	"CNY": 7.5857,
	"HKD": 8.8743,
	"IDR": 15999.40,
	"ILS": 4.0875,
	"INR": 79.4320,
	"KRW": 1275.05,
	"MXN": 21.7999,
	"MYR": 4.6289,
	"NZD": 1.6679,
	"PHP": 59.083,
	"SGD": 1.5349,
	"THB": 36.012,
	"ZAR": 15.9642,
}

var adsData = map[string][]Ad{
	"clothing":    {{RedirectURL: "/product/66VCHSJNUP", Text: "Tank top for sale. 20% off."}},
	"accessories": {{RedirectURL: "/product/1YMWWN1N4O", Text: "Watch for sale. Buy one, get second kit for free"}},
	"footwear":    {{RedirectURL: "/product/L9ECAV7KIM", Text: "Loafers for sale. Buy one, get second one for free"}},
	"hair":        {{RedirectURL: "/product/2ZYFJ3GM2N", Text: "Hairdryer for sale. 50% off."}},
	"decor":       {{RedirectURL: "/product/0PUK6V6EV0", Text: "Candle holder for sale. 30% off."}},
	"kitchen": {
		{RedirectURL: "/product/9SIQT8TOJO", Text: "Bamboo glass jar for sale. 10% off."},
		{RedirectURL: "/product/6E92ZMYYFZ", Text: "Mug for sale. Buy two, get third one for free"},
	},
	"cycling":   {{RedirectURL: "/product/A1B2C3D4E5", Text: "City bike for sale. 10% off."}},
	"gardening": {{RedirectURL: "/product/F6G7H8I9J0", Text: "Air plants for sale. Buy two, get third one for free"}},
	"vintage":   {{RedirectURL: "/product/K1L2M3N4O5", Text: "Typewriter for sale. 10% off."}},
}
