package boutique

import (
	"context"
	"fmt"
	"sync"

	"repro/weaver"
)

// Checkout orchestrates order placement across seven other services, with
// the same call structure as the original checkout service: cart →
// catalog (per item) → currency (per price) → shipping quote → payment →
// shipping → cart empty → email.
type Checkout interface {
	// PlaceOrder is revenue-critical: under overload it must be admitted
	// ahead of best-effort traffic like ad serving.
	//
	//weaver:priority=critical
	PlaceOrder(ctx context.Context, req PlaceOrderRequest) (Order, error)
}

type checkout struct {
	weaver.Implements[Checkout]

	cart     weaver.Ref[Cart]
	catalog  weaver.Ref[ProductCatalog]
	currency weaver.Ref[Currency]
	shipping weaver.Ref[Shipping]
	payment  weaver.Ref[Payment]
	email    weaver.Ref[Email]

	mu  sync.Mutex
	seq int64
}

// PlaceOrder executes the full checkout flow.
func (c *checkout) PlaceOrder(ctx context.Context, req PlaceOrderRequest) (Order, error) {
	if req.UserID == "" {
		return Order{}, fmt.Errorf("checkout: missing user id")
	}
	if req.UserCurrency == "" {
		req.UserCurrency = "USD"
	}

	// 1. Fetch the cart.
	items, err := c.cart.Get().GetCart(ctx, req.UserID)
	if err != nil {
		return Order{}, fmt.Errorf("checkout: fetching cart: %w", err)
	}
	if len(items) == 0 {
		return Order{}, fmt.Errorf("checkout: cart is empty")
	}

	// 2. Price each item in the user's currency.
	orderItems := make([]OrderItem, 0, len(items))
	total := Money{CurrencyCode: req.UserCurrency}
	for _, it := range items {
		product, err := c.catalog.Get().GetProduct(ctx, it.ProductID)
		if err != nil {
			return Order{}, fmt.Errorf("checkout: product %s: %w", it.ProductID, err)
		}
		price, err := c.currency.Get().Convert(ctx, product.Price, req.UserCurrency)
		if err != nil {
			return Order{}, fmt.Errorf("checkout: converting price: %w", err)
		}
		cost := price.MultiplyInt(int64(it.Quantity))
		orderItems = append(orderItems, OrderItem{Item: it, Cost: cost})
		if total, err = total.Add(cost); err != nil {
			return Order{}, fmt.Errorf("checkout: totaling: %w", err)
		}
	}

	// 3. Quote shipping and convert it.
	quoteUSD, err := c.shipping.Get().GetQuote(ctx, req.Address, items)
	if err != nil {
		return Order{}, fmt.Errorf("checkout: shipping quote: %w", err)
	}
	shippingCost, err := c.currency.Get().Convert(ctx, quoteUSD, req.UserCurrency)
	if err != nil {
		return Order{}, fmt.Errorf("checkout: converting shipping: %w", err)
	}
	if total, err = total.Add(shippingCost); err != nil {
		return Order{}, fmt.Errorf("checkout: totaling shipping: %w", err)
	}

	// 4. Charge the card.
	txn, err := c.payment.Get().Charge(ctx, total, req.CreditCard)
	if err != nil {
		return Order{}, fmt.Errorf("checkout: payment: %w", err)
	}
	c.Logger().Debug("payment complete", "txn", txn)

	// 5. Ship.
	tracking, err := c.shipping.Get().ShipOrder(ctx, req.Address, items)
	if err != nil {
		return Order{}, fmt.Errorf("checkout: shipping: %w", err)
	}

	// 6. Empty the cart.
	if err := c.cart.Get().EmptyCart(ctx, req.UserID); err != nil {
		return Order{}, fmt.Errorf("checkout: emptying cart: %w", err)
	}

	c.mu.Lock()
	c.seq++
	n := c.seq
	c.mu.Unlock()
	order := Order{
		OrderID:            fmt.Sprintf("ORD-%08d", n),
		ShippingTrackingID: tracking,
		ShippingCost:       shippingCost,
		ShippingAddress:    req.Address,
		Items:              orderItems,
		Total:              total,
	}

	// 7. Confirmation email (best effort, like the original).
	if req.Email != "" {
		if err := c.email.Get().SendOrderConfirmation(ctx, req.Email, order); err != nil {
			c.Logger().Warn("failed to send order confirmation", "err", err.Error())
		}
	}
	return order, nil
}
