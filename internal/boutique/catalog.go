package boutique

import (
	"context"
	"fmt"
	"strings"

	"repro/weaver"
)

// ProductCatalog is the product catalog service: it lists, fetches, and
// searches products.
type ProductCatalog interface {
	ListProducts(ctx context.Context) ([]Product, error)
	GetProduct(ctx context.Context, id string) (Product, error)
	SearchProducts(ctx context.Context, query string) ([]Product, error)
}

type productCatalog struct {
	weaver.Implements[ProductCatalog]
	byID map[string]Product
}

// Init indexes the catalog.
func (c *productCatalog) Init(context.Context) error {
	c.byID = make(map[string]Product, len(catalogData))
	for _, p := range catalogData {
		c.byID[p.ID] = p
	}
	return nil
}

// ListProducts returns every product in the catalog.
func (c *productCatalog) ListProducts(context.Context) ([]Product, error) {
	return append([]Product(nil), catalogData...), nil
}

// GetProduct returns one product by id.
func (c *productCatalog) GetProduct(_ context.Context, id string) (Product, error) {
	p, ok := c.byID[id]
	if !ok {
		return Product{}, fmt.Errorf("no product with ID %s", id)
	}
	return p, nil
}

// SearchProducts returns products whose name or description contains the
// query, case-insensitively.
func (c *productCatalog) SearchProducts(_ context.Context, query string) ([]Product, error) {
	q := strings.ToLower(query)
	var out []Product
	for _, p := range catalogData {
		if strings.Contains(strings.ToLower(p.Name), q) || strings.Contains(strings.ToLower(p.Description), q) {
			out = append(out, p)
		}
	}
	return out, nil
}
