package boutique

import (
	"context"
	"testing"
)

// TestCartPersistence verifies write-through persistence: a cart written by
// one replica incarnation is visible to the next after a "restart".
func TestCartPersistence(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CART_STORE_DIR", dir)
	ctx := context.Background()

	c1 := &cart{}
	if err := c1.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddItem(ctx, "u1", CartItem{ProductID: "P1", Quantity: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddItem(ctx, "u1", CartItem{ProductID: "P2", Quantity: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddItem(ctx, "u2", CartItem{ProductID: "P3", Quantity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c1.EmptyCart(ctx, "u2"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart" the replica.
	c2 := &cart{}
	if err := c2.Init(ctx); err != nil {
		t.Fatal(err)
	}
	defer c2.Shutdown(ctx)

	items, err := c2.GetCart(ctx, "u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].ProductID != "P1" || items[0].Quantity != 2 {
		t.Errorf("u1 cart after restart = %+v", items)
	}
	empty, err := c2.GetCart(ctx, "u2")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("emptied cart resurrected: %+v", empty)
	}
}

// TestCartWithoutPersistence confirms the default (no CART_STORE_DIR) stays
// purely in memory.
func TestCartWithoutPersistence(t *testing.T) {
	t.Setenv("CART_STORE_DIR", "")
	ctx := context.Background()
	c := &cart{}
	if err := c.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if c.db != nil {
		t.Error("store opened without CART_STORE_DIR")
	}
	if err := c.AddItem(ctx, "u", CartItem{ProductID: "P", Quantity: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
