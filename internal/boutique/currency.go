package boutique

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/weaver"
)

// Currency is the currency conversion service.
type Currency interface {
	GetSupportedCurrencies(ctx context.Context) ([]string, error)
	Convert(ctx context.Context, from Money, toCode string) (Money, error)
}

type currency struct {
	weaver.Implements[Currency]
}

// GetSupportedCurrencies lists supported currency codes, sorted.
func (c *currency) GetSupportedCurrencies(context.Context) ([]string, error) {
	out := make([]string, 0, len(currencyRates))
	for code := range currencyRates {
		out = append(out, code)
	}
	sort.Strings(out)
	return out, nil
}

// Convert converts an amount between currencies via the EUR-based rate
// table, carrying fractional units the way the original currency service
// does.
func (c *currency) Convert(_ context.Context, from Money, toCode string) (Money, error) {
	fromRate, ok := currencyRates[from.CurrencyCode]
	if !ok {
		return Money{}, fmt.Errorf("unsupported source currency %q", from.CurrencyCode)
	}
	toRate, ok := currencyRates[toCode]
	if !ok {
		return Money{}, fmt.Errorf("unsupported target currency %q", toCode)
	}
	if from.CurrencyCode == toCode {
		return from, nil
	}

	// Convert to EUR, then to the target currency.
	euros := (float64(from.Units) + float64(from.Nanos)/1e9) / fromRate
	target := euros * toRate

	units := int64(math.Trunc(target))
	nanos := int32(math.Round((target - math.Trunc(target)) * 1e9))
	if nanos >= 1e9 {
		units++
		nanos -= 1e9
	} else if nanos <= -1e9 {
		units--
		nanos += 1e9
	}
	return Money{CurrencyCode: toCode, Units: units, Nanos: nanos}, nil
}
