package boutique

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/weaver"
)

// HomePage is the data behind the storefront's landing page.
type HomePage struct {
	Products   []Product
	Currencies []string
	Ad         Ad
}

// ProductPage is the data behind a product detail page.
type ProductPage struct {
	Product         Product
	Price           Money
	Recommendations []string
	Ad              Ad
}

// CartPage is the data behind the cart view.
type CartPage struct {
	Items        []OrderItem
	ShippingCost Money
	Total        Money
}

// Frontend is the storefront: the entry point external traffic hits. It
// exposes the application both as component methods (for programmatic
// drivers and benchmarks) and as an HTTP/JSON API on a weaver.Listener
// (for the load generator, playing Locust's role from §6.1).
type Frontend interface {
	Home(ctx context.Context, userID, currency string) (HomePage, error)
	Product(ctx context.Context, userID, productID, currency string) (ProductPage, error)
	AddToCart(ctx context.Context, userID, productID string, quantity int32) error
	ViewCart(ctx context.Context, userID, currency string) (CartPage, error)
	Checkout(ctx context.Context, req PlaceOrderRequest) (Order, error)
	// HTTPAddr returns the address of this replica's HTTP listener.
	HTTPAddr(ctx context.Context) (string, error)
}

type frontend struct {
	weaver.Implements[Frontend]

	catalog   weaver.Ref[ProductCatalog]
	currency  weaver.Ref[Currency]
	cart      weaver.Ref[Cart]
	recommend weaver.Ref[Recommendation]
	shipping  weaver.Ref[Shipping]
	checkout  weaver.Ref[Checkout]
	ads       weaver.Ref[AdService]

	boutique weaver.Listener `weaver:"boutique"`

	srvOnce sync.Once
	srv     *http.Server
}

// Init starts the HTTP front door on the injected listener.
func (f *frontend) Init(ctx context.Context) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/", f.handleHome)
	mux.HandleFunc("/product/", f.handleProduct)
	mux.HandleFunc("/cart", f.handleCart)
	mux.HandleFunc("/cart/checkout", f.handleCheckout)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	f.srv = &http.Server{Handler: mux}
	go func() {
		_ = f.srv.Serve(f.boutique.Listener)
	}()
	f.Logger().Info("storefront serving", "addr", f.boutique.Addr().String())
	return nil
}

// Shutdown stops the HTTP server.
func (f *frontend) Shutdown(ctx context.Context) error {
	if f.srv != nil {
		return f.srv.Shutdown(ctx)
	}
	return nil
}

// HTTPAddr returns the replica's HTTP listener address.
func (f *frontend) HTTPAddr(context.Context) (string, error) {
	return f.boutique.Addr().String(), nil
}

// Home assembles the landing page: the full catalog with prices in the
// user's currency, the currency list, and an ad.
func (f *frontend) Home(ctx context.Context, userID, currency string) (HomePage, error) {
	if currency == "" {
		currency = "USD"
	}
	products, err := f.catalog.Get().ListProducts(ctx)
	if err != nil {
		return HomePage{}, fmt.Errorf("frontend: catalog: %w", err)
	}
	for i := range products {
		p, err := f.currency.Get().Convert(ctx, products[i].Price, currency)
		if err != nil {
			return HomePage{}, fmt.Errorf("frontend: converting price: %w", err)
		}
		products[i].Price = p
	}
	currencies, err := f.currency.Get().GetSupportedCurrencies(ctx)
	if err != nil {
		return HomePage{}, fmt.Errorf("frontend: currencies: %w", err)
	}
	ads, err := f.ads.Get().GetAds(ctx, nil)
	if err != nil {
		return HomePage{}, fmt.Errorf("frontend: ads: %w", err)
	}
	page := HomePage{Products: products, Currencies: currencies}
	if len(ads) > 0 {
		page.Ad = ads[0]
	}
	return page, nil
}

// Product assembles a product detail page.
func (f *frontend) Product(ctx context.Context, userID, productID, currency string) (ProductPage, error) {
	if currency == "" {
		currency = "USD"
	}
	product, err := f.catalog.Get().GetProduct(ctx, productID)
	if err != nil {
		return ProductPage{}, fmt.Errorf("frontend: product: %w", err)
	}
	price, err := f.currency.Get().Convert(ctx, product.Price, currency)
	if err != nil {
		return ProductPage{}, fmt.Errorf("frontend: converting price: %w", err)
	}
	recs, err := f.recommend.Get().ListRecommendations(ctx, userID, []string{productID})
	if err != nil {
		return ProductPage{}, fmt.Errorf("frontend: recommendations: %w", err)
	}
	ads, err := f.ads.Get().GetAds(ctx, product.Categories)
	if err != nil {
		return ProductPage{}, fmt.Errorf("frontend: ads: %w", err)
	}
	page := ProductPage{Product: product, Price: price, Recommendations: recs}
	if len(ads) > 0 {
		page.Ad = ads[0]
	}
	return page, nil
}

// AddToCart validates the product and adds it to the user's cart.
func (f *frontend) AddToCart(ctx context.Context, userID, productID string, quantity int32) error {
	if quantity <= 0 {
		return fmt.Errorf("frontend: quantity must be positive")
	}
	if _, err := f.catalog.Get().GetProduct(ctx, productID); err != nil {
		return fmt.Errorf("frontend: product: %w", err)
	}
	return f.cart.Get().AddItem(ctx, userID, CartItem{ProductID: productID, Quantity: quantity})
}

// ViewCart assembles the cart page with per-item costs, a shipping quote,
// and the total, all in the user's currency.
func (f *frontend) ViewCart(ctx context.Context, userID, currency string) (CartPage, error) {
	if currency == "" {
		currency = "USD"
	}
	items, err := f.cart.Get().GetCart(ctx, userID)
	if err != nil {
		return CartPage{}, fmt.Errorf("frontend: cart: %w", err)
	}
	quote, err := f.shipping.Get().GetQuote(ctx, Address{}, items)
	if err != nil {
		return CartPage{}, fmt.Errorf("frontend: quote: %w", err)
	}
	shippingCost, err := f.currency.Get().Convert(ctx, quote, currency)
	if err != nil {
		return CartPage{}, fmt.Errorf("frontend: converting quote: %w", err)
	}
	page := CartPage{ShippingCost: shippingCost}
	total := Money{CurrencyCode: currency}
	for _, it := range items {
		product, err := f.catalog.Get().GetProduct(ctx, it.ProductID)
		if err != nil {
			return CartPage{}, fmt.Errorf("frontend: product %s: %w", it.ProductID, err)
		}
		price, err := f.currency.Get().Convert(ctx, product.Price, currency)
		if err != nil {
			return CartPage{}, fmt.Errorf("frontend: converting: %w", err)
		}
		cost := price.MultiplyInt(int64(it.Quantity))
		page.Items = append(page.Items, OrderItem{Item: it, Cost: cost})
		if total, err = total.Add(cost); err != nil {
			return CartPage{}, err
		}
	}
	if total, err = total.Add(shippingCost); err != nil {
		return CartPage{}, err
	}
	page.Total = total
	return page, nil
}

// Checkout places the order.
func (f *frontend) Checkout(ctx context.Context, req PlaceOrderRequest) (Order, error) {
	return f.checkout.Get().PlaceOrder(ctx, req)
}

// --- HTTP front door (driven by the load generator) ---

func (f *frontend) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	page, err := f.Home(r.Context(), r.URL.Query().Get("user"), r.URL.Query().Get("currency"))
	respond(w, page, err)
}

func (f *frontend) handleProduct(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/product/")
	page, err := f.Product(r.Context(), r.URL.Query().Get("user"), id, r.URL.Query().Get("currency"))
	respond(w, page, err)
}

func (f *frontend) handleCart(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		page, err := f.ViewCart(r.Context(), r.URL.Query().Get("user"), r.URL.Query().Get("currency"))
		respond(w, page, err)
	case http.MethodPost:
		var body struct {
			UserID    string
			ProductID string
			Quantity  int32
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		err := f.AddToCart(r.Context(), body.UserID, body.ProductID, body.Quantity)
		respond(w, map[string]string{"status": "added"}, err)
	case http.MethodDelete:
		err := f.cart.Get().EmptyCart(r.Context(), r.URL.Query().Get("user"))
		respond(w, map[string]string{"status": "emptied"}, err)
	default:
		http.Error(w, "unsupported method", http.StatusMethodNotAllowed)
	}
}

func (f *frontend) handleCheckout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req PlaceOrderRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	order, err := f.Checkout(r.Context(), req)
	respond(w, order, err)
}

func respond(w http.ResponseWriter, v any, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
