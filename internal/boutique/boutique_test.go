package boutique

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"testing/quick"

	"repro/weaver"
)

var testCard = CreditCard{
	Number:          "4432-8015-6152-0454", // passes Luhn, VISA
	CVV:             672,
	ExpirationYear:  2039,
	ExpirationMonth: 1,
}

func initApp(t *testing.T) (*weaver.App, Frontend) {
	t.Helper()
	ctx := context.Background()
	app, err := weaver.Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Shutdown(ctx) })
	fe, err := weaver.Get[Frontend](app)
	if err != nil {
		t.Fatal(err)
	}
	return app, fe
}

func TestHomePage(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	page, err := fe.Home(ctx, "user-1", "EUR")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Products) != len(catalogData) {
		t.Errorf("products = %d, want %d", len(page.Products), len(catalogData))
	}
	for _, p := range page.Products {
		if p.Price.CurrencyCode != "EUR" {
			t.Errorf("product %s price in %s, want EUR", p.ID, p.Price.CurrencyCode)
		}
	}
	if len(page.Currencies) != len(currencyRates) {
		t.Errorf("currencies = %d, want %d", len(page.Currencies), len(currencyRates))
	}
}

func TestProductPage(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	page, err := fe.Product(ctx, "user-1", "OLJCESPC7Z", "USD")
	if err != nil {
		t.Fatal(err)
	}
	if page.Product.Name != "Sunglasses" {
		t.Errorf("product = %q", page.Product.Name)
	}
	if len(page.Recommendations) == 0 || len(page.Recommendations) > 5 {
		t.Errorf("recommendations = %v", page.Recommendations)
	}
	for _, rec := range page.Recommendations {
		if rec == "OLJCESPC7Z" {
			t.Error("recommended the product being viewed")
		}
	}
	if page.Ad.Text == "" {
		t.Error("no ad on product page")
	}
}

func TestFullPurchaseJourney(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	user := "shopper-42"

	if err := fe.AddToCart(ctx, user, "OLJCESPC7Z", 2); err != nil {
		t.Fatal(err)
	}
	if err := fe.AddToCart(ctx, user, "6E92ZMYYFZ", 1); err != nil {
		t.Fatal(err)
	}
	// Adding the same product merges quantities.
	if err := fe.AddToCart(ctx, user, "OLJCESPC7Z", 1); err != nil {
		t.Fatal(err)
	}

	cartPage, err := fe.ViewCart(ctx, user, "USD")
	if err != nil {
		t.Fatal(err)
	}
	if len(cartPage.Items) != 2 {
		t.Fatalf("cart items = %d, want 2", len(cartPage.Items))
	}
	// 3 * 19.99 + 1 * 8.99 + 8.99 shipping = 77.95
	if got := cartPage.Total.Float(); got < 77.90 || got > 78.00 {
		t.Errorf("cart total = %v", cartPage.Total)
	}

	order, err := fe.Checkout(ctx, PlaceOrderRequest{
		UserID:       user,
		UserCurrency: "USD",
		Address:      Address{StreetAddress: "1600 Amphitheatre Pkwy", City: "Mountain View", State: "CA", Country: "USA", ZipCode: 94043},
		Email:        "shopper@example.com",
		CreditCard:   testCard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if order.OrderID == "" || order.ShippingTrackingID == "" {
		t.Errorf("order missing ids: %+v", order)
	}
	if len(order.Items) != 2 {
		t.Errorf("order items = %d", len(order.Items))
	}

	// The cart must be empty after checkout.
	cartPage, err = fe.ViewCart(ctx, user, "USD")
	if err != nil {
		t.Fatal(err)
	}
	if len(cartPage.Items) != 0 {
		t.Errorf("cart not emptied: %+v", cartPage.Items)
	}
}

func TestCheckoutEmptyCartFails(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	_, err := fe.Checkout(ctx, PlaceOrderRequest{UserID: "nobody", UserCurrency: "USD", CreditCard: testCard})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("err = %v", err)
	}
}

func TestCheckoutBadCardFails(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	user := "badcard"
	if err := fe.AddToCart(ctx, user, "OLJCESPC7Z", 1); err != nil {
		t.Fatal(err)
	}
	bad := testCard
	bad.Number = "4432-8015-6152-0455" // fails Luhn
	_, err := fe.Checkout(ctx, PlaceOrderRequest{UserID: user, UserCurrency: "USD", CreditCard: bad})
	if err == nil || !strings.Contains(err.Error(), "credit card") {
		t.Errorf("err = %v", err)
	}
	// The failed checkout must not empty the cart.
	page, err := fe.ViewCart(ctx, user, "USD")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 {
		t.Errorf("cart lost items after failed checkout: %+v", page.Items)
	}
}

func TestExpiredCardFails(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	user := "expired"
	if err := fe.AddToCart(ctx, user, "OLJCESPC7Z", 1); err != nil {
		t.Fatal(err)
	}
	old := testCard
	old.ExpirationYear = 2020
	_, err := fe.Checkout(ctx, PlaceOrderRequest{UserID: user, UserCurrency: "USD", CreditCard: old})
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("err = %v", err)
	}
}

func TestCurrencyConversionRoundTrip(t *testing.T) {
	_, fe := initApp(t)
	_ = fe
	ctx := context.Background()
	app, err := weaver.Init(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cur := weaver.MustGet[Currency](app)
	usd := Money{CurrencyCode: "USD", Units: 100, Nanos: 0}
	eur, err := cur.Convert(ctx, usd, "EUR")
	if err != nil {
		t.Fatal(err)
	}
	back, err := cur.Convert(ctx, eur, "USD")
	if err != nil {
		t.Fatal(err)
	}
	if diff := back.Float() - usd.Float(); diff < -0.01 || diff > 0.01 {
		t.Errorf("round trip 100 USD -> %v -> %v", eur, back)
	}
}

func TestUnsupportedCurrency(t *testing.T) {
	app, _ := initApp(t)
	ctx := context.Background()
	cur := weaver.MustGet[Currency](app)
	_, err := cur.Convert(ctx, Money{CurrencyCode: "USD", Units: 1}, "XXX")
	if err == nil {
		t.Error("converting to XXX succeeded")
	}
}

func TestSearchProducts(t *testing.T) {
	app, _ := initApp(t)
	ctx := context.Background()
	cat := weaver.MustGet[ProductCatalog](app)
	hits, err := cat.SearchProducts(ctx, "kitchen")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("no hits for kitchen")
	}
	none, err := cat.SearchProducts(ctx, "zzzznothing")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unexpected hits: %v", none)
	}
}

func TestAdsContextual(t *testing.T) {
	app, _ := initApp(t)
	ctx := context.Background()
	ads := weaver.MustGet[AdService](app)
	kitchen, err := ads.GetAds(ctx, []string{"kitchen"})
	if err != nil {
		t.Fatal(err)
	}
	if len(kitchen) != 2 {
		t.Errorf("kitchen ads = %d, want 2", len(kitchen))
	}
	random, err := ads.GetAds(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(random) == 0 {
		t.Error("no random ads")
	}
}

func TestHTTPFrontDoor(t *testing.T) {
	_, fe := initApp(t)
	ctx := context.Background()
	addr, err := fe.HTTPAddr(ctx)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %s", resp.Status)
	}
	resp.Body.Close()

	resp = get("/?currency=USD")
	if resp.StatusCode != 200 {
		t.Fatalf("home = %s", resp.Status)
	}
	var home HomePage
	if err := json.NewDecoder(resp.Body).Decode(&home); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(home.Products) != len(catalogData) {
		t.Errorf("home products = %d", len(home.Products))
	}

	// Add to cart over HTTP, then check out over HTTP.
	body := strings.NewReader(`{"UserID":"http-user","ProductID":"OLJCESPC7Z","Quantity":1}`)
	presp, err := http.Post("http://"+addr+"/cart", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != 200 {
		t.Fatalf("add to cart = %s", presp.Status)
	}
	presp.Body.Close()

	orderReq, _ := json.Marshal(PlaceOrderRequest{
		UserID: "http-user", UserCurrency: "USD",
		Email: "h@example.com", CreditCard: testCard,
	})
	oresp, err := http.Post("http://"+addr+"/cart/checkout", "application/json", strings.NewReader(string(orderReq)))
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	if oresp.StatusCode != 200 {
		t.Fatalf("checkout = %s", oresp.Status)
	}
	var order Order
	if err := json.NewDecoder(oresp.Body).Decode(&order); err != nil {
		t.Fatal(err)
	}
	if order.OrderID == "" {
		t.Error("no order id over HTTP")
	}
}

func TestMoneyAddProperties(t *testing.T) {
	// Money.Add must be commutative and preserve validity.
	f := func(u1 int32, n1 int32, u2 int32, n2 int32) bool {
		norm := func(u, n int32) Money {
			nn := n % nanosMod
			if (u > 0 && nn < 0) || (u < 0 && nn > 0) {
				nn = -nn
			}
			return Money{CurrencyCode: "USD", Units: int64(u), Nanos: nn}
		}
		a, b := norm(u1, n1), norm(u2, n2)
		ab, err1 := a.Add(b)
		ba, err2 := b.Add(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == ba && ab.Valid() || ab.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMoneyMultiply(t *testing.T) {
	m := Money{CurrencyCode: "USD", Units: 19, Nanos: 990000000}
	got := m.MultiplyInt(3)
	if got.Units != 59 || got.Nanos != 970000000 {
		t.Errorf("3 * 19.99 = %v", got)
	}
	zero := m.MultiplyInt(0)
	if !zero.IsZero() {
		t.Errorf("0 * m = %v", zero)
	}
}

func TestLuhn(t *testing.T) {
	for num, want := range map[string]bool{
		"4432801561520454": true,
		"4432801561520455": false,
		"5555555555554444": true, // MasterCard test number
		"4111111111111111": true, // VISA test number
		"1234":             false,
		"abcd111111111111": false,
	} {
		if got := luhnValid(num); got != want {
			t.Errorf("luhnValid(%s) = %t, want %t", num, got, want)
		}
	}
}

func TestPaymentRejectsUnsupportedNetwork(t *testing.T) {
	app, _ := initApp(t)
	ctx := context.Background()
	pay := weaver.MustGet[Payment](app)
	amex := testCard
	amex.Number = "378282246310005" // AmEx test number, valid Luhn
	_, err := pay.Charge(ctx, Money{CurrencyCode: "USD", Units: 1}, amex)
	if err == nil || !strings.Contains(err.Error(), "VISA") {
		t.Errorf("err = %v", err)
	}
}

func TestShippingQuote(t *testing.T) {
	app, _ := initApp(t)
	ctx := context.Background()
	ship := weaver.MustGet[Shipping](app)
	q, err := ship.GetQuote(ctx, Address{}, []CartItem{{ProductID: "x", Quantity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Float() != 8.99 {
		t.Errorf("quote = %v", q)
	}
	empty, err := ship.GetQuote(ctx, Address{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.IsZero() {
		t.Errorf("empty quote = %v", empty)
	}
	if _, err := ship.ShipOrder(ctx, Address{}, nil); err == nil {
		t.Error("shipping nothing succeeded")
	}
}

var _ = fmt.Sprintf
