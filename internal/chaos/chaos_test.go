package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/testpkg"
	"repro/weaver"
)

func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

func TestChaosEchoSurvivesCrashes(t *testing.T) {
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-test",
			Autoscale: map[string]autoscale.Config{
				"Echo": {MinReplicas: 2, MaxReplicas: 2},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	echoClient, err := deploy.Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the route.
	if _, err := echoClient.Echo(ctx, "prime"); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, Options{
		Deployment:        d,
		TargetGroups:      []string{"Echo"},
		Faults:            4,
		MeanBetweenFaults: 150 * time.Millisecond,
		SettleTime:        2 * time.Second,
		Seed:              1,
		Workload: func(ctx context.Context) error {
			_, err := echoClient.Echo(ctx, "hello")
			return err
		},
		Invariant: func(ctx context.Context) error {
			got, err := echoClient.Echo(ctx, "final")
			if err != nil {
				return fmt.Errorf("echo unavailable after healing: %w", err)
			}
			if got != "final" {
				return fmt.Errorf("echo corrupted: %q", got)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("invariant violations: %v", res.InvariantErrors)
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected")
	}
	if res.Requests == 0 {
		t.Error("no workload executed")
	}
	// With 2 replicas and transparent retry, most requests must succeed
	// even while replicas crash.
	if res.Errors*5 > res.Requests {
		t.Errorf("error rate too high: %d/%d", res.Errors, res.Requests)
	}
	t.Logf("chaos: %d faults, %d requests, %d errors, longest outage %v",
		res.FaultsInjected, res.Requests, res.Errors, res.LongestOutage)
}

func TestChaosDetectsStateLoss(t *testing.T) {
	// Counter keeps replica-local state with no replication: crashing its
	// only replica MUST lose counts, and the invariant must catch it. This
	// verifies the harness actually detects bugs (a chaos harness that
	// never fails is worthless).
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-test2",
			Autoscale: map[string]autoscale.Config{
				"Counter": {MinReplicas: 1, MaxReplicas: 1},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	counter, err := deploy.Get[testpkg.Counter](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := counter.Add(ctx, "k", 100); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, Options{
		Deployment:   d,
		TargetGroups: []string{"Counter"},
		Faults:       1,
		SettleTime:   2 * time.Second,
		Seed:         2,
		Workload: func(ctx context.Context) error {
			_, err := counter.Value(ctx, "k")
			return err
		},
		Invariant: func(ctx context.Context) error {
			v, err := counter.Value(ctx, "k")
			if err != nil {
				return err
			}
			if v != 100 {
				return fmt.Errorf("count lost: got %d, want 100", v)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Error("chaos run failed to detect unreplicated state loss")
	}
}

func TestRunRejectsMissingPieces(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("Run without deployment succeeded")
	}
}
