package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/rpc"
	"repro/internal/testpkg"
	"repro/weaver"
)

func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

func TestChaosEchoSurvivesCrashes(t *testing.T) {
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-test",
			Autoscale: map[string]autoscale.Config{
				"Echo": {MinReplicas: 2, MaxReplicas: 2},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	echoClient, err := deploy.Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the route.
	if _, err := echoClient.Echo(ctx, "prime"); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, Options{
		Deployment:        d,
		TargetGroups:      []string{"Echo"},
		Faults:            4,
		MeanBetweenFaults: 150 * time.Millisecond,
		SettleTime:        2 * time.Second,
		Seed:              1,
		Workload: func(ctx context.Context) error {
			_, err := echoClient.Echo(ctx, "hello")
			return err
		},
		Invariant: func(ctx context.Context) error {
			got, err := echoClient.Echo(ctx, "final")
			if err != nil {
				return fmt.Errorf("echo unavailable after healing: %w", err)
			}
			if got != "final" {
				return fmt.Errorf("echo corrupted: %q", got)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("invariant violations: %v", res.InvariantErrors)
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected")
	}
	if res.Requests == 0 {
		t.Error("no workload executed")
	}
	// With 2 replicas and transparent retry, most requests must succeed
	// even while replicas crash.
	if res.Errors*5 > res.Requests {
		t.Errorf("error rate too high: %d/%d", res.Errors, res.Requests)
	}
	t.Logf("chaos: %d faults, %d requests, %d errors, longest outage %v",
		res.FaultsInjected, res.Requests, res.Errors, res.LongestOutage)
}

func TestChaosDetectsStateLoss(t *testing.T) {
	// Counter keeps replica-local state with no replication: crashing its
	// only replica MUST lose counts, and the invariant must catch it. This
	// verifies the harness actually detects bugs (a chaos harness that
	// never fails is worthless).
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-test2",
			Autoscale: map[string]autoscale.Config{
				"Counter": {MinReplicas: 1, MaxReplicas: 1},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	counter, err := deploy.Get[testpkg.Counter](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := counter.Add(ctx, "k", 100); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, Options{
		Deployment:   d,
		TargetGroups: []string{"Counter"},
		Faults:       1,
		SettleTime:   2 * time.Second,
		Seed:         2,
		Workload: func(ctx context.Context) error {
			_, err := counter.Value(ctx, "k")
			return err
		},
		Invariant: func(ctx context.Context) error {
			v, err := counter.Value(ctx, "k")
			if err != nil {
				return err
			}
			if v != 100 {
				return fmt.Errorf("count lost: got %d, want 100", v)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Error("chaos run failed to detect unreplicated state loss")
	}
}

func TestRunRejectsMissingPieces(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("Run without deployment succeeded")
	}
}

func TestChaosDegradeFaultKind(t *testing.T) {
	// Degrade faults slow a replica's data plane without killing it; with 2
	// replicas and client-side resilience the workload must keep succeeding
	// and the deployment must be fully healthy after restoration.
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-degrade",
			Autoscale: map[string]autoscale.Config{
				"Echo": {MinReplicas: 2, MaxReplicas: 2},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	echoClient, err := deploy.Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := echoClient.Echo(ctx, "prime"); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, Options{
		Deployment:        d,
		TargetGroups:      []string{"Echo"},
		Faults:            3,
		FaultKinds:        []Fault{DegradeReplica},
		DegradeDelay:      100 * time.Millisecond,
		DegradeDuration:   300 * time.Millisecond,
		MeanBetweenFaults: 100 * time.Millisecond,
		SettleTime:        time.Second,
		Seed:              3,
		Workload: func(ctx context.Context) error {
			_, err := echoClient.Echo(ctx, "hello")
			return err
		},
		Invariant: func(ctx context.Context) error {
			got, err := echoClient.Echo(ctx, "final")
			if err != nil {
				return fmt.Errorf("echo unavailable after degradation healed: %w", err)
			}
			if got != "final" {
				return fmt.Errorf("echo corrupted: %q", got)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("invariant violations: %v", res.InvariantErrors)
	}
	if res.FaultsInjected == 0 {
		t.Error("no degrade faults injected")
	}
	// Degradation slows but does not kill: the 2s workload timeout means
	// virtually everything should still succeed.
	if res.Errors*10 > res.Requests {
		t.Errorf("error rate too high under degradation: %d/%d", res.Errors, res.Requests)
	}
	t.Logf("degrade chaos: %d faults, %d requests, %d errors, longest outage %v",
		res.FaultsInjected, res.Requests, res.Errors, res.LongestOutage)
}

func TestBreakerOpensOnDegradedReplicaAndRecovers(t *testing.T) {
	// The full §5 resilience story end to end: degrade one of two Echo
	// replicas, drive deadline-bounded traffic until the caller's breaker
	// opens, verify traffic drains to the healthy replica, then restore and
	// watch the half-open Ping probe bring the replica back.
	ctx := context.Background()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaos-breaker",
			Autoscale: map[string]autoscale.Config{
				"Echo": {MinReplicas: 2, MaxReplicas: 2},
			},
		},
		Fill: fill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	echoClient, err := deploy.Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := echoClient.Echo(ctx, "prime"); err != nil {
		t.Fatal(err)
	}

	var victimID, victimAddr string
	for _, g := range d.Manager.Status() {
		if g.Name == "Echo" && len(g.Replicas) > 0 {
			victimID = g.Replicas[0].ID
			victimAddr = g.Replicas[0].Addr
		}
	}
	if victimID == "" {
		t.Fatal("no Echo replica found")
	}

	mainProclet, ok := d.Proclet("main/0")
	if !ok {
		t.Fatal("main proclet not found")
	}
	conn, ok := mainProclet.Route("repro/internal/testpkg/Echo")
	if !ok {
		t.Fatal("main proclet has no route to Echo")
	}

	if !d.DegradeReplica(victimID, 200*time.Millisecond) {
		t.Fatalf("DegradeReplica(%q) found no replica", victimID)
	}

	call := func(timeout time.Duration) error {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		_, err := echoClient.Echo(cctx, "x")
		return err
	}

	// Deadline-bounded calls time out on the degraded replica and trip its
	// breaker (default options: 8 samples, 50% failures).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && conn.BreakerState(victimAddr) != rpc.BreakerOpen {
		_ = call(50 * time.Millisecond)
	}
	if got := conn.BreakerState(victimAddr); got != rpc.BreakerOpen {
		t.Fatalf("breaker for degraded replica = %v, want open", got)
	}

	// Traffic drains: with the sick replica quarantined, calls that would
	// have timed out on it now all succeed.
	for i := 0; i < 10; i++ {
		if err := call(50 * time.Millisecond); err != nil {
			t.Fatalf("call %d failed while degraded replica quarantined: %v", i, err)
		}
	}

	// Restore; the half-open Ping probe must close the breaker.
	d.DegradeReplica(victimID, 0)
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && conn.BreakerState(victimAddr) != rpc.BreakerClosed {
		_ = call(500 * time.Millisecond)
		time.Sleep(20 * time.Millisecond)
	}
	if got := conn.BreakerState(victimAddr); got != rpc.BreakerClosed {
		t.Fatalf("breaker never closed after replica restored: %v", got)
	}
	if err := call(2 * time.Second); err != nil {
		t.Fatalf("call after recovery failed: %v", err)
	}
}
