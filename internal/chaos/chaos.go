// Package chaos implements the automated fault-tolerance testing the paper
// argues atomic single-binary deployment makes possible (§5.3): "end-to-end
// tests become simple unit tests ... opening the door to automated fault
// tolerance testing, akin to chaos testing, Jepsen testing, and model
// checking."
//
// A chaos Run drives an application (deployed in-process across real
// control-plane pipes and real TCP data planes) with client workload while
// systematically injecting faults — replica crashes and restarts — and
// checks user-supplied invariants throughout. Because the whole distributed
// application lives in one test process, the harness can do in minutes what
// takes a fleet of microservices a dedicated staging environment.
package chaos

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/deploy"
)

// A Surface is the fault-injection interface a deployment exposes to test
// harnesses. Both this package's randomized chaos runs and the
// deterministic simulation harness (internal/sim) inject faults through
// it, so every deployment that implements Surface gets both for free.
// deploy.InProcess implements it.
type Surface interface {
	// Groups returns the names of fault-targetable groups (non-main groups
	// with replicas), sorted.
	Groups() []string
	// GroupReplicas returns the replica ids of a group, sorted.
	GroupReplicas(group string) []string
	// KillReplica abruptly terminates a replica (simulated crash),
	// reporting whether it existed.
	KillReplica(id string) bool
	// DegradeReplica injects delay into a replica's data plane (0 restores
	// it), reporting whether the replica existed.
	DegradeReplica(id string, delay time.Duration) bool
	// DegradeBatching stalls a replica's data-plane write flusher by stall
	// before every batch write (0 restores it), forcing concurrent
	// responses to coalesce into deep batches and exercising the write
	// path's backpressure. It reports whether the replica existed.
	DegradeBatching(id string, stall time.Duration) bool
	// StallReads stalls a replica's data-plane frame reader by stall
	// before every batched read (0 restores it): the slow-reader fault.
	// Requests pile up in the replica's socket buffers and arrive in deep
	// read batches, exercising the receive path's amortized parsing and
	// buffer handoff. It reports whether the replica existed.
	StallReads(id string, stall time.Duration) bool
}

var _ Surface = (*deploy.InProcess)(nil)

// Fault is one kind of injected failure.
type Fault int

// Supported faults.
const (
	// CrashReplica abruptly terminates a random replica of a target group;
	// the manager is expected to restart it.
	CrashReplica Fault = iota
	// DegradeReplica injects DegradeDelay of latency into a random
	// replica's data plane for DegradeDuration, simulating a slow or
	// flapping replica; client-side circuit breakers are expected to route
	// traffic around it.
	DegradeReplica
	// DegradeBatching stalls a random replica's response flusher by
	// BatchStall for DegradeDuration, forcing its data plane through the
	// write-coalescing (group-commit) paths under load.
	DegradeBatching
	// StallRead stalls a random replica's batched frame reader by
	// ReadStall for DegradeDuration, so inbound requests pile up in the
	// socket buffer and drain in deep read batches.
	StallRead
)

// Options configures a chaos run.
type Options struct {
	// Deployment is the running in-process deployment under test. It is
	// shorthand for Surface; leave it nil when injecting a custom Surface.
	Deployment *deploy.InProcess
	// Surface is the fault-injection surface faults go through. Defaults
	// to Deployment.
	Surface Surface
	// Clock supplies the run's scheduling timers (fault pacing, degrade
	// restoration, settle). Nil means the wall clock.
	Clock clock.Clock
	// TargetGroups are the groups whose replicas get crashed. Empty means
	// every non-main group.
	TargetGroups []string
	// Faults is the total number of faults to inject.
	Faults int
	// FaultKinds is the set of faults drawn from at each injection
	// (default: {CrashReplica}).
	FaultKinds []Fault
	// DegradeDelay is the latency injected by DegradeReplica faults
	// (default 200ms).
	DegradeDelay time.Duration
	// DegradeDuration is how long a DegradeReplica or DegradeBatching fault
	// lasts before the replica is restored (default 500ms).
	DegradeDuration time.Duration
	// BatchStall is the pre-flush stall injected by DegradeBatching faults
	// (default 2ms — long enough that concurrent responses pile into one
	// batch, short enough that workload deadlines hold).
	BatchStall time.Duration
	// ReadStall is the pre-read stall injected by StallRead faults
	// (default 2ms, same calibration as BatchStall).
	ReadStall time.Duration
	// MeanBetweenFaults is the average pause between injections
	// (default 200ms).
	MeanBetweenFaults time.Duration
	// Workload issues one application request; it is called continuously
	// from several goroutines for the duration of the run. Errors are
	// recorded, not fatal: crashes make transient errors expected.
	Workload func(ctx context.Context) error
	// WorkloadParallelism is the number of workload goroutines (default 4).
	WorkloadParallelism int
	// Invariant is checked after every fault has healed and at the end of
	// the run; any error fails the run.
	Invariant func(ctx context.Context) error
	// SettleTime is how long to wait after the last fault before the final
	// invariant check (default 2s).
	SettleTime time.Duration
	// Seed makes fault schedules reproducible.
	Seed uint64
}

// Result summarizes a chaos run.
type Result struct {
	FaultsInjected  int
	Requests        uint64
	Errors          uint64
	InvariantErrors []string
	// LongestOutage is the longest stretch of consecutive workload errors
	// observed, as a proxy for unavailability.
	LongestOutage time.Duration
}

// Failed reports whether the run detected a correctness problem (invariant
// violations). Transient workload errors during crashes are not failures.
func (r *Result) Failed() bool { return len(r.InvariantErrors) > 0 }

// Run executes the chaos schedule and returns findings.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.Surface == nil && opts.Deployment != nil {
		opts.Surface = opts.Deployment
	}
	if opts.Surface == nil {
		return nil, fmt.Errorf("chaos: no deployment")
	}
	if opts.Workload == nil {
		return nil, fmt.Errorf("chaos: no workload")
	}
	if opts.Faults <= 0 {
		opts.Faults = 5
	}
	if opts.MeanBetweenFaults <= 0 {
		opts.MeanBetweenFaults = 200 * time.Millisecond
	}
	if opts.WorkloadParallelism <= 0 {
		opts.WorkloadParallelism = 4
	}
	if opts.SettleTime <= 0 {
		opts.SettleTime = 2 * time.Second
	}
	if len(opts.FaultKinds) == 0 {
		opts.FaultKinds = []Fault{CrashReplica}
	}
	if opts.DegradeDelay <= 0 {
		opts.DegradeDelay = 200 * time.Millisecond
	}
	if opts.DegradeDuration <= 0 {
		opts.DegradeDuration = 500 * time.Millisecond
	}
	if opts.BatchStall <= 0 {
		opts.BatchStall = 2 * time.Millisecond
	}
	if opts.ReadStall <= 0 {
		opts.ReadStall = 2 * time.Millisecond
	}
	clk := clock.Or(opts.Clock)
	rng := rand.New(rand.NewPCG(opts.Seed, 0xc0ffee))

	targets := opts.TargetGroups
	if len(targets) == 0 {
		targets = append(targets, opts.Surface.Groups()...)
		sort.Strings(targets)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("chaos: no target groups with replicas")
	}

	res := &Result{}
	var reqs, errs atomic.Uint64
	var restoreWG sync.WaitGroup // outstanding degrade-fault restorations

	// Outage tracking: the start of the current error streak.
	var outageMu sync.Mutex
	var outageStart time.Time
	var longest time.Duration
	noteResult := func(err error) {
		outageMu.Lock()
		defer outageMu.Unlock()
		if err != nil {
			if outageStart.IsZero() {
				outageStart = clk.Now()
			}
			return
		}
		if !outageStart.IsZero() {
			if d := clk.Now().Sub(outageStart); d > longest {
				longest = d
			}
			outageStart = time.Time{}
		}
	}

	wctx, stopWorkload := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < opts.WorkloadParallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wctx.Err() == nil {
				rctx, cancel := context.WithTimeout(wctx, 2*time.Second)
				err := opts.Workload(rctx)
				cancel()
				if wctx.Err() != nil {
					return
				}
				reqs.Add(1)
				if err != nil {
					errs.Add(1)
				}
				noteResult(err)
			}
		}()
	}

	// Inject faults.
	for i := 0; i < opts.Faults; i++ {
		if ctx.Err() != nil {
			break
		}
		pause := time.Duration(rng.ExpFloat64() * float64(opts.MeanBetweenFaults))
		select {
		case <-clk.After(pause):
		case <-ctx.Done():
		}

		group := targets[rng.IntN(len(targets))]
		replicaIDs := opts.Surface.GroupReplicas(group)
		if len(replicaIDs) == 0 {
			continue
		}
		victim := replicaIDs[rng.IntN(len(replicaIDs))]
		switch opts.FaultKinds[rng.IntN(len(opts.FaultKinds))] {
		case CrashReplica:
			if opts.Surface.KillReplica(victim) {
				res.FaultsInjected++
			}
		case DegradeReplica:
			if opts.Surface.DegradeReplica(victim, opts.DegradeDelay) {
				res.FaultsInjected++
				restoreWG.Add(1)
				timer := clk.AfterFunc(opts.DegradeDuration, func() {
					defer restoreWG.Done()
					opts.Surface.DegradeReplica(victim, 0)
				})
				defer timer.Stop()
			}
		case DegradeBatching:
			if opts.Surface.DegradeBatching(victim, opts.BatchStall) {
				res.FaultsInjected++
				restoreWG.Add(1)
				timer := clk.AfterFunc(opts.DegradeDuration, func() {
					defer restoreWG.Done()
					opts.Surface.DegradeBatching(victim, 0)
				})
				defer timer.Stop()
			}
		case StallRead:
			if opts.Surface.StallReads(victim, opts.ReadStall) {
				res.FaultsInjected++
				restoreWG.Add(1)
				timer := clk.AfterFunc(opts.DegradeDuration, func() {
					defer restoreWG.Done()
					opts.Surface.StallReads(victim, 0)
				})
				defer timer.Stop()
			}
		}
	}

	// Heal every outstanding degradation, let the manager heal crashes,
	// then run the invariant.
	restoreWG.Wait()
	clk.Sleep(opts.SettleTime)
	stopWorkload()
	wg.Wait()

	res.Requests = reqs.Load()
	res.Errors = errs.Load()
	outageMu.Lock()
	if !outageStart.IsZero() {
		if d := clk.Now().Sub(outageStart); d > longest {
			longest = d
		}
	}
	res.LongestOutage = longest
	outageMu.Unlock()

	if opts.Invariant != nil {
		ictx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := opts.Invariant(ictx); err != nil {
			res.InvariantErrors = append(res.InvariantErrors, err.Error())
		}
	}
	return res, nil
}
