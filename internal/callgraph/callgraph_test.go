package callgraph

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tracing"
)

func TestRecordAndEdges(t *testing.T) {
	c := NewCollector()
	c.Record("A", "B", "M", 10*time.Microsecond, 100, true, false)
	c.Record("A", "B", "M", 30*time.Microsecond, 200, true, true)
	c.Record("", "A", "Entry", time.Millisecond, 0, false, false)

	edges := c.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %d", len(edges))
	}
	// Sorted: ("", A, Entry) then (A, B, M).
	ab := edges[1]
	if ab.Calls != 2 || ab.Errors != 1 || ab.Bytes != 300 || ab.Remote != 2 {
		t.Errorf("edge = %+v", ab)
	}
	if ab.MeanLatency() != 20*time.Microsecond {
		t.Errorf("mean = %v", ab.MeanLatency())
	}
}

func TestDrainResets(t *testing.T) {
	c := NewCollector()
	c.Record("A", "B", "M", time.Microsecond, 1, false, false)
	first := c.Drain()
	if len(first) != 1 {
		t.Fatalf("drain = %d", len(first))
	}
	if len(c.Edges()) != 0 {
		t.Error("collector not reset by Drain")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.Record("X", "Y", "M", time.Microsecond, 1, true, false)
	b.Record("X", "Y", "M", 3*time.Microsecond, 2, true, false)
	b.Record("Y", "Z", "N", time.Microsecond, 1, false, false)
	a.Merge(b.Drain())
	edges := a.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %d", len(edges))
	}
	if edges[0].Calls != 2 || edges[0].Bytes != 3 {
		t.Errorf("merged edge = %+v", edges[0])
	}
}

func TestChattyPairs(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Record("A", "B", "M", time.Microsecond, 10, true, false)
	}
	for i := 0; i < 3; i++ {
		c.Record("B", "A", "Callback", time.Microsecond, 10, true, false)
	}
	c.Record("A", "C", "M", time.Microsecond, 10, true, false)

	pairs := c.Analyze().ChattyPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// A<->B aggregates both directions: 13 calls.
	if pairs[0].A != "A" || pairs[0].B != "B" || pairs[0].Calls != 13 {
		t.Errorf("top pair = %+v", pairs[0])
	}
}

func TestBottlenecks(t *testing.T) {
	c := NewCollector()
	c.Record("F", "Slow", "M", 100*time.Millisecond, 0, true, false)
	c.Record("F", "Fast", "M", time.Millisecond, 0, true, false)
	c.Record("F", "Fast", "M", time.Millisecond, 0, true, false)
	b := c.Analyze().Bottlenecks()
	if b[0].Component != "Slow" {
		t.Errorf("bottleneck order: %+v", b)
	}
}

func TestDot(t *testing.T) {
	c := NewCollector()
	c.Record("pkg/A", "pkg/B", "M", time.Microsecond, 1, true, false)
	dot := c.Analyze().Dot()
	for _, want := range []string{"digraph", `"A" -> "B"`, `label="1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Record("A", "B", "M", time.Microsecond, 1, true, false)
			}
		}()
	}
	wg.Wait()
	edges := c.Edges()
	if len(edges) != 1 || edges[0].Calls != 8000 {
		t.Errorf("edges = %+v", edges)
	}
}

func TestCriticalPath(t *testing.T) {
	// Trace: root (10ms) -> child1 (2ms, ends at 3ms), child2 (6ms, ends
	// at 9ms) -> grandchild (5ms).
	spans := []tracing.Span{
		{Trace: 1, ID: 1, Parent: 0, Component: "Frontend", StartNanos: 0, EndNanos: 10e6},
		{Trace: 1, ID: 2, Parent: 1, Component: "Fast", StartNanos: 1e6, EndNanos: 3e6},
		{Trace: 1, ID: 3, Parent: 1, Component: "Slow", StartNanos: 3e6, EndNanos: 9e6},
		{Trace: 1, ID: 4, Parent: 3, Component: "Deep", StartNanos: 3.5e6, EndNanos: 8.5e6},
	}
	path := CriticalPath(spans)
	if len(path) != 3 {
		t.Fatalf("path = %d spans", len(path))
	}
	if path[0].Component != "Frontend" || path[1].Component != "Slow" || path[2].Component != "Deep" {
		t.Errorf("path = %s -> %s -> %s", path[0].Component, path[1].Component, path[2].Component)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if CriticalPath(nil) != nil {
		t.Error("critical path of nothing")
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Record("A", "B", "M", time.Microsecond, 1, true, false) // must not panic
}
