// Package callgraph builds the fine-grained component call graph the paper
// describes in §5.1: who calls whom, how often, how many bytes cross each
// edge, and how long calls take. The runtime feeds it from stubs; the
// manager uses it to identify chatty component pairs (candidates for
// co-location), bottleneck components, and the critical path of a request.
package callgraph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/tracing"
)

// An Edge aggregates statistics for calls from one component to another.
// "client" is the synthetic caller for calls entering from outside any
// component (e.g. an HTTP front door).
type Edge struct {
	Caller string `tag:"1"`
	Callee string `tag:"2"`
	Method string `tag:"3"`

	Calls      uint64 `tag:"4"`
	Errors     uint64 `tag:"5"`
	Bytes      uint64 `tag:"6"` // serialized request+response bytes
	TotalNanos int64  `tag:"7"` // sum of call latencies
	Remote     uint64 `tag:"8"` // calls that crossed a process boundary
}

// MeanLatency returns the average latency of calls on this edge.
func (e *Edge) MeanLatency() time.Duration {
	if e.Calls == 0 {
		return 0
	}
	return time.Duration(e.TotalNanos / int64(e.Calls))
}

type edgeKey struct {
	caller, callee, method string
}

// A Collector accumulates edges. It is safe for concurrent use and cheap
// enough to run always-on.
type Collector struct {
	mu    sync.Mutex
	edges map[edgeKey]*Edge
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{edges: map[edgeKey]*Edge{}}
}

// Record adds one call observation.
func (c *Collector) Record(caller, callee, method string, d time.Duration, bytes int, remote, errored bool) {
	if c == nil {
		return
	}
	k := edgeKey{caller, callee, method}
	c.mu.Lock()
	e := c.edges[k]
	if e == nil {
		e = &Edge{Caller: caller, Callee: callee, Method: method}
		c.edges[k] = e
	}
	e.Calls++
	e.TotalNanos += d.Nanoseconds()
	e.Bytes += uint64(bytes)
	if remote {
		e.Remote++
	}
	if errored {
		e.Errors++
	}
	c.mu.Unlock()
}

// Edges returns a copy of all edges, sorted by (caller, callee, method).
func (c *Collector) Edges() []Edge {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Edge, 0, len(c.edges))
	for _, e := range c.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Method < b.Method
	})
	return out
}

// Reset discards all recorded edges.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.edges = map[edgeKey]*Edge{}
	c.mu.Unlock()
}

// Drain atomically returns all recorded edges and resets the collector.
// Proclets use it to ship deltas to the manager.
func (c *Collector) Drain() []Edge {
	c.mu.Lock()
	edges := c.edges
	c.edges = map[edgeKey]*Edge{}
	c.mu.Unlock()
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Method < b.Method
	})
	return out
}

// Merge folds a batch of edges (e.g. shipped from another replica) into c.
func (c *Collector) Merge(batch []Edge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, in := range batch {
		k := edgeKey{in.Caller, in.Callee, in.Method}
		e := c.edges[k]
		if e == nil {
			cp := in
			c.edges[k] = &cp
			continue
		}
		e.Calls += in.Calls
		e.Errors += in.Errors
		e.Bytes += in.Bytes
		e.TotalNanos += in.TotalNanos
		e.Remote += in.Remote
	}
}

// A Graph is an analyzed snapshot of the call graph.
type Graph struct {
	Edges []Edge
}

// Analyze builds a Graph from the collector's current edges.
func (c *Collector) Analyze() *Graph {
	return &Graph{Edges: c.Edges()}
}

// Components returns all component names appearing in the graph, sorted.
func (g *Graph) Components() []string {
	set := map[string]bool{}
	for _, e := range g.Edges {
		if e.Caller != "" {
			set[e.Caller] = true
		}
		set[e.Callee] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// PairTraffic aggregates bidirectional traffic between unordered component
// pairs, used to find chatty pairs.
type PairTraffic struct {
	A, B  string
	Calls uint64
	Bytes uint64
}

// ChattyPairs returns component pairs ordered by descending call volume.
// These are the co-location candidates of §5.1.
func (g *Graph) ChattyPairs() []PairTraffic {
	agg := map[[2]string]*PairTraffic{}
	for _, e := range g.Edges {
		if e.Caller == "" || e.Caller == e.Callee {
			continue
		}
		a, b := e.Caller, e.Callee
		if a > b {
			a, b = b, a
		}
		k := [2]string{a, b}
		p := agg[k]
		if p == nil {
			p = &PairTraffic{A: a, B: b}
			agg[k] = p
		}
		p.Calls += e.Calls
		p.Bytes += e.Bytes
	}
	out := make([]PairTraffic, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].A+out[i].B < out[j].A+out[j].B
	})
	return out
}

// Load describes one component's aggregate call load.
type Load struct {
	Component  string
	Calls      uint64
	TotalNanos int64
}

// Bottlenecks returns components ordered by descending total busy time
// (sum of inbound call latencies): the components where requests spend the
// most time.
func (g *Graph) Bottlenecks() []Load {
	agg := map[string]*Load{}
	for _, e := range g.Edges {
		l := agg[e.Callee]
		if l == nil {
			l = &Load{Component: e.Callee}
			agg[e.Callee] = l
		}
		l.Calls += e.Calls
		l.TotalNanos += e.TotalNanos
	}
	out := make([]Load, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNanos != out[j].TotalNanos {
			return out[i].TotalNanos > out[j].TotalNanos
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Dot renders the graph in Graphviz dot format, with edges weighted by
// call volume. Useful for the CLI's "graph" subcommand and debugging.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph components {\n  rankdir=LR;\n")
	for _, c := range g.Components() {
		fmt.Fprintf(&b, "  %q;\n", shortName(c))
	}
	agg := map[[2]string]uint64{}
	for _, e := range g.Edges {
		caller := e.Caller
		if caller == "" {
			caller = "client"
		}
		agg[[2]string{caller, e.Callee}] += e.Calls
	}
	keys := make([][2]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n", shortName(k[0]), shortName(k[1]), agg[k])
	}
	b.WriteString("}\n")
	return b.String()
}

func shortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// CriticalPath reconstructs the longest-latency chain of spans in one
// trace: the sequence of calls that determined the request's end-to-end
// latency. Spans must all belong to the same trace.
func CriticalPath(spans []tracing.Span) []tracing.Span {
	if len(spans) == 0 {
		return nil
	}
	children := map[uint64][]tracing.Span{}
	byID := map[uint64]tracing.Span{}
	var roots []tracing.Span
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if _, ok := byID[s.Parent]; ok && s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	// The root with the longest duration anchors the path; then greedily
	// descend into the child with the latest end time, which is the one
	// that gated the parent's completion.
	sort.Slice(roots, func(i, j int) bool { return roots[i].Duration() > roots[j].Duration() })
	var path []tracing.Span
	cur := roots[0]
	for {
		path = append(path, cur)
		kids := children[cur.ID]
		if len(kids) == 0 {
			return path
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].EndNanos > kids[j].EndNanos })
		cur = kids[0]
	}
}
