// Client-side interceptor chain: the call path the paper assigns to the
// runtime (§5) — routing, health filtering, retries, hedging, transport —
// decomposed into ordered, individually replaceable stages instead of one
// monolithic Invoke. Each stage reads and advances a per-call *CallMeta;
// the chain is composed once per DataPlaneConn, so a call costs plain
// function indirection, not per-call closure construction.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codegen"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/tracing"
)

// CallMeta is the per-call state threaded through the client interceptor
// chain. The wire-visible subset — priority class, attempt ordinal, hedge
// marker, span context with its sampled bit — is encoded into the request
// header by the transport stage; the rest is routing and buffer state the
// stages coordinate through.
type CallMeta struct {
	// Component and Method identify the call; MethodID is its wire hash.
	Component string
	Method    *codegen.MethodSpec
	MethodID  rpc.MethodID

	// Shard carries the routing affinity key when HasShard is set.
	Shard    uint64
	HasShard bool

	// Priority is the method's admission class, from the
	// weaver:priority=... directive via codegen.MethodSpec.Priority.
	Priority rpc.Priority

	// Trace is the span context that rides the wire, including the root
	// tracer's sampling decision.
	Trace tracing.SpanContext

	// Attempt counts executing transport attempts (0 = first send) and is
	// carried on the wire; Sheds counts attempts the server refused
	// without executing (overload, drain), which consume a separate
	// budget and never threaten at-most-once semantics.
	Attempt int
	Sheds   int

	// Hedge marks this leg as a hedged duplicate.
	Hedge bool

	// Addr is the replica chosen for the current attempt.
	Addr string

	// balancer picks replicas; the route stage installs the component's
	// balancer and the breaker stage swaps in its health-filtered view.
	balancer routing.Balancer
	// tried records replicas already attempted, so retries prefer fresh
	// ones. Only the stage goroutine mutates it.
	tried map[string]bool

	// framed is the pooled request buffer (args behind PayloadHeadroom).
	// reusable reports it quiescent — false while an abandoned hedge leg
	// may still be writing from it; cloned marks a private retry copy.
	framed   []byte
	reusable bool
	cloned   bool
}

// ClientNext invokes the remainder of the client's interceptor chain for
// one attempt description.
type ClientNext func(ctx context.Context, m *CallMeta) (*rpc.Response, error)

// A ClientInterceptor is one composable stage of the client call path.
// Built-in stages run in the order route → breaker → (custom stages) →
// retry → hedge → transport; custom stages from ConnOptions.Interceptors
// therefore see every call once, before any retrying or hedging fans it
// out into attempts.
type ClientInterceptor func(ctx context.Context, m *CallMeta, next ClientNext) (*rpc.Response, error)

// chainClient composes stages around a terminal transport, outermost
// first.
func chainClient(stages []ClientInterceptor, terminal ClientNext) ClientNext {
	next := terminal
	for i := len(stages) - 1; i >= 0; i-- {
		ic, inner := stages[i], next
		next = func(ctx context.Context, m *CallMeta) (*rpc.Response, error) {
			return ic(ctx, m, inner)
		}
	}
	return next
}

// routeStage installs the component's balancer as the call's replica
// picker.
func (c *DataPlaneConn) routeStage(ctx context.Context, m *CallMeta, next ClientNext) (*rpc.Response, error) {
	m.balancer = c.balancer
	return next(ctx, m)
}

// breakerStage swaps the picker for the breaker group's health-filtered
// view, so attempts route around replicas whose breaker is open (the
// group probes them with Ping until they recover).
func (c *DataPlaneConn) breakerStage(ctx context.Context, m *CallMeta, next ClientNext) (*rpc.Response, error) {
	m.balancer = c.pick
	return next(ctx, m)
}

// retryStage owns the attempt loop: per attempt it picks a replica
// (waiting out NoReplicaGrace when the set is empty, preferring replicas
// not yet tried) and classifies failures. Server sheds and unavailable
// replies never executed, so they draw on a budget separate from
// executing attempts — which at-most-once methods get exactly one of.
func (c *DataPlaneConn) retryStage(ctx context.Context, m *CallMeta, next ClientNext) (*rpc.Response, error) {
	execBudget := c.opts.TransportRetries
	if m.Method.NoRetry {
		// Non-idempotent method (weaver:noretry): at-most-once delivery.
		execBudget = 1
	}
	shedBudget := c.opts.TransportRetries

	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		addr, err := c.pickWithGrace(ctx, m.balancer, m.Shard, m.HasShard)
		if err != nil {
			return nil, err
		}
		// Prefer an untried replica on retries, but accept a repeat if the
		// balancer has only one choice.
		if (m.Attempt > 0 || m.Sheds > 0) && m.tried[addr] {
			for i := 0; i < 4 && m.tried[addr]; i++ {
				if a2, err2 := m.balancer.Pick(m.Shard, m.HasShard); err2 == nil {
					addr = a2
				} else {
					break
				}
			}
		}
		m.tried[addr] = true
		m.Addr = addr

		resp, err := next(ctx, m)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, rpc.ErrOverloaded) || errors.Is(err, rpc.ErrUnavailable) {
			m.Sheds++
			if m.Sheds >= shedBudget {
				break
			}
		} else {
			var te *rpc.TransportError
			if !errors.As(err, &te) {
				return nil, err // context cancellation or application-visible error
			}
			m.Attempt++
			if m.Attempt >= execBudget {
				break
			}
		}
		if !m.reusable && !m.cloned {
			// An abandoned hedge leg may still be writing from the shared
			// buffer; retry from a private copy of the args region (the
			// headroom is per-attempt scratch).
			dup := make([]byte, len(m.framed))
			copy(dup[rpc.PayloadHeadroom:], m.framed[rpc.PayloadHeadroom:])
			m.framed = dup
			m.cloned = true
		}
	}
	return nil, fmt.Errorf("core: %s.%s failed after %d attempts: %w",
		ShortName(m.Component), m.Method.Name, m.Attempt+m.Sheds, lastErr)
}

// hedgeStage races a second attempt against a different replica when the
// first has not answered within the hedge delay (adaptive p99 unless
// configured). First response wins; the loser's context is canceled,
// which propagates an explicit cancel frame — and servers may drop a
// queued hedge whose caller has thus gone away. Only the first attempt of
// an idempotent method is hedged.
//
// Each racing leg runs on a private copy of the meta: the hedge leg also
// gets a private copy of the request buffer, because both legs fill the
// framing headroom in place. When the call is decided while the primary
// leg is still writing, the shared buffer is marked non-reusable.
func (c *DataPlaneConn) hedgeStage(ctx context.Context, m *CallMeta, next ClientNext) (*rpc.Response, error) {
	if m.Method.NoRetry || m.Attempt > 0 || m.Sheds > 0 {
		return next(ctx, m)
	}
	delay := c.hedgeDelay()
	if delay <= 0 {
		return next(ctx, m)
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser is abandoned and its server told to stop

	type attempt struct {
		meta  *CallMeta
		start int64
		out   *rpc.Response
		err   error
		leg   int // 0 = primary
	}
	results := make(chan attempt, 2) // buffered: losers must not leak
	launch := func(meta *CallMeta, leg int) {
		start := time.Now().UnixNano()
		go func() {
			out, err := next(hctx, meta)
			results <- attempt{meta: meta, start: start, out: out, err: err, leg: leg}
		}()
	}
	pm := *m
	launch(&pm, 0)
	outstanding := 1
	primaryDone := false
	hedged := false

	timer := c.opts.Clock.NewTimer(delay)
	defer timer.Stop()

	// drain releases responses from legs that lose after we have decided
	// the call (so their pooled buffers are not stranded) and records
	// their canceled loser spans.
	drain := func(n int) {
		if n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					a := <-results
					if a.out != nil {
						a.out.Release()
					}
					c.recordHedgeLoser(a.meta, a.start)
				}
			}()
		}
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.leg == 0 {
				primaryDone = true
			}
			if r.err == nil {
				if hedged && r.leg != 0 {
					c.hedgeWins.Add(1)
					c.mHedgeWins.Inc()
				}
				if !primaryDone {
					m.reusable = false
				}
				drain(outstanding)
				return r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
			// The other leg is still running; let it decide the call.
		case <-timer.C():
			if hedged {
				continue
			}
			hedged = true
			addr, err := m.balancer.Pick(m.Shard, m.HasShard)
			if err != nil || addr == m.Addr {
				continue // no distinct replica to hedge to
			}
			m.tried[addr] = true
			c.hedges.Add(1)
			c.mHedges.Inc()
			// Copy only the args region: the primary leg mutates the
			// headroom concurrently, and the hedge leg fills its own.
			dup := make([]byte, len(m.framed))
			copy(dup[rpc.PayloadHeadroom:], m.framed[rpc.PayloadHeadroom:])
			hm := *m
			hm.Hedge = true
			hm.Addr = addr
			hm.framed = dup
			launch(&hm, 1)
			outstanding++
		}
	}
}

// recordHedgeLoser records the canceled span of a hedge-race leg that
// lost after the call was decided, as a child of the call's span.
func (c *DataPlaneConn) recordHedgeLoser(m *CallMeta, startNanos int64) {
	tr := c.opts.Tracer
	if tr == nil || !m.Trace.Valid() {
		return
	}
	leg := m.Trace.Child()
	tr.RecordSampled(tracing.Span{
		Trace:      uint64(leg.Trace),
		ID:         uint64(leg.Span),
		Parent:     uint64(leg.Parent),
		Component:  ShortName(m.Component),
		Method:     m.Method.Name,
		StartNanos: startNanos,
		EndNanos:   time.Now().UnixNano(),
		Err:        "canceled (hedge loser)",
		Remote:     true,
	}, m.Trace.Sampled)
}

// transport is the terminal stage: one attempt against one replica, with
// the call's wire metadata (span context, priority, attempt, hedge flag)
// mapped onto the rpc layer. Outcomes feed the replica's breaker inside
// callOnce.
func (c *DataPlaneConn) transport(ctx context.Context, m *CallMeta) (*rpc.Response, error) {
	var callOpts rpc.CallOptions
	if m.HasShard {
		callOpts.Shard = m.Shard
	}
	callOpts.Trace = m.Trace
	attempt := m.Attempt
	if attempt > 255 {
		attempt = 255
	}
	callOpts.Meta = rpc.CallMeta{Priority: m.Priority, Attempt: uint8(attempt), Hedge: m.Hedge}
	return c.callOnce(ctx, m.Addr, m.MethodID, m.framed, callOpts)
}
