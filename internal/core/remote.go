package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/codegen"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/tracing"
)

// DataPlaneConn invokes component methods over the custom TCP data plane
// (internal/rpc) using the unversioned codec. One DataPlaneConn serves one
// component; the balancer chooses among the component's replicas per call,
// and rpc.Clients are cached per replica address.
//
// Transport failures are retried (against a different replica when the
// balancer offers one) up to a small fixed budget; application errors are
// never retried here — they are decoded from the results payload by the
// generated stub.
type DataPlaneConn struct {
	component string
	balancer  routing.Balancer
	opts      rpc.ClientOptions

	mu      sync.Mutex
	clients map[string]*rpc.Client
}

// transportRetries is the number of attempts made for transport-level
// failures before giving up. Retrying at-most-once semantics for
// application logic is preserved because only delivery failures retry.
const transportRetries = 3

// noReplicaGrace is how long a call waits for a component's replica set to
// become non-empty before failing.
const noReplicaGrace = 3 * time.Second

// NewDataPlaneConn returns a data-plane connection for the named component,
// picking replicas with balancer.
func NewDataPlaneConn(component string, balancer routing.Balancer, opts rpc.ClientOptions) *DataPlaneConn {
	return &DataPlaneConn{
		component: component,
		balancer:  balancer,
		opts:      opts,
		clients:   map[string]*rpc.Client{},
	}
}

// Balancer returns the conn's balancer, so deployers can push replica-set
// and assignment updates into it.
func (c *DataPlaneConn) Balancer() routing.Balancer { return c.balancer }

// Close closes all cached clients.
func (c *DataPlaneConn) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = map[string]*rpc.Client{}
}

func (c *DataPlaneConn) clientFor(addr string) *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.clients[addr]
	if cl == nil {
		cl = rpc.NewClient(addr, c.opts)
		c.clients[addr] = cl
	}
	return cl
}

// Invoke implements codegen.Conn.
func (c *DataPlaneConn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	var enc codec.Encoder
	codec.EncodePtr(&enc, args)
	payload := enc.Data()

	var callOpts rpc.CallOptions
	if hasShard {
		callOpts.Shard = shard
	}
	if sc, ok := tracing.FromContext(ctx); ok {
		callOpts.Trace = sc
	}

	method := rpc.MethodKey(c.component + "." + m.Name)
	attempts := transportRetries
	if m.NoRetry {
		// Non-idempotent method (weaver:noretry): at-most-once delivery.
		attempts = 1
	}
	var lastErr error
	tried := map[string]bool{}
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		addr, err := c.balancer.Pick(shard, hasShard)
		if errors.Is(err, routing.ErrNoReplicas) {
			// Every replica is gone — typically mid-restart after a crash
			// (paper §3.1: replicas "may fail and get restarted"). Wait
			// briefly for the manager to publish fresh routing rather than
			// failing the caller immediately.
			waitUntil := time.Now().Add(noReplicaGrace)
			for err != nil && time.Now().Before(waitUntil) {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(20 * time.Millisecond):
				}
				addr, err = c.balancer.Pick(shard, hasShard)
			}
		}
		if err != nil {
			return err
		}
		// Prefer an untried replica on retries, but accept a repeat if the
		// balancer has only one choice.
		if attempt > 0 && tried[addr] {
			for i := 0; i < 4 && tried[addr]; i++ {
				if a2, err2 := c.balancer.Pick(shard, hasShard); err2 == nil {
					addr = a2
				} else {
					break
				}
			}
		}
		tried[addr] = true

		out, err := c.clientFor(addr).Call(ctx, method, payload, callOpts)
		if err == nil {
			return codec.Unmarshal(out, res)
		}
		var te *rpc.TransportError
		if !errors.As(err, &te) {
			return err // context cancellation or application-visible error
		}
		lastErr = err
	}
	return fmt.Errorf("core: %s.%s failed after %d attempts: %w", ShortName(c.component), m.Name, attempts, lastErr)
}

// HostComponents exposes the implementations of the runtime's hosted
// components on srv, using the unversioned codec for payloads. It
// initializes each hosted component.
func HostComponents(ctx context.Context, r *Runtime, srv *rpc.Server, components []string) error {
	for _, name := range components {
		reg, ok := codegen.Find(name)
		if !ok {
			return fmt.Errorf("core: hosting unknown component %q", name)
		}
		impl, err := r.LocalImpl(ctx, name)
		if err != nil {
			return err
		}
		served := r.opts.Metrics.Counter("component.served." + ShortName(name))
		latency := r.opts.Metrics.Histogram("component.served_latency_us."+ShortName(name), nil)
		for _, m := range reg.Methods {
			m := m
			srv.Register(reg.FullMethod(m.Name), func(ctx context.Context, argBytes []byte) ([]byte, error) {
				served.Inc()
				start := time.Now()
				defer func() { latency.Put(float64(time.Since(start).Microseconds())) }()
				args := m.NewArgs()
				if err := codec.Unmarshal(argBytes, args); err != nil {
					return nil, fmt.Errorf("bad arguments for %s.%s: %w", ShortName(reg.Name), m.Name, err)
				}
				res := m.NewRes()
				m.Do(ctx, impl, args, res)
				var enc codec.Encoder
				codec.EncodePtr(&enc, res)
				out := make([]byte, enc.Len())
				copy(out, enc.Data())
				return out, nil
			})
		}
	}
	return nil
}
