package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/codec"
	"repro/internal/codegen"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/tracing"
)

// DataPlaneConn invokes component methods over the custom TCP data plane
// (internal/rpc) using the unversioned codec. One DataPlaneConn serves one
// component; the balancer chooses among the component's replicas per call,
// and rpc.Clients are cached per replica address.
//
// The conn owns the resilience mechanics the paper assigns to the runtime
// (§5): transport failures are retried (against a different replica when
// the balancer offers one) up to a small fixed budget; a per-replica
// circuit breaker remembers recent outcomes and routes traffic around
// replicas that keep failing, probing them with Ping until they recover;
// requests shed by server admission control (rpc.ErrOverloaded) are
// retried elsewhere without counting against at-most-once semantics,
// because they never executed; and idempotent methods may be hedged — a
// second attempt to a different replica after a p99-derived delay, first
// response wins, loser canceled. Application errors are never retried
// here — they are decoded from the results payload by the generated stub.
//
// These mechanics are organized as an interceptor chain (see
// interceptor.go): route → breaker → custom stages → retry → hedge →
// transport, composed once at construction and threaded by a per-call
// *CallMeta whose wire-visible fields (priority, attempt, hedge, sampled
// trace) ride the request header.
type DataPlaneConn struct {
	component string
	balancer  routing.Balancer
	pick      routing.Balancer // balancer filtered through breaker health
	opts      ConnOptions
	breakers  *rpc.BreakerGroup
	lat       *latencyTracker
	chain     ClientNext

	mu      sync.Mutex
	clients map[string]*rpc.Client

	hedges    atomic.Uint64
	hedgeWins atomic.Uint64

	// Metrics (shared across conns; per-conn counts are the atomics above).
	mHedges    *metrics.Counter
	mHedgeWins *metrics.Counter
	mOverload  *metrics.Counter
	mUnavail   *metrics.Counter
}

// ConnOptions configures a DataPlaneConn.
type ConnOptions struct {
	// Client configures the per-replica rpc clients.
	Client rpc.ClientOptions

	// Breaker tunes the per-replica circuit breakers.
	Breaker rpc.BreakerOptions
	// DisableBreaker turns off health-aware routing.
	DisableBreaker bool

	// HedgeAfter is the fixed delay before an idempotent call is hedged to
	// a second replica. Zero selects an adaptive delay: the rolling p99 of
	// recent successful calls (no hedging until enough samples accrue).
	HedgeAfter time.Duration
	// DisableHedging turns hedging off entirely.
	DisableHedging bool

	// TransportRetries is the attempt budget for transport-level failures
	// (default 3). At-most-once methods always get exactly one executing
	// attempt regardless.
	TransportRetries int

	// NoReplicaGrace is how long a call waits for the component's replica
	// set to become non-empty before failing (default 3s). Tests inject a
	// short grace so they need not wait out the production default.
	NoReplicaGrace time.Duration

	// Clock supplies the scheduling timers (replica-wait polling, hedge
	// delays). Nil means the wall clock.
	Clock clock.Clock

	// Tracer, when set, records spans for hedge-race legs that lose after
	// the call is decided (so traces show the canceled duplicate).
	Tracer *tracing.Recorder

	// Interceptors are custom client stages, spliced into the chain after
	// the built-in route and breaker stages and before retry/hedge fan-out.
	Interceptors []ClientInterceptor
}

func (o *ConnOptions) fill() {
	if o.TransportRetries <= 0 {
		o.TransportRetries = 3
	}
	if o.NoReplicaGrace <= 0 {
		o.NoReplicaGrace = 3 * time.Second
	}
	o.Clock = clock.Or(o.Clock)
	if o.Client.Clock == nil {
		// The rpc client's own timers (ping timeout) follow the conn's
		// injected clock unless the caller pinned one explicitly.
		o.Client.Clock = o.Clock
	}
}

// hedgeMinDelay floors the adaptive hedge delay: when calls complete in
// microseconds, firing a hedge that early would only double traffic.
const hedgeMinDelay = 500 * time.Microsecond

// hedgeMinSamples is how many successful calls the adaptive delay needs
// before hedging activates.
const hedgeMinSamples = 64

// NewDataPlaneConn returns a data-plane connection for the named component,
// picking replicas with balancer, with default resilience options.
func NewDataPlaneConn(component string, balancer routing.Balancer, opts rpc.ClientOptions) *DataPlaneConn {
	return NewDataPlaneConnWith(component, balancer, ConnOptions{Client: opts})
}

// NewDataPlaneConnWith returns a data-plane connection with full control
// over retry, breaker, and hedging behavior.
func NewDataPlaneConnWith(component string, balancer routing.Balancer, opts ConnOptions) *DataPlaneConn {
	opts.fill()
	c := &DataPlaneConn{
		component:  component,
		balancer:   balancer,
		pick:       balancer,
		opts:       opts,
		lat:        newLatencyTracker(),
		clients:    map[string]*rpc.Client{},
		mHedges:    metrics.Default.Counter("core.dataplane.hedges"),
		mHedgeWins: metrics.Default.Counter("core.dataplane.hedge_wins"),
		mOverload:  metrics.Default.Counter("core.dataplane.overloaded"),
		mUnavail:   metrics.Default.Counter("core.dataplane.unavailable"),
	}
	if !opts.DisableBreaker {
		c.breakers = rpc.NewBreakerGroup(opts.Breaker)
		c.breakers.SetProbe(func(ctx context.Context, addr string) error {
			return c.clientFor(addr).Ping(ctx)
		})
		c.pick = routing.NewHealthAware(balancer, c.breakers.Healthy)
	}
	// Compose the call path once; per-call cost is plain indirection.
	stages := []ClientInterceptor{c.routeStage}
	if !opts.DisableBreaker {
		stages = append(stages, c.breakerStage)
	}
	stages = append(stages, opts.Interceptors...)
	stages = append(stages, c.retryStage, c.hedgeStage)
	c.chain = chainClient(stages, c.transport)
	return c
}

// Balancer returns the conn's balancer, so deployers can push replica-set
// and assignment updates into it.
func (c *DataPlaneConn) Balancer() routing.Balancer { return c.balancer }

// BreakerState returns the breaker state for a replica address (closed
// when breakers are disabled or the address is unknown).
func (c *DataPlaneConn) BreakerState(addr string) rpc.BreakerState {
	if c.breakers == nil {
		return rpc.BreakerClosed
	}
	return c.breakers.State(addr)
}

// HedgeStats returns how many hedges this conn launched and how many were
// first to answer.
func (c *DataPlaneConn) HedgeStats() (launched, won uint64) {
	return c.hedges.Load(), c.hedgeWins.Load()
}

// Close closes all cached clients.
func (c *DataPlaneConn) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = map[string]*rpc.Client{}
}

func (c *DataPlaneConn) clientFor(addr string) *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.clients[addr]
	if cl == nil {
		cl = rpc.NewClient(addr, c.opts.Client)
		c.clients[addr] = cl
	}
	return cl
}

// pickWithGrace chooses a replica from b, waiting out NoReplicaGrace when
// the replica set is empty — typically mid-restart after a crash (paper
// §3.1: replicas "may fail and get restarted") — rather than failing the
// caller immediately. The wait respects context cancellation.
func (c *DataPlaneConn) pickWithGrace(ctx context.Context, b routing.Balancer, shard uint64, hasShard bool) (string, error) {
	addr, err := b.Pick(shard, hasShard)
	if !errors.Is(err, routing.ErrNoReplicas) {
		return addr, err
	}
	poll := 20 * time.Millisecond
	if c.opts.NoReplicaGrace < 5*poll {
		poll = c.opts.NoReplicaGrace / 5
	}
	clk := c.opts.Clock
	waitUntil := clk.Now().Add(c.opts.NoReplicaGrace)
	for err != nil && clk.Now().Before(waitUntil) {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-clk.After(poll):
		}
		addr, err = b.Pick(shard, hasShard)
	}
	return addr, err
}

// callOnce performs one attempt against one replica and feeds the outcome
// back to the replica's breaker. Cancellation of ctx (a hedge loser, or
// the caller giving up) is not held against the replica; a deadline that
// expired mid-call is, because slowness is exactly what the breaker needs
// to see.
func (c *DataPlaneConn) callOnce(ctx context.Context, addr string, method rpc.MethodID, framed []byte, callOpts rpc.CallOptions) (*rpc.Response, error) {
	start := time.Now()
	out, err := c.clientFor(addr).CallFramed(ctx, method, framed, callOpts)
	if err == nil {
		c.lat.add(time.Since(start))
		if c.breakers != nil {
			c.breakers.Report(addr, false)
		}
		return out, nil
	}
	if errors.Is(err, rpc.ErrOverloaded) {
		c.mOverload.Inc()
		if c.breakers != nil {
			c.breakers.Report(addr, true)
		}
		return nil, err
	}
	if errors.Is(err, rpc.ErrUnavailable) {
		// The replica is draining or no longer hosts the component (live
		// re-placement). The request never executed; steer the breaker away
		// and let the caller retry on a replica from the new epoch.
		c.mUnavail.Inc()
		if c.breakers != nil {
			c.breakers.Report(addr, true)
		}
		return nil, err
	}
	if errors.Is(err, context.Canceled) {
		return nil, err
	}
	var te *rpc.TransportError
	if errors.As(err, &te) || errors.Is(err, context.DeadlineExceeded) {
		if c.breakers != nil {
			c.breakers.Report(addr, true)
		}
	}
	return nil, err
}

// hedgeDelay returns the delay after which an idempotent call is hedged,
// or 0 when hedging should not fire.
func (c *DataPlaneConn) hedgeDelay() time.Duration {
	if c.opts.DisableHedging {
		return 0
	}
	if c.opts.HedgeAfter > 0 {
		return c.opts.HedgeAfter
	}
	d := c.lat.p99()
	if d > 0 && d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	return d
}

// Invoke implements codegen.Conn. Arguments are encoded once into a pooled
// encoder with transport headroom, so the request travels from codec to
// wire without copies; the response payload is decoded straight out of the
// transport's pooled read buffer and released afterwards. The call itself
// runs through the conn's interceptor chain, driven by a stack-allocated
// CallMeta.
func (c *DataPlaneConn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	enc := codec.GetEncoder()
	enc.Reserve(rpc.PayloadHeadroom)
	codec.EncodePtr(enc, args)
	meta := CallMeta{
		Component: c.component,
		Method:    m,
		MethodID:  rpc.MethodKey(c.component + "." + m.Name),
		Shard:     shard,
		HasShard:  hasShard,
		Priority:  rpc.Priority(m.Priority),
		framed:    enc.Framed(),
		reusable:  true,
		tried:     map[string]bool{},
	}
	if sc, ok := tracing.FromContext(ctx); ok {
		meta.Trace = sc
	}
	defer func() {
		// meta.reusable tracks whether enc's buffer is quiescent: a lost
		// hedge leg may still be blocked writing from it, in which case the
		// buffer can be neither pooled nor reused.
		if meta.reusable {
			codec.PutEncoder(enc)
		}
	}()

	resp, err := c.chain(ctx, &meta)
	if err != nil {
		return err
	}
	uerr := codec.Unmarshal(resp.Data(), res)
	resp.Release()
	return uerr
}

// latencyTracker keeps a small ring of recent successful call latencies
// and derives the p99 used as the adaptive hedge delay. The quantile is
// recomputed every few insertions and cached, keeping the hot path to a
// mutexed append.
type latencyTracker struct {
	mu        sync.Mutex
	samples   [128]time.Duration
	n         int // total adds, capped contribution to ring
	sinceCalc int
	cached    time.Duration
	// computed distinguishes "never recomputed" from a legitimately zero
	// p99: a zero sentinel in cached would force a re-sort on every call
	// whenever the true quantile rounds to 0.
	computed bool
	scratch  []time.Duration // reused across recomputes
}

func newLatencyTracker() *latencyTracker { return &latencyTracker{} }

func (t *latencyTracker) add(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%len(t.samples)] = d
	t.n++
	t.sinceCalc++
	t.mu.Unlock()
}

// p99 returns the cached 99th percentile of recent latencies, or 0 when
// fewer than hedgeMinSamples calls have completed. The quantile is
// recomputed after every 32 inserts; between recomputes it is a field read.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < hedgeMinSamples {
		return 0
	}
	if !t.computed || t.sinceCalc >= 32 {
		t.sinceCalc = 0
		t.computed = true
		size := t.n
		if size > len(t.samples) {
			size = len(t.samples)
		}
		if cap(t.scratch) < size {
			t.scratch = make([]time.Duration, size)
		}
		tmp := t.scratch[:size]
		copy(tmp, t.samples[:size])
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		t.cached = tmp[(size*99)/100]
	}
	return t.cached
}

// HostComponents exposes the implementations of the runtime's hosted
// components on srv, using the unversioned codec for payloads. It
// initializes each hosted component.
func HostComponents(ctx context.Context, r *Runtime, srv *rpc.Server, components []string) error {
	for _, name := range components {
		reg, ok := codegen.Find(name)
		if !ok {
			return fmt.Errorf("core: hosting unknown component %q", name)
		}
		impl, err := r.LocalImpl(ctx, name)
		if err != nil {
			return err
		}
		served := r.opts.Metrics.Counter("component.served." + ShortName(name))
		latency := r.opts.Metrics.Histogram("component.served_latency_us."+ShortName(name), nil)
		for _, m := range reg.Methods {
			m := m
			srv.RegisterFramed(reg.FullMethod(m.Name), func(ctx context.Context, argBytes []byte) ([]byte, rpc.BufOwner, error) {
				served.Inc()
				start := time.Now()
				defer func() { latency.Put(float64(time.Since(start).Microseconds())) }()
				var args any
				if m.ArgsPool != nil {
					args = m.ArgsPool.GetAny()
				} else {
					args = m.NewArgs()
				}
				if err := codec.Unmarshal(argBytes, args); err != nil {
					if m.ArgsPool != nil {
						m.ArgsPool.PutAny(args)
					}
					return nil, nil, fmt.Errorf("bad arguments for %s.%s: %w", ShortName(reg.Name), m.Name, err)
				}
				var res any
				if m.ResPool != nil {
					res = m.ResPool.GetAny()
				} else {
					res = m.NewRes()
				}
				m.Do(ctx, impl, args, res)
				// Encode the results into a pooled encoder with response
				// headroom; the transport frames it in place, writes it,
				// and releases the encoder (its Release is the BufOwner).
				enc := codec.GetEncoder()
				enc.Reserve(rpc.ResponseHeadroom)
				codec.EncodePtr(enc, res)
				if m.ArgsPool != nil {
					m.ArgsPool.PutAny(args)
				}
				if m.ResPool != nil {
					m.ResPool.PutAny(res)
				}
				return enc.Framed(), enc, nil
			})
		}
	}
	return nil
}

// UnhostComponent removes the named component's method handlers from srv,
// blocking until every in-flight call to them has drained (see
// rpc.Server.Unregister). Later calls for these methods receive
// rpc.ErrUnavailable, which clients treat as never-executed and retry on a
// replica from the new placement. The component implementation itself is
// not shut down; a re-host on this process reuses it.
func UnhostComponent(srv *rpc.Server, component string) error {
	reg, ok := codegen.Find(component)
	if !ok {
		return fmt.Errorf("core: unhosting unknown component %q", component)
	}
	for _, m := range reg.Methods {
		srv.Unregister(reg.FullMethod(m.Name))
	}
	return nil
}
