package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/codegen"
	"repro/internal/routing"
	"repro/internal/rpc"
)

// scriptedBalancer returns addresses in a fixed sequence, then repeats the
// last one.
type scriptedBalancer struct {
	seq []string
	i   atomic.Int64
}

func (b *scriptedBalancer) Pick(uint64, bool) (string, error) {
	i := int(b.i.Add(1)) - 1
	if i >= len(b.seq) {
		i = len(b.seq) - 1
	}
	return b.seq[i], nil
}

func (b *scriptedBalancer) Update([]string, *routing.Assignment) {}

func TestTransportRetryPolicy(t *testing.T) {
	// A live server and a dead address.
	srv := rpc.NewServer()
	var calls atomic.Int64
	spec := &codegen.MethodSpec{
		Name:    "M",
		NewArgs: func() any { return &struct{}{} },
		NewRes:  func() any { return &struct{}{} },
		Do:      func(context.Context, any, any, any) {},
	}
	srv.Register("retry_test/C.M", func(ctx context.Context, args []byte) ([]byte, error) {
		calls.Add(1)
		return nil, nil
	})
	live, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dead := "127.0.0.1:1" // nothing listens here

	t.Run("RetriableMethodFailsOver", func(t *testing.T) {
		conn := NewDataPlaneConn("retry_test/C", &scriptedBalancer{seq: []string{dead, live}}, rpc.ClientOptions{})
		defer conn.Close()
		var args, res struct{}
		if err := conn.Invoke(context.Background(), "retry_test/C", spec, &args, &res, 0, false); err != nil {
			t.Fatalf("retriable method failed despite a live replica: %v", err)
		}
		if calls.Load() == 0 {
			t.Fatal("server never reached")
		}
	})

	t.Run("NoRetryMethodFailsFast", func(t *testing.T) {
		before := calls.Load()
		noRetrySpec := &codegen.MethodSpec{
			Name:    "M",
			NewArgs: spec.NewArgs,
			NewRes:  spec.NewRes,
			Do:      spec.Do,
			NoRetry: true,
		}
		conn := NewDataPlaneConn("retry_test/C", &scriptedBalancer{seq: []string{dead, live}}, rpc.ClientOptions{})
		defer conn.Close()
		var args, res struct{}
		err := conn.Invoke(context.Background(), "retry_test/C", noRetrySpec, &args, &res, 0, false)
		if err == nil {
			t.Fatal("noretry method was retried to success; at-most-once violated")
		}
		if calls.Load() != before {
			t.Fatalf("noretry method reached the server %d extra times", calls.Load()-before)
		}
	})
}
