package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/codegen"
	"repro/internal/tracing"
)

// Two mutually-referencing components to exercise dependency handling.

type Ping interface {
	Ping(ctx context.Context) (string, error)
}

type Pong interface {
	Pong(ctx context.Context) (string, error)
}

var (
	pingInits atomic.Int32
	pongShuts atomic.Int32
)

type pingImpl struct {
	pong Pong // filled by the test fill function
}

func (p *pingImpl) Init(context.Context) error {
	pingInits.Add(1)
	return nil
}

func (p *pingImpl) Ping(ctx context.Context) (string, error) {
	if p.pong != nil {
		s, err := p.pong.Pong(ctx)
		return "ping-" + s, err
	}
	return "ping", nil
}

type pongImpl struct {
	ping Ping // set only in the cycle test
}

func (p *pongImpl) Pong(context.Context) (string, error) { return "pong", nil }
func (p *pongImpl) Shutdown(context.Context) error {
	pongShuts.Add(1)
	return nil
}

type pingStub struct {
	conn codegen.Conn
	m    *codegen.MethodSpec
}

type pingArgs struct{}
type pingRes struct {
	R0     string
	Err    string
	HasErr bool
}

func (s pingStub) Ping(ctx context.Context) (string, error) {
	var res pingRes
	if err := s.conn.Invoke(ctx, "core_test/Ping", s.m, &pingArgs{}, &res, 0, false); err != nil {
		return "", err
	}
	return res.R0, codegen.WireToError(res.Err, res.HasErr)
}

type pongStub struct {
	conn codegen.Conn
	m    *codegen.MethodSpec
}

func (s pongStub) Pong(ctx context.Context) (string, error) {
	var res pingRes
	if err := s.conn.Invoke(ctx, "core_test/Pong", s.m, &pingArgs{}, &res, 0, false); err != nil {
		return "", err
	}
	return res.R0, codegen.WireToError(res.Err, res.HasErr)
}

func init() {
	pingSpec := &codegen.MethodSpec{
		Name:    "Ping",
		NewArgs: func() any { return &pingArgs{} },
		NewRes:  func() any { return &pingRes{} },
		Do: func(ctx context.Context, impl, args, res any) {
			r := res.(*pingRes)
			var err error
			r.R0, err = impl.(Ping).Ping(ctx)
			r.Err, r.HasErr = codegen.ErrorToWire(err)
		},
	}
	codegen.Register(codegen.Registration{
		Name:    "core_test/Ping",
		Iface:   reflect.TypeOf((*Ping)(nil)).Elem(),
		Impl:    reflect.TypeOf(pingImpl{}),
		Methods: []*codegen.MethodSpec{pingSpec},
		ClientStub: func(conn codegen.Conn) any {
			return pingStub{conn: conn, m: pingSpec}
		},
	})

	pongSpec := &codegen.MethodSpec{
		Name:    "Pong",
		NewArgs: func() any { return &pingArgs{} },
		NewRes:  func() any { return &pingRes{} },
		Do: func(ctx context.Context, impl, args, res any) {
			r := res.(*pingRes)
			var err error
			r.R0, err = impl.(Pong).Pong(ctx)
			r.Err, r.HasErr = codegen.ErrorToWire(err)
		},
	}
	codegen.Register(codegen.Registration{
		Name:    "core_test/Pong",
		Iface:   reflect.TypeOf((*Pong)(nil)).Elem(),
		Impl:    reflect.TypeOf(pongImpl{}),
		Methods: []*codegen.MethodSpec{pongSpec},
		ClientStub: func(conn codegen.Conn) any {
			return pongStub{conn: conn, m: pongSpec}
		},
	})
}

// fillWithDep injects Pong into pingImpl via resolve.
func fillWithDep(impl any, name string, resolve func(reflect.Type) (any, error)) error {
	if p, ok := impl.(*pingImpl); ok {
		dep, err := resolve(reflect.TypeOf((*Pong)(nil)).Elem())
		if err != nil {
			return err
		}
		p.pong = dep.(Pong)
	}
	return nil
}

func TestLocalResolutionAndInit(t *testing.T) {
	before := pingInits.Load()
	rt := NewRuntime(Options{Fill: fillWithDep})
	ctx := context.Background()
	v, err := rt.Get(ctx, reflect.TypeOf((*Ping)(nil)).Elem())
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.(Ping).Ping(ctx)
	if err != nil || got != "ping-pong" {
		t.Errorf("Ping = %q, %v", got, err)
	}
	if pingInits.Load() != before+1 {
		t.Errorf("Init ran %d times", pingInits.Load()-before)
	}
	// Second Get: no re-init.
	if _, err := rt.Get(ctx, reflect.TypeOf((*Ping)(nil)).Elem()); err != nil {
		t.Fatal(err)
	}
	if pingInits.Load() != before+1 {
		t.Error("component re-initialized")
	}
}

func TestFastLocalReturnsImpl(t *testing.T) {
	rt := NewRuntime(Options{Fill: fillWithDep, FastLocal: true})
	ctx := context.Background()
	v, err := rt.Get(ctx, reflect.TypeOf((*Pong)(nil)).Elem())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(*pongImpl); !ok {
		t.Errorf("FastLocal Get returned %T, want *pongImpl", v)
	}
}

func TestShutdownPropagates(t *testing.T) {
	before := pongShuts.Load()
	rt := NewRuntime(Options{Fill: fillWithDep})
	ctx := context.Background()
	if _, err := rt.Get(ctx, reflect.TypeOf((*Pong)(nil)).Elem()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if pongShuts.Load() != before+1 {
		t.Error("Shutdown not invoked")
	}
}

func TestUnknownInterface(t *testing.T) {
	rt := NewRuntime(Options{Fill: fillWithDep})
	type Unknown interface{ Nope() }
	_, err := rt.Get(context.Background(), reflect.TypeOf((*Unknown)(nil)).Elem())
	if err == nil {
		t.Error("unknown interface resolved")
	}
}

func TestRemoteWithoutConnErrors(t *testing.T) {
	rt := NewRuntime(Options{
		Fill:   fillWithDep,
		Hosted: func(string) bool { return false },
	})
	_, err := rt.Get(context.Background(), reflect.TypeOf((*Ping)(nil)).Elem())
	if err == nil || !strings.Contains(err.Error(), "RemoteConn") {
		t.Errorf("err = %v", err)
	}
}

func TestDependencyCycleDetected(t *testing.T) {
	// A fill that makes Ping depend on Pong and Pong depend on Ping.
	cyclicFill := func(impl any, name string, resolve func(reflect.Type) (any, error)) error {
		switch x := impl.(type) {
		case *pingImpl:
			dep, err := resolve(reflect.TypeOf((*Pong)(nil)).Elem())
			if err != nil {
				return err
			}
			x.pong = dep.(Pong)
		case *pongImpl:
			dep, err := resolve(reflect.TypeOf((*Ping)(nil)).Elem())
			if err != nil {
				return err
			}
			x.ping = dep.(Ping)
		}
		return nil
	}
	rt := NewRuntime(Options{Fill: cyclicFill})
	_, err := rt.Get(context.Background(), reflect.TypeOf((*Ping)(nil)).Elem())
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want cycle detection", err)
	}
}

func TestCallGraphAndTracing(t *testing.T) {
	graph := callgraph.NewCollector()
	tracer := tracing.NewRecorder(1000, 1.0)
	rt := NewRuntime(Options{Fill: fillWithDep, Graph: graph, Tracer: tracer})
	ctx := context.Background()
	v, err := rt.Get(ctx, reflect.TypeOf((*Ping)(nil)).Elem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.(Ping).Ping(ctx); err != nil {
		t.Fatal(err)
	}

	edges := graph.Edges()
	var sawEntry, sawNested bool
	for _, e := range edges {
		if e.Caller == "" && e.Callee == "core_test/Ping" {
			sawEntry = true
		}
		if e.Caller == "core_test/Ping" && e.Callee == "core_test/Pong" {
			sawNested = true
		}
	}
	if !sawEntry || !sawNested {
		t.Errorf("edges = %+v", edges)
	}

	spans := tracer.Drain()
	if len(spans) < 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	// All spans of the request share one trace, and the nested span's
	// parent chain reaches the root.
	trace := spans[0].Trace
	for _, s := range spans {
		if s.Trace != trace {
			t.Errorf("span %s has trace %d, want %d", s.Component, s.Trace, trace)
		}
	}
}

func TestShortName(t *testing.T) {
	if got := ShortName("a/b/C"); got != "C" {
		t.Errorf("ShortName = %q", got)
	}
	if got := ShortName("C"); got != "C" {
		t.Errorf("ShortName = %q", got)
	}
}

var _ = fmt.Sprintf
