package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/tracing"
)

// emptySpec returns a MethodSpec with empty args/results, the shape every
// remote-conn test here needs.
func emptySpec(noRetry bool) *codegen.MethodSpec {
	return &codegen.MethodSpec{
		Name:    "M",
		NewArgs: func() any { return &struct{}{} },
		NewRes:  func() any { return &struct{}{} },
		Do:      func(context.Context, any, any, any) {},
		NoRetry: noRetry,
	}
}

// startCounting starts a server for component hosting method M that counts
// invocations, with the given admission options.
func startCounting(t *testing.T, component string, opts rpc.ServerOptions) (*rpc.Server, string, *atomic.Int64) {
	t.Helper()
	srv := rpc.NewServerWithOptions(opts)
	var calls atomic.Int64
	srv.Register(component+".M", func(ctx context.Context, args []byte) ([]byte, error) {
		calls.Add(1)
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, &calls
}

func TestOverloadShedRetriesElsewhereForNoRetry(t *testing.T) {
	// A shed request never executed, so retrying it on another replica is
	// safe even under at-most-once semantics — and required, or a single
	// overloaded replica would fail calls a healthy one could serve.
	const component = "shed_test/C"
	srvA, addrA, callsA := startCounting(t, component, rpc.ServerOptions{MaxInflight: 1})
	_, addrB, callsB := startCounting(t, component, rpc.ServerOptions{})

	// Occupy A's only slot so it sheds everything else.
	block := make(chan struct{})
	started := make(chan struct{})
	srvA.Register(component+".Block", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-block
		return nil, nil
	})
	defer close(block)
	blocker := rpc.NewClient(addrA, rpc.ClientOptions{})
	defer blocker.Close()
	go func() {
		_, _ = blocker.Call(context.Background(), rpc.MethodKey(component+".Block"), nil, rpc.CallOptions{})
	}()
	<-started

	conn := NewDataPlaneConnWith(component, &scriptedBalancer{seq: []string{addrA, addrB}},
		ConnOptions{DisableBreaker: true, DisableHedging: true})
	defer conn.Close()

	var args, res struct{}
	if err := conn.Invoke(context.Background(), component, emptySpec(true), &args, &res, 0, false); err != nil {
		t.Fatalf("noretry call failed despite healthy second replica: %v", err)
	}
	if got := callsA.Load(); got != 0 {
		t.Errorf("overloaded replica executed %d calls; shed requests must not execute", got)
	}
	if got := callsB.Load(); got != 1 {
		t.Errorf("healthy replica executed %d calls, want exactly 1 (at-most-once)", got)
	}
}

func TestRetriesPreferUntriedReplicas(t *testing.T) {
	const component = "untried_test/C"
	_, live, calls := startCounting(t, component, rpc.ServerOptions{})
	dead := "127.0.0.1:1" // nothing listens here

	// The balancer proposes the dead replica twice in a row; the retry loop
	// must re-pick past the already-tried address and reach the live one.
	bal := &scriptedBalancer{seq: []string{dead, dead, live}}
	conn := NewDataPlaneConnWith(component, bal,
		ConnOptions{DisableBreaker: true, DisableHedging: true})
	defer conn.Close()

	var args, res struct{}
	if err := conn.Invoke(context.Background(), component, emptySpec(false), &args, &res, 0, false); err != nil {
		t.Fatalf("call failed despite a live replica: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("live replica executed %d calls, want 1", got)
	}
	if picks := bal.i.Load(); picks < 3 {
		t.Errorf("balancer consulted %d times; retry did not re-pick past the tried replica", picks)
	}
}

func TestNoReplicaGraceInjectable(t *testing.T) {
	conn := NewDataPlaneConnWith("grace_test/C", routing.NewRoundRobin(),
		ConnOptions{NoReplicaGrace: 80 * time.Millisecond, DisableBreaker: true, DisableHedging: true})
	defer conn.Close()

	var args, res struct{}
	start := time.Now()
	err := conn.Invoke(context.Background(), "grace_test/C", emptySpec(false), &args, &res, 0, false)
	elapsed := time.Since(start)
	if !errors.Is(err, routing.ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
	if elapsed < 60*time.Millisecond {
		t.Errorf("failed after %v; grace period not honored", elapsed)
	}
	if elapsed > time.Second {
		t.Errorf("failed after %v; injected 80ms grace not applied", elapsed)
	}
}

func TestNoReplicaGraceRespectsCancellation(t *testing.T) {
	conn := NewDataPlaneConnWith("grace_cancel/C", routing.NewRoundRobin(),
		ConnOptions{NoReplicaGrace: 5 * time.Second, DisableBreaker: true, DisableHedging: true})
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	var args, res struct{}
	start := time.Now()
	err := conn.Invoke(ctx, "grace_cancel/C", emptySpec(false), &args, &res, 0, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v to unblock the grace wait", elapsed)
	}
}

func TestBreakerRoutesAroundSlowReplica(t *testing.T) {
	const component = "brk_test/C"
	slowSrv, slowAddr, slowCalls := startCounting(t, component, rpc.ServerOptions{})
	_, fastAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	slowSrv.SetDelay(150 * time.Millisecond)

	conn := NewDataPlaneConnWith(component, routing.NewRoundRobin(slowAddr, fastAddr),
		ConnOptions{
			DisableHedging: true,
			Breaker: rpc.BreakerOptions{
				MinSamples: 2,
				Threshold:  0.5,
				Cooldown:   500 * time.Millisecond,
			},
		})
	defer conn.Close()

	spec := emptySpec(false)
	invoke := func(timeout time.Duration) error {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		var args, res struct{}
		return conn.Invoke(ctx, component, spec, &args, &res, 0, false)
	}

	// Deadline-bounded calls against the degraded replica fail and feed the
	// breaker until it opens.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && conn.BreakerState(slowAddr) != rpc.BreakerOpen {
		_ = invoke(50 * time.Millisecond)
	}
	if got := conn.BreakerState(slowAddr); got != rpc.BreakerOpen {
		t.Fatalf("breaker for slow replica = %v, want open", got)
	}

	// With the breaker open, traffic drains to the healthy replica: every
	// call must now succeed within the same deadline the slow replica blew.
	for i := 0; i < 10; i++ {
		if err := invoke(50 * time.Millisecond); err != nil {
			t.Fatalf("call %d failed while slow replica quarantined: %v", i, err)
		}
	}

	// Heal the replica; the background Ping probe must close the breaker.
	slowSrv.SetDelay(0)
	before := slowCalls.Load()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && conn.BreakerState(slowAddr) != rpc.BreakerClosed {
		_ = invoke(200 * time.Millisecond) // picks evaluate health, kicking off probes
		time.Sleep(10 * time.Millisecond)
	}
	if got := conn.BreakerState(slowAddr); got != rpc.BreakerClosed {
		t.Fatalf("breaker never closed after replica healed: %v", got)
	}

	// Traffic returns to the healed replica.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && slowCalls.Load() == before {
		if err := invoke(time.Second); err != nil {
			t.Fatalf("call after recovery failed: %v", err)
		}
	}
	if slowCalls.Load() == before {
		t.Error("healed replica never received traffic again")
	}
}

func TestHedgingReducesTailLatency(t *testing.T) {
	const component = "hedge_test/C"
	slowSrv, slowAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	_, fastAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	slowSrv.SetDelay(200 * time.Millisecond)

	conn := NewDataPlaneConnWith(component, routing.NewRoundRobin(slowAddr, fastAddr),
		ConnOptions{HedgeAfter: 10 * time.Millisecond, DisableBreaker: true})
	defer conn.Close()

	spec := emptySpec(false)
	var worst time.Duration
	for i := 0; i < 16; i++ {
		var args, res struct{}
		start := time.Now()
		if err := conn.Invoke(context.Background(), component, spec, &args, &res, 0, false); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	// Half the primaries land on the 200ms replica; the 10ms hedge to the
	// fast one must cap the tail far below the degraded latency.
	if worst >= 150*time.Millisecond {
		t.Errorf("worst latency %v; hedging did not cut the tail below the 200ms replica", worst)
	}
	launched, won := conn.HedgeStats()
	if launched == 0 {
		t.Error("no hedges launched despite a slow primary")
	}
	if won == 0 {
		t.Error("no hedge ever won despite a 200ms-slower primary")
	}
	t.Logf("hedging: worst=%v launched=%d won=%d", worst, launched, won)
}

func TestHedgedCallsSurviveReplicaDeathOnStripedConns(t *testing.T) {
	// Hammer hedged calls over striped connections while one replica dies
	// mid-flight. Conn death must surface to the retry loop as a retryable
	// transport error on every stripe at once, and hedging plus retries
	// must land every call on the surviving replica — the stripe set is one
	// logical replica, not four independently healthy ones.
	const component = "hedge_stripe_race/C"
	doomedSrv, doomedAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	_, safeAddr, safeCalls := startCounting(t, component, rpc.ServerOptions{})
	doomedSrv.SetDelay(3 * time.Millisecond)

	conn := NewDataPlaneConnWith(component, routing.NewRoundRobin(doomedAddr, safeAddr),
		ConnOptions{
			HedgeAfter:     time.Millisecond,
			DisableBreaker: true,
			Client:         rpc.ClientOptions{NumConns: 4},
		})
	defer conn.Close()

	spec := emptySpec(false)
	const workers, perWorker = 6, 25
	killAt := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 {
					close(killAt)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				var args, res struct{}
				err := conn.Invoke(ctx, component, spec, &args, &res, 0, false)
				cancel()
				if err != nil {
					t.Errorf("worker %d call %d failed despite a live replica: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	<-killAt
	doomedSrv.Close() // every stripe to this replica dies at once
	wg.Wait()

	if got := safeCalls.Load(); got == 0 {
		t.Error("surviving replica executed no calls")
	}
}

func TestHedgingDisabledForNoRetry(t *testing.T) {
	// At-most-once methods must never hedge: two concurrent attempts could
	// both execute.
	const component = "hedge_noretry/C"
	slowSrv, slowAddr, slowCalls := startCounting(t, component, rpc.ServerOptions{})
	_, fastAddr, fastCalls := startCounting(t, component, rpc.ServerOptions{})
	slowSrv.SetDelay(60 * time.Millisecond)

	conn := NewDataPlaneConnWith(component, routing.NewRoundRobin(slowAddr, fastAddr),
		ConnOptions{HedgeAfter: 5 * time.Millisecond, DisableBreaker: true})
	defer conn.Close()

	spec := emptySpec(true)
	for i := 0; i < 8; i++ {
		var args, res struct{}
		if err := conn.Invoke(context.Background(), component, spec, &args, &res, 0, false); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if launched, _ := conn.HedgeStats(); launched != 0 {
		t.Errorf("noretry method launched %d hedges", launched)
	}
	if total := slowCalls.Load() + fastCalls.Load(); total != 8 {
		t.Errorf("8 noretry calls executed %d times", total)
	}
}

// TestHedgeLoserSpanRecorded checks that when a hedge race is decided, the
// abandoned leg leaves a visible mark in the trace: a span parented under
// the call's span and annotated as the canceled hedge loser.
func TestHedgeLoserSpanRecorded(t *testing.T) {
	const component = "hedge_span/C"
	slowSrv, slowAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	_, fastAddr, _ := startCounting(t, component, rpc.ServerOptions{})
	slowSrv.SetDelay(150 * time.Millisecond)

	// Fraction 0: nothing is recorded unless the span context's sampled
	// bit — the root's decision — forces it through RecordSampled.
	rec := tracing.NewRecorder(0, 0)
	conn := NewDataPlaneConnWith(component, routing.NewRoundRobin(slowAddr, fastAddr),
		ConnOptions{HedgeAfter: 5 * time.Millisecond, DisableBreaker: true, Tracer: rec})
	defer conn.Close()

	sc := tracing.NewTrace()
	sc.Sampled = true
	ctx := tracing.ContextWith(context.Background(), sc)
	spec := emptySpec(false)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var args, res struct{}
		if err := conn.Invoke(ctx, component, spec, &args, &res, 0, false); err != nil {
			t.Fatal(err)
		}
		if _, won := conn.HedgeStats(); won > 0 {
			break
		}
	}
	if _, won := conn.HedgeStats(); won == 0 {
		t.Fatal("no hedge ever won against a 150ms-slower primary")
	}

	// The loser span is recorded asynchronously, after the abandoned leg
	// observes its cancellation.
	var loser *tracing.Span
	for time.Now().Before(deadline) && loser == nil {
		for _, s := range rec.Drain() {
			if s.Err == "canceled (hedge loser)" {
				s := s
				loser = &s
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if loser == nil {
		t.Fatal("no hedge-loser span recorded")
	}
	if loser.Trace != uint64(sc.Trace) {
		t.Errorf("loser span trace = %d, want the caller's trace %d", loser.Trace, sc.Trace)
	}
	if loser.Parent != uint64(sc.Span) {
		t.Errorf("loser span parent = %d, want the call's span %d", loser.Parent, sc.Span)
	}
	if !loser.Remote {
		t.Error("loser span not marked remote")
	}
}
