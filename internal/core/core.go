// Package core implements the component runtime at the heart of the paper's
// proposal (§3, §4): it instantiates components, injects their dependencies,
// and transparently turns method invocations into local procedure calls when
// caller and callee share a process, or remote procedure calls over the
// custom data plane when they do not.
//
// The package is deployment-agnostic: a deployer (single-process,
// multiprocess, or simulated cloud) configures a Runtime with two policy
// functions — which components this process hosts, and how to reach the
// ones it does not — and the runtime does the rest.
package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/codegen"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// Options configures a Runtime.
type Options struct {
	// Hosted reports whether this process hosts (runs the implementation
	// of) the named component. Nil means "host everything" (single-process
	// deployment).
	Hosted func(name string) bool

	// RemoteConn returns a connection for invoking a component this
	// process does not host. It is required if Hosted can return false.
	RemoteConn func(reg *codegen.Registration) (codegen.Conn, error)

	// Fill injects runtime state into a freshly allocated component
	// implementation: the Implements embedding's logger, Ref fields, and
	// Listener fields. resolve returns the client for a referenced
	// component interface type. Fill is provided by the public weaver
	// package, which owns those field types.
	Fill func(impl any, name string, resolve func(t reflect.Type) (any, error)) error

	// Logger receives runtime and component log output. Defaults to a
	// stderr logger.
	Logger *logging.Logger

	// Graph, if non-nil, receives a call-graph edge for every component
	// method call, local or remote.
	Graph *callgraph.Collector

	// Tracer, if non-nil, records spans for sampled traces.
	Tracer *tracing.Recorder

	// Metrics receives per-call counters and latency histograms. Defaults
	// to metrics.Default.
	Metrics *metrics.Registry

	// FastLocal, if true, makes Get return local component implementations
	// directly, with zero interposition — plain Go method calls, exactly
	// as the paper describes co-located components. The cost is that local
	// calls are invisible to metrics and the call graph.
	FastLocal bool
}

// Runtime instantiates and resolves components.
type Runtime struct {
	opts Options

	mu    sync.Mutex
	comps map[string]*comp
}

// comp tracks one component's state within this process.
type comp struct {
	reg      *codegen.Registration
	impl     any            // non-nil once a hosted component is initialized
	clients  map[string]any // caller name -> interface value handed out
	initing  bool           // cycle detection
	initErr  error
	initDone bool
}

// NewRuntime returns a runtime over all registered components.
func NewRuntime(opts Options) *Runtime {
	if opts.Logger == nil {
		opts.Logger = logging.New(logging.Options{Component: "runtime"})
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default
	}
	r := &Runtime{opts: opts, comps: map[string]*comp{}}
	for _, reg := range codegen.All() {
		r.comps[reg.Name] = &comp{reg: reg, clients: map[string]any{}}
	}
	return r
}

// Components returns the names of all registered components, sorted.
func (r *Runtime) Components() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.comps))
	for name := range r.comps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns a client for the component with the given interface type, on
// behalf of an external caller (e.g. application main).
func (r *Runtime) Get(ctx context.Context, iface reflect.Type) (any, error) {
	reg, ok := codegen.FindByInterface(iface)
	if !ok {
		return nil, fmt.Errorf("core: no component registered for interface %v", iface)
	}
	return r.getClient(ctx, reg.Name, "")
}

// GetByName returns a client for the named component on behalf of caller
// (empty for external callers).
func (r *Runtime) GetByName(ctx context.Context, name, caller string) (any, error) {
	return r.getClient(ctx, name, caller)
}

// LocalImpl returns the initialized implementation of a hosted component.
// Deployers use it to wire hosted components into an RPC server.
func (r *Runtime) LocalImpl(ctx context.Context, name string) (any, error) {
	c := r.comp(name)
	if c == nil {
		return nil, fmt.Errorf("core: unknown component %q", name)
	}
	if !r.hosted(name) {
		return nil, fmt.Errorf("core: component %q is not hosted in this process", name)
	}
	if err := r.initLocal(ctx, c); err != nil {
		return nil, err
	}
	return c.impl, nil
}

// Shutdown invokes Shutdown(ctx) on every initialized hosted component that
// implements it, in reverse initialization-independent (name) order.
func (r *Runtime) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	var impls []any
	var names []string
	for name, c := range r.comps {
		if c.initDone && c.impl != nil {
			impls = append(impls, c.impl)
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var first error
	for _, impl := range impls {
		if s, ok := impl.(interface{ Shutdown(context.Context) error }); ok {
			if err := s.Shutdown(ctx); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// hosted reports whether this process hosts the named component. The
// deployer's policy function is consulted on every resolution, because in
// proclet mode the hosted set is learned from the manager after the
// runtime is constructed.
func (r *Runtime) hosted(name string) bool {
	return r.opts.Hosted == nil || r.opts.Hosted(name)
}

func (r *Runtime) comp(name string) *comp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.comps[name]
}

// getClient returns (building if necessary) the interface value handed to
// caller for the named component.
func (r *Runtime) getClient(ctx context.Context, name, caller string) (any, error) {
	c := r.comp(name)
	if c == nil {
		return nil, fmt.Errorf("core: unknown component %q", name)
	}

	r.mu.Lock()
	if cl, ok := c.clients[caller]; ok {
		r.mu.Unlock()
		return cl, nil
	}
	r.mu.Unlock()

	var client any
	if r.hosted(name) {
		if err := r.initLocal(ctx, c); err != nil {
			return nil, err
		}
		if r.opts.FastLocal {
			client = c.impl
		} else {
			conn := &measuredConn{
				runtime: r,
				caller:  caller,
				callee:  c.reg.Name,
				inner:   localConn{impl: c.impl},
				remote:  false,
			}
			client = c.reg.ClientStub(conn)
		}
	} else {
		if r.opts.RemoteConn == nil {
			return nil, fmt.Errorf("core: component %q is remote but no RemoteConn is configured", name)
		}
		inner, err := r.opts.RemoteConn(c.reg)
		if err != nil {
			return nil, err
		}
		conn := &measuredConn{
			runtime: r,
			caller:  caller,
			callee:  c.reg.Name,
			inner:   inner,
			remote:  true,
		}
		client = c.reg.ClientStub(conn)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if cl, ok := c.clients[caller]; ok {
		return cl, nil // lost a race; use the winner
	}
	c.clients[caller] = client
	return client, nil
}

// initLocal allocates, fills, and initializes a hosted component exactly
// once, detecting dependency cycles.
func (r *Runtime) initLocal(ctx context.Context, c *comp) error {
	r.mu.Lock()
	if c.initDone {
		err := c.initErr
		r.mu.Unlock()
		return err
	}
	if c.initing {
		r.mu.Unlock()
		return fmt.Errorf("core: dependency cycle involving component %q", c.reg.Name)
	}
	c.initing = true
	r.mu.Unlock()

	err := r.buildImpl(ctx, c)

	r.mu.Lock()
	c.initing = false
	c.initDone = true
	c.initErr = err
	r.mu.Unlock()
	return err
}

func (r *Runtime) buildImpl(ctx context.Context, c *comp) error {
	impl := reflect.New(c.reg.Impl).Interface()
	if r.opts.Fill != nil {
		resolve := func(t reflect.Type) (any, error) {
			dep, ok := codegen.FindByInterface(t)
			if !ok {
				return nil, fmt.Errorf("core: %s references unregistered interface %v", c.reg.Name, t)
			}
			return r.getClient(ctx, dep.Name, c.reg.Name)
		}
		if err := r.opts.Fill(impl, c.reg.Name, resolve); err != nil {
			return fmt.Errorf("core: filling %s: %w", c.reg.Name, err)
		}
	}
	if init, ok := impl.(interface{ Init(context.Context) error }); ok {
		if err := init.Init(ctx); err != nil {
			return fmt.Errorf("core: initializing %s: %w", c.reg.Name, err)
		}
	}
	r.opts.Logger.Debug("component initialized", "component", ShortName(c.reg.Name))
	c.impl = impl
	return nil
}

// localConn invokes methods directly on an in-process implementation.
type localConn struct {
	impl any
}

// Invoke implements codegen.Conn.
func (l localConn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.Do(ctx, l.impl, args, res)
	return nil
}

// measuredConn wraps a Conn with metrics, call-graph, and trace recording.
type measuredConn struct {
	runtime *Runtime
	caller  string
	callee  string
	inner   codegen.Conn
	remote  bool
}

// Invoke implements codegen.Conn.
func (mc *measuredConn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	r := mc.runtime

	// Establish the span for this call. A fresh trace is started at
	// entry points (no inbound context).
	var sc tracing.SpanContext
	parent, hasParent := tracing.FromContext(ctx)
	if hasParent {
		sc = parent.Child()
	} else if r.opts.Tracer != nil {
		sc = tracing.NewTrace()
	}
	if sc.Valid() {
		ctx = tracing.ContextWith(ctx, sc)
	}

	start := time.Now()
	err := mc.inner.Invoke(ctx, component, m, args, res, shard, hasShard)
	elapsed := time.Since(start)

	if r.opts.Graph != nil {
		r.opts.Graph.Record(mc.caller, mc.callee, m.Name, elapsed, 0, mc.remote, err != nil)
	}
	short := ShortName(mc.callee)
	r.opts.Metrics.Counter("component.calls." + short + "." + m.Name).Inc()
	if !mc.remote {
		// Local calls are served by this process; count them toward its
		// load so the autoscaler sees colocated traffic too.
		r.opts.Metrics.Counter("component.served." + short).Inc()
	}
	if err != nil {
		r.opts.Metrics.Counter("component.errors." + short + "." + m.Name).Inc()
	}
	r.opts.Metrics.Histogram("component.latency_us."+short, nil).Put(float64(elapsed.Microseconds()))

	if r.opts.Tracer != nil && sc.Valid() {
		span := tracing.Span{
			Trace:      uint64(sc.Trace),
			ID:         uint64(sc.Span),
			Parent:     uint64(sc.Parent),
			Component:  mc.callee,
			Method:     m.Name,
			Caller:     mc.caller,
			StartNanos: start.UnixNano(),
			EndNanos:   start.Add(elapsed).UnixNano(),
			Remote:     mc.remote,
		}
		if err != nil {
			span.Err = err.Error()
		}
		r.opts.Tracer.Record(span)
	}
	return err
}

// ShortName trims the package path from a full component name:
// "repro/internal/boutique/CartService" -> "CartService".
func ShortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}
