// Package core implements the component runtime at the heart of the paper's
// proposal (§3, §4): it instantiates components, injects their dependencies,
// and transparently turns method invocations into local procedure calls when
// caller and callee share a process, or remote procedure calls over the
// custom data plane when they do not.
//
// The package is deployment-agnostic: a deployer (single-process,
// multiprocess, or simulated cloud) configures a Runtime with two policy
// functions — which components this process hosts, and how to reach the
// ones it does not — and the runtime does the rest.
package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/callgraph"
	"repro/internal/codegen"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// Options configures a Runtime.
type Options struct {
	// Hosted reports whether this process hosts (runs the implementation
	// of) the named component. Nil means "host everything" (single-process
	// deployment).
	Hosted func(name string) bool

	// RemoteConn returns a connection for invoking a component this
	// process does not host. It is required if Hosted can return false.
	RemoteConn func(reg *codegen.Registration) (codegen.Conn, error)

	// RoutedLocal, if non-nil, is consulted before dispatching a routed
	// (sharded) call to a colocated implementation. It reports whether this
	// process owns the shard under the current affinity assignment; known
	// is false when no assignment has been applied yet (single replica,
	// warm-up), in which case the local fast path is kept. When the key
	// maps to a sibling replica the call crosses the data plane instead,
	// so affinity routing holds even for colocated callers.
	RoutedLocal func(component string, shard uint64) (owns, known bool)

	// Fill injects runtime state into a freshly allocated component
	// implementation: the Implements embedding's logger, Ref fields, and
	// Listener fields. resolve returns the client for a referenced
	// component interface type. Fill is provided by the public weaver
	// package, which owns those field types.
	Fill func(impl any, name string, resolve func(t reflect.Type) (any, error)) error

	// Logger receives runtime and component log output. Defaults to a
	// stderr logger.
	Logger *logging.Logger

	// Graph, if non-nil, receives a call-graph edge for every component
	// method call, local or remote.
	Graph *callgraph.Collector

	// Tracer, if non-nil, records spans for sampled traces.
	Tracer *tracing.Recorder

	// Metrics receives per-call counters and latency histograms. Defaults
	// to metrics.Default.
	Metrics *metrics.Registry

	// FastLocal, if true, makes Get return local component implementations
	// directly, with zero interposition — plain Go method calls, exactly
	// as the paper describes co-located components. The cost is that local
	// calls are invisible to metrics and the call graph.
	FastLocal bool
}

// Runtime instantiates and resolves components.
type Runtime struct {
	opts Options

	mu    sync.Mutex
	comps map[string]*comp
}

// connState pins one resolution of a component's call path: either a local
// implementation (direct method dispatch) or a remote data-plane conn.
// Exactly one of impl and remote is non-nil. States are immutable; the
// resolver swaps the whole pointer, so a call that loaded a state completes
// on the connection it started with even if the component moves mid-call.
type connState struct {
	impl    any          // non-nil: callee is colocated, dispatch directly
	remote  codegen.Conn // non-nil: callee is elsewhere, cross the data plane
	version uint64       // routing epoch that installed this state (0 = initial)
}

// comp tracks one component's state within this process.
type comp struct {
	reg      *codegen.Registration
	impl     any            // non-nil once a hosted component is initialized
	clients  map[string]any // caller name -> interface value handed out
	initing  bool           // cycle detection
	initErr  error
	initDone bool

	// route is the swappable resolver behind every stub handed out for
	// this component. Stubs load it per call; PromoteLocal and DemoteLocal
	// swap it when the manager moves the component at runtime, so local
	// vs. remote is no longer frozen at Get time.
	route   atomic.Pointer[connState]
	routeMu sync.Mutex // serializes swaps (and the blocking work behind them)
	// remoteConn caches the data-plane conn across local/remote flips, so
	// moving a component away and back does not rebuild TCP state.
	remoteConn codegen.Conn
}

// NewRuntime returns a runtime over all registered components.
func NewRuntime(opts Options) *Runtime {
	if opts.Logger == nil {
		opts.Logger = logging.New(logging.Options{Component: "runtime"})
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default
	}
	r := &Runtime{opts: opts, comps: map[string]*comp{}}
	for _, reg := range codegen.All() {
		r.comps[reg.Name] = &comp{reg: reg, clients: map[string]any{}}
	}
	return r
}

// Components returns the names of all registered components, sorted.
func (r *Runtime) Components() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.comps))
	for name := range r.comps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns a client for the component with the given interface type, on
// behalf of an external caller (e.g. application main).
func (r *Runtime) Get(ctx context.Context, iface reflect.Type) (any, error) {
	reg, ok := codegen.FindByInterface(iface)
	if !ok {
		return nil, fmt.Errorf("core: no component registered for interface %v", iface)
	}
	return r.getClient(ctx, reg.Name, "")
}

// GetByName returns a client for the named component on behalf of caller
// (empty for external callers).
func (r *Runtime) GetByName(ctx context.Context, name, caller string) (any, error) {
	return r.getClient(ctx, name, caller)
}

// LocalImpl returns the initialized implementation of a hosted component.
// Deployers use it to wire hosted components into an RPC server.
func (r *Runtime) LocalImpl(ctx context.Context, name string) (any, error) {
	c := r.comp(name)
	if c == nil {
		return nil, fmt.Errorf("core: unknown component %q", name)
	}
	if !r.hosted(name) {
		return nil, fmt.Errorf("core: component %q is not hosted in this process", name)
	}
	if err := r.initLocal(ctx, c); err != nil {
		return nil, err
	}
	return c.impl, nil
}

// Shutdown invokes Shutdown(ctx) on every initialized hosted component that
// implements it, in reverse initialization-independent (name) order.
func (r *Runtime) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	var impls []any
	var names []string
	for name, c := range r.comps {
		if c.initDone && c.impl != nil {
			impls = append(impls, c.impl)
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var first error
	for _, impl := range impls {
		if s, ok := impl.(interface{ Shutdown(context.Context) error }); ok {
			if err := s.Shutdown(ctx); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// hosted reports whether this process hosts the named component. The
// deployer's policy function is consulted on every resolution, because in
// proclet mode the hosted set is learned from the manager after the
// runtime is constructed.
func (r *Runtime) hosted(name string) bool {
	return r.opts.Hosted == nil || r.opts.Hosted(name)
}

func (r *Runtime) comp(name string) *comp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.comps[name]
}

// getClient returns (building if necessary) the interface value handed to
// caller for the named component.
func (r *Runtime) getClient(ctx context.Context, name, caller string) (any, error) {
	c := r.comp(name)
	if c == nil {
		return nil, fmt.Errorf("core: unknown component %q", name)
	}

	r.mu.Lock()
	if cl, ok := c.clients[caller]; ok {
		r.mu.Unlock()
		return cl, nil
	}
	r.mu.Unlock()

	var client any
	if r.opts.FastLocal && r.hosted(name) {
		// Static fast path for single-process deployments: the raw
		// implementation with zero interposition. Incompatible with live
		// re-placement by construction — there is no stub to re-resolve.
		if err := r.initLocal(ctx, c); err != nil {
			return nil, err
		}
		client = c.impl
	} else {
		if err := r.ensureRoute(ctx, c); err != nil {
			return nil, err
		}
		client = c.reg.ClientStub(&measuredConn{
			runtime: r,
			caller:  caller,
			callee:  c.reg.Name,
			comp:    c,
		})
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if cl, ok := c.clients[caller]; ok {
		return cl, nil // lost a race; use the winner
	}
	c.clients[caller] = client
	return client, nil
}

// ensureRoute installs c's initial route (local or remote, per the
// deployer's Hosted policy) if none exists yet. initLocal runs outside
// routeMu: filling a component resolves its dependencies, which re-enters
// route resolution — on a dependency cycle that comes back to c itself, and
// must hit initLocal's cycle detector rather than deadlock on routeMu.
func (r *Runtime) ensureRoute(ctx context.Context, c *comp) error {
	if c.route.Load() != nil {
		return nil
	}
	if r.hosted(c.reg.Name) {
		if err := r.initLocal(ctx, c); err != nil {
			return err
		}
		c.routeMu.Lock()
		defer c.routeMu.Unlock()
		if c.route.Load() == nil {
			c.route.Store(&connState{impl: c.impl})
		}
		return nil
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if c.route.Load() != nil {
		return nil
	}
	conn, err := r.remoteForLocked(c)
	if err != nil {
		return err
	}
	c.route.Store(&connState{remote: conn})
	return nil
}

// remoteForLocked returns (building and caching if necessary) c's
// data-plane conn. Caller holds c.routeMu; the build may block waiting for
// routing info, which is why routeMu — not r.mu — guards it.
func (r *Runtime) remoteForLocked(c *comp) (codegen.Conn, error) {
	if c.remoteConn != nil {
		return c.remoteConn, nil
	}
	if r.opts.RemoteConn == nil {
		return nil, fmt.Errorf("core: component %q is remote but no RemoteConn is configured", c.reg.Name)
	}
	conn, err := r.opts.RemoteConn(c.reg)
	if err != nil {
		return nil, err
	}
	c.remoteConn = conn
	return conn, nil
}

// PromoteLocal flips a component's call path to direct local dispatch: the
// callee has become colocated with this process (live re-placement, the
// dynamic form of FastLocal). version is the routing epoch of the placement
// decision; a promotion older than the currently installed epoch is ignored
// (version 0 always applies — the initial assignment). Stubs handed out
// earlier pick up the flip on their next call; calls already in flight
// finish on the connection they started with.
func (r *Runtime) PromoteLocal(ctx context.Context, name string, version uint64) error {
	c := r.comp(name)
	if c == nil {
		return fmt.Errorf("core: unknown component %q", name)
	}
	// Init outside routeMu: dependency resolution may re-enter route
	// resolution for this very component (see ensureRoute).
	if err := r.initLocal(ctx, c); err != nil {
		return err
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	cur := c.route.Load()
	if cur != nil && version != 0 && version <= cur.version {
		return nil // stale flip
	}
	c.route.Store(&connState{impl: c.impl, version: version})
	return nil
}

// DemoteLocal flips a component's call path back to the data plane: the
// callee moved to another group. The same version fencing as PromoteLocal
// applies. If no stub for the component was ever resolved here, there is
// nothing to flip and DemoteLocal is a no-op. The local implementation is
// not shut down — in-flight local calls may still be executing on it.
func (r *Runtime) DemoteLocal(name string, version uint64) error {
	c := r.comp(name)
	if c == nil {
		return fmt.Errorf("core: unknown component %q", name)
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	cur := c.route.Load()
	if cur == nil {
		return nil // no callers in this process
	}
	if version != 0 && version <= cur.version {
		return nil // stale flip
	}
	conn, err := r.remoteForLocked(c)
	if err != nil {
		return err
	}
	c.route.Store(&connState{remote: conn, version: version})
	return nil
}

// RouteVersion returns the routing epoch of a component's installed route
// and whether the route is currently local. Tests use it to assert that
// observed placement flips are monotonic.
func (r *Runtime) RouteVersion(name string) (version uint64, local bool) {
	c := r.comp(name)
	if c == nil {
		return 0, false
	}
	st := c.route.Load()
	if st == nil {
		return 0, false
	}
	return st.version, st.impl != nil
}

// initLocal allocates, fills, and initializes a hosted component exactly
// once, detecting dependency cycles.
func (r *Runtime) initLocal(ctx context.Context, c *comp) error {
	r.mu.Lock()
	if c.initDone {
		err := c.initErr
		r.mu.Unlock()
		return err
	}
	if c.initing {
		r.mu.Unlock()
		return fmt.Errorf("core: dependency cycle involving component %q", c.reg.Name)
	}
	c.initing = true
	r.mu.Unlock()

	err := r.buildImpl(ctx, c)

	r.mu.Lock()
	c.initing = false
	c.initDone = true
	c.initErr = err
	r.mu.Unlock()
	return err
}

func (r *Runtime) buildImpl(ctx context.Context, c *comp) error {
	impl := reflect.New(c.reg.Impl).Interface()
	if r.opts.Fill != nil {
		resolve := func(t reflect.Type) (any, error) {
			dep, ok := codegen.FindByInterface(t)
			if !ok {
				return nil, fmt.Errorf("core: %s references unregistered interface %v", c.reg.Name, t)
			}
			return r.getClient(ctx, dep.Name, c.reg.Name)
		}
		if err := r.opts.Fill(impl, c.reg.Name, resolve); err != nil {
			return fmt.Errorf("core: filling %s: %w", c.reg.Name, err)
		}
	}
	if init, ok := impl.(interface{ Init(context.Context) error }); ok {
		if err := init.Init(ctx); err != nil {
			return fmt.Errorf("core: initializing %s: %w", c.reg.Name, err)
		}
	}
	r.opts.Logger.Debug("component initialized", "component", ShortName(c.reg.Name))
	c.impl = impl
	return nil
}

// measuredConn is the conn behind every stub: it resolves the component's
// current route on each call (so a callee that moves between groups flips
// between direct dispatch and the data plane without re-resolving the
// stub) and records metrics, call-graph edges, and trace spans.
type measuredConn struct {
	runtime *Runtime
	caller  string
	callee  string
	comp    *comp
}

// Invoke implements codegen.Conn.
func (mc *measuredConn) Invoke(ctx context.Context, component string, m *codegen.MethodSpec, args, res any, shard uint64, hasShard bool) error {
	r := mc.runtime

	// Load the route once: the whole call — dispatch and accounting —
	// uses the connection state it started with, even if a re-placement
	// swaps the route mid-flight.
	st := mc.comp.route.Load()
	if st == nil {
		return fmt.Errorf("core: component %q has no route", mc.callee)
	}
	remote := st.impl == nil
	remoteVia := st.remote

	// Assignment-aware local dispatch: a colocated routed call takes the
	// local fast path only when the affinity assignment maps the key to
	// this replica. Otherwise the call crosses the data plane to the
	// owning sibling, exactly as it would from a non-colocated caller.
	if !remote && hasShard && r.opts.RoutedLocal != nil {
		if owns, known := r.opts.RoutedLocal(component, shard); known && !owns {
			mc.comp.routeMu.Lock()
			conn, connErr := r.remoteForLocked(mc.comp)
			mc.comp.routeMu.Unlock()
			if connErr == nil {
				remote = true
				remoteVia = conn
			}
			// On conn-build failure keep the local path: serving the call
			// off-owner beats failing it.
		}
	}

	// Establish the span for this call. A fresh trace is started at entry
	// points (no inbound context); the root makes the sampling decision
	// here, and the bit rides every downstream hop's span context.
	var sc tracing.SpanContext
	parent, hasParent := tracing.FromContext(ctx)
	if hasParent {
		sc = parent.Child()
	} else if r.opts.Tracer != nil {
		sc = tracing.NewTrace()
		sc.Sampled = r.opts.Tracer.Sampled(sc.Trace)
	}
	if sc.Valid() {
		ctx = tracing.ContextWith(ctx, sc)
	}

	start := time.Now()
	var err error
	if remote {
		err = remoteVia.Invoke(ctx, component, m, args, res, shard, hasShard)
	} else if err = ctx.Err(); err == nil {
		m.Do(ctx, st.impl, args, res)
	}
	elapsed := time.Since(start)

	if r.opts.Graph != nil {
		r.opts.Graph.Record(mc.caller, mc.callee, m.Name, elapsed, 0, remote, err != nil)
	}
	short := ShortName(mc.callee)
	r.opts.Metrics.Counter("component.calls." + short + "." + m.Name).Inc()
	if !remote {
		// Local calls are served by this process; count them toward its
		// load so the autoscaler sees colocated traffic too.
		r.opts.Metrics.Counter("component.served." + short).Inc()
	}
	if err != nil {
		r.opts.Metrics.Counter("component.errors." + short + "." + m.Name).Inc()
	}
	r.opts.Metrics.Histogram("component.latency_us."+short, nil).Put(float64(elapsed.Microseconds()))

	if r.opts.Tracer != nil && sc.Valid() {
		span := tracing.Span{
			Trace:      uint64(sc.Trace),
			ID:         uint64(sc.Span),
			Parent:     uint64(sc.Parent),
			Component:  mc.callee,
			Method:     m.Name,
			Caller:     mc.caller,
			StartNanos: start.UnixNano(),
			EndNanos:   start.Add(elapsed).UnixNano(),
			Remote:     remote,
		}
		if err != nil {
			span.Err = err.Error()
		}
		r.opts.Tracer.RecordSampled(span, sc.Sampled)
	}
	return err
}

// ShortName trims the package path from a full component name:
// "repro/internal/boutique/CartService" -> "CartService".
func ShortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}
