package core

import (
	"testing"
	"time"
)

// TestLatencyTrackerCachesZeroQuantile exercises the dirty-flag fix: when
// the true p99 is 0 (all samples sub-resolution), the tracker must still
// cache the result instead of re-sorting the ring on every p99 call.
func TestLatencyTrackerCachesZeroQuantile(t *testing.T) {
	lt := newLatencyTracker()
	for i := 0; i < hedgeMinSamples; i++ {
		lt.add(0)
	}
	if got := lt.p99(); got != 0 {
		t.Fatalf("p99 of all-zero samples = %v, want 0", got)
	}
	if !lt.computed {
		t.Fatal("p99 did not mark the cache computed")
	}
	if lt.sinceCalc != 0 {
		t.Fatalf("sinceCalc = %d after recompute, want 0", lt.sinceCalc)
	}
	// Subsequent calls with no new samples must be cache hits.
	lt.p99()
	if lt.sinceCalc != 0 || !lt.computed {
		t.Fatal("repeated p99 invalidated the cache")
	}
}

// TestLatencyTrackerRecomputeCadence verifies the cache refreshes after 32
// inserts and that the scratch slice is reused rather than reallocated.
func TestLatencyTrackerRecomputeCadence(t *testing.T) {
	lt := newLatencyTracker()
	// Fill the ring to capacity so the scratch slice reaches its
	// steady-state size before we capture it.
	for i := 0; i < len(lt.samples); i++ {
		lt.add(time.Millisecond)
	}
	if got := lt.p99(); got != time.Millisecond {
		t.Fatalf("p99 = %v, want %v", got, time.Millisecond)
	}
	scratch := &lt.scratch[0]

	// Fewer than 32 new samples: cached value sticks even though newer,
	// larger samples are in the ring.
	for i := 0; i < 31; i++ {
		lt.add(time.Second)
	}
	if got := lt.p99(); got != time.Millisecond {
		t.Fatalf("p99 before recompute threshold = %v, want cached %v", got, time.Millisecond)
	}

	// One more insert crosses the threshold and triggers a recompute that
	// sees the new samples — reusing the same scratch storage.
	lt.add(time.Second)
	if got := lt.p99(); got != time.Second {
		t.Fatalf("p99 after recompute = %v, want %v", got, time.Second)
	}
	if &lt.scratch[0] != scratch {
		t.Fatal("recompute reallocated the scratch slice")
	}
}
