// Package cachepkg is generator test input: a routed component with
// assorted method signatures, plus an unrouted dependency.
package cachepkg

import (
	"context"
	"time"

	"repro/weaver"
)

// Cache is a routed component.
type Cache interface {
	Get(ctx context.Context, key string) (string, error)
	Put(ctx context.Context, key, value string) error
	Stats(ctx context.Context) (hits, misses int64, err error)
	MultiGet(ctx context.Context, keys ...string) ([]string, error)
	Touch(ctx context.Context, key string, ttl time.Duration) (time.Time, error)
}

type cacheRouter struct{}

func (cacheRouter) Get(key string) string                      { return key }
func (cacheRouter) Put(key, value string) string               { return key }
func (cacheRouter) Touch(key string, ttl time.Duration) string { return key }

type cacheImpl struct {
	weaver.Implements[Cache]
	weaver.WithRouter[cacheRouter]
	store weaver.Ref[Store]
}

func (c *cacheImpl) Get(ctx context.Context, key string) (string, error) { return "", nil }
func (c *cacheImpl) Put(ctx context.Context, key, value string) error    { return nil }
func (c *cacheImpl) Stats(ctx context.Context) (int64, int64, error)     { return 0, 0, nil }
func (c *cacheImpl) MultiGet(ctx context.Context, keys ...string) ([]string, error) {
	return nil, nil
}
func (c *cacheImpl) Touch(ctx context.Context, key string, ttl time.Duration) (time.Time, error) {
	return time.Time{}, nil
}

// Store is an unrouted component.
type Store interface {
	Load(ctx context.Context, key string) ([]byte, error)
	BulkPut(ctx context.Context, kv map[string][]byte) (int, error)
}

type storeImpl struct {
	weaver.Implements[Store]
}

func (s *storeImpl) Load(ctx context.Context, key string) ([]byte, error) { return nil, nil }
func (s *storeImpl) BulkPut(ctx context.Context, kv map[string][]byte) (int, error) {
	return len(kv), nil
}
