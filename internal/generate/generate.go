// Package generate implements the weaver code generator (paper §4.2).
//
// The generator inspects a package's source for implementation structs that
// embed weaver.Implements[T]. For every discovered component it emits, into
// weaver_gen.go in the same package:
//
//   - an args struct and a results struct per method, so that both the
//     unversioned data-plane codec and the JSON baseline can serialize
//     method invocations;
//   - a client stub type implementing the component interface, whose
//     methods pack arguments and delegate to a codegen.Conn;
//   - a server-side dispatch closure per method that calls the real
//     implementation with zero reflection;
//   - a Shard function per routed method, derived from the component's
//     weaver.WithRouter[R] embedding;
//   - an init-time codegen.Register call tying it all together.
//
// The generated code is compiled into the application binary alongside the
// developer's code, exactly as §4.2 prescribes.
package generate

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WeaverImportPath is the import path of the public weaver package whose
// Implements/WithRouter embeddings mark components.
const WeaverImportPath = "repro/weaver"

// Options configures generation.
type Options struct {
	// Dir is the package directory to scan.
	Dir string
	// PkgPath overrides the computed import path of the package (used to
	// derive component full names). When empty it is derived from go.mod.
	PkgPath string
}

// A component is one discovered Implements embedding.
type component struct {
	ifaceName  string
	implName   string
	routerName string // "" if unrouted
	methods    []*method
}

// A method is one component interface method.
type method struct {
	name     string
	params   []param // excluding the leading context
	results  []param // excluding the trailing error
	variadic bool    // last param is variadic
	routed   bool    // router has a matching method
	noRetry  bool    // "weaver:noretry" directive in the doc comment
	priority int     // "weaver:priority=..." directive (0 normal, 1 low, 2 high, 3 critical)
}

type param struct {
	name string // synthesized names a0, a1, ...
	typ  string // printed type expression
}

// Generate scans the package in opts.Dir and returns the contents of its
// weaver_gen.go. It returns (nil, nil) if the package declares no
// components.
func Generate(opts Options) ([]byte, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, opts.Dir, func(fi os.FileInfo) bool {
		name := fi.Name()
		return !strings.HasSuffix(name, "_test.go") && name != "weaver_gen.go"
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkg != nil {
			return nil, fmt.Errorf("generate: multiple packages in %s", opts.Dir)
		}
		pkg = p
	}
	if pkg == nil {
		return nil, fmt.Errorf("generate: no Go package in %s", opts.Dir)
	}

	pkgPath := opts.PkgPath
	if pkgPath == "" {
		pkgPath, err = packagePath(opts.Dir)
		if err != nil {
			return nil, err
		}
	}

	g := &generator{
		fset:    fset,
		pkg:     pkg,
		pkgPath: pkgPath,
		imports: map[string]string{},
	}
	if err := g.scan(); err != nil {
		return nil, err
	}
	if len(g.components) == 0 {
		return nil, nil
	}
	return g.emit()
}

// GenerateToFile runs Generate and writes weaver_gen.go into the package
// directory, removing a stale file if the package no longer has components.
func GenerateToFile(opts Options) (string, error) {
	out, err := Generate(opts)
	if err != nil {
		return "", err
	}
	path := filepath.Join(opts.Dir, "weaver_gen.go")
	if out == nil {
		if _, err := os.Stat(path); err == nil {
			return path, os.Remove(path)
		}
		return "", nil
	}
	return path, os.WriteFile(path, out, 0o644)
}

// packagePath computes a directory's import path by locating the enclosing
// go.mod.
func packagePath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	cur := abs
	for {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return "", fmt.Errorf("generate: cannot parse module path in %s/go.mod", cur)
			}
			rel, err := filepath.Rel(cur, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return mod, nil
			}
			return mod + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", fmt.Errorf("generate: no go.mod above %s", dir)
		}
		cur = parent
	}
}

func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

type generator struct {
	fset       *token.FileSet
	pkg        *ast.Package
	pkgPath    string
	components []*component
	// imports maps import path -> local alias used in the generated file.
	imports map[string]string
	// fileImports maps each parsed file to its import table
	// (local name -> path).
	fileImportsCache map[*ast.File]map[string]string
}

// scan walks the package, discovering components.
func (g *generator) scan() error {
	ifaces := map[string]*ast.InterfaceType{}
	routerMethods := map[string]map[string]*ast.FuncDecl{} // router type -> method -> decl
	type embedding struct {
		implName   string
		ifaceName  string
		routerName string
		file       *ast.File
	}
	var embeddings []embedding
	implsSeen := map[string]string{} // iface -> impl

	// Pass 1: collect interface decls and router method decls.
	for _, file := range sortedFiles(g.pkg) {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if it, ok := ts.Type.(*ast.InterfaceType); ok {
						ifaces[ts.Name.Name] = it
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) != 1 {
					continue
				}
				recv := baseTypeName(d.Recv.List[0].Type)
				if recv == "" {
					continue
				}
				if routerMethods[recv] == nil {
					routerMethods[recv] = map[string]*ast.FuncDecl{}
				}
				routerMethods[recv][d.Name.Name] = d
			}
		}
	}

	// Pass 2: find Implements / WithRouter embeddings in struct decls.
	for _, file := range sortedFiles(g.pkg) {
		weaverNames := g.weaverLocalNames(file)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var emb embedding
				emb.implName = ts.Name.Name
				emb.file = file
				for _, f := range st.Fields.List {
					if len(f.Names) != 0 {
						continue // named field, not an embedding
					}
					kind, arg := weaverGeneric(f.Type, weaverNames)
					switch kind {
					case "Implements":
						id, ok := arg.(*ast.Ident)
						if !ok {
							return fmt.Errorf("generate: %s: weaver.Implements argument must be an interface declared in the same package", emb.implName)
						}
						emb.ifaceName = id.Name
					case "WithRouter":
						id, ok := arg.(*ast.Ident)
						if !ok {
							return fmt.Errorf("generate: %s: weaver.WithRouter argument must be a type declared in the same package", emb.implName)
						}
						emb.routerName = id.Name
					}
				}
				if emb.ifaceName != "" {
					if prev, dup := implsSeen[emb.ifaceName]; dup {
						return fmt.Errorf("generate: interface %s implemented by both %s and %s", emb.ifaceName, prev, emb.implName)
					}
					implsSeen[emb.ifaceName] = emb.implName
					embeddings = append(embeddings, emb)
				}
			}
		}
	}

	sort.Slice(embeddings, func(i, j int) bool { return embeddings[i].ifaceName < embeddings[j].ifaceName })

	for _, emb := range embeddings {
		it, ok := ifaces[emb.ifaceName]
		if !ok {
			return fmt.Errorf("generate: %s embeds weaver.Implements[%s], but interface %s is not declared in this package", emb.implName, emb.ifaceName, emb.ifaceName)
		}
		c := &component{ifaceName: emb.ifaceName, implName: emb.implName, routerName: emb.routerName}
		declFile := g.fileDeclaring(emb.ifaceName)
		for _, f := range it.Methods.List {
			ft, ok := f.Type.(*ast.FuncType)
			if !ok {
				return fmt.Errorf("generate: interface %s embeds other interfaces, which is unsupported", emb.ifaceName)
			}
			for _, name := range f.Names {
				m, err := g.parseMethod(emb.ifaceName, name.Name, ft, declFile)
				if err != nil {
					return err
				}
				m.noRetry = hasDirective(f.Doc, "weaver:noretry")
				m.priority, err = priorityDirective(emb.ifaceName, name.Name, f.Doc)
				if err != nil {
					return err
				}
				c.methods = append(c.methods, m)
			}
		}
		sort.Slice(c.methods, func(i, j int) bool { return c.methods[i].name < c.methods[j].name })
		if len(c.methods) == 0 {
			return fmt.Errorf("generate: component interface %s has no methods", emb.ifaceName)
		}

		if c.routerName != "" {
			rms := routerMethods[c.routerName]
			if len(rms) == 0 {
				return fmt.Errorf("generate: %s: router %s has no methods", emb.implName, c.routerName)
			}
			byName := map[string]*method{}
			for _, m := range c.methods {
				byName[m.name] = m
			}
			for rm := range rms {
				m, ok := byName[rm]
				if !ok {
					return fmt.Errorf("generate: router %s has method %s that %s does not", c.routerName, rm, c.ifaceName)
				}
				m.routed = true
			}
		}
		g.components = append(g.components, c)
	}
	return nil
}

// parseMethod validates and captures one interface method.
func (g *generator) parseMethod(iface, name string, ft *ast.FuncType, file *ast.File) (*method, error) {
	badSig := func(why string) error {
		return fmt.Errorf("generate: %s.%s: %s (component methods must look like M(ctx context.Context, ...) (..., error))", iface, name, why)
	}
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return nil, badSig("missing context.Context parameter")
	}
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return nil, badSig("missing error result")
	}

	var flatParams []ast.Expr
	for _, f := range ft.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flatParams = append(flatParams, f.Type)
		}
	}
	if !isContextContext(flatParams[0], file) {
		return nil, badSig("first parameter is not context.Context")
	}

	var flatResults []ast.Expr
	for _, f := range ft.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flatResults = append(flatResults, f.Type)
		}
	}
	last := flatResults[len(flatResults)-1]
	if id, ok := last.(*ast.Ident); !ok || id.Name != "error" {
		return nil, badSig("last result is not error")
	}

	m := &method{name: name}
	for i, p := range flatParams[1:] {
		typ := p
		if ell, ok := typ.(*ast.Ellipsis); ok {
			if i != len(flatParams[1:])-1 {
				return nil, badSig("variadic parameter not last")
			}
			m.variadic = true
			typ = &ast.ArrayType{Elt: ell.Elt}
		}
		ts, err := g.typeString(typ, file)
		if err != nil {
			return nil, fmt.Errorf("generate: %s.%s: %w", iface, name, err)
		}
		m.params = append(m.params, param{name: fmt.Sprintf("a%d", i), typ: ts})
	}
	for i, r := range flatResults[:len(flatResults)-1] {
		ts, err := g.typeString(r, file)
		if err != nil {
			return nil, fmt.Errorf("generate: %s.%s: %w", iface, name, err)
		}
		m.results = append(m.results, param{name: fmt.Sprintf("r%d", i), typ: ts})
	}
	return m, nil
}

// typeString renders a type expression as Go source, registering any
// imports it requires in the generated file.
func (g *generator) typeString(e ast.Expr, file *ast.File) (string, error) {
	// Register imports for every qualified identifier in the expression.
	var walkErr error
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path, ok := g.fileImports(file)[id.Name]
		if !ok {
			return true // not a package qualifier (e.g. field access)
		}
		g.addImport(path, id.Name)
		return true
	})
	if walkErr != nil {
		return "", walkErr
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, g.fset, e); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// addImport records that the generated file needs the given import,
// preserving the alias used in the source.
func (g *generator) addImport(path, alias string) {
	if cur, ok := g.imports[path]; ok {
		_ = cur
		return
	}
	g.imports[path] = alias
}

// fileImports returns the local-name -> path import table of a file.
func (g *generator) fileImports(file *ast.File) map[string]string {
	if g.fileImportsCache == nil {
		g.fileImportsCache = map[*ast.File]map[string]string{}
	}
	if t, ok := g.fileImportsCache[file]; ok {
		return t
	}
	t := map[string]string{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndexByte(path, '/')+1:]
		}
		if name == "_" || name == "." {
			continue
		}
		t[name] = path
	}
	g.fileImportsCache[file] = t
	return t
}

// weaverLocalNames returns the set of local names under which the weaver
// package is imported in a file.
func (g *generator) weaverLocalNames(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for name, path := range g.fileImports(file) {
		if path == WeaverImportPath {
			names[name] = true
		}
	}
	return names
}

// weaverGeneric matches expressions of the form weaver.Kind[Arg], returning
// the kind ("Implements", "WithRouter") and type argument.
func weaverGeneric(e ast.Expr, weaverNames map[string]bool) (kind string, arg ast.Expr) {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return "", nil
	}
	sel, ok := ix.X.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !weaverNames[id.Name] {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Implements", "WithRouter":
		return sel.Sel.Name, ix.Index
	}
	return "", nil
}

// isContextContext reports whether e denotes context.Context in file.
func isContextContext(e ast.Expr, file *ast.File) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// hasDirective reports whether a doc comment contains a //weaver:<name>
// directive line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive {
			return true
		}
	}
	return false
}

// priorityDirective parses a //weaver:priority=<class> directive in a
// method's doc comment into the admission class the generated MethodSpec
// carries (mirroring the rpc package's numbering). Absent directive means
// normal (0).
func priorityDirective(iface, method string, doc *ast.CommentGroup) (int, error) {
	if doc == nil {
		return 0, nil
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "weaver:priority=") {
			continue
		}
		switch class := strings.TrimPrefix(text, "weaver:priority="); class {
		case "low":
			return 1, nil
		case "normal":
			return 0, nil
		case "high":
			return 2, nil
		case "critical":
			return 3, nil
		default:
			return 0, fmt.Errorf("generate: %s.%s: unknown priority class %q (want low, normal, high, or critical)", iface, method, class)
		}
	}
	return 0, nil
}

// baseTypeName returns the identifier of a receiver type ("T" or "*T").
func baseTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// fileDeclaring returns the file containing the declaration of a named type.
func (g *generator) fileDeclaring(typeName string) *ast.File {
	for _, file := range sortedFiles(g.pkg) {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == typeName {
					return file
				}
			}
		}
	}
	return nil
}

func sortedFiles(pkg *ast.Package) []*ast.File {
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*ast.File, 0, len(names))
	for _, n := range names {
		out = append(out, pkg.Files[n])
	}
	return out
}

// emit renders the generated file.
func (g *generator) emit() ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by weavergen. DO NOT EDIT.\n\n")
	fmt.Fprintf(&b, "package %s\n\n", g.pkg.Name)

	// Mandatory imports.
	g.addImport("context", "context")
	g.addImport("reflect", "reflect")
	g.addImport("repro/internal/codegen", "codegen")
	g.addImport("repro/weaver", "weaver")
	needRouting := false
	for _, c := range g.components {
		for _, m := range c.methods {
			if m.routed {
				needRouting = true
			}
		}
	}
	if needRouting {
		g.addImport("repro/internal/routing", "routing")
	}

	// Render component bodies first: they may register further imports
	// (e.g. the codec for generated marshalers).
	var body bytes.Buffer
	for _, c := range g.components {
		g.emitComponent(&body, c)
	}

	paths := make([]string, 0, len(g.imports))
	for p := range g.imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fmt.Fprintf(&b, "import (\n")
	for _, p := range paths {
		alias := g.imports[p]
		base := p[strings.LastIndexByte(p, '/')+1:]
		if alias == base {
			fmt.Fprintf(&b, "\t%q\n", p)
		} else {
			fmt.Fprintf(&b, "\t%s %q\n", alias, p)
		}
	}
	fmt.Fprintf(&b, ")\n\n")
	b.Write(body.Bytes())

	out, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("generate: formatting generated code: %w\n----\n%s", err, b.String())
	}
	return out, nil
}

func (g *generator) emitComponent(b *bytes.Buffer, c *component) {
	full := g.pkgPath + "/" + c.ifaceName
	stub := lowerFirst(c.ifaceName) + "_ClientStub"

	fmt.Fprintf(b, "// Compile-time checks for component %s.\n", c.ifaceName)
	fmt.Fprintf(b, "var _ weaver.InstanceOf[%s] = (*%s)(nil)\n", c.ifaceName, c.implName)
	fmt.Fprintf(b, "var _ %s = (*%s)(nil)\n\n", c.ifaceName, c.implName)

	// Args/result structs, with generated marshal/unmarshal code (§4.2:
	// the generator "generates code to marshal and unmarshal arguments to
	// component methods"). The codec prefers these over reflection.
	for _, m := range c.methods {
		fmt.Fprintf(b, "type %s struct {\n", argsType(c, m))
		for i, p := range m.params {
			fmt.Fprintf(b, "\tP%d %s\n", i, p.typ)
		}
		fmt.Fprintf(b, "}\n\n")
		g.emitMarshal(b, argsType(c, m), fieldsOf("P", m.params))

		fmt.Fprintf(b, "type %s struct {\n", resType(c, m))
		for i, r := range m.results {
			fmt.Fprintf(b, "\tR%d %s\n", i, r.typ)
		}
		fmt.Fprintf(b, "\tErr string\n\tHasErr bool\n}\n\n")
		resFields := append(fieldsOf("R", m.results),
			field{name: "Err", typ: "string"},
			field{name: "HasErr", typ: "bool"})
		g.emitMarshal(b, resType(c, m), resFields)

		// Pools recycle the args/results structs across calls: the stub
		// draws from them on the caller side, and the hosting path (via
		// MethodSpec.ArgsPool/ResPool) on the server side.
		fmt.Fprintf(b, "var %s_pool codegen.Pool[%s]\n", argsType(c, m), argsType(c, m))
		fmt.Fprintf(b, "var %s_pool codegen.Pool[%s]\n\n", resType(c, m), resType(c, m))
	}

	// Client stub.
	fmt.Fprintf(b, "type %s struct {\n\tconn codegen.Conn\n", stub)
	for _, m := range c.methods {
		fmt.Fprintf(b, "\tm%s *codegen.MethodSpec\n", m.name)
	}
	fmt.Fprintf(b, "}\n\n")
	fmt.Fprintf(b, "var _ %s = %s{}\n\n", c.ifaceName, stub)

	for _, m := range c.methods {
		// Signature.
		fmt.Fprintf(b, "func (s %s) %s(ctx context.Context", stub, m.name)
		for i, p := range m.params {
			if m.variadic && i == len(m.params)-1 {
				fmt.Fprintf(b, ", %s ...%s", p.name, strings.TrimPrefix(p.typ, "[]"))
			} else {
				fmt.Fprintf(b, ", %s %s", p.name, p.typ)
			}
		}
		fmt.Fprintf(b, ") (")
		for _, r := range m.results {
			fmt.Fprintf(b, "%s, ", r.typ)
		}
		fmt.Fprintf(b, "error) {\n")

		// The args/results structs come from per-method pools and return
		// to them before the stub returns; results are extracted into
		// locals first, so callers never see pooled memory.
		fmt.Fprintf(b, "\targs := %s_pool.Get()\n", argsType(c, m))
		for i, p := range m.params {
			fmt.Fprintf(b, "\targs.P%d = %s\n", i, p.name)
		}
		fmt.Fprintf(b, "\tres := %s_pool.Get()\n", resType(c, m))
		if m.routed {
			fmt.Fprintf(b, "\tvar router %s\n", c.routerName)
			fmt.Fprintf(b, "\tshard := routing.KeyHash(router.%s(%s))\n", m.name, stubRouterArgs(m))
			fmt.Fprintf(b, "\terr := s.conn.Invoke(ctx, %q, s.m%s, args, res, shard, true)\n", full, m.name)
		} else {
			fmt.Fprintf(b, "\terr := s.conn.Invoke(ctx, %q, s.m%s, args, res, 0, false)\n", full, m.name)
		}
		for i := range m.results {
			fmt.Fprintf(b, "\tr%d := res.R%d\n", i, i)
		}
		fmt.Fprintf(b, "\trerr := codegen.WireToError(res.Err, res.HasErr)\n")
		fmt.Fprintf(b, "\t%s_pool.Put(args)\n", argsType(c, m))
		fmt.Fprintf(b, "\t%s_pool.Put(res)\n", resType(c, m))
		fmt.Fprintf(b, "\tif err != nil {\n\t\treturn ")
		for i := range m.results {
			fmt.Fprintf(b, "r%d, ", i)
		}
		fmt.Fprintf(b, "err\n\t}\n")
		fmt.Fprintf(b, "\treturn ")
		for i := range m.results {
			fmt.Fprintf(b, "r%d, ", i)
		}
		fmt.Fprintf(b, "rerr\n}\n\n")
	}

	// Registration.
	fmt.Fprintf(b, "func init() {\n")
	for _, m := range c.methods {
		fmt.Fprintf(b, "\tm%s%s := &codegen.MethodSpec{\n", c.ifaceName, m.name)
		fmt.Fprintf(b, "\t\tName: %q,\n", m.name)
		fmt.Fprintf(b, "\t\tNewArgs: func() any { return new(%s) },\n", argsType(c, m))
		fmt.Fprintf(b, "\t\tNewRes: func() any { return new(%s) },\n", resType(c, m))
		fmt.Fprintf(b, "\t\tDo: func(ctx context.Context, impl, args, res any) {\n")
		fmt.Fprintf(b, "\t\t\ta := args.(*%s)\n", argsType(c, m))
		fmt.Fprintf(b, "\t\t\tr := res.(*%s)\n", resType(c, m))
		fmt.Fprintf(b, "\t\t\t_ = a\n")
		fmt.Fprintf(b, "\t\t\tvar err error\n")
		fmt.Fprintf(b, "\t\t\t")
		for i := range m.results {
			fmt.Fprintf(b, "r.R%d, ", i)
		}
		fmt.Fprintf(b, "err = impl.(%s).%s(ctx%s)\n", c.ifaceName, m.name, doCallArgs(m))
		fmt.Fprintf(b, "\t\t\tr.Err, r.HasErr = codegen.ErrorToWire(err)\n")
		fmt.Fprintf(b, "\t\t},\n")
		if m.noRetry {
			fmt.Fprintf(b, "\t\tNoRetry: true,\n")
		}
		if m.priority != 0 {
			fmt.Fprintf(b, "\t\tPriority: %d,\n", m.priority)
		}
		if m.routed {
			fmt.Fprintf(b, "\t\tShard: func(args any) uint64 {\n")
			fmt.Fprintf(b, "\t\t\ta := args.(*%s)\n", argsType(c, m))
			fmt.Fprintf(b, "\t\t\t_ = a\n")
			fmt.Fprintf(b, "\t\t\tvar router %s\n", c.routerName)
			fmt.Fprintf(b, "\t\t\treturn routing.KeyHash(router.%s(%s))\n", m.name, doRouterArgs(m))
			fmt.Fprintf(b, "\t\t},\n")
		}
		fmt.Fprintf(b, "\t}\n")
		fmt.Fprintf(b, "\tm%s%s.ArgsPool = &%s_pool\n", c.ifaceName, m.name, argsType(c, m))
		fmt.Fprintf(b, "\tm%s%s.ResPool = &%s_pool\n", c.ifaceName, m.name, resType(c, m))
	}
	fmt.Fprintf(b, "\tcodegen.Register(codegen.Registration{\n")
	fmt.Fprintf(b, "\t\tName: %q,\n", full)
	fmt.Fprintf(b, "\t\tIface: reflect.TypeOf((*%s)(nil)).Elem(),\n", c.ifaceName)
	fmt.Fprintf(b, "\t\tImpl: reflect.TypeOf(%s{}),\n", c.implName)
	if c.routerName != "" {
		fmt.Fprintf(b, "\t\tRouted: true,\n")
	}
	var noRetry []string
	for _, m := range c.methods {
		if m.noRetry {
			noRetry = append(noRetry, m.name)
		}
	}
	if len(noRetry) > 0 {
		fmt.Fprintf(b, "\t\tNoRetry: []string{")
		for i, n := range noRetry {
			if i > 0 {
				fmt.Fprintf(b, ", ")
			}
			fmt.Fprintf(b, "%q", n)
		}
		fmt.Fprintf(b, "},\n")
	}
	fmt.Fprintf(b, "\t\tMethods: []*codegen.MethodSpec{")
	for i, m := range c.methods {
		if i > 0 {
			fmt.Fprintf(b, ", ")
		}
		fmt.Fprintf(b, "m%s%s", c.ifaceName, m.name)
	}
	fmt.Fprintf(b, "},\n")
	fmt.Fprintf(b, "\t\tClientStub: func(conn codegen.Conn) any {\n")
	fmt.Fprintf(b, "\t\t\treturn %s{conn: conn", stub)
	for _, m := range c.methods {
		fmt.Fprintf(b, ", m%s: m%s%s", m.name, c.ifaceName, m.name)
	}
	fmt.Fprintf(b, "}\n\t\t},\n")
	fmt.Fprintf(b, "\t})\n}\n\n")
}

// field names one struct field for marshal-code generation.
type field struct {
	name string
	typ  string
}

func fieldsOf(prefix string, params []param) []field {
	out := make([]field, len(params))
	for i, p := range params {
		out[i] = field{name: fmt.Sprintf("%s%d", prefix, i), typ: p.typ}
	}
	return out
}

// scalarCodec maps syntactic type names to Encoder/Decoder method names.
// Fields of any other type fall back to the reflection-based codec, which
// produces identical wire bytes on both ends of the connection (same
// binary), so mixing fast and slow paths is safe.
var scalarCodec = map[string]string{
	"bool":       "Bool",
	"string":     "String",
	"int":        "Int",
	"int8":       "Int8",
	"int16":      "Int16",
	"int32":      "Int32",
	"int64":      "Int64",
	"uint":       "Uint",
	"uint8":      "Uint8",
	"uint16":     "Uint16",
	"uint32":     "Uint32",
	"uint64":     "Uint64",
	"float32":    "Float32",
	"float64":    "Float64",
	"complex64":  "Complex64",
	"complex128": "Complex128",
	"[]byte":     "Bytes",
	"byte":       "Uint8",
	"rune":       "Int32",
}

// emitMarshal writes WeaverMarshal/WeaverUnmarshal methods for a generated
// struct. Scalar fields get direct Encoder/Decoder calls; compound fields
// use the reflection codec.
func (g *generator) emitMarshal(b *bytes.Buffer, typeName string, fields []field) {
	g.addImport("repro/internal/codec", "codec")

	fmt.Fprintf(b, "// WeaverMarshal implements codec.Marshaler.\n")
	fmt.Fprintf(b, "func (x %s) WeaverMarshal(e *codec.Encoder) {\n", typeName)
	for _, f := range fields {
		if m, ok := scalarCodec[f.typ]; ok {
			fmt.Fprintf(b, "\te.%s(x.%s)\n", m, f.name)
		} else {
			fmt.Fprintf(b, "\tcodec.Encode(e, x.%s)\n", f.name)
		}
	}
	if len(fields) == 0 {
		fmt.Fprintf(b, "\t_ = e\n")
	}
	fmt.Fprintf(b, "}\n\n")

	fmt.Fprintf(b, "// WeaverUnmarshal implements codec.Unmarshaler.\n")
	fmt.Fprintf(b, "func (x *%s) WeaverUnmarshal(d *codec.Decoder) {\n", typeName)
	for _, f := range fields {
		if m, ok := scalarCodec[f.typ]; ok {
			fmt.Fprintf(b, "\tx.%s = d.%s()\n", f.name, m)
		} else {
			fmt.Fprintf(b, "\tcodec.Decode(d, &x.%s)\n", f.name)
		}
	}
	if len(fields) == 0 {
		fmt.Fprintf(b, "\t_ = d\n")
	}
	fmt.Fprintf(b, "}\n\n")
}

func argsType(c *component, m *method) string {
	return lowerFirst(c.ifaceName) + "_" + m.name + "_Args"
}

func resType(c *component, m *method) string {
	return lowerFirst(c.ifaceName) + "_" + m.name + "_Res"
}

// stubRouterArgs renders the router call arguments inside the client stub
// (parameter names).
func stubRouterArgs(m *method) string {
	parts := make([]string, len(m.params))
	for i, p := range m.params {
		parts[i] = p.name
		if m.variadic && i == len(m.params)-1 {
			parts[i] += "..."
		}
	}
	return strings.Join(parts, ", ")
}

// doRouterArgs renders the router call arguments inside the server-side
// Shard function (args struct fields).
func doRouterArgs(m *method) string {
	parts := make([]string, len(m.params))
	for i := range m.params {
		parts[i] = fmt.Sprintf("a.P%d", i)
		if m.variadic && i == len(m.params)-1 {
			parts[i] += "..."
		}
	}
	return strings.Join(parts, ", ")
}

// doCallArgs renders the implementation call arguments inside Do.
func doCallArgs(m *method) string {
	var b strings.Builder
	for i := range m.params {
		fmt.Fprintf(&b, ", a.P%d", i)
		if m.variadic && i == len(m.params)-1 {
			b.WriteString("...")
		}
	}
	return b.String()
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
