package generate

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func generateTestdata(t *testing.T) string {
	t.Helper()
	out, err := Generate(Options{
		Dir:     "testdata/cachepkg",
		PkgPath: "repro/internal/generate/testdata/cachepkg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no components found")
	}
	return string(out)
}

func TestGeneratedCodeParses(t *testing.T) {
	src := generateTestdata(t)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "weaver_gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestGeneratedSymbols(t *testing.T) {
	src := generateTestdata(t)
	for _, want := range []string{
		// Registrations for both components, in sorted order.
		`"repro/internal/generate/testdata/cachepkg/Cache"`,
		`"repro/internal/generate/testdata/cachepkg/Store"`,
		// Compile-time implementation checks.
		"var _ weaver.InstanceOf[Cache] = (*cacheImpl)(nil)",
		"var _ weaver.InstanceOf[Store] = (*storeImpl)(nil)",
		// Args/results structs.
		"type cache_Get_Args struct",
		"type cache_Stats_Res struct",
		// Client stub implements the interface.
		"var _ Cache = cache_ClientStub{}",
		// Routed methods get shard computation; Stats does not.
		"Routed:",
		"Shard: func(args any) uint64",
		// Variadic support.
		"a0 ...string",
		// Imported type from another package survives.
		"time.Duration",
		// Map parameters go through the codec fallback.
		"type store_BulkPut_Args struct",
		"codec.Encode(e, x.P0)",
		// Generated marshal/unmarshal fast paths (§4.2).
		"func (x cache_Get_Args) WeaverMarshal(e *codec.Encoder)",
		"func (x *cache_Get_Args) WeaverUnmarshal(d *codec.Decoder)",
		// Scalar fields use direct calls; compound fields fall back.
		"e.String(x.P0)",
		"codec.Encode(e, x.P1)", // time.Duration in Touch
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	if strings.Count(src, "Shard: func") != 3 {
		t.Errorf("want 3 Shard funcs (Get, Put, Touch), got %d", strings.Count(src, "Shard: func"))
	}
}

func TestGeneratedImports(t *testing.T) {
	src := generateTestdata(t)
	for _, want := range []string{`"time"`, `"context"`, `"reflect"`, `"repro/internal/codegen"`, `"repro/internal/routing"`, `"repro/weaver"`} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing import %s", want)
		}
	}
}

func TestCacheOrderDeterministic(t *testing.T) {
	a := generateTestdata(t)
	b := generateTestdata(t)
	if a != b {
		t.Error("generator output nondeterministic")
	}
}

func TestNoComponents(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte("package x\n\nfunc F() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(Options{Dir: dir, PkgPath: "example/x"})
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Errorf("got output for componentless package:\n%s", out)
	}
}

func TestRejectsMissingContext(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "repro/weaver"

type B interface {
	M(x int) error
}

type bImpl struct {
	weaver.Implements[B]
}

func (b *bImpl) M(x int) error { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(Options{Dir: dir, PkgPath: "example/bad"})
	if err == nil || !strings.Contains(err.Error(), "context.Context") {
		t.Errorf("err = %v, want context.Context complaint", err)
	}
}

func TestRejectsMissingError(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	"context"

	"repro/weaver"
)

type B interface {
	M(ctx context.Context) string
}

type bImpl struct {
	weaver.Implements[B]
}

func (b *bImpl) M(ctx context.Context) string { return "" }
`
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(Options{Dir: dir, PkgPath: "example/bad"})
	if err == nil || !strings.Contains(err.Error(), "error") {
		t.Errorf("err = %v, want error-result complaint", err)
	}
}

func TestRejectsDuplicateImplementations(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	"context"

	"repro/weaver"
)

type B interface {
	M(ctx context.Context) error
}

type b1 struct{ weaver.Implements[B] }
func (b *b1) M(ctx context.Context) error { return nil }

type b2 struct{ weaver.Implements[B] }
func (b *b2) M(ctx context.Context) error { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(Options{Dir: dir, PkgPath: "example/bad"})
	if err == nil || !strings.Contains(err.Error(), "implemented by both") {
		t.Errorf("err = %v, want duplicate-implementation complaint", err)
	}
}

func TestRejectsRouterMethodMismatch(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	"context"

	"repro/weaver"
)

type B interface {
	M(ctx context.Context) error
}

type r struct{}
func (r) NotAMethod(x string) string { return x }

type bImpl struct {
	weaver.Implements[B]
	weaver.WithRouter[r]
}
func (b *bImpl) M(ctx context.Context) error { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(Options{Dir: dir, PkgPath: "example/bad"})
	if err == nil || !strings.Contains(err.Error(), "NotAMethod") {
		t.Errorf("err = %v, want router mismatch complaint", err)
	}
}

func TestNoRetryDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package pay

import (
	"context"

	"repro/weaver"
)

type Pay interface {
	// Charge is not idempotent.
	//
	//weaver:noretry
	Charge(ctx context.Context, cents int64) (string, error)
	Refund(ctx context.Context, txn string) error
}

type payImpl struct {
	weaver.Implements[Pay]
}

func (p *payImpl) Charge(ctx context.Context, cents int64) (string, error) { return "", nil }
func (p *payImpl) Refund(ctx context.Context, txn string) error            { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "pay.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(Options{Dir: dir, PkgPath: "example/pay"})
	if err != nil {
		t.Fatal(err)
	}
	code := string(out)
	if !strings.Contains(code, "NoRetry: true,") {
		t.Error("Charge did not get NoRetry")
	}
	if !strings.Contains(code, `NoRetry: []string{"Charge"}`) {
		t.Error("registration NoRetry list missing")
	}
	if strings.Count(code, "NoRetry: true,") != 1 {
		t.Error("Refund wrongly marked NoRetry")
	}
}

func TestPackagePathFromGoMod(t *testing.T) {
	got, err := packagePath("testdata/cachepkg")
	if err != nil {
		t.Fatal(err)
	}
	if got != "repro/internal/generate/testdata/cachepkg" {
		t.Errorf("packagePath = %q", got)
	}
}
