// Package testpkg defines small components used by integration, chaos, and
// deployment tests across the repository. Its weaver_gen.go is produced by
// cmd/weavergen, so these tests also exercise generated code end to end.
package testpkg

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/weaver"
)

// Echo returns its argument, tagged with the process id of the replica
// that served the call, so tests can observe placement and replication.
type Echo interface {
	Echo(ctx context.Context, msg string) (string, error)
	// WhoAmI returns the serving process id.
	WhoAmI(ctx context.Context) (int, error)
}

type echoImpl struct {
	weaver.Implements[Echo]
}

func (e *echoImpl) Echo(_ context.Context, msg string) (string, error) {
	return msg, nil
}

func (e *echoImpl) WhoAmI(_ context.Context) (int, error) {
	return os.Getpid(), nil
}

// Counter is a routed, stateful component: every replica keeps its own
// counts, so affinity routing is observable as consistent counts per key.
type Counter interface {
	Add(ctx context.Context, key string, delta int64) (int64, error)
	Value(ctx context.Context, key string) (int64, error)
}

type counterRouter struct{}

func (counterRouter) Add(key string, delta int64) string { return key }
func (counterRouter) Value(key string) string            { return key }

type counterImpl struct {
	weaver.Implements[Counter]
	weaver.WithRouter[counterRouter]

	mu     sync.Mutex
	counts map[string]int64
}

func (c *counterImpl) Init(context.Context) error {
	c.counts = map[string]int64{}
	return nil
}

func (c *counterImpl) Add(_ context.Context, key string, delta int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[key] += delta
	return c.counts[key], nil
}

func (c *counterImpl) Value(_ context.Context, key string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[key], nil
}

// Chain calls Echo, demonstrating a component dependency that crosses
// process boundaries under multiprocess deployments.
type Chain interface {
	Relay(ctx context.Context, msg string, n int) (string, error)
}

type chainImpl struct {
	weaver.Implements[Chain]
	echo weaver.Ref[Echo]
}

func (c *chainImpl) Relay(ctx context.Context, msg string, n int) (string, error) {
	out := msg
	for i := 0; i < n; i++ {
		var err error
		out, err = c.echo.Get().Echo(ctx, out+".")
		if err != nil {
			return "", fmt.Errorf("relay hop %d: %w", i, err)
		}
	}
	return out, nil
}

// Mover is the target of live re-placement chaos tests: a routed component
// whose deliveries are observable process-globally, so an in-process
// deployment can prove that no call was lost or executed twice while the
// manager moved the component between groups.
type Mover interface {
	// Deliver records one sequence number on the serving replica.
	//
	//weaver:noretry
	//weaver:priority=high
	Deliver(ctx context.Context, seq int64) (int64, error)
}

type moverRouter struct{}

// Deliver spreads sequence numbers over a handful of routing keys so moves
// exercise affinity assignments, not just replica lists.
func (moverRouter) Deliver(seq int64) string { return fmt.Sprint(seq % 8) }

// moverMu guards moverSeen, which counts executions per sequence number
// across every in-process replica. Deliver has at-most-once semantics
// (weaver:noretry), so each client-visible success must appear here
// exactly once — a missing entry is a lost call, a count above one a
// duplicated one.
var (
	moverMu   sync.Mutex
	moverSeen = map[int64]int{}
)

// MoverCounts returns a copy of the per-sequence execution counts.
func MoverCounts() map[int64]int {
	moverMu.Lock()
	defer moverMu.Unlock()
	out := make(map[int64]int, len(moverSeen))
	for k, v := range moverSeen {
		out[k] = v
	}
	return out
}

// ResetMoverCounts clears the execution counts.
func ResetMoverCounts() {
	moverMu.Lock()
	defer moverMu.Unlock()
	moverSeen = map[int64]int{}
}

type moverImpl struct {
	weaver.Implements[Mover]
	weaver.WithRouter[moverRouter]
}

func (m *moverImpl) Deliver(_ context.Context, seq int64) (int64, error) {
	moverMu.Lock()
	defer moverMu.Unlock()
	moverSeen[seq]++
	return seq, nil
}

// Store is a routed per-key register. Every replica keeps its own
// in-memory state (affinity is a cache-locality mechanism, not
// durability), and every operation is recorded in a process-global event
// log tagged with the serving replica's instance id, so a harness can
// check linearizable per-key register semantics — and catch a caller whose
// calls land on a replica the assignment does not map the key to.
type Store interface {
	Put(ctx context.Context, key string, val int64) (int64, error)
	// Get is marked low-priority so overload tests and the simulator can
	// watch the admission gate shed reads before writes and deliveries.
	//
	//weaver:priority=low
	Get(ctx context.Context, key string) (int64, error)
}

type storeRouter struct{}

func (storeRouter) Put(key string, val int64) string { return key }
func (storeRouter) Get(key string) string            { return key }

// StoreEvent is one recorded Store operation.
type StoreEvent struct {
	Replica uint64 // unique instance id of the serving replica
	Key     string
	Val     int64 // value written, or value returned by the read
	Write   bool
}

var (
	storeMu     sync.Mutex
	storeEvents []StoreEvent
	storeNextID atomic.Uint64
)

// StoreEvents returns a copy of the global Store event log.
func StoreEvents() []StoreEvent {
	storeMu.Lock()
	defer storeMu.Unlock()
	return append([]StoreEvent(nil), storeEvents...)
}

// ResetStoreEvents clears the global Store event log.
func ResetStoreEvents() {
	storeMu.Lock()
	defer storeMu.Unlock()
	storeEvents = nil
}

type storeImpl struct {
	weaver.Implements[Store]
	weaver.WithRouter[storeRouter]

	id   uint64
	mu   sync.Mutex
	vals map[string]int64
}

func (s *storeImpl) Init(context.Context) error {
	s.id = storeNextID.Add(1)
	s.vals = map[string]int64{}
	return nil
}

func (s *storeImpl) record(key string, val int64, write bool) {
	storeMu.Lock()
	storeEvents = append(storeEvents, StoreEvent{Replica: s.id, Key: key, Val: val, Write: write})
	storeMu.Unlock()
}

func (s *storeImpl) Put(_ context.Context, key string, val int64) (int64, error) {
	s.mu.Lock()
	s.vals[key] = val
	s.mu.Unlock()
	s.record(key, val, true)
	return val, nil
}

func (s *storeImpl) Get(_ context.Context, key string) (int64, error) {
	s.mu.Lock()
	val := s.vals[key]
	s.mu.Unlock()
	s.record(key, val, false)
	return val, nil
}

// StoreProxy is an unrouted component that calls Store on behalf of its
// callers. Colocated with Store in a multi-replica group, it is the
// regression case for assignment-aware local dispatch: each proxy replica
// must forward a key to the replica the affinity assignment owns it on,
// never blindly to its own colocated Store.
type StoreProxy interface {
	PutVia(ctx context.Context, key string, val int64) (int64, error)
	GetVia(ctx context.Context, key string) (int64, error)
}

type storeProxyImpl struct {
	weaver.Implements[StoreProxy]
	store weaver.Ref[Store]
}

func (p *storeProxyImpl) PutVia(ctx context.Context, key string, val int64) (int64, error) {
	return p.store.Get().Put(ctx, key, val)
}

func (p *storeProxyImpl) GetVia(ctx context.Context, key string) (int64, error) {
	return p.store.Get().Get(ctx, key)
}

// Backref references Counter, closing a reference cycle across colocation
// groups when grouped against Chain/Echo (Chain→Echo one way, this the
// other). Static configs with such mutual references used to deadlock at
// init; the regression test holds the two groups' components together.
type Backref interface {
	Poke(ctx context.Context, key string) (int64, error)
}

type backrefImpl struct {
	weaver.Implements[Backref]
	counter weaver.Ref[Counter]
}

func (b *backrefImpl) Poke(ctx context.Context, key string) (int64, error) {
	return b.counter.Get().Value(ctx, key)
}

// Failer fails on demand, for error-propagation and chaos tests.
type Failer interface {
	Maybe(ctx context.Context, fail bool) (string, error)
	Crashy(ctx context.Context) (int64, error)
}

var crashyCalls atomic.Int64

type failerImpl struct {
	weaver.Implements[Failer]
}

func (f *failerImpl) Maybe(_ context.Context, fail bool) (string, error) {
	if fail {
		return "", errors.New("requested failure")
	}
	return "ok", nil
}

func (f *failerImpl) Crashy(_ context.Context) (int64, error) {
	return crashyCalls.Add(1), nil
}
