package routing

import "testing"

// TestAffinityIgnoresStaleAssignment verifies epoch fencing: an assignment
// older than the installed one must not roll the router back.
func TestAffinityIgnoresStaleAssignment(t *testing.T) {
	af := NewAffinity()

	newer := EqualSlices(5, []string{"b"}, 1)
	af.Update([]string{"b"}, &newer)

	older := EqualSlices(3, []string{"a"}, 1)
	af.Update([]string{"a"}, &older)

	addr, err := af.Pick(KeyHash("k"), true)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "b" {
		t.Fatalf("Pick after stale update = %q, want %q (epoch 5)", addr, "b")
	}

	// An equal-or-newer epoch applies.
	next := EqualSlices(5, []string{"c"}, 1)
	af.Update([]string{"c"}, &next)
	if addr, _ := af.Pick(KeyHash("k"), true); addr != "c" {
		t.Fatalf("Pick after same-epoch update = %q, want %q", addr, "c")
	}
}
