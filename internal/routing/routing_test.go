package routing

import (
	"testing"
	"testing/quick"
)

func TestEqualSlicesCoversKeySpace(t *testing.T) {
	a := EqualSlices(1, []string{"r1", "r2", "r3"}, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every key must resolve to exactly one replica.
	for _, key := range []uint64{0, 1, 1 << 32, 1 << 63, ^uint64(0)} {
		reps := a.Find(key)
		if len(reps) != 1 {
			t.Errorf("key %d -> %v", key, reps)
		}
	}
}

func TestEqualSlicesBalanced(t *testing.T) {
	replicas := []string{"a", "b", "c", "d"}
	a := EqualSlices(1, replicas, 8)
	counts := map[string]int{}
	const samples = 100000
	for i := 0; i < samples; i++ {
		key := KeyHash(string(rune(i)) + "key")
		counts[a.Find(key)[0]]++
	}
	for r, n := range counts {
		frac := float64(n) / samples
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("replica %s got %.1f%% of keys, want ~25%%", r, frac*100)
		}
	}
}

func TestEqualSlicesDeterministicOrderIndependent(t *testing.T) {
	a := EqualSlices(1, []string{"x", "y", "z"}, 4)
	b := EqualSlices(1, []string{"z", "x", "y"}, 4)
	for _, key := range []uint64{7, 1 << 20, 1 << 50} {
		if a.Find(key)[0] != b.Find(key)[0] {
			t.Errorf("replica order changed assignment for key %d", key)
		}
	}
}

func TestQuickAssignmentInvariant(t *testing.T) {
	f := func(version uint64, n uint8, spr uint8, key uint64) bool {
		count := int(n%8) + 1
		replicas := make([]string, count)
		for i := range replicas {
			replicas[i] = string(rune('a' + i))
		}
		a := EqualSlices(version, replicas, int(spr%6)+1)
		if a.Validate() != nil {
			return false
		}
		return len(a.Find(key)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin("a", "b", "c")
	seen := map[string]int{}
	for i := 0; i < 30; i++ {
		addr, err := rr.Pick(0, false)
		if err != nil {
			t.Fatal(err)
		}
		seen[addr]++
	}
	for _, r := range []string{"a", "b", "c"} {
		if seen[r] != 10 {
			t.Errorf("replica %s picked %d times, want 10", r, seen[r])
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := NewRoundRobin()
	if _, err := rr.Pick(0, false); err != ErrNoReplicas {
		t.Errorf("err = %v", err)
	}
}

func TestAffinityStickiness(t *testing.T) {
	af := NewAffinity("a", "b", "c")
	a := EqualSlices(1, []string{"a", "b", "c"}, 4)
	af.Update([]string{"a", "b", "c"}, &a)
	for _, key := range []string{"user-1", "user-2", "user-3"} {
		h := KeyHash(key)
		first, err := af.Pick(h, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			got, err := af.Pick(h, true)
			if err != nil {
				t.Fatal(err)
			}
			if got != first {
				t.Fatalf("key %s flapped: %s vs %s", key, got, first)
			}
		}
	}
}

func TestAffinityFallsBackWithoutAssignment(t *testing.T) {
	af := NewAffinity("a", "b")
	if _, err := af.Pick(KeyHash("k"), true); err != nil {
		t.Errorf("no fallback: %v", err)
	}
}

func TestAffinityUnshardedUsesRoundRobin(t *testing.T) {
	af := NewAffinity("a", "b")
	a := EqualSlices(1, []string{"a"}, 4) // assignment says everything -> a
	af.Update([]string{"a", "b"}, &a)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		addr, err := af.Pick(0, false)
		if err != nil {
			t.Fatal(err)
		}
		seen[addr] = true
	}
	if !seen["b"] {
		t.Error("unsharded calls never reached replica b")
	}
}

func TestAffinityClearedOnEmptyReplicas(t *testing.T) {
	af := NewAffinity("a")
	a := EqualSlices(1, []string{"a"}, 2)
	af.Update([]string{"a"}, &a)
	af.Update(nil, nil)
	if _, err := af.Pick(KeyHash("k"), true); err != ErrNoReplicas {
		t.Errorf("err = %v", err)
	}
}

func TestLeastLoaded(t *testing.T) {
	ll := NewLeastLoaded("a", "b")
	ll.Start("a")
	ll.Start("a")
	// With a loaded, picks must prefer b.
	for i := 0; i < 5; i++ {
		addr, err := ll.Pick(0, false)
		if err != nil {
			t.Fatal(err)
		}
		if addr != "b" {
			t.Errorf("pick = %s, want b", addr)
		}
	}
	ll.Done("a")
	ll.Done("a")
}

func TestLeastLoadedForgetsRemovedReplicas(t *testing.T) {
	ll := NewLeastLoaded("a", "b")
	ll.Start("b")
	ll.Update([]string{"a"}, nil)
	addr, err := ll.Pick(0, false)
	if err != nil || addr != "a" {
		t.Errorf("pick = %s, %v", addr, err)
	}
}

func TestKeyHashNeverZero(t *testing.T) {
	f := func(s string) bool { return KeyHash(s) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
