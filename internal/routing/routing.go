// Package routing implements replica selection for component method calls:
// round-robin and least-loaded balancing for unrouted components, and
// slice-based affinity routing in the style of Slicer (paper §5.2) for
// routed components, where requests for the same key are directed to the
// same replica to improve cache locality.
package routing

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// KeyHash hashes a routing key to the 64-bit key space used by
// assignments. Both the generated Shard functions and tests use it.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	v := h.Sum64()
	if v == 0 {
		v = 1 // zero means "unrouted" on the wire
	}
	return v
}

// A Slice assigns one contiguous range of the key space, starting at Start
// and ending just before the next slice's Start, to a set of replicas.
type Slice struct {
	Start    uint64   `tag:"1"`
	Replicas []string `tag:"2"`
}

// An Assignment maps the entire 64-bit key space onto replicas, as a sorted
// list of slices. The first slice must start at 0 so every key is covered.
// Assignments are versioned; routers ignore assignments older than the one
// they hold.
type Assignment struct {
	Version uint64  `tag:"1"`
	Slices  []Slice `tag:"2"`
}

// Validate checks the assignment's structural invariants: slices sorted,
// first at zero, no empty replica sets, no duplicate starts.
func (a *Assignment) Validate() error {
	if len(a.Slices) == 0 {
		return fmt.Errorf("routing: assignment v%d has no slices", a.Version)
	}
	if a.Slices[0].Start != 0 {
		return fmt.Errorf("routing: assignment v%d does not cover key 0", a.Version)
	}
	for i, s := range a.Slices {
		if len(s.Replicas) == 0 {
			return fmt.Errorf("routing: assignment v%d slice %d has no replicas", a.Version, i)
		}
		if i > 0 && a.Slices[i-1].Start >= s.Start {
			return fmt.Errorf("routing: assignment v%d slices unsorted at %d", a.Version, i)
		}
	}
	return nil
}

// Find returns the replicas responsible for the given key hash.
func (a *Assignment) Find(key uint64) []string {
	// Binary search for the last slice with Start <= key.
	i := sort.Search(len(a.Slices), func(i int) bool { return a.Slices[i].Start > key })
	if i == 0 {
		return nil // invalid assignment; Validate would have caught it
	}
	return a.Slices[i-1].Replicas
}

// EqualSlices builds an assignment dividing the key space into equal-width
// slices, one per replica per pass, assigning slices round-robin. With
// slicesPerReplica > 1 the key space interleaves replicas, which smooths
// load when key popularity is skewed (the same trick Slicer uses).
func EqualSlices(version uint64, replicas []string, slicesPerReplica int) Assignment {
	if slicesPerReplica <= 0 {
		slicesPerReplica = 4
	}
	n := len(replicas)
	if n == 0 {
		return Assignment{Version: version}
	}
	sorted := append([]string(nil), replicas...)
	sort.Strings(sorted)
	total := n * slicesPerReplica
	width := ^uint64(0) / uint64(total)
	slices := make([]Slice, total)
	for i := 0; i < total; i++ {
		slices[i] = Slice{
			Start:    uint64(i) * width,
			Replicas: []string{sorted[i%n]},
		}
	}
	slices[0].Start = 0
	return Assignment{Version: version, Slices: slices}
}

// A Balancer picks a replica address for one call.
type Balancer interface {
	// Pick returns the address to call. shard is the routing key hash;
	// hasShard reports whether the method is routed. Pick returns an error
	// if no replica is available.
	Pick(shard uint64, hasShard bool) (string, error)
	// Update replaces the replica set (and, for affinity balancers, the
	// assignment).
	Update(replicas []string, assignment *Assignment)
}

// ErrNoReplicas is returned by balancers with an empty replica set.
var ErrNoReplicas = fmt.Errorf("routing: no healthy replicas")

// RoundRobin cycles through replicas.
type RoundRobin struct {
	mu       sync.RWMutex
	replicas []string
	next     atomic.Uint64
}

// NewRoundRobin returns a round-robin balancer over the given replicas.
func NewRoundRobin(replicas ...string) *RoundRobin {
	rr := &RoundRobin{}
	rr.Update(replicas, nil)
	return rr
}

// Pick implements Balancer.
func (r *RoundRobin) Pick(shard uint64, hasShard bool) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.replicas) == 0 {
		return "", ErrNoReplicas
	}
	i := r.next.Add(1)
	return r.replicas[i%uint64(len(r.replicas))], nil
}

// Update implements Balancer.
func (r *RoundRobin) Update(replicas []string, _ *Assignment) {
	cp := append([]string(nil), replicas...)
	sort.Strings(cp)
	r.mu.Lock()
	r.replicas = cp
	r.mu.Unlock()
}

// Affinity routes sharded calls using an assignment and falls back to
// round-robin for unsharded calls (or when no assignment is installed).
type Affinity struct {
	mu         sync.RWMutex
	assignment *Assignment
	fallback   *RoundRobin
	next       atomic.Uint64 // rotates among a slice's replicas
}

// NewAffinity returns an affinity balancer with the given initial replica
// set and no assignment.
func NewAffinity(replicas ...string) *Affinity {
	return &Affinity{fallback: NewRoundRobin(replicas...)}
}

// Pick implements Balancer.
func (a *Affinity) Pick(shard uint64, hasShard bool) (string, error) {
	if hasShard {
		a.mu.RLock()
		asgn := a.assignment
		a.mu.RUnlock()
		if asgn != nil {
			if reps := asgn.Find(shard); len(reps) > 0 {
				if len(reps) == 1 {
					return reps[0], nil
				}
				return reps[a.next.Add(1)%uint64(len(reps))], nil
			}
		}
	}
	return a.fallback.Pick(shard, hasShard)
}

// Owners returns the replicas the installed assignment maps shard to, or
// nil when no assignment is installed. Colocated callers use it to decide
// whether a routed call's key maps to themselves (local fast path) or to a
// sibling replica (data plane), so affinity holds even when caller and
// callee share a process.
func (a *Affinity) Owners(shard uint64) []string {
	a.mu.RLock()
	asgn := a.assignment
	a.mu.RUnlock()
	if asgn == nil {
		return nil
	}
	return asgn.Find(shard)
}

// Update implements Balancer. A nil assignment retains the previous one
// unless the replica set became empty. Assignments are epoch-fenced: an
// assignment older than the one currently installed is ignored, so routing
// pushes that arrive out of order (e.g. during a live re-placement, when a
// component's ownership flips between groups) can never roll a router back
// to a superseded epoch.
func (a *Affinity) Update(replicas []string, assignment *Assignment) {
	a.mu.Lock()
	if assignment != nil {
		if a.assignment != nil && assignment.Version < a.assignment.Version {
			a.mu.Unlock()
			return // stale epoch
		}
		a.assignment = assignment
	}
	if len(replicas) == 0 {
		a.assignment = nil
	}
	a.mu.Unlock()
	a.fallback.Update(replicas, nil)
}

// HealthAware wraps a Balancer and skips replicas an external health
// signal (typically a circuit breaker) reports sick. Selection stays
// delegated: HealthAware re-picks from the inner balancer a bounded number
// of times looking for a healthy replica. If every candidate is sick it
// fails open and returns the last pick anyway — a wrong health signal must
// degrade to the old behavior, never to a self-inflicted total outage.
type HealthAware struct {
	inner   Balancer
	healthy func(addr string) bool
}

// NewHealthAware wraps inner so Pick prefers replicas for which healthy
// returns true. A nil healthy func disables filtering.
func NewHealthAware(inner Balancer, healthy func(addr string) bool) *HealthAware {
	return &HealthAware{inner: inner, healthy: healthy}
}

// healthAwareRepicks bounds how many alternates Pick asks the inner
// balancer for before failing open.
const healthAwareRepicks = 8

// Pick implements Balancer.
func (h *HealthAware) Pick(shard uint64, hasShard bool) (string, error) {
	addr, err := h.inner.Pick(shard, hasShard)
	if err != nil || h.healthy == nil || h.healthy(addr) {
		return addr, err
	}
	for i := 0; i < healthAwareRepicks; i++ {
		next, err := h.inner.Pick(shard, hasShard)
		if err != nil {
			break
		}
		if h.healthy(next) {
			return next, nil
		}
		addr = next
	}
	return addr, nil
}

// Update implements Balancer by delegating to the inner balancer.
func (h *HealthAware) Update(replicas []string, assignment *Assignment) {
	h.inner.Update(replicas, assignment)
}

// LeastLoaded tracks in-flight calls per replica and picks the replica with
// the fewest, breaking ties pseudo-randomly by rotation. Callers must
// bracket calls with Start/Done.
type LeastLoaded struct {
	mu       sync.Mutex
	inflight map[string]int
	replicas []string
	rot      int
}

// NewLeastLoaded returns a least-loaded balancer over the given replicas.
func NewLeastLoaded(replicas ...string) *LeastLoaded {
	l := &LeastLoaded{inflight: map[string]int{}}
	l.Update(replicas, nil)
	return l
}

// Pick implements Balancer.
func (l *LeastLoaded) Pick(shard uint64, hasShard bool) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.replicas) == 0 {
		return "", ErrNoReplicas
	}
	l.rot++
	best := ""
	bestLoad := int(^uint(0) >> 1)
	for i := range l.replicas {
		r := l.replicas[(i+l.rot)%len(l.replicas)]
		if load := l.inflight[r]; load < bestLoad {
			best, bestLoad = r, load
		}
	}
	return best, nil
}

// Start records the beginning of a call to addr.
func (l *LeastLoaded) Start(addr string) {
	l.mu.Lock()
	l.inflight[addr]++
	l.mu.Unlock()
}

// Done records the completion of a call to addr.
func (l *LeastLoaded) Done(addr string) {
	l.mu.Lock()
	if l.inflight[addr] > 0 {
		l.inflight[addr]--
	}
	l.mu.Unlock()
}

// Update implements Balancer.
func (l *LeastLoaded) Update(replicas []string, _ *Assignment) {
	cp := append([]string(nil), replicas...)
	sort.Strings(cp)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replicas = cp
	live := map[string]bool{}
	for _, r := range cp {
		live[r] = true
	}
	for r := range l.inflight {
		if !live[r] {
			delete(l.inflight, r)
		}
	}
}
