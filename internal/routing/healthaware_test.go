package routing

import (
	"errors"
	"testing"
)

func TestHealthAwareSkipsUnhealthy(t *testing.T) {
	h := NewHealthAware(NewRoundRobin("a", "b", "c"), func(addr string) bool {
		return addr != "b"
	})
	for i := 0; i < 60; i++ {
		addr, err := h.Pick(0, false)
		if err != nil {
			t.Fatal(err)
		}
		if addr == "b" {
			t.Fatalf("pick %d returned sick replica b", i)
		}
	}
}

func TestHealthAwareFailsOpenWhenAllSick(t *testing.T) {
	// With every replica reported sick, Pick must still return one: a wrong
	// health signal degrades to the unfiltered behavior, never to a
	// self-inflicted outage.
	h := NewHealthAware(NewRoundRobin("a", "b"), func(string) bool { return false })
	addr, err := h.Pick(0, false)
	if err != nil {
		t.Fatalf("all-sick pick errored: %v", err)
	}
	if addr != "a" && addr != "b" {
		t.Fatalf("all-sick pick = %q", addr)
	}
}

func TestHealthAwareNilHealthFuncDelegates(t *testing.T) {
	h := NewHealthAware(NewRoundRobin("a"), nil)
	addr, err := h.Pick(0, false)
	if err != nil || addr != "a" {
		t.Fatalf("pick = %q, %v", addr, err)
	}
}

func TestHealthAwarePropagatesNoReplicas(t *testing.T) {
	h := NewHealthAware(NewRoundRobin(), func(string) bool { return true })
	if _, err := h.Pick(0, false); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

func TestHealthAwareUpdateDelegates(t *testing.T) {
	inner := NewRoundRobin("old")
	h := NewHealthAware(inner, func(string) bool { return true })
	h.Update([]string{"new"}, nil)
	addr, err := h.Pick(0, false)
	if err != nil || addr != "new" {
		t.Fatalf("pick after update = %q, %v", addr, err)
	}
}

func TestHealthAwarePreservesAffinity(t *testing.T) {
	// Sharded picks filtered for health still come from the shard's replica
	// set when a healthy member exists.
	replicas := []string{"r1", "r2"}
	a := NewAffinity(replicas...)
	asgn := EqualSlices(1, replicas, 2)
	a.Update(replicas, &asgn)

	h := NewHealthAware(a, func(addr string) bool { return addr != "r1" })
	key := KeyHash("some-key")
	for i := 0; i < 20; i++ {
		addr, err := h.Pick(key, true)
		if err != nil {
			t.Fatal(err)
		}
		if addr == "r1" {
			// r1 may only appear if the shard's slice holds r1 alone, in
			// which case HealthAware fails open. With a single-replica
			// slice the repick loop returns the same address; accept it.
			if owners := asgn.Find(key); len(owners) == 1 && owners[0] == "r1" {
				continue
			}
			t.Fatalf("pick %d returned sick replica r1 despite alternatives", i)
		}
	}
}
