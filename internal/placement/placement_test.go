package placement

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/callgraph"
)

// graphOf builds a call graph from (caller, callee, calls) triples.
func graphOf(edges ...[3]any) *callgraph.Graph {
	c := callgraph.NewCollector()
	for _, e := range edges {
		caller, callee := e[0].(string), e[1].(string)
		for i := 0; i < e[2].(int); i++ {
			c.Record(caller, callee, "M", time.Microsecond, 10, true, false)
		}
	}
	return c.Analyze()
}

func TestPlanMergesChattiestPair(t *testing.T) {
	g := graphOf(
		[3]any{"A", "B", 100}, // chatty
		[3]any{"A", "C", 1},
		[3]any{"C", "D", 2},
	)
	plan := Plan(g, Config{MaxGroupSize: 2})
	if err := Validate(plan, Config{MaxGroupSize: 2}); err != nil {
		t.Fatal(err)
	}
	groupOf := invert(plan)
	if groupOf["A"] != groupOf["B"] {
		t.Errorf("A and B not colocated: %v", plan)
	}
}

func TestPlanRespectsSizeCap(t *testing.T) {
	g := graphOf(
		[3]any{"A", "B", 100},
		[3]any{"B", "C", 90},
		[3]any{"C", "D", 80},
		[3]any{"D", "E", 70},
	)
	plan := Plan(g, Config{MaxGroupSize: 2})
	if err := Validate(plan, Config{MaxGroupSize: 2}); err != nil {
		t.Fatal(err)
	}
	for name, comps := range plan {
		if len(comps) > 2 {
			t.Errorf("group %s oversize: %v", name, comps)
		}
	}
}

func TestPlanImprovesScoreOverSingletons(t *testing.T) {
	g := graphOf(
		[3]any{"A", "B", 50},
		[3]any{"B", "C", 40},
		[3]any{"A", "D", 5},
		[3]any{"D", "E", 3},
	)
	singletons := map[string][]string{}
	for i, c := range g.Components() {
		singletons[string(rune('a'+i))] = []string{c}
	}
	planned := Plan(g, Config{MaxGroupSize: 3})
	if Score(g, planned) <= Score(g, singletons) {
		t.Errorf("planned score %.2f not better than singleton %.2f",
			Score(g, planned), Score(g, singletons))
	}
}

func TestFullColocationScoresOne(t *testing.T) {
	g := graphOf([3]any{"A", "B", 10}, [3]any{"B", "C", 10})
	plan := map[string][]string{"all": {"A", "B", "C"}}
	if s := Score(g, plan); s != 1.0 {
		t.Errorf("score = %v", s)
	}
}

func TestPlanDeterministic(t *testing.T) {
	g := graphOf(
		[3]any{"A", "B", 10},
		[3]any{"C", "D", 10},
		[3]any{"B", "C", 10},
	)
	a := Plan(g, Config{MaxGroupSize: 2})
	b := Plan(g, Config{MaxGroupSize: 2})
	if len(a) != len(b) {
		t.Fatalf("plans differ: %v vs %v", a, b)
	}
	for k, v := range a {
		bv := b[k]
		if len(v) != len(bv) {
			t.Fatalf("group %s differs: %v vs %v", k, v, bv)
		}
		for i := range v {
			if v[i] != bv[i] {
				t.Fatalf("group %s differs: %v vs %v", k, v, bv)
			}
		}
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	plan := map[string][]string{"g0": {"A"}, "g1": {"A"}}
	if err := Validate(plan, Config{}); err == nil {
		t.Error("duplicate component accepted")
	}
}

func TestQuickPlanAlwaysValid(t *testing.T) {
	f := func(pairs []uint16, cap8 uint8) bool {
		c := callgraph.NewCollector()
		names := []string{"A", "B", "C", "D", "E", "F", "G"}
		for _, p := range pairs {
			caller := names[int(p>>8)%len(names)]
			callee := names[int(p&0xff)%len(names)]
			if caller == callee {
				continue
			}
			c.Record(caller, callee, "M", time.Microsecond, 1, true, false)
		}
		cfg := Config{MaxGroupSize: int(cap8%5) + 1}
		plan := Plan(c.Analyze(), cfg)
		return Validate(plan, cfg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func invert(plan map[string][]string) map[string]string {
	out := map[string]string{}
	for g, comps := range plan {
		for _, c := range comps {
			out[c] = g
		}
	}
	return out
}
