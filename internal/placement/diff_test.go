package placement

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/callgraph"
)

// TestDiffRenameStability: a target plan that is the current grouping under
// different names must produce zero moves.
func TestDiffRenameStability(t *testing.T) {
	current := map[string][]string{
		"frontend": {"Frontend", "Currency"},
		"checkout": {"Checkout", "Payment"},
		"main":     nil,
	}
	target := map[string][]string{
		"g0": {"Checkout", "Payment"},
		"g1": {"Currency", "Frontend"},
	}
	if moves := Diff(current, target); len(moves) != 0 {
		t.Fatalf("renamed-but-identical plan produced moves: %+v", moves)
	}
}

// TestDiffMovesMinority: when a target group mostly matches an existing
// group, only the odd ones out move — into the matched group, not a fresh
// one.
func TestDiffMovesMinority(t *testing.T) {
	current := map[string][]string{
		"a": {"W", "X", "Y"},
		"b": {"Z"},
	}
	target := map[string][]string{
		"g0": {"W", "X", "Y", "Z"},
	}
	moves := Diff(current, target)
	want := []Move{{Component: "Z", From: "b", To: "a"}}
	if !reflect.DeepEqual(moves, want) {
		t.Fatalf("Diff = %+v, want %+v", moves, want)
	}
}

// TestDiffFreshGroupName: a target group with no overlap winner left gets a
// fresh name that does not collide with existing groups.
func TestDiffFreshGroupName(t *testing.T) {
	current := map[string][]string{
		"g0": {"A", "B"},
		"g1": {"C", "D"},
	}
	// The plan splits g0: "A" stays heavy with g0, the pair C+B forms a new
	// group, D gets its own.
	target := map[string][]string{
		"g0": {"A"},
		"g1": {"B", "C"},
		"g2": {"D"},
	}
	moves := Diff(current, target)
	byComp := map[string]Move{}
	for _, mv := range moves {
		byComp[mv.Component] = mv
	}
	if len(moves) != 2 {
		t.Fatalf("Diff = %+v, want moves for exactly B-or-C and D", moves)
	}
	// g0 keeps A (overlap 1); target g1 matches current g1 via C; B moves
	// into it; target g2 is unmatched and must NOT reuse g0/g1.
	if mv, ok := byComp["B"]; !ok || mv.To != "g1" || mv.From != "g0" {
		t.Fatalf("B move = %+v, want g0 -> g1", byComp["B"])
	}
	mv, ok := byComp["D"]
	if !ok {
		t.Fatalf("no move for D: %+v", moves)
	}
	if mv.To == "g0" || mv.To == "g1" {
		t.Fatalf("D moved to occupied group %q", mv.To)
	}
}

// TestDiffUnknownComponentsIgnored: components in the target plan that the
// deployment does not run produce no moves.
func TestDiffUnknownComponentsIgnored(t *testing.T) {
	current := map[string][]string{"a": {"X"}}
	target := map[string][]string{"g0": {"X", "Ghost"}}
	if moves := Diff(current, target); len(moves) != 0 {
		t.Fatalf("unexpected moves: %+v", moves)
	}
}

// TestEvaluateMatchesPlanAndScore: Evaluate is exactly Plan + Score.
func TestEvaluateMatchesPlanAndScore(t *testing.T) {
	c := callgraph.NewCollector()
	for i := 0; i < 50; i++ {
		c.Record("A", "B", "M", time.Microsecond, 10, true, false)
	}
	for i := 0; i < 5; i++ {
		c.Record("B", "C", "M", time.Microsecond, 10, true, false)
	}
	g := c.Analyze()
	cfg := Config{MaxGroupSize: 2}
	ev := Evaluate(g, cfg)
	plan := Plan(g, cfg)
	if !reflect.DeepEqual(ev.Plan, plan) {
		t.Fatalf("Evaluate plan %+v != Plan %+v", ev.Plan, plan)
	}
	if got, want := ev.Score, Score(g, plan); got != want {
		t.Fatalf("Evaluate score %v != Score %v", got, want)
	}
	if ev.Score <= 0 || ev.Score >= 1 {
		t.Fatalf("score %v out of expected open interval (0,1)", ev.Score)
	}
}
