package placement

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/callgraph"
)

// TestDiffRenameStability: a target plan that is the current grouping under
// different names must produce zero moves.
func TestDiffRenameStability(t *testing.T) {
	current := map[string][]string{
		"frontend": {"Frontend", "Currency"},
		"checkout": {"Checkout", "Payment"},
		"main":     nil,
	}
	target := map[string][]string{
		"g0": {"Checkout", "Payment"},
		"g1": {"Currency", "Frontend"},
	}
	if moves := Diff(current, target); len(moves) != 0 {
		t.Fatalf("renamed-but-identical plan produced moves: %+v", moves)
	}
}

// TestDiffMovesMinority: when a target group mostly matches an existing
// group, only the odd ones out move — into the matched group, not a fresh
// one.
func TestDiffMovesMinority(t *testing.T) {
	current := map[string][]string{
		"a": {"W", "X", "Y"},
		"b": {"Z"},
	}
	target := map[string][]string{
		"g0": {"W", "X", "Y", "Z"},
	}
	moves := Diff(current, target)
	want := []Move{{Component: "Z", From: "b", To: "a"}}
	if !reflect.DeepEqual(moves, want) {
		t.Fatalf("Diff = %+v, want %+v", moves, want)
	}
}

// TestDiffFreshGroupName: a target group with no overlap winner left gets a
// fresh name that does not collide with existing groups.
func TestDiffFreshGroupName(t *testing.T) {
	current := map[string][]string{
		"g0": {"A", "B"},
		"g1": {"C", "D"},
	}
	// The plan splits g0: "A" stays heavy with g0, the pair C+B forms a new
	// group, D gets its own.
	target := map[string][]string{
		"g0": {"A"},
		"g1": {"B", "C"},
		"g2": {"D"},
	}
	moves := Diff(current, target)
	byComp := map[string]Move{}
	for _, mv := range moves {
		byComp[mv.Component] = mv
	}
	if len(moves) != 2 {
		t.Fatalf("Diff = %+v, want moves for exactly B-or-C and D", moves)
	}
	// g0 keeps A (overlap 1); target g1 matches current g1 via C; B moves
	// into it; target g2 is unmatched and must NOT reuse g0/g1.
	if mv, ok := byComp["B"]; !ok || mv.To != "g1" || mv.From != "g0" {
		t.Fatalf("B move = %+v, want g0 -> g1", byComp["B"])
	}
	mv, ok := byComp["D"]
	if !ok {
		t.Fatalf("no move for D: %+v", moves)
	}
	if mv.To == "g0" || mv.To == "g1" {
		t.Fatalf("D moved to occupied group %q", mv.To)
	}
}

// TestDiffUnknownComponentsIgnored: components in the target plan that the
// deployment does not run produce no moves.
func TestDiffUnknownComponentsIgnored(t *testing.T) {
	current := map[string][]string{"a": {"X"}}
	target := map[string][]string{"g0": {"X", "Ghost"}}
	if moves := Diff(current, target); len(moves) != 0 {
		t.Fatalf("unexpected moves: %+v", moves)
	}
}

// TestEvaluateMatchesPlanAndScore: Evaluate is exactly Plan + Score.
func TestEvaluateMatchesPlanAndScore(t *testing.T) {
	c := callgraph.NewCollector()
	for i := 0; i < 50; i++ {
		c.Record("A", "B", "M", time.Microsecond, 10, true, false)
	}
	for i := 0; i < 5; i++ {
		c.Record("B", "C", "M", time.Microsecond, 10, true, false)
	}
	g := c.Analyze()
	cfg := Config{MaxGroupSize: 2}
	ev := Evaluate(g, cfg)
	plan := Plan(g, cfg)
	if !reflect.DeepEqual(ev.Plan, plan) {
		t.Fatalf("Evaluate plan %+v != Plan %+v", ev.Plan, plan)
	}
	if got, want := ev.Score, Score(g, plan); got != want {
		t.Fatalf("Evaluate score %v != Score %v", got, want)
	}
	if ev.Score <= 0 || ev.Score >= 1 {
		t.Fatalf("score %v out of expected open interval (0,1)", ev.Score)
	}
}

// TestDiffEmptyPlans: an empty target means "no opinion", and an empty
// current deployment has nothing to move; neither may synthesize moves.
func TestDiffEmptyPlans(t *testing.T) {
	current := map[string][]string{
		"a":    {"X", "Y"},
		"main": nil,
	}
	if moves := Diff(current, map[string][]string{}); len(moves) != 0 {
		t.Fatalf("empty target produced moves: %+v", moves)
	}
	if moves := Diff(current, nil); len(moves) != 0 {
		t.Fatalf("nil target produced moves: %+v", moves)
	}
	target := map[string][]string{"g0": {"X", "Y"}}
	if moves := Diff(map[string][]string{}, target); len(moves) != 0 {
		t.Fatalf("empty current produced moves: %+v", moves)
	}
	if moves := Diff(nil, nil); len(moves) != 0 {
		t.Fatalf("Diff(nil, nil) = %+v, want none", moves)
	}
}

// TestDiffSingleComponentGroups: a deployment of all singleton groups,
// re-partitioned into singleton groups, moves nothing regardless of names;
// merging two singletons moves exactly one component.
func TestDiffSingleComponentGroups(t *testing.T) {
	current := map[string][]string{
		"A": {"A"},
		"B": {"B"},
		"C": {"C"},
	}
	sameShape := map[string][]string{
		"g0": {"C"},
		"g1": {"A"},
		"g2": {"B"},
	}
	if moves := Diff(current, sameShape); len(moves) != 0 {
		t.Fatalf("singleton-to-singleton repartition produced moves: %+v", moves)
	}
	merge := map[string][]string{
		"g0": {"A", "B"},
		"g1": {"C"},
	}
	moves := Diff(current, merge)
	if len(moves) != 1 {
		t.Fatalf("merging two singletons produced %d moves: %+v", len(moves), moves)
	}
	mv := moves[0]
	if mv.From == mv.To {
		t.Fatalf("self-move: %+v", mv)
	}
	if mv.Component != "A" && mv.Component != "B" {
		t.Fatalf("moved bystander %q: %+v", mv.Component, moves)
	}
	if mv.To != "A" && mv.To != "B" {
		t.Fatalf("merge created a fresh group %q instead of reusing a matched one", mv.To)
	}
}

// TestDiffAllRenamedIdentical: every partition renamed, contents identical
// — including singletons and an empty main group — must be a no-op.
func TestDiffAllRenamedIdentical(t *testing.T) {
	current := map[string][]string{
		"frontend": {"Frontend"},
		"cart":     {"Cart", "Checkout"},
		"ads":      {"Ads"},
		"main":     nil,
	}
	target := map[string][]string{
		"p0": {"Checkout", "Cart"},
		"p1": {"Ads"},
		"p2": {"Frontend"},
	}
	if moves := Diff(current, target); len(moves) != 0 {
		t.Fatalf("fully renamed identical plan produced moves: %+v", moves)
	}
}
