// Package placement computes colocation plans from observed call graphs
// (paper §5.1): "the runtime can use [the call graph] to identify ... the
// chatty components ... and make smarter scaling, placement, and
// co-location decisions."
//
// The planner greedily merges the pair of groups with the heaviest
// inter-group traffic until constraints stop it — the classic
// agglomerative heuristic for graph partitioning, which is both simple and
// effective for the scale of a single application (tens of components).
package placement

import (
	"fmt"
	"sort"

	"repro/internal/callgraph"
)

// Config bounds a placement plan.
type Config struct {
	// MaxGroupSize caps components per group (default 4). A cap models
	// the practical limits on process size: fault-isolation blast radius
	// and per-process resource ceilings.
	MaxGroupSize int
	// MaxGroups caps the number of groups (0 = unlimited). Merging stops
	// once the plan has at most this many groups and no mandatory merges
	// remain.
	MaxGroups int
	// MinCalls is the minimum inter-group call volume worth merging for
	// (default 1): pairs chattier than this are colocation candidates.
	MinCalls uint64
}

// Plan computes a colocation plan for the components in g. The result maps
// generated group names ("g0", "g1", ...) to member component lists; the
// names are stable across runs for the same input.
func Plan(g *callgraph.Graph, cfg Config) map[string][]string {
	if cfg.MaxGroupSize <= 0 {
		cfg.MaxGroupSize = 4
	}
	if cfg.MinCalls == 0 {
		cfg.MinCalls = 1
	}

	components := g.Components()
	// Union-find over components.
	parent := map[string]string{}
	size := map[string]int{}
	for _, c := range components {
		parent[c] = c
		size[c] = 1
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Aggregate pairwise traffic.
	type pairKey [2]string
	traffic := map[pairKey]uint64{}
	for _, e := range g.Edges {
		if e.Caller == "" || e.Caller == e.Callee {
			continue
		}
		a, b := e.Caller, e.Callee
		if a > b {
			a, b = b, a
		}
		traffic[pairKey{a, b}] += e.Calls
	}

	groupsCount := len(components)
	for {
		// Find the heaviest mergeable pair of current groups.
		agg := map[pairKey]uint64{}
		for k, calls := range traffic {
			ra, rb := find(k[0]), find(k[1])
			if ra == rb {
				continue
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			agg[pairKey{ra, rb}] += calls
		}
		var best pairKey
		var bestCalls uint64
		keys := make([]pairKey, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
		})
		for _, k := range keys {
			calls := agg[k]
			if calls < cfg.MinCalls {
				continue
			}
			if size[k[0]]+size[k[1]] > cfg.MaxGroupSize {
				continue
			}
			if calls > bestCalls {
				best, bestCalls = k, calls
			}
		}
		if bestCalls == 0 {
			break
		}
		if cfg.MaxGroups > 0 && groupsCount <= cfg.MaxGroups {
			break
		}
		// Merge.
		parent[best[1]] = best[0]
		size[best[0]] += size[best[1]]
		groupsCount--
	}

	// Materialize groups with stable names.
	members := map[string][]string{}
	for _, c := range components {
		r := find(c)
		members[r] = append(members[r], c)
	}
	roots := make([]string, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	out := map[string][]string{}
	for i, r := range roots {
		sort.Strings(members[r])
		out[fmt.Sprintf("g%d", i)] = members[r]
	}
	return out
}

// An Evaluation pairs a colocation plan with its locality score.
type Evaluation struct {
	// Plan maps group names to member component lists (see Plan).
	Plan map[string][]string
	// Score is the fraction of observed calls the plan makes local.
	Score float64
}

// Evaluate plans a colocation for g and scores it against the same graph —
// the plan-and-score step shared by the placement benchmark, the offline
// evaluation harness, and the manager's live re-placement loop.
func Evaluate(g *callgraph.Graph, cfg Config) Evaluation {
	plan := Plan(g, cfg)
	return Evaluation{Plan: plan, Score: Score(g, plan)}
}

// A Move relocates one component from one group to another.
type Move struct {
	Component string
	From, To  string
}

// Diff computes the component moves that transform the current grouping
// into the target plan. Target groups are matched onto current groups by
// maximum member overlap, so a plan that merely renames groups — Plan's
// generated names never match a deployment's — produces no moves. Target
// groups left unmatched get fresh names that do not collide with any
// current group. Components absent from the target plan stay where they
// are. Moves are returned sorted by component name.
func Diff(current, target map[string][]string) []Move {
	curOf := map[string]string{}
	for name, comps := range current {
		for _, c := range comps {
			curOf[c] = name
		}
	}

	// Score every (target group, current group) pair by member overlap.
	type cand struct {
		overlap  int
		tgt, cur string
	}
	var cands []cand
	tgtNames := make([]string, 0, len(target))
	for t := range target {
		tgtNames = append(tgtNames, t)
	}
	sort.Strings(tgtNames)
	for _, t := range tgtNames {
		counts := map[string]int{}
		for _, c := range target[t] {
			if g, ok := curOf[c]; ok {
				counts[g]++
			}
		}
		for g, n := range counts {
			cands = append(cands, cand{overlap: n, tgt: t, cur: g})
		}
	}
	// Greedy maximum matching: heaviest overlap first, deterministic
	// tie-break by names.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.overlap != b.overlap {
			return a.overlap > b.overlap
		}
		if a.tgt != b.tgt {
			return a.tgt < b.tgt
		}
		return a.cur < b.cur
	})
	assigned := map[string]string{} // target group -> deployment group name
	taken := map[string]bool{}
	for _, c := range cands {
		if _, done := assigned[c.tgt]; done || taken[c.cur] {
			continue
		}
		assigned[c.tgt] = c.cur
		taken[c.cur] = true
	}
	// Fresh non-colliding names for unmatched target groups.
	inUse := map[string]bool{}
	for name := range current {
		inUse[name] = true
	}
	for _, name := range assigned {
		inUse[name] = true
	}
	for _, t := range tgtNames {
		if _, done := assigned[t]; done {
			continue
		}
		name := t
		for i := 2; inUse[name]; i++ {
			name = fmt.Sprintf("%s-%d", t, i)
		}
		assigned[t] = name
		inUse[name] = true
	}

	var moves []Move
	for _, t := range tgtNames {
		dest := assigned[t]
		for _, c := range target[t] {
			from, ok := curOf[c]
			if !ok || from == dest {
				continue
			}
			moves = append(moves, Move{Component: c, From: from, To: dest})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Component < moves[j].Component })
	return moves
}

// Score evaluates a plan against a call graph: the fraction of calls that
// become local (caller and callee share a group). Higher is better; 1.0
// means fully colocated.
func Score(g *callgraph.Graph, plan map[string][]string) float64 {
	groupOf := map[string]string{}
	for name, comps := range plan {
		for _, c := range comps {
			groupOf[c] = name
		}
	}
	var local, total uint64
	for _, e := range g.Edges {
		if e.Caller == "" {
			continue
		}
		total += e.Calls
		ga, oka := groupOf[e.Caller]
		gb, okb := groupOf[e.Callee]
		if oka && okb && ga == gb {
			local += e.Calls
		}
	}
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// Validate checks that a plan covers each component exactly once and
// respects the size cap.
func Validate(plan map[string][]string, cfg Config) error {
	if cfg.MaxGroupSize <= 0 {
		cfg.MaxGroupSize = 4
	}
	seen := map[string]string{}
	for name, comps := range plan {
		if len(comps) == 0 {
			return fmt.Errorf("placement: empty group %s", name)
		}
		if len(comps) > cfg.MaxGroupSize {
			return fmt.Errorf("placement: group %s has %d components, cap %d", name, len(comps), cfg.MaxGroupSize)
		}
		for _, c := range comps {
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("placement: component %s in groups %s and %s", c, prev, name)
			}
			seen[c] = name
		}
	}
	return nil
}
