package rpc

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompressRoundTrip(t *testing.T) {
	// Compressible data shrinks and round-trips.
	data := []byte(strings.Repeat("the same words over and over ", 1000))
	small, comp, ok := compress(data)
	if !ok {
		t.Fatal("compressible payload not compressed")
	}
	if len(small) >= len(data) {
		t.Fatalf("compressed %d -> %d", len(data), len(small))
	}
	back, err := decompress(small)
	comp.release()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("round trip mismatch")
	}
}

func TestCompressSkipsIncompressible(t *testing.T) {
	// High-entropy data should be sent raw.
	data := make([]byte, 8192)
	x := uint32(12345)
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	if _, comp, ok := compress(data); ok {
		comp.release()
		t.Log("note: PRNG data compressed anyway (acceptable but unexpected)")
	}
}

func TestDecompressGarbage(t *testing.T) {
	// Declared length far beyond the frame limit.
	if _, err := decompress([]byte{0xde, 0xad, 0xbe, 0xef}); err == nil {
		t.Error("garbage inflated")
	}
	// No length prefix at all.
	if _, err := decompress([]byte{0x01}); err == nil {
		t.Error("short payload inflated")
	}
	// Plausible length prefix, garbage flate stream.
	if _, err := decompress([]byte{16, 0, 0, 0, 0xff, 0xfe, 0xfd, 0xfc}); err == nil {
		t.Error("corrupt stream inflated")
	}
}

func TestDecompressLengthMismatch(t *testing.T) {
	// A stream holding more bytes than its declared length is corruption,
	// not a prefix of valid data.
	data := []byte(strings.Repeat("mismatch payload ", 500))
	small, comp, ok := compress(data)
	if !ok {
		t.Fatal("compressible payload not compressed")
	}
	tampered := append([]byte(nil), small...)
	comp.release()
	// Understate the uncompressed length: the stream now runs past it.
	tampered[0], tampered[1], tampered[2], tampered[3] = 16, 0, 0, 0
	if _, err := decompress(tampered); err == nil {
		t.Error("understated length prefix inflated")
	}
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		small, comp, ok := compress(data)
		if !ok {
			return true // sent raw; nothing to verify
		}
		back, err := decompress(small)
		comp.release()
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressedCallEndToEnd(t *testing.T) {
	s := NewServer()
	s.Register("test.Big", func(ctx context.Context, args []byte) ([]byte, error) {
		// Echo the (decompressed) args back, doubled, so the response also
		// exceeds the compression threshold.
		out := make([]byte, 0, 2*len(args))
		out = append(out, args...)
		out = append(out, args...)
		return out, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(addr, ClientOptions{Compress: true, CompressThreshold: 1024})
	defer c.Close()

	payload := []byte(strings.Repeat("compressible boutique payload ", 500)) // ~15 KB
	got, err := c.Call(context.Background(), MethodKey("test.Big"), payload, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*len(payload) || !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("response corrupted: %d bytes", len(got))
	}

	// The wire must actually have carried fewer bytes than the logical
	// payload: check the client's tx counter grew by far less than the
	// 15KB payload would imply.
	// (tx_bytes is a process-global counter; compare against a second,
	// uncompressed client.)
	plain := NewClient(addr, ClientOptions{})
	defer plain.Close()
	before := c.txBytes.Value()
	if _, err := plain.Call(context.Background(), MethodKey("test.Big"), payload, CallOptions{}); err != nil {
		t.Fatal(err)
	}
	afterPlain := c.txBytes.Value()
	if _, err := c.Call(context.Background(), MethodKey("test.Big"), payload, CallOptions{}); err != nil {
		t.Fatal(err)
	}
	afterCompressed := c.txBytes.Value()
	plainBytes := afterPlain - before
	compressedBytes := afterCompressed - afterPlain
	if compressedBytes*2 > plainBytes {
		t.Errorf("compression saved too little: plain=%d compressed=%d", plainBytes, compressedBytes)
	}
}

func TestSmallPayloadsNotCompressed(t *testing.T) {
	s := NewServer()
	s.Register("test.Echo2", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{Compress: true})
	defer c.Close()
	got, err := c.Call(context.Background(), MethodKey("test.Echo2"), []byte("tiny"), CallOptions{})
	if err != nil || string(got) != "tiny" {
		t.Fatalf("small call = %q, %v", got, err)
	}
}
