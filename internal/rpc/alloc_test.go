package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"

	"repro/internal/codec"
)

// These tests gate the zero-copy data plane's allocation budget: a
// steady-state unary echo must stay within a couple of allocations per op
// on each side. They run without the race detector (see raceEnabled) and
// are wired into `make check` via the allocs target.

// zeroAllocEchoPeer services the server side of a net.Pipe with a
// hand-rolled loop that reuses its read and write buffers, so the peer
// contributes no steady-state allocations to AllocsPerRun's global malloc
// count. It echoes request args back as the response payload.
func zeroAllocEchoPeer(conn net.Conn) {
	var rbuf []byte
	wbuf := make([]byte, 0, 1024)
	for {
		frame, err := readFrameInto(conn, &rbuf)
		if err != nil {
			return
		}
		if len(frame) < 1+headerSize || frame[0] != frameRequest {
			continue
		}
		var hdr header
		n, err := hdr.decode(frame[1:])
		if err != nil {
			continue
		}
		args := frame[1+n:]
		wbuf = append(wbuf[:0], 0, 0, 0, 0, frameResponse)
		wbuf = binary.LittleEndian.AppendUint64(wbuf, hdr.id)
		wbuf = append(wbuf, statusOK)
		wbuf = append(wbuf, args...)
		binary.LittleEndian.PutUint32(wbuf, uint32(len(wbuf)-4))
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}

// TestAllocsClientCall gates the client fast path: encoding into a pooled
// headroom buffer plus CallFramed plus Release must cost at most 1
// allocation per call. The steady state measures zero — the completion
// slot is a pooled waiter, the response a pooled Response, the payload a
// slice of the batched read buffer — and the budget of 1 is slack for
// pending-map bucket growth.
func TestAllocsClientCall(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	defer srvSide.Close()
	go zeroAllocEchoPeer(srvSide)

	c := NewClient("pipe", ClientOptions{
		Dialer: func(ctx context.Context, addr string) (net.Conn, error) { return cliSide, nil },
	})
	defer c.Close()

	method := MethodKey("alloc.Echo")
	ctx := context.Background()
	call := func() {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.String("ping-pong payload")
		resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Data()) == 0 {
			t.Fatal("empty echo")
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
	call() // warm up: dial, pools, map buckets

	allocs := testing.AllocsPerRun(200, call)
	if allocs > 1 {
		t.Errorf("client call path allocates %.1f allocs/op, budget is 1", allocs)
	}
}

// TestAllocsMetaDefaultCall gates the zero-cost-metadata contract: a call
// whose CallMeta is the zero value must cost exactly what a pre-metadata
// call cost — the same 1-alloc budget as TestAllocsClientCall — because
// default metadata encodes as the fixed header with no extension bytes.
func TestAllocsMetaDefaultCall(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	defer srvSide.Close()
	go zeroAllocEchoPeer(srvSide)

	c := NewClient("pipe", ClientOptions{
		Dialer: func(ctx context.Context, addr string) (net.Conn, error) { return cliSide, nil },
	})
	defer c.Close()

	method := MethodKey("alloc.Echo")
	ctx := context.Background()
	call := func() {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.String("ping-pong payload")
		resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{Meta: CallMeta{}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
	call() // warm up: dial, pools, map buckets

	allocs := testing.AllocsPerRun(200, call)
	if allocs > 1 {
		t.Errorf("default-meta call path allocates %.1f allocs/op, budget is 1", allocs)
	}

	// Non-default metadata may pay its varint bytes but still must not
	// allocate: the extension is encoded into the buffer's headroom.
	meta := CallOptions{Meta: CallMeta{Priority: PriorityHigh, Attempt: 1, Hedge: true}}
	callMeta := func() {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.String("ping-pong payload")
		resp, err := c.CallFramed(ctx, method, enc.Framed(), meta)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
	callMeta()
	allocs = testing.AllocsPerRun(200, callMeta)
	if allocs > 1 {
		t.Errorf("extended-meta call path allocates %.1f allocs/op, budget is 1", allocs)
	}
}

// TestAllocsServerDispatch gates the server fast path: admission, dispatch
// through a framed handler that answers from a pooled encoder, and the
// in-place response write must cost at most 3 allocations per request
// (budget: context.WithValue plus the boxed CallInfo, plus slack).
func TestAllocsServerDispatch(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	s := NewServer()
	s.RegisterFramed("alloc.ServerEcho", func(ctx context.Context, args []byte) ([]byte, BufOwner, error) {
		enc := codec.GetEncoder()
		enc.Reserve(ResponseHeadroom)
		enc.Bytes(args)
		return enc.Framed(), enc, nil
	})

	cw := s.newConnWriter(io.Discard)
	hdr := header{id: 7, method: MethodKey("alloc.ServerEcho")}
	args := []byte("ping-pong payload")
	ctx := context.Background()

	serve := func() { s.handleRequest(ctx, cw, hdr, args) }
	serve() // warm up pools

	allocs := testing.AllocsPerRun(200, serve)
	if allocs > 3 {
		t.Errorf("server dispatch path allocates %.1f allocs/op, budget is 3", allocs)
	}
}

// TestAllocsBatchedClientCalls gates the client side of the batched
// (group-commit) write path: concurrent calls that coalesce into shared
// flush batches must stay within 3 allocations per call, counting the
// caller goroutines themselves (pooled waiter slots brought this down from
// 9: no per-call completion channel survives). The echo peer reuses its
// buffers, so every counted allocation is client-side.
func TestAllocsBatchedClientCalls(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	cliSide, srvSide := net.Pipe()
	defer cliSide.Close()
	defer srvSide.Close()
	go zeroAllocEchoPeer(srvSide)

	c := NewClient("pipe", ClientOptions{
		Dialer: func(ctx context.Context, addr string) (net.Conn, error) { return cliSide, nil },
	})
	defer c.Close()

	method := MethodKey("alloc.Echo")
	ctx := context.Background()
	call := func() {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.String("ping-pong payload")
		resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
	const width = 8
	var wg sync.WaitGroup
	batch := func() {
		wg.Add(width)
		for i := 0; i < width; i++ {
			go func() {
				defer wg.Done()
				call()
			}()
		}
		wg.Wait()
	}
	batch() // warm up: dial, pools, goroutine stacks

	const runs = 50
	flushesBefore := c.flushHist.Count()
	allocs := testing.AllocsPerRun(runs, batch) / width
	if allocs > 3 {
		t.Errorf("batched client call path allocates %.1f allocs/op, budget is 3", allocs)
	}
	// Prove the gate measured the batched path: writes on a net.Pipe park
	// the flusher, so concurrent frames must have shared flushes — fewer
	// flush batches than frames sent.
	frames := uint64((runs + 1) * width)
	if flushes := c.flushHist.Count() - flushesBefore; flushes >= frames {
		t.Errorf("no coalescing observed: %d flushes for %d frames", flushes, frames)
	}
}

// TestAllocsCompressedCall gates the compressed data plane: a call whose
// request and response both ride the flate path must stay within a small
// fixed allocation budget. Before the compressor/inflater pools this path
// cost ~45 allocs and 131 KB per op (BENCH_rpc.json, WeaverTCPCompressed);
// now each direction pays one exact-size output slice plus the uncompressed
// end-to-end overhead.
func TestAllocsCompressedCall(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	s := NewServer()
	s.Register("alloc.Compressed", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{Compress: true, CompressThreshold: 1024})
	defer c.Close()

	method := MethodKey("alloc.Compressed")
	ctx := context.Background()
	payload := bytes.Repeat([]byte("compressible boutique payload "), 300) // ~9 KB
	call := func() {
		got, err := c.Call(ctx, method, payload, CallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) {
			t.Fatalf("echo returned %d bytes, want %d", len(got), len(payload))
		}
	}
	for i := 0; i < c.numConns+1; i++ {
		call()
	}

	allocs := testing.AllocsPerRun(100, call)
	// Per op: the client's legacy-Call result copy, the server handler's
	// echo slice, one exact-size inflate output per direction, and the
	// uncompressed end-to-end bookkeeping (goroutine, context, channel).
	if allocs > 12 {
		t.Errorf("compressed round trip allocates %.1f allocs/op, budget is 12", allocs)
	}
}

// TestAllocsEndToEnd measures (without gating hard) the full round trip
// over a real TCP socket through the public API, as documentation of where
// the remaining per-call allocations live. It fails only on gross
// regression.
func TestAllocsEndToEnd(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under the race detector (sync.Pool drops Puts)")
	}
	s := NewServer()
	s.RegisterFramed("alloc.E2E", func(ctx context.Context, args []byte) ([]byte, BufOwner, error) {
		enc := codec.GetEncoder()
		enc.Reserve(ResponseHeadroom)
		enc.Bytes(args)
		return enc.Framed(), enc, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	method := MethodKey("alloc.E2E")
	ctx := context.Background()
	payload := bytes.Repeat([]byte("x"), 64)
	call := func() {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.Bytes(payload)
		resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
	// Warm up every stripe: round-robin assignment means the first
	// numConns calls each dial a fresh connection.
	for i := 0; i < c.numConns+1; i++ {
		call()
	}

	allocs := testing.AllocsPerRun(100, call)
	// Both sides of a real connection run here: the client channel, the
	// server's per-request goroutine, context, and inflight bookkeeping.
	if allocs > 6 {
		t.Errorf("end-to-end round trip allocates %.1f allocs/op, budget is 6", allocs)
	}
}
