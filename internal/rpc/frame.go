// Package rpc implements the weaver data plane: a custom remote procedure
// call protocol built directly on top of TCP (paper §6.1).
//
// Because application rollouts are atomic, the two ends of every connection
// are the exact same binary. The protocol exploits this: methods are
// identified by a 4-byte hash of their full name computed independently on
// both sides (no negotiation, no schema exchange, no string method names on
// the wire), and argument payloads use the unversioned internal/codec
// format. A request header costs a fixed few dozen bytes versus the
// hundreds of bytes of headers a general-purpose HTTP-based RPC spends.
//
// Framing: every frame is a 4-byte little-endian payload length followed by
// the payload. The first payload byte is the frame type.
//
//	request:  id, method hash, deadline, trace context, shard, args
//	response: id, status, payload (result bytes or error text)
//	cancel:   id
//	ping:     nonce     (liveness probes, answered with pong)
//	pong:     nonce
//
// Connections are multiplexed: many in-flight calls share one TCP
// connection, correlated by id. Cancellation propagates with an explicit
// cancel frame so servers stop wasted work promptly.
package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameCancel   = 3
	framePing     = 4
	framePong     = 5
)

// Response status codes.
const (
	statusOK           = 0 // payload is the method result encoding
	statusError        = 1 // payload is a transport/dispatch error message
	statusOKCompressed = 2 // payload is a flate-compressed result encoding
	statusOverloaded   = 3 // request shed by admission control; never executed
)

// maxFrameSize bounds a single frame to defend against corrupt length
// prefixes. 512 MiB comfortably exceeds any realistic component payload.
const maxFrameSize = 512 << 20

// MethodID identifies a component method on the wire.
type MethodID uint32

// MethodKey hashes a fully-qualified method name ("pkg.Component.Method")
// to its wire identifier. Both ends of a connection run the same binary, so
// both compute identical IDs without any negotiation; the handler registry
// rejects colliding names at registration time.
func MethodKey(fullName string) MethodID {
	h := fnv.New32a()
	_, _ = io.WriteString(h, fullName)
	return MethodID(h.Sum32())
}

// header is the fixed-size portion of a request frame, following the type
// byte. All fields are little-endian.
//
//	offset size field
//	0      8    request id
//	8      4    method id
//	12     8    deadline (unix nanos, 0 = none)
//	20     8    trace id
//	28     8    span id
//	36     8    parent span id
//	44     8    shard key (routing affinity; 0 = unrouted)
//	52     1    flags
const headerSize = 53

// header flag bits.
const (
	// flagAcceptCompressed tells the server the caller will decompress a
	// statusOKCompressed response (§5.1: "for network bottlenecked
	// applications ... the runtime may decide to compress messages on the
	// wire").
	flagAcceptCompressed = 1 << 0
	// flagPayloadCompressed marks the request payload itself as
	// flate-compressed.
	flagPayloadCompressed = 1 << 1
)

type header struct {
	id       uint64
	method   MethodID
	deadline int64
	trace    uint64
	span     uint64
	parent   uint64
	shard    uint64
	flags    uint8
}

func (h *header) encode(b []byte) {
	_ = b[headerSize-1]
	binary.LittleEndian.PutUint64(b[0:], h.id)
	binary.LittleEndian.PutUint32(b[8:], uint32(h.method))
	binary.LittleEndian.PutUint64(b[12:], uint64(h.deadline))
	binary.LittleEndian.PutUint64(b[20:], h.trace)
	binary.LittleEndian.PutUint64(b[28:], h.span)
	binary.LittleEndian.PutUint64(b[36:], h.parent)
	binary.LittleEndian.PutUint64(b[44:], h.shard)
	b[52] = h.flags
}

func (h *header) decode(b []byte) error {
	if len(b) < headerSize {
		return fmt.Errorf("rpc: short request header: %d bytes", len(b))
	}
	h.id = binary.LittleEndian.Uint64(b[0:])
	h.method = MethodID(binary.LittleEndian.Uint32(b[8:]))
	h.deadline = int64(binary.LittleEndian.Uint64(b[12:]))
	h.trace = binary.LittleEndian.Uint64(b[20:])
	h.span = binary.LittleEndian.Uint64(b[28:])
	h.parent = binary.LittleEndian.Uint64(b[36:])
	h.shard = binary.LittleEndian.Uint64(b[44:])
	h.flags = b[52]
	return nil
}

// writeFrame writes one length-prefixed frame built from the given chunks.
// The caller must serialize concurrent writers.
func writeFrame(w io.Writer, chunks ...[]byte) error {
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(n))
	buf := make([]byte, 0, 4+n)
	buf = append(buf, lenBuf[:]...)
	for _, c := range chunks {
		buf = append(buf, c...)
	}
	_, err := w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame payload.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("rpc: frame length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
