// Package rpc implements the weaver data plane: a custom remote procedure
// call protocol built directly on top of TCP (paper §6.1).
//
// Because application rollouts are atomic, the two ends of every connection
// are the exact same binary. The protocol exploits this: methods are
// identified by a 4-byte hash of their full name computed independently on
// both sides (no negotiation, no schema exchange, no string method names on
// the wire), and argument payloads use the unversioned internal/codec
// format. A request header costs a fixed few dozen bytes versus the
// hundreds of bytes of headers a general-purpose HTTP-based RPC spends.
//
// Framing: every frame is a 4-byte little-endian payload length followed by
// the payload. The first payload byte is the frame type.
//
//	request:  id, method hash, deadline, span context (trace id, span id,
//	          parent span id), shard, flags, optional meta extension
//	          (priority class + attempt ordinal as uvarints, present only
//	          when flagMetaExt is set), args
//	response: id, status, payload (result bytes or error text)
//	cancel:   id
//	ping:     nonce     (liveness probes, answered with pong)
//	pong:     nonce
//
// Per-call metadata that is almost always default — hedge marker, sampled
// bit, priority, attempt number — rides the flags byte and the optional
// meta extension, so the common call pays zero extra bytes and zero extra
// allocations for it.
//
// Connections are multiplexed: many in-flight calls share one TCP
// connection, correlated by id. Cancellation propagates with an explicit
// cancel frame so servers stop wasted work promptly.
//
// Both directions batch their syscalls. Writes go through a coalescing
// flusher (connFlusher) that rides concurrent frames on one vectored
// write; reads mirror it with a frameReader that issues one large Read
// into a pooled buffer and slices out every complete frame that arrived,
// so a deep batch of coalesced frames costs one syscall to send and one
// to receive. The rpc.{client,server}.read_batch_frames histograms record
// the read-side batch depths.
package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
)

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameCancel   = 3
	framePing     = 4
	framePong     = 5
)

// Response status codes.
const (
	statusOK           = 0 // payload is the method result encoding
	statusError        = 1 // payload is a transport/dispatch error message
	statusOKCompressed = 2 // payload is a flate-compressed result encoding
	statusOverloaded   = 3 // request shed by admission control; never executed
	statusUnavailable  = 4 // method handler draining/unregistered; never executed
)

// maxFrameSize bounds a single frame to defend against corrupt length
// prefixes. 512 MiB comfortably exceeds any realistic component payload.
const maxFrameSize = 512 << 20

// PayloadHeadroom is the scratch space a caller must reserve at the front
// of a request buffer passed to Client.CallFramed: the 4-byte length
// prefix, the frame type byte, the fixed request header, and room for a
// fully populated meta extension. The transport fills the headroom in
// place — right-aligned, so a call with default metadata leaves the first
// metaExtMax bytes unused rather than shifting the payload — and writes
// the buffer with a single Write, so an encoded payload travels from
// codec to wire without being copied.
const PayloadHeadroom = 4 + 1 + headerSize + metaExtMax

// ResponseHeadroom is the scratch space a FramedHandler must reserve at
// the front of its result buffer: the 4-byte length prefix, the frame type
// byte, the 8-byte request id, and the status byte.
const ResponseHeadroom = 4 + 1 + 8 + 1

// MethodID identifies a component method on the wire.
type MethodID uint32

// MethodKey hashes a fully-qualified method name ("pkg.Component.Method")
// to its wire identifier. Both ends of a connection run the same binary, so
// both compute identical IDs without any negotiation; the handler registry
// rejects colliding names at registration time.
func MethodKey(fullName string) MethodID {
	h := fnv.New32a()
	_, _ = io.WriteString(h, fullName)
	return MethodID(h.Sum32())
}

// header is the fixed-size portion of a request frame, following the type
// byte. All fields are little-endian. When flagMetaExt is set in flags, a
// variable-length meta extension (see CallMeta) follows the fixed header;
// args begin after it.
//
//	offset size field
//	0      8    request id
//	8      4    method id
//	12     8    deadline (unix nanos, 0 = none)
//	20     8    trace id
//	28     8    span id
//	36     8    parent span id
//	44     8    shard key (routing affinity; 0 = unrouted)
//	52     1    flags
//	53     0-4  meta extension: uvarint priority, uvarint attempt
//	            (present only when flagMetaExt is set)
const headerSize = 53

// header flag bits.
const (
	// flagAcceptCompressed tells the server the caller will decompress a
	// statusOKCompressed response (§5.1: "for network bottlenecked
	// applications ... the runtime may decide to compress messages on the
	// wire").
	flagAcceptCompressed = 1 << 0
	// flagPayloadCompressed marks the request payload itself as
	// flate-compressed.
	flagPayloadCompressed = 1 << 1
	// flagHedge marks this request as a hedged duplicate of an outstanding
	// first attempt; admission may drop queued hedges first.
	flagHedge = 1 << 2
	// flagSampled carries the root tracer's sampling decision, so every
	// hop of a multi-process trace records spans iff the root did.
	flagSampled = 1 << 3
	// flagMetaExt marks the presence of the variable meta extension
	// (priority, attempt) after the fixed header.
	flagMetaExt = 1 << 4
)

type header struct {
	id       uint64
	method   MethodID
	deadline int64
	trace    uint64
	span     uint64
	parent   uint64
	shard    uint64
	flags    uint8
	meta     CallMeta
}

// encode writes the fixed 53-byte header. Callers sending non-default
// meta use encodeWithExt instead; plain encode is the default-meta fast
// path (h.flags must not claim an extension that is not written).
func (h *header) encode(b []byte) {
	_ = b[headerSize-1]
	binary.LittleEndian.PutUint64(b[0:], h.id)
	binary.LittleEndian.PutUint32(b[8:], uint32(h.method))
	binary.LittleEndian.PutUint64(b[12:], uint64(h.deadline))
	binary.LittleEndian.PutUint64(b[20:], h.trace)
	binary.LittleEndian.PutUint64(b[28:], h.span)
	binary.LittleEndian.PutUint64(b[36:], h.parent)
	binary.LittleEndian.PutUint64(b[44:], h.shard)
	b[52] = h.flags
}

// encodeWithExt writes the fixed header followed by the meta extension
// when h.meta has non-default priority or attempt, setting flagMetaExt
// accordingly. It returns the total bytes written (headerSize when the
// extension is empty). b must have room for headerSize+metaExtMax bytes.
func (h *header) encodeWithExt(b []byte) int {
	ext := h.meta.extSize()
	if ext > 0 {
		h.flags |= flagMetaExt
	}
	h.encode(b)
	if ext > 0 {
		h.meta.encodeExt(b[headerSize:])
	}
	return headerSize + ext
}

// decode parses the fixed header and, when flagMetaExt is set, the meta
// extension. It returns the total header bytes consumed — the offset at
// which the args payload begins.
func (h *header) decode(b []byte) (int, error) {
	if len(b) < headerSize {
		return 0, fmt.Errorf("rpc: short request header: %d bytes", len(b))
	}
	h.id = binary.LittleEndian.Uint64(b[0:])
	h.method = MethodID(binary.LittleEndian.Uint32(b[8:]))
	h.deadline = int64(binary.LittleEndian.Uint64(b[12:]))
	h.trace = binary.LittleEndian.Uint64(b[20:])
	h.span = binary.LittleEndian.Uint64(b[28:])
	h.parent = binary.LittleEndian.Uint64(b[36:])
	h.shard = binary.LittleEndian.Uint64(b[44:])
	h.flags = b[52]
	h.meta = CallMeta{Hedge: h.flags&flagHedge != 0}
	n := headerSize
	if h.flags&flagMetaExt != 0 {
		k, err := h.meta.decodeExt(b[headerSize:])
		if err != nil {
			return 0, err
		}
		n += k
	}
	return n, nil
}

// A frameBuf is a pooled scratch buffer used for frame assembly and frame
// reads, so the steady-state data plane neither allocates nor copies into
// fresh buffers per frame.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// maxPooledFrame caps the buffer capacity the frame pool retains, so one
// huge payload does not pin megabytes for the life of the process.
const maxPooledFrame = 256 << 10

func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrame(fb *frameBuf) {
	if cap(fb.b) > maxPooledFrame {
		fb.b = nil
	}
	framePool.Put(fb)
}

// vectoredThreshold is the frame size above which writeFrame switches from
// assembling chunks in pooled scratch to a vectored net.Buffers write
// (writev on TCP), which avoids touching the payload bytes at all.
const vectoredThreshold = 64 << 10

// writeFrame writes one length-prefixed frame built from the given chunks.
// The caller must serialize concurrent writers. Small frames are assembled
// in pooled scratch (one Write, no per-frame allocation); large frames are
// written vectored so the payload is never copied.
func writeFrame(w io.Writer, chunks ...[]byte) error {
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if n > vectoredThreshold {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(n))
		bufs := make(net.Buffers, 0, len(chunks)+1)
		bufs = append(bufs, lenBuf[:])
		for _, c := range chunks {
			if len(c) > 0 {
				bufs = append(bufs, c)
			}
		}
		_, err := bufs.WriteTo(w)
		return err
	}
	fb := getFrame()
	buf := append(fb.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	for _, c := range chunks {
		buf = append(buf, c...)
	}
	_, err := w.Write(buf)
	fb.b = buf
	putFrame(fb)
	return err
}

// writeFramed writes a frame whose payload is already contiguous with 4
// bytes of leading length-prefix scratch — the zero-copy path for pooled
// encoder buffers. writeFramed fills the prefix in place; the first 4
// bytes of framed are scratch owned by this call.
func writeFramed(w io.Writer, framed []byte) error {
	n := len(framed) - 4
	if n < 0 {
		return fmt.Errorf("rpc: framed buffer of %d bytes lacks prefix scratch", len(framed))
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(framed[:4], uint32(n))
	_, err := w.Write(framed)
	return err
}

// readFrameInto reads one length-prefixed frame payload into *buf, growing
// it as needed, and returns the filled prefix of *buf. The result aliases
// *buf: anything retained beyond the next readFrameInto on the same buffer
// must be copied out first.
func readFrameInto(r io.Reader, buf *[]byte) ([]byte, error) {
	// The length prefix is read into the target buffer itself (and then
	// overwritten by the payload): a local [4]byte would escape through the
	// io.Reader interface and cost a heap allocation per frame.
	if cap(*buf) < 4 {
		*buf = make([]byte, 0, 512)
	}
	lenBuf := (*buf)[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf)
	if n > maxFrameSize {
		return nil, fmt.Errorf("rpc: frame length %d exceeds limit", n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// readFrame reads one length-prefixed frame payload into a fresh buffer.
func readFrame(r io.Reader) ([]byte, error) {
	var buf []byte
	return readFrameInto(r, &buf)
}
