package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
)

// TestStripedCloseRace hammers Client.Close against concurrent in-flight
// calls on striped connections. Every call must either succeed with an
// uncorrupted echo (its own unique payload back — a frame interleaved
// mid-frame would corrupt the correlation) or fail with a retryable
// *TransportError / context error; never hang, never panic, never deliver
// another caller's payload.
func TestStripedCloseRace(t *testing.T) {
	s := NewServer()
	s.Register("stripe.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	method := MethodKey("stripe.Echo")

	for iter := 0; iter < 15; iter++ {
		c := NewClient(addr, ClientOptions{NumConns: 4})
		var wg sync.WaitGroup
		var calls atomic.Int64
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				ctx := context.Background()
				for i := 0; ; i++ {
					want := fmt.Sprintf("worker-%d-call-%d-%d", g, iter, i)
					var got string
					var err error
					if i%2 == 0 {
						// Zero-copy path with shard affinity: frames from one
						// worker stick to one stripe.
						enc := codec.GetEncoder()
						enc.Reserve(PayloadHeadroom)
						enc.String(want)
						var resp *Response
						resp, err = c.CallFramed(ctx, method, enc.Framed(), CallOptions{Shard: uint64(g + 1)})
						if err == nil {
							got = string(resp.Data())
							resp.Release()
						}
						codec.PutEncoder(enc)
					} else {
						// Legacy copying path, round-robin across stripes.
						var out []byte
						out, err = c.Call(ctx, method, []byte(want), CallOptions{})
						got = string(out)
					}
					if err != nil {
						var te *TransportError
						if !errors.As(err, &te) && ctx.Err() == nil {
							t.Errorf("worker %d: non-transport error: %v", g, err)
						}
						return // client closed under us; done
					}
					// The framed payload carries a codec string header; match
					// on the suffix to cover both call shapes.
					if len(got) < len(want) || got[len(got)-len(want):] != want {
						t.Errorf("worker %d: echo corrupted: want suffix %q, got %q", g, want, got)
						return
					}
					calls.Add(1)
				}
			}(g)
		}
		close(start)
		// Let the workers get in flight, then yank the client.
		time.Sleep(time.Duration(iter%4) * time.Millisecond)
		c.Close()
		wg.Wait()
		if iter == 0 && calls.Load() == 0 && testing.Verbose() {
			t.Log("note: close won every race in iter 0 (no completed calls)")
		}
	}
}

// TestStripedConnDeathFailsPending kills the server out from under a
// striped client with calls in flight: every pending call must complete
// with a retryable *TransportError (or honest success), and a fresh client
// against a restarted server on the same address must work — the stripe
// set reconnects as one logical replica.
func TestStripedConnDeathFailsPending(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("stripe.Block", func(ctx context.Context, args []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	method := MethodKey("stripe.Block")

	c := NewClient(addr, ClientOptions{NumConns: 4})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Call(context.Background(), method, []byte("pending"), CallOptions{Shard: uint64(i + 1)})
		}(i)
	}
	// Wait until every call is registered in some stripe's pending map.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var pending int
		c.mu.Lock()
		for _, cc := range c.conns {
			if cc == nil {
				continue
			}
			pending += cc.pendingCount()
		}
		c.mu.Unlock()
		if pending == len(errs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d calls went pending", pending, len(errs))
		}
		time.Sleep(time.Millisecond)
	}
	s.Close() // conn death on every stripe
	wg.Wait()
	close(block)
	for i, err := range errs {
		if err == nil {
			t.Errorf("call %d: no error after server death", i)
			continue
		}
		var te *TransportError
		if !errors.As(err, &te) {
			t.Errorf("call %d: err = %v, want *TransportError", i, err)
		}
	}
}
