package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tracing"
)

// CallOptions carries per-call metadata.
type CallOptions struct {
	// Shard is the routing affinity key hash; zero means unrouted.
	Shard uint64
	// Trace is the span context propagated to the callee.
	Trace tracing.SpanContext
}

// ErrOverloaded is returned (wrapped in a *TransportError) when the server
// shed the request under admission control. The request was never executed,
// so retrying it on a different replica is safe even for methods with
// at-most-once (weaver:noretry) semantics.
var ErrOverloaded = errors.New("rpc: server overloaded")

// A TransportError describes a failure of the RPC machinery itself (broken
// connection, unknown method, handler panic), as opposed to an application
// error returned by the component method.
type TransportError struct {
	Addr string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: call to %s failed: %v", e.Addr, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// A Client issues calls to one server address over a small pool of
// multiplexed TCP connections. Clients are safe for concurrent use and
// transparently reconnect after connection failures.
type Client struct {
	addr     string
	numConns int
	dialer   func(ctx context.Context, addr string) (net.Conn, error)
	opts     ClientOptions

	nextID atomic.Uint64
	rr     atomic.Uint64 // round-robin over conns

	mu     sync.Mutex
	conns  []*clientConn
	closed bool

	txBytes *metrics.Counter
	rxBytes *metrics.Counter
	calls   *metrics.Counter
}

// ClientOptions configures a Client.
type ClientOptions struct {
	// NumConns is the number of TCP connections to stripe calls over.
	// Defaults to 1; boutique-scale fan-out benefits from 2-4.
	NumConns int
	// Dialer overrides the default TCP dialer (used by tests and the
	// simulated network).
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Compress enables transparent flate compression of payloads larger
	// than CompressThreshold (paper §5.1: the runtime is free to compress
	// messages on the wire for network-bottlenecked applications). The
	// server mirrors the choice for responses.
	Compress bool
	// CompressThreshold overrides DefaultCompressThreshold.
	CompressThreshold int
	// PingTimeout bounds how long Ping waits for a pong (default 5s).
	PingTimeout time.Duration
}

// NewClient returns a client for the server at addr. Connections are
// established lazily on first call.
func NewClient(addr string, opts ClientOptions) *Client {
	if opts.NumConns <= 0 {
		opts.NumConns = 1
	}
	if opts.Dialer == nil {
		var d net.Dialer
		opts.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.CompressThreshold <= 0 {
		opts.CompressThreshold = DefaultCompressThreshold
	}
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = 5 * time.Second
	}
	return &Client{
		addr:     addr,
		numConns: opts.NumConns,
		dialer:   opts.Dialer,
		opts:     opts,
		conns:    make([]*clientConn, opts.NumConns),
		txBytes:  metrics.Default.Counter("rpc.client.tx_bytes"),
		rxBytes:  metrics.Default.Counter("rpc.client.rx_bytes"),
		calls:    metrics.Default.Counter("rpc.client.calls"),
	}
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Call invokes the remote method identified by id with the encoded args and
// returns the raw result payload. Errors of type *TransportError indicate
// delivery failure; the result payload may itself encode an application
// error, which generated stubs decode.
func (c *Client) Call(ctx context.Context, id MethodID, args []byte, opts CallOptions) ([]byte, error) {
	c.calls.Inc()
	cc, err := c.conn(ctx)
	if err != nil {
		return nil, &TransportError{Addr: c.addr, Err: err}
	}
	res, err := cc.roundTrip(ctx, id, args, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &TransportError{Addr: c.addr, Err: err}
	}
	return res, nil
}

// Ping verifies liveness of the server with a ping/pong round trip.
func (c *Client) Ping(ctx context.Context) error {
	cc, err := c.conn(ctx)
	if err != nil {
		return &TransportError{Addr: c.addr, Err: err}
	}
	if err := cc.ping(ctx); err != nil {
		return &TransportError{Addr: c.addr, Err: err}
	}
	return nil
}

// Close tears down all connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for i, cc := range c.conns {
		if cc != nil {
			cc.close(ErrShutdown)
			c.conns[i] = nil
		}
	}
	return nil
}

// conn returns a healthy connection, dialing if necessary.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	slot := int(c.rr.Add(1)) % c.numConns

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	cc := c.conns[slot]
	if cc != nil && !cc.dead() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	// Dial outside the lock; multiple goroutines may race, and the loser's
	// connection is closed.
	conn, err := c.dialer(ctx, c.addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	ncc := newClientConn(conn, c)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		ncc.close(ErrShutdown)
		return nil, ErrShutdown
	}
	if cur := c.conns[slot]; cur != nil && !cur.dead() {
		ncc.close(ErrShutdown)
		return cur, nil
	}
	c.conns[slot] = ncc
	return ncc, nil
}

// clientConn is one multiplexed connection with a reader goroutine.
type clientConn struct {
	conn    net.Conn
	client  *Client
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan response
	pings   map[uint64]chan struct{}
	err     error // non-nil once broken
}

type response struct {
	status byte
	data   []byte
}

func newClientConn(conn net.Conn, c *Client) *clientConn {
	cc := &clientConn{
		conn:    conn,
		client:  c,
		pending: map[uint64]chan response{},
		pings:   map[uint64]chan struct{}{},
	}
	go cc.readLoop()
	return cc
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// close marks the connection broken and fails all pending calls.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	pings := cc.pings
	cc.pending = map[uint64]chan response{}
	cc.pings = map[uint64]chan struct{}{}
	cc.mu.Unlock()

	cc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
	for _, ch := range pings {
		close(ch)
	}
}

func (cc *clientConn) readLoop() {
	for {
		frame, err := readFrame(cc.conn)
		if err != nil {
			cc.close(err)
			return
		}
		cc.client.rxBytes.Add(uint64(len(frame)))
		if len(frame) == 0 {
			continue
		}
		typ, payload := frame[0], frame[1:]
		switch typ {
		case frameResponse:
			if len(payload) < 9 {
				continue
			}
			id := getUint64(payload)
			status := payload[8]
			data := payload[9:]
			cc.mu.Lock()
			ch, ok := cc.pending[id]
			delete(cc.pending, id)
			cc.mu.Unlock()
			if ok {
				ch <- response{status: status, data: data}
			}
		case framePong:
			if len(payload) < 8 {
				continue
			}
			nonce := getUint64(payload)
			cc.mu.Lock()
			ch, ok := cc.pings[nonce]
			delete(cc.pings, nonce)
			cc.mu.Unlock()
			if ok {
				close(ch)
			}
		}
	}
}

func (cc *clientConn) write(chunks ...[]byte) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	cc.client.txBytes.Add(uint64(n))
	if err := writeFrame(cc.conn, chunks...); err != nil {
		cc.close(err)
		return err
	}
	return nil
}

func (cc *clientConn) roundTrip(ctx context.Context, method MethodID, args []byte, opts CallOptions) ([]byte, error) {
	id := cc.client.nextID.Add(1)

	hdr := header{
		id:     id,
		method: method,
		trace:  uint64(opts.Trace.Trace),
		span:   uint64(opts.Trace.Span),
		parent: uint64(opts.Trace.Parent),
		shard:  opts.Shard,
	}
	if dl, ok := ctx.Deadline(); ok {
		hdr.deadline = dl.UnixNano()
	}
	if co := cc.client.opts; co.Compress {
		// Advertise response compression; compress the request itself when
		// it is big enough to be worth the CPU.
		hdr.flags |= flagAcceptCompressed
		if len(args) >= co.CompressThreshold {
			if small, ok := compress(args); ok {
				args = small
				hdr.flags |= flagPayloadCompressed
			}
		}
	}

	ch := make(chan response, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	var buf [1 + headerSize]byte
	buf[0] = frameRequest
	hdr.encode(buf[1:])
	if err := cc.write(buf[:], args); err != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("connection closed")
			}
			return nil, err
		}
		if resp.status == statusError {
			return nil, fmt.Errorf("%s", resp.data)
		}
		if resp.status == statusOverloaded {
			return nil, ErrOverloaded
		}
		if resp.status == statusOKCompressed {
			return decompress(resp.data)
		}
		return resp.data, nil
	case <-ctx.Done():
		// Tell the server to stop working on this request, then abandon it.
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		var cbuf [9]byte
		cbuf[0] = frameCancel
		putUint64(cbuf[1:], id)
		_ = cc.write(cbuf[:])
		return nil, ctx.Err()
	}
}

func (cc *clientConn) ping(ctx context.Context) error {
	nonce := cc.client.nextID.Add(1)
	ch := make(chan struct{})
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.pings[nonce] = ch
	cc.mu.Unlock()

	var buf [9]byte
	buf[0] = framePing
	putUint64(buf[1:], nonce)
	if err := cc.write(buf[:]); err != nil {
		return err
	}

	timer := time.NewTimer(cc.client.opts.PingTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		cc.mu.Lock()
		err := cc.err
		cc.mu.Unlock()
		return err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pings, nonce)
		cc.mu.Unlock()
		return ctx.Err()
	case <-timer.C:
		cc.mu.Lock()
		delete(cc.pings, nonce)
		cc.mu.Unlock()
		return fmt.Errorf("ping timeout")
	}
}
