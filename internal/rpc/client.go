package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// CallOptions carries per-call metadata.
type CallOptions struct {
	// Shard is the routing affinity key hash; zero means unrouted.
	Shard uint64
	// Trace is the span context propagated to the callee, including the
	// root tracer's sampling decision (flagSampled on the wire).
	Trace tracing.SpanContext
	// Meta is the call's admission metadata (priority class, attempt
	// ordinal, hedge marker). The zero value costs nothing on the wire.
	Meta CallMeta
}

// ErrOverloaded is returned (wrapped in a *TransportError) when the server
// shed the request under admission control. The request was never executed,
// so retrying it on a different replica is safe even for methods with
// at-most-once (weaver:noretry) semantics.
var ErrOverloaded = errors.New("rpc: server overloaded")

// ErrUnavailable is returned (wrapped in a *TransportError) when the server
// cannot serve the method: it is draining for shutdown, or the method's
// handlers were unregistered because the component moved to another group
// (live re-placement). Like ErrOverloaded the request was never executed,
// so retrying it on a different replica is safe even for methods with
// at-most-once (weaver:noretry) semantics.
var ErrUnavailable = errors.New("rpc: replica unavailable")

// A TransportError describes a failure of the RPC machinery itself (broken
// connection, unknown method, handler panic), as opposed to an application
// error returned by the component method.
type TransportError struct {
	Addr string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: call to %s failed: %v", e.Addr, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// A Client issues calls to one server address over a small pool of
// multiplexed TCP connections. Clients are safe for concurrent use and
// transparently reconnect after connection failures.
type Client struct {
	addr     string
	numConns int
	dialer   func(ctx context.Context, addr string) (net.Conn, error)
	opts     ClientOptions

	nextID atomic.Uint64
	rr     atomic.Uint64 // round-robin over conns

	mu     sync.Mutex
	conns  []*clientConn
	closed bool

	txBytes   *metrics.Counter
	rxBytes   *metrics.Counter
	calls     *metrics.Counter
	flushHist *metrics.Histogram
	readHist  *metrics.Histogram
}

// ClientOptions configures a Client.
type ClientOptions struct {
	// NumConns is the number of TCP connections to stripe calls over.
	// Striping removes the single-conn serialization of the read loop and
	// the write flusher, so independent callers scale instead of queueing.
	// Zero means min(4, GOMAXPROCS). The stripe set is one logical replica:
	// health probes, breakers, and hedging all see a single address.
	NumConns int
	// Dialer overrides the default TCP dialer (used by tests and the
	// simulated network).
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Compress enables transparent flate compression of payloads larger
	// than CompressThreshold (paper §5.1: the runtime is free to compress
	// messages on the wire for network-bottlenecked applications). The
	// server mirrors the choice for responses.
	Compress bool
	// CompressThreshold overrides DefaultCompressThreshold.
	CompressThreshold int
	// PingTimeout bounds how long Ping waits for a pong (default 5s).
	PingTimeout time.Duration
	// Clock supplies the ping timeout timer (and any injected read
	// stalls). Nil means the wall clock; deterministic tests inject a
	// fake so breaker probe paths run without wall-clock sleeps.
	Clock clock.Clock
}

// defaultNumConns picks the stripe width when ClientOptions.NumConns is
// unset: one conn per available CPU up to 4, past which the readLoop and
// flusher stop being the bottleneck.
func defaultNumConns() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewClient returns a client for the server at addr. Connections are
// established lazily on first call.
func NewClient(addr string, opts ClientOptions) *Client {
	if opts.NumConns <= 0 {
		opts.NumConns = defaultNumConns()
	}
	if opts.Dialer == nil {
		var d net.Dialer
		opts.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.CompressThreshold <= 0 {
		opts.CompressThreshold = DefaultCompressThreshold
	}
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = 5 * time.Second
	}
	opts.Clock = clock.Or(opts.Clock)
	return &Client{
		addr:     addr,
		numConns: opts.NumConns,
		dialer:   opts.Dialer,
		opts:     opts,
		conns:    make([]*clientConn, opts.NumConns),
		txBytes:  metrics.Default.Counter("rpc.client.tx_bytes"),
		rxBytes:  metrics.Default.Counter("rpc.client.rx_bytes"),
		calls:    metrics.Default.Counter("rpc.client.calls"),

		flushHist: metrics.Default.Histogram("rpc.client.flush_batch_frames", flushBatchBuckets),
		readHist:  metrics.Default.Histogram("rpc.client.read_batch_frames", flushBatchBuckets),
	}
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Call invokes the remote method identified by id with the encoded args and
// returns the raw result payload. Errors of type *TransportError indicate
// delivery failure; the result payload may itself encode an application
// error, which generated stubs decode.
//
// The returned payload is a private copy: callers may retain it freely.
// The zero-allocation path is CallFramed.
func (c *Client) Call(ctx context.Context, id MethodID, args []byte, opts CallOptions) ([]byte, error) {
	resp, err := c.call(ctx, id, args, false, opts)
	if err != nil {
		return nil, err
	}
	// Copy-on-retain boundary: resp.Data aliases a pooled read buffer that
	// is recycled on Release, and this API hands the payload to callers
	// with no release obligation.
	out := make([]byte, len(resp.Data()))
	copy(out, resp.Data())
	resp.Release()
	return out, nil
}

// CallFramed is the zero-copy variant of Call. framed must hold
// PayloadHeadroom bytes of scratch followed by the encoded args (see
// codec.Encoder.Reserve); the transport fills the framing into the scratch
// in place and writes the buffer with a single Write. The headroom bytes
// are owned by CallFramed until it returns; the args bytes are only read.
//
// On success the caller owns the returned Response and must call Release
// after decoding; the payload from Response.Data is invalid afterwards.
func (c *Client) CallFramed(ctx context.Context, id MethodID, framed []byte, opts CallOptions) (*Response, error) {
	if len(framed) < PayloadHeadroom {
		return nil, &TransportError{Addr: c.addr, Err: fmt.Errorf("rpc: framed buffer of %d bytes lacks %d bytes of headroom", len(framed), PayloadHeadroom)}
	}
	return c.call(ctx, id, framed, true, opts)
}

func (c *Client) call(ctx context.Context, id MethodID, framed []byte, owned bool, opts CallOptions) (*Response, error) {
	c.calls.Inc()
	cc, err := c.conn(ctx, opts.Shard)
	if err != nil {
		return nil, &TransportError{Addr: c.addr, Err: err}
	}
	resp, err := cc.roundTrip(ctx, id, framed, owned, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &TransportError{Addr: c.addr, Err: err}
	}
	return resp, nil
}

// Ping verifies liveness of the server with a ping/pong round trip. The
// probe rotates over the stripes, so repeated pings exercise each conn of
// the logical replica in turn.
func (c *Client) Ping(ctx context.Context) error {
	cc, err := c.conn(ctx, 0)
	if err != nil {
		return &TransportError{Addr: c.addr, Err: err}
	}
	if err := cc.ping(ctx); err != nil {
		return &TransportError{Addr: c.addr, Err: err}
	}
	return nil
}

// Close tears down all connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for i, cc := range c.conns {
		if cc != nil {
			cc.close(ErrShutdown)
			c.conns[i] = nil
		}
	}
	return nil
}

// conn returns a healthy connection, dialing if necessary. Sharded calls
// (shard != 0) stick to an affinity-hashed stripe so one shard's frames
// batch together and stay ordered on one conn; unsharded calls round-robin
// across the stripes.
func (c *Client) conn(ctx context.Context, shard uint64) (*clientConn, error) {
	var slot int
	switch {
	case c.numConns == 1:
		slot = 0
	case shard != 0:
		slot = int(shard % uint64(c.numConns))
	default:
		slot = int(c.rr.Add(1) % uint64(c.numConns))
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	cc := c.conns[slot]
	if cc != nil && !cc.dead() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	// Dial outside the lock; multiple goroutines may race, and the loser's
	// connection is closed.
	conn, err := c.dialer(ctx, c.addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	ncc := newClientConn(conn, c)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		ncc.close(ErrShutdown)
		return nil, ErrShutdown
	}
	if cur := c.conns[slot]; cur != nil && !cur.dead() {
		ncc.close(ErrShutdown)
		return cur, nil
	}
	c.conns[slot] = ncc
	return ncc, nil
}

// pendingShards is the stripe count of a clientConn's pending-call table.
// A power of two: a call's shard is its id's low bits, so the id-allocating
// round-robin naturally spreads registration, completion, and cancellation
// across locks instead of serializing every caller on one mutex.
const pendingShards = 8

// A waiter is one pooled completion slot: a reusable buffered channel that
// carries exactly one verdict per registration — a *Response on success,
// nil for conn death. Verdict senders run under the owning shard's lock
// and delete the registration before sending, so when a canceling caller
// finds its registration gone the verdict is already buffered (forget
// drains it); the channel is provably empty whenever the waiter returns to
// the pool, which is what makes reuse hedge-safe.
type waiter struct{ ch chan *Response }

var waiterPool = sync.Pool{New: func() any {
	return &waiter{ch: make(chan *Response, 1)}
}}

// A pendingShard is one stripe of the pending table. failed flips once the
// conn-death sweep has failed the stripe: registration checks it under the
// same lock, so no call can register after (or during) the sweep and wait
// forever on a verdict that will never come.
type pendingShard struct {
	mu     sync.Mutex
	m      map[uint64]*waiter
	failed bool
}

// clientConn is one multiplexed connection with a reader goroutine; writes
// go through a coalescing flusher (see connFlusher) and responses complete
// into the sharded pending table.
type clientConn struct {
	conn   net.Conn
	client *Client
	fl     *connFlusher

	shards [pendingShards]pendingShard

	mu    sync.Mutex
	pings map[uint64]chan struct{}
	err   error // non-nil once broken
}

func (cc *clientConn) shard(id uint64) *pendingShard {
	return &cc.shards[id&(pendingShards-1)]
}

// register claims a pooled waiter slot for call id, or reports the conn's
// death error if the stripe has already been failed.
func (cc *clientConn) register(id uint64) (*waiter, error) {
	w := waiterPool.Get().(*waiter)
	sh := cc.shard(id)
	sh.mu.Lock()
	if sh.failed {
		sh.mu.Unlock()
		waiterPool.Put(w)
		cc.mu.Lock()
		err := cc.err
		cc.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("connection closed")
		}
		return nil, err
	}
	sh.m[id] = w
	sh.mu.Unlock()
	return w, nil
}

// complete delivers the verdict for id, reporting whether a waiter claimed
// it. The delete-then-send happens under the shard lock — the invariant
// forget relies on.
func (cc *clientConn) complete(id uint64, resp *Response) bool {
	sh := cc.shard(id)
	sh.mu.Lock()
	w, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
		w.ch <- resp
	}
	sh.mu.Unlock()
	return ok
}

// forget abandons a registration (cancellation or write failure) and pools
// the waiter. If the registration is already gone, its verdict is
// guaranteed buffered in the channel — senders delete-then-send under the
// shard lock — so forget drains and releases it before reusing the slot.
func (cc *clientConn) forget(id uint64, w *waiter) {
	sh := cc.shard(id)
	sh.mu.Lock()
	_, mine := sh.m[id]
	if mine {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if !mine {
		if resp := <-w.ch; resp != nil {
			resp.Release()
		}
	}
	waiterPool.Put(w)
}

// pendingCount reports registered-but-unanswered calls, for tests.
func (cc *clientConn) pendingCount() int {
	n := 0
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// A Response is the result of a successful CallFramed. Its payload aliases
// a pooled read buffer: the caller owns the Response until Release, after
// which the payload is invalid and may be overwritten by a later call.
// Anything retained past Release must be copied out first.
type Response struct {
	status   byte
	released bool
	data     []byte
	rb       *readBuf // batched read buffer the payload aliases
}

var responsePool = sync.Pool{New: func() any { return new(Response) }}

func newResponse() *Response {
	r := responsePool.Get().(*Response)
	r.released = false
	return r
}

// Data returns the result payload. The slice is invalidated by Release.
func (r *Response) Data() []byte { return r.data }

// Release drops the response's reference to its batched read buffer. It
// panics on double release: that is always an ownership bug that would
// otherwise surface as silent payload corruption.
func (r *Response) Release() {
	if r.released {
		panic("rpc: Response released twice")
	}
	r.released = true
	r.status = 0
	r.data = nil
	if r.rb != nil {
		r.rb.release()
		r.rb = nil
	}
	responsePool.Put(r)
}

func newClientConn(conn net.Conn, c *Client) *clientConn {
	cc := &clientConn{
		conn:   conn,
		client: c,
		fl:     newConnFlusher(conn, c.txBytes, c.flushHist, nil, nil),
		pings:  map[uint64]chan struct{}{},
	}
	for i := range cc.shards {
		cc.shards[i].m = map[uint64]*waiter{}
	}
	go cc.readLoop()
	return cc
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// close marks the connection broken and fails all pending calls: the
// death error is recorded first (under cc.mu), then every shard is swept —
// failed is set and a nil verdict delivered under each shard's lock, so a
// registration either lands before the sweep (and is failed by it) or
// observes failed and reports the recorded error. No waiter strands.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pings := cc.pings
	cc.pings = map[uint64]chan struct{}{}
	cc.mu.Unlock()

	cc.conn.Close()
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.Lock()
		sh.failed = true
		for id, w := range sh.m {
			delete(sh.m, id)
			w.ch <- nil
		}
		sh.mu.Unlock()
	}
	for _, ch := range pings {
		close(ch)
	}
}

func (cc *clientConn) readLoop() {
	// One batched Read commonly drains every response the server's flusher
	// coalesced into a segment; each frame is sliced out of the shared
	// pooled buffer and carries a reference to it. A claimed response hands
	// its reference to the waiting caller, who releases after decoding;
	// unclaimed frames (caller canceled, malformed, pongs) release here.
	fr := newFrameReader(cc.conn, cc.client.readHist, nil, cc.client.opts.Clock)
	defer fr.close()
	for {
		frame, rb, err := fr.next()
		if err != nil {
			cc.close(err)
			return
		}
		cc.client.rxBytes.Add(uint64(len(frame)))
		if len(frame) == 0 {
			rb.release()
			continue
		}
		typ, payload := frame[0], frame[1:]
		switch typ {
		case frameResponse:
			if len(payload) < 9 {
				rb.release()
				continue
			}
			id := getUint64(payload)
			resp := newResponse()
			resp.status = payload[8]
			resp.data = payload[9:]
			resp.rb = rb
			if !cc.complete(id, resp) {
				resp.Release()
			}
		case framePong:
			if len(payload) >= 8 {
				nonce := getUint64(payload)
				cc.mu.Lock()
				ch, ok := cc.pings[nonce]
				if ok {
					delete(cc.pings, nonce)
					close(ch)
				}
				cc.mu.Unlock()
			}
			rb.release()
		default:
			rb.release()
		}
	}
}

// write assembles one frame from chunks into pooled scratch and hands it
// to the flusher, blocking until the bytes are on the wire. Frames above
// vectoredThreshold keep their (final-chunk) payload out of scratch and
// ride the writev as a separate buffer, preserving the zero-copy behavior
// for large legacy payloads.
func (cc *clientConn) write(chunks ...[]byte) error {
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	var tail []byte
	if n > vectoredThreshold && len(chunks) > 1 {
		tail = chunks[len(chunks)-1]
		chunks = chunks[:len(chunks)-1]
	}
	fb := getFrame()
	buf := append(fb.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	for _, c := range chunks {
		buf = append(buf, c...)
	}
	fb.b = buf
	if err := cc.fl.write(buf, tail, fb); err != nil {
		cc.close(err)
		return err
	}
	return nil
}

// writeFramed enqueues a preassembled frame whose leading 4 bytes are
// length scratch — the zero-copy request path. The buffer stays owned by
// the flusher until write returns.
func (cc *clientConn) writeFramed(framed []byte) error {
	n := len(framed) - 4
	if n < 0 {
		return fmt.Errorf("rpc: framed buffer of %d bytes lacks prefix scratch", len(framed))
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(framed[:4], uint32(n))
	if err := cc.fl.write(framed, nil, nil); err != nil {
		cc.close(err)
		return err
	}
	return nil
}

// roundTrip sends one request and waits for its response. When owned is
// true, framed carries PayloadHeadroom bytes of scratch ahead of the args
// and the frame is written in place from the caller's buffer; otherwise
// framed is just the args payload (legacy Call path).
func (cc *clientConn) roundTrip(ctx context.Context, method MethodID, framed []byte, owned bool, opts CallOptions) (*Response, error) {
	id := cc.client.nextID.Add(1)
	args := framed
	if owned {
		args = framed[PayloadHeadroom:]
	}

	hdr := header{
		id:     id,
		method: method,
		trace:  uint64(opts.Trace.Trace),
		span:   uint64(opts.Trace.Span),
		parent: uint64(opts.Trace.Parent),
		shard:  opts.Shard,
		meta:   opts.Meta,
	}
	if opts.Meta.Hedge {
		hdr.flags |= flagHedge
	}
	if opts.Trace.Sampled {
		hdr.flags |= flagSampled
	}
	if dl, ok := ctx.Deadline(); ok {
		hdr.deadline = dl.UnixNano()
	}
	inPlace := owned
	var comp *compressor
	if co := cc.client.opts; co.Compress {
		// Advertise response compression; compress the request itself when
		// it is big enough to be worth the CPU.
		hdr.flags |= flagAcceptCompressed
		if len(args) >= co.CompressThreshold {
			if small, c, ok := compress(args); ok {
				args = small
				comp = c
				hdr.flags |= flagPayloadCompressed
				inPlace = false // payload moved to the compressor's pooled buffer
			}
		}
	}

	w, err := cc.register(id)
	if err != nil {
		return nil, err
	}

	var werr error
	if inPlace {
		// The headroom is filled right-aligned: the meta extension (0 to
		// metaExtMax bytes) sits immediately before the args, and the frame
		// start shifts left to absorb whatever extension space is unused,
		// so the args never move and default-meta calls write the exact
		// frame they always did.
		ext := hdr.meta.extSize()
		if ext > 0 {
			hdr.flags |= flagMetaExt
			hdr.meta.encodeExt(framed[PayloadHeadroom-ext : PayloadHeadroom])
		}
		start := metaExtMax - ext
		framed[start+4] = frameRequest
		hdr.encode(framed[start+5 : start+5+headerSize])
		werr = cc.writeFramed(framed[start:])
	} else {
		var buf [1 + headerSize + metaExtMax]byte
		buf[0] = frameRequest
		n := hdr.encodeWithExt(buf[1:])
		werr = cc.write(buf[:1+n], args)
	}
	if comp != nil {
		// write blocks until the frame is on the wire (or abandoned), so
		// the compressor's buffer is quiescent here.
		comp.release()
	}
	if werr != nil {
		cc.forget(id, w)
		return nil, werr
	}

	select {
	case resp := <-w.ch:
		// The channel is empty again: the slot can serve the next call.
		waiterPool.Put(w)
		if resp == nil {
			// Conn-death verdict from the close sweep.
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("connection closed")
			}
			return nil, err
		}
		switch resp.status {
		case statusError:
			err := fmt.Errorf("%s", resp.data)
			resp.Release()
			return nil, err
		case statusOverloaded:
			resp.Release()
			return nil, ErrOverloaded
		case statusUnavailable:
			resp.Release()
			return nil, ErrUnavailable
		case statusOKCompressed:
			data, err := decompress(resp.data)
			if err != nil {
				resp.Release()
				return nil, err
			}
			// The payload moved to a fresh heap slice: drop the shared
			// read-buffer reference now instead of pinning a batch buffer
			// for as long as the caller holds the Response.
			resp.data = data
			if resp.rb != nil {
				resp.rb.release()
				resp.rb = nil
			}
			return resp, nil
		}
		return resp, nil
	case <-ctx.Done():
		// Tell the server to stop working on this request, then abandon
		// it. forget reclaims a concurrently-delivered response so the
		// read buffer is not stranded and the waiter slot is clean before
		// it is reused (hedge losers land here routinely).
		cc.forget(id, w)
		var cbuf [9]byte
		cbuf[0] = frameCancel
		putUint64(cbuf[1:], id)
		_ = cc.write(cbuf[:])
		return nil, ctx.Err()
	}
}

func (cc *clientConn) ping(ctx context.Context) error {
	nonce := cc.client.nextID.Add(1)
	ch := make(chan struct{})
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.pings[nonce] = ch
	cc.mu.Unlock()

	var buf [9]byte
	buf[0] = framePing
	putUint64(buf[1:], nonce)
	if err := cc.write(buf[:]); err != nil {
		return err
	}

	timer := cc.client.opts.Clock.NewTimer(cc.client.opts.PingTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		cc.mu.Lock()
		err := cc.err
		cc.mu.Unlock()
		return err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pings, nonce)
		cc.mu.Unlock()
		return ctx.Err()
	case <-timer.C():
		cc.mu.Lock()
		delete(cc.pings, nonce)
		cc.mu.Unlock()
		return fmt.Errorf("ping timeout")
	}
}
