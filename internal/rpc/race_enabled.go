//go:build race

package rpc

// raceEnabled reports whether the race detector is compiled in. The
// allocation-budget tests skip under race: the detector instruments
// sync.Pool to drop Puts at random, which makes alloc counts
// nondeterministic (and meaningless as a performance gate).
const raceEnabled = true
