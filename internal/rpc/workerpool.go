package rpc

import (
	"context"
	"sync"
	"time"

	"repro/internal/clock"
)

// A reqCtx is the context.Context of one in-flight server request. It
// replaces the per-request context.WithDeadline + goroutine pair: the wire
// deadline is tracked by the server's single timer wheel (reqCtx embeds
// the wheel entry and implements clock.Expirer), and cancellation — by
// cancel frame, conn death, or expiry — flips one mutex-guarded error.
// The done channel is created only if someone asks for it, so requests
// whose handlers never select on ctx.Done() pay no channel allocation.
//
// reqCtxs are deliberately not pooled: a recycled context reachable from a
// stale wheel entry or a straggling handler would be a use-after-free; one
// small allocation per request is far cheaper than the timer and goroutine
// it replaces.
type reqCtx struct {
	clk      clock.Clock
	wheel    *clock.Wheel
	deadline time.Time // zero when the request carries none
	entry    clock.WheelEntry

	mu   sync.Mutex
	done chan struct{} // lazily created
	err  error
}

var _ context.Context = (*reqCtx)(nil)
var _ clock.Expirer = (*reqCtx)(nil)

func (rc *reqCtx) Deadline() (time.Time, bool) { return rc.deadline, !rc.deadline.IsZero() }

func (rc *reqCtx) Done() <-chan struct{} {
	rc.mu.Lock()
	if rc.done == nil {
		rc.done = make(chan struct{})
		if rc.err != nil {
			close(rc.done)
		}
	}
	d := rc.done
	rc.mu.Unlock()
	return d
}

// Err reports expiry as soon as the clock passes the deadline, even before
// the wheel's quantized tick fires — callers polling Err get exact
// deadlines, only Done waiters see tick granularity.
func (rc *reqCtx) Err() error {
	rc.mu.Lock()
	err := rc.err
	if err == nil && !rc.deadline.IsZero() && !rc.clk.Now().Before(rc.deadline) {
		err = context.DeadlineExceeded
		rc.err = err
		if rc.done != nil {
			close(rc.done)
		}
	}
	rc.mu.Unlock()
	return err
}

func (rc *reqCtx) Value(any) any { return nil }

func (rc *reqCtx) cancel(err error) {
	rc.mu.Lock()
	if rc.err == nil {
		rc.err = err
		if rc.done != nil {
			close(rc.done)
		}
	}
	rc.mu.Unlock()
}

// Expire is the wheel's deadline callback.
func (rc *reqCtx) Expire() { rc.cancel(context.DeadlineExceeded) }

// finish retires the context after its request completes: the wheel entry
// is unlinked (O(1)) and any late Done waiters are released.
func (rc *reqCtx) finish() {
	if !rc.deadline.IsZero() {
		rc.wheel.Stop(&rc.entry)
	}
	rc.cancel(context.Canceled)
}

// connState tracks one server connection's in-flight requests, replacing
// the old per-conn sync.Map of cancel funcs: cancel frames and conn death
// resolve ids to reqCtxs here, and the WaitGroup holds conn teardown until
// every dispatched request has finished writing its response.
type connState struct {
	wg sync.WaitGroup

	mu sync.Mutex
	m  map[uint64]*reqCtx
}

func newConnState() *connState { return &connState{m: map[uint64]*reqCtx{}} }

func (st *connState) add(id uint64, rc *reqCtx) {
	st.mu.Lock()
	st.m[id] = rc
	st.mu.Unlock()
}

func (st *connState) remove(id uint64) {
	st.mu.Lock()
	delete(st.m, id)
	st.mu.Unlock()
}

// cancel cancels one in-flight request (explicit cancel frame).
func (st *connState) cancel(id uint64) {
	st.mu.Lock()
	rc := st.m[id]
	st.mu.Unlock()
	if rc != nil {
		rc.cancel(context.Canceled)
	}
}

// cancelAll cancels everything still running — the caller is gone.
func (st *connState) cancelAll() {
	st.mu.Lock()
	rcs := make([]*reqCtx, 0, len(st.m))
	for _, rc := range st.m {
		rcs = append(rcs, rc)
	}
	st.mu.Unlock()
	for _, rc := range rcs {
		rc.cancel(context.Canceled)
	}
}

// reqWork is one dispatched request. It travels by value through a
// worker's channel, so handing a request to the pool allocates nothing.
type reqWork struct {
	s    *Server
	cw   *connWriter
	st   *connState
	rc   *reqCtx
	rb   *readBuf
	hdr  header
	args []byte
}

// run executes the request and tears it down: the args buffer reference is
// dropped only after the response is on the wire (handlers may alias args
// in their results), and the conn's WaitGroup releases last.
func (wk reqWork) run() {
	wk.s.handleRequest(wk.rc, wk.cw, wk.hdr, wk.args)
	wk.st.remove(wk.hdr.id)
	wk.rc.finish()
	wk.rb.release()
	wk.st.wg.Done()
}

// A workerPool runs requests on reusable goroutines instead of spawning
// one per request. Idle workers park on a LIFO stack (the hottest worker —
// warmest stacks and caches — is reused first); at the cap, or after stop,
// submit falls back to a plain goroutine, so the pool bounds goroutine
// churn without ever deadlocking dispatch. Workers may block in admission
// queues; the cap is sized so admission's own bounds (MaxInflight +
// MaxQueue) can never pin the whole pool.
type workerPool struct {
	mu      sync.Mutex
	idle    []*poolWorker
	n       int // live workers
	cap     int
	stopped bool
}

type poolWorker struct {
	pool *workerPool
	ch   chan reqWork
}

func newWorkerPool(cap int) *workerPool {
	return &workerPool{cap: cap}
}

func (p *workerPool) submit(wk reqWork) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		w.ch <- wk
		return
	}
	if p.stopped || p.n >= p.cap {
		p.mu.Unlock()
		go wk.run()
		return
	}
	p.n++
	p.mu.Unlock()
	w := &poolWorker{pool: p, ch: make(chan reqWork, 1)}
	w.ch <- wk
	go w.loop()
}

func (w *poolWorker) loop() {
	for wk := range w.ch {
		wk.run()
		p := w.pool
		p.mu.Lock()
		if p.stopped {
			p.n--
			p.mu.Unlock()
			return
		}
		p.idle = append(p.idle, w)
		p.mu.Unlock()
	}
}

// stop drains the pool: parked workers exit, and workers finishing a
// request exit instead of re-parking. Safe to call with requests still
// running; they complete on their current goroutine.
func (p *workerPool) stop() {
	p.mu.Lock()
	p.stopped = true
	idle := p.idle
	p.idle = nil
	p.n -= len(idle)
	p.mu.Unlock()
	for _, w := range idle {
		close(w.ch)
	}
}
