package rpc

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// gateWriter blocks each Write until released, recording every payload it
// saw and how many Write calls it took to deliver them.
type gateWriter struct {
	mu     sync.Mutex
	gate   chan struct{}
	writes int
	bytes  int
	fail   error
}

func (w *gateWriter) Write(p []byte) (int, error) {
	if w.gate != nil {
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return 0, w.fail
	}
	w.writes++
	w.bytes += len(p)
	return len(p), nil
}

func testFrame(payload string) ([]byte, *frameBuf) {
	fb := getFrame()
	buf := append(fb.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	fb.b = buf
	return buf, fb
}

func TestFlusherLoneWriteIsImmediate(t *testing.T) {
	w := &gateWriter{}
	f := newConnFlusher(w, metrics.Default.Counter("test.flusher.tx"), nil, nil, nil)
	head, fb := testFrame("solo")
	if err := f.write(head, nil, fb); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("lone write took %d Write calls, want 1", w.writes)
	}
}

func TestFlusherCoalescesConcurrentWrites(t *testing.T) {
	// Hold the first flush open at the socket; everything enqueued behind
	// it must land in one follow-up flush batch.
	w := &gateWriter{gate: make(chan struct{})}
	reg := metrics.NewRegistry()
	hist := reg.Histogram("flush", flushBatchBuckets)
	f := newConnFlusher(w, metrics.Default.Counter("test.flusher.tx"), hist, nil, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		head, fb := testFrame("leader")
		if err := f.write(head, nil, fb); err != nil {
			t.Errorf("leader write: %v", err)
		}
	}()
	// Wait until the leader is the flusher (blocked in the gated Write).
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.flushing
	})

	const followers = 10
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			head, fb := testFrame("follower")
			if err := f.write(head, nil, fb); err != nil {
				t.Errorf("follower write: %v", err)
			}
		}()
	}
	// Wait until every follower is enqueued behind the in-flight flush.
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.queue) == followers
	})
	w.gate <- struct{}{} // release the leader's write
	close(w.gate)        // and everything after it
	wg.Wait()

	// Exactly two flushes: the leader alone, then all followers group-
	// committed in one batch. (Write-call counts are checked loosely: on a
	// plain io.Writer net.Buffers degrades to one Write per buffer; real
	// TCP conns take the writev path.)
	if got := hist.Count(); got != 2 {
		t.Errorf("batch histogram recorded %d flushes, want 2", got)
	}
	if snap := reg.Snapshot(); len(snap) != 1 || snap[0].Sum != float64(1+followers) {
		t.Errorf("flushed frame total = %v, want %d across 2 batches", snap[0].Sum, 1+followers)
	}
}

func TestFlusherErrorFailsQueuedWriters(t *testing.T) {
	w := &gateWriter{gate: make(chan struct{})}
	f := newConnFlusher(w, metrics.Default.Counter("test.flusher.tx"), nil, nil, nil)
	boom := errors.New("socket torn")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		head, fb := testFrame("leader")
		if err := f.write(head, nil, fb); !errors.Is(err, boom) {
			t.Errorf("leader write err = %v, want %v", err, boom)
		}
	}()
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.flushing
	})

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			head, fb := testFrame("doomed")
			errs <- f.write(head, nil, fb)
		}()
	}
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.queue) == 4
	})
	w.mu.Lock()
	w.fail = boom
	w.mu.Unlock()
	close(w.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("queued writer err = %v, want %v", err, boom)
		}
	}
	// Later writers fail fast without touching the dead socket.
	head, fb := testFrame("late")
	if err := f.write(head, nil, fb); !errors.Is(err, boom) {
		t.Errorf("post-mortem write err = %v, want %v", err, boom)
	}
}

func TestFlusherBackpressureBindsPendingBytes(t *testing.T) {
	w := &gateWriter{gate: make(chan struct{})}
	f := newConnFlusher(w, metrics.Default.Counter("test.flusher.tx"), nil, nil, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		head, fb := testFrame("leader")
		_ = f.write(head, nil, fb)
	}()
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.flushing
	})

	// Stuff the queue past the backlog cap; the writer that crosses the cap
	// must block rather than enqueue.
	big := make([]byte, maxFlushBacklog+4)
	binary.LittleEndian.PutUint32(big, uint32(maxFlushBacklog))
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = f.write(big, nil, nil)
	}()
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.pending > maxFlushBacklog
	})

	var blocked atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		head, fb := testFrame("overflow")
		blocked.Store(true)
		_ = f.write(head, nil, fb)
	}()
	waitFor(t, func() bool { return blocked.Load() })
	time.Sleep(5 * time.Millisecond)
	f.mu.Lock()
	queued := len(f.queue)
	f.mu.Unlock()
	if queued != 1 {
		t.Errorf("queue holds %d entries with backlog full, want 1 (overflow writer must wait)", queued)
	}
	close(w.gate)
	wg.Wait()
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
