package rpc

import (
	"context"
	"sync"
	"time"
)

// A ServerCall carries one admitted request through the server's
// interceptor chain. Interceptors may read the call's metadata, replace
// the context, or short-circuit by returning without calling next. The
// struct is pooled: it is only valid for the duration of the chain.
type ServerCall struct {
	// Info describes the call (method, span context, shard, meta); the
	// same value is available to handlers via InfoFromContext.
	Info CallInfo
	// Args is the decoded request payload. It aliases a pooled read
	// buffer; anything retained beyond the chain must be copied.
	Args []byte

	handler *registeredHandler
	// Handler results, filled by the innermost stage.
	result []byte
	framed bool
	owner  BufOwner
}

// ServerNext invokes the remainder of the server's interceptor chain.
type ServerNext func(ctx context.Context, call *ServerCall) error

// A ServerInterceptor is one composable stage of the server's dispatch
// path. The chain is composed once at construction, so per-call overhead
// is a plain indirect call — default calls stay inside the dispatch
// allocation budget.
type ServerInterceptor func(ctx context.Context, call *ServerCall, next ServerNext) error

// Use appends an interceptor to the server's dispatch chain, outside the
// built-in fault-injection stage and inside admission. It must be called
// before the server starts serving.
func (s *Server) Use(ic ServerInterceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptors = append(s.interceptors, ic)
	s.rebuildChainLocked()
}

// rebuildChainLocked composes the dispatch chain: user interceptors in
// Use order (outermost first), then the built-in fault-injection stage,
// then the handler itself.
func (s *Server) rebuildChainLocked() {
	next := ServerNext(invokeHandler)
	stages := make([]ServerInterceptor, 0, len(s.interceptors)+1)
	stages = append(stages, s.interceptors...)
	stages = append(stages, s.faultStage)
	for i := len(stages) - 1; i >= 0; i-- {
		ic, inner := stages[i], next
		next = func(ctx context.Context, call *ServerCall) error {
			return ic(ctx, call, inner)
		}
	}
	s.chain = next
}

// faultStage is the built-in fault-injection interceptor: it realizes the
// chaos surface's degrade-replica fault (SetDelay) by stalling dispatch,
// respecting cancellation. Its sibling fault, the response-flusher stall
// (SetFlushStall), necessarily lives in the flusher itself — it must
// squeeze the batched write, after handler completion — but both are set
// through the same chaos.Surface entry points.
func (s *Server) faultStage(ctx context.Context, call *ServerCall, next ServerNext) error {
	if d := time.Duration(s.delayNanos.Load()); d > 0 {
		timer := s.opts.Clock.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return next(ctx, call)
}

// invokeHandler is the innermost stage: it runs the registered handler
// and records its result on the call.
func invokeHandler(ctx context.Context, call *ServerCall) error {
	if h := call.handler; h.ffn != nil {
		result, owner, err := h.ffn(ctx, call.Args)
		call.result, call.framed, call.owner = result, err == nil, owner
		return err
	}
	result, err := call.handler.fn(ctx, call.Args)
	call.result = result
	return err
}

var serverCallPool = sync.Pool{New: func() any { return new(ServerCall) }}

func getServerCall() *ServerCall  { return serverCallPool.Get().(*ServerCall) }
func putServerCall(c *ServerCall) { *c = ServerCall{}; serverCallPool.Put(c) }
