package rpc

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// admitWaiter is one request parked in the admission queue. grant is
// buffered so the releaser never blocks: it receives true when a slot is
// granted, false when the waiter is evicted by a higher-priority arrival.
type admitWaiter struct {
	grant chan bool
	rank  int
	hedge bool
}

// admitter is the server's priority-aware admission gate: a counting
// semaphore over executing handlers plus a bounded wait queue ordered by
// shed rank. Under pressure it refuses the least valuable work first
// (paper §5: overload handling belongs in the runtime):
//
//   - a freed slot goes to the highest-ranked waiter, FIFO within a rank;
//   - when the queue is full, a new arrival evicts a strictly lower-ranked
//     waiter (preferring hedged duplicates, which by construction have a
//     twin still running elsewhere) rather than being refused itself;
//   - a waiter whose caller goes away (deadline, cancel — including a
//     hedge whose primary already answered) leaves the queue unexecuted.
type admitter struct {
	maxQueue int

	mu     sync.Mutex
	free   int
	queues [numPriorities][]*admitWaiter // indexed by shed rank, FIFO each
	queued int

	// queuedGauge mirrors the queue depth for tests and metrics.
	queuedGauge *atomic.Int64
	// hedgeDropped counts queued hedged duplicates that left the queue
	// unexecuted (evicted or abandoned by their caller).
	hedgeDropped *metrics.Counter
}

func newAdmitter(maxInflight, maxQueue int, queuedGauge *atomic.Int64, hedgeDropped *metrics.Counter) *admitter {
	return &admitter{
		maxQueue:     maxQueue,
		free:         maxInflight,
		queuedGauge:  queuedGauge,
		hedgeDropped: hedgeDropped,
	}
}

// admit blocks until the request may execute, or reports that it must be
// shed. A false return always refers to the calling request itself;
// evicted waiters observe their own admit call return false.
func (a *admitter) admit(ctx context.Context, meta CallMeta) bool {
	rank := meta.Priority.shedRank()
	a.mu.Lock()
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return true
	}
	if a.maxQueue <= 0 || ctx.Err() != nil {
		a.mu.Unlock()
		return false
	}
	if a.queued >= a.maxQueue {
		// Full queue: make room by evicting a strictly lower-ranked
		// waiter; if nothing ranks below this request, shed it instead.
		if !a.evictBelowLocked(rank) {
			a.mu.Unlock()
			return false
		}
	}
	w := &admitWaiter{grant: make(chan bool, 1), rank: rank, hedge: meta.Hedge}
	a.queues[rank] = append(a.queues[rank], w)
	a.queued++
	a.queuedGauge.Add(1)
	a.mu.Unlock()

	select {
	case ok := <-w.grant:
		if !ok {
			return false // evicted by a higher-priority arrival
		}
		if ctx.Err() != nil {
			// Granted, but the caller is already gone: hand the slot on.
			a.release()
			return false
		}
		return true
	case <-ctx.Done():
		a.mu.Lock()
		if a.removeLocked(w) {
			a.mu.Unlock()
			if w.hedge {
				a.hedgeDropped.Inc()
			}
			return false
		}
		a.mu.Unlock()
		// Lost the race with a releaser: a verdict is already in the
		// channel. Consume it and return any granted slot.
		if ok := <-w.grant; ok {
			a.release()
		}
		return false
	}
}

// release returns an execution slot, handing it to the highest-ranked
// queued waiter if any.
func (a *admitter) release() {
	a.mu.Lock()
	for rank := numPriorities - 1; rank >= 0; rank-- {
		if q := a.queues[rank]; len(q) > 0 {
			w := q[0]
			a.queues[rank] = q[1:]
			a.queued--
			a.queuedGauge.Add(-1)
			a.mu.Unlock()
			w.grant <- true
			return
		}
	}
	a.free++
	a.mu.Unlock()
}

// evictBelowLocked evicts one waiter of strictly lower rank than rank,
// preferring a hedged duplicate in the lowest occupied rank, else that
// rank's oldest waiter. It reports whether an eviction happened.
func (a *admitter) evictBelowLocked(rank int) bool {
	for r := 0; r < rank; r++ {
		q := a.queues[r]
		if len(q) == 0 {
			continue
		}
		victim := 0
		for i, w := range q {
			if w.hedge {
				victim = i
				break
			}
		}
		w := q[victim]
		a.queues[r] = append(q[:victim], q[victim+1:]...)
		a.queued--
		a.queuedGauge.Add(-1)
		if w.hedge {
			a.hedgeDropped.Inc()
		}
		w.grant <- false
		return true
	}
	return false
}

// removeLocked unlinks w from its queue, reporting false if w is no longer
// queued (a releaser or evictor already decided its fate).
func (a *admitter) removeLocked(w *admitWaiter) bool {
	q := a.queues[w.rank]
	for i, x := range q {
		if x == w {
			a.queues[w.rank] = append(q[:i], q[i+1:]...)
			a.queued--
			a.queuedGauge.Add(-1)
			return true
		}
	}
	return false
}
