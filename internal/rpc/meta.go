package rpc

import (
	"encoding/binary"
	"fmt"
)

// Priority is a call's admission class. It orders load shedding under
// MaxInflight pressure: when the server must refuse work, lower shedRank
// classes are refused first (paper §5: load shedding belongs in the
// runtime, and tail behavior under overload is dominated by how the server
// orders shedding).
//
// The zero value is PriorityNormal so that the wire encoding of the
// default class is empty: a call with default metadata adds no bytes to
// the fixed request header. Codegen emits these numeric values directly
// (codegen.MethodSpec.Priority mirrors this numbering to avoid importing
// this package from generated registration code).
type Priority uint8

const (
	// PriorityNormal is the default class.
	PriorityNormal Priority = 0
	// PriorityLow marks work to shed first: prefetches, cache warms,
	// best-effort reads.
	PriorityLow Priority = 1
	// PriorityHigh marks latency-sensitive interactive work.
	PriorityHigh Priority = 2
	// PriorityCritical marks work that must not be shed while anything
	// lower-ranked is still admitted (checkout, payment).
	PriorityCritical Priority = 3
)

// numPriorities is the number of admission classes (and shed ranks).
const numPriorities = 4

// shedRank maps a priority class to its shedding order: rank 0 is shed
// first. PriorityLow ranks below the default class; PriorityHigh and
// PriorityCritical above it.
func (p Priority) shedRank() int {
	switch p {
	case PriorityLow:
		return 0
	case PriorityNormal:
		return 1
	case PriorityHigh:
		return 2
	default: // PriorityCritical and any unknown future class
		return 3
	}
}

// priorityByRank is the inverse of shedRank, for iterating classes in
// shedding order.
var priorityByRank = [numPriorities]Priority{PriorityLow, PriorityNormal, PriorityHigh, PriorityCritical}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	case PriorityCritical:
		return "critical"
	}
	return fmt.Sprintf("priority(%d)", uint8(p))
}

// CallMeta is the per-call metadata that rides the request header. The
// zero value is the common case and costs nothing on the wire: Hedge is a
// flag bit, and Priority/Attempt travel in an optional varint header
// extension that is present only when one of them is non-zero
// (flagMetaExt). Servers use it to shed the right work first under
// overload and to drop queued hedge duplicates whose caller has already
// gone away.
type CallMeta struct {
	// Priority is the admission class used by priority-aware shedding.
	Priority Priority
	// Attempt is the retry ordinal of this transmission (0 = first send).
	Attempt uint8
	// Hedge marks a hedged duplicate of a still-outstanding first attempt.
	Hedge bool
}

// metaExtMax bounds the encoded size of the meta header extension:
// two uvarints (priority, attempt) of at most two bytes each. It is part
// of PayloadHeadroom so zero-copy callers always reserve enough scratch
// for a fully populated extension.
const metaExtMax = 4

// extSize returns the encoded size of the meta extension: 0 when priority
// and attempt are both default (the extension is omitted entirely).
func (m *CallMeta) extSize() int {
	if m.Priority == 0 && m.Attempt == 0 {
		return 0
	}
	n := 1
	if m.Priority >= 0x80 {
		n++
	}
	if m.Attempt < 0x80 {
		n++
	} else {
		n += 2
	}
	return n
}

// encodeExt writes the meta extension into b and returns the bytes
// written. The caller must have checked extSize > 0 and sized b to at
// least metaExtMax.
func (m *CallMeta) encodeExt(b []byte) int {
	n := binary.PutUvarint(b, uint64(m.Priority))
	n += binary.PutUvarint(b[n:], uint64(m.Attempt))
	return n
}

// decodeExt parses the meta extension from b, returning the bytes
// consumed.
func (m *CallMeta) decodeExt(b []byte) (int, error) {
	p, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("rpc: truncated meta extension (priority)")
	}
	a, n2 := binary.Uvarint(b[n:])
	if n2 <= 0 {
		return 0, fmt.Errorf("rpc: truncated meta extension (attempt)")
	}
	if p > 0xff || a > 0xff {
		return 0, fmt.Errorf("rpc: meta extension out of range (priority=%d attempt=%d)", p, a)
	}
	m.Priority = Priority(p)
	m.Attempt = uint8(a)
	return n + n2, nil
}
