package rpc

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// maxFlushBacklog bounds the bytes a connection may hold queued behind an
// in-flight flush before further writers block. The cap turns a slow or
// stalled socket into backpressure on the writers themselves: on the server
// those writers are handler goroutines still holding their admission slot,
// so a congested connection feeds straight back into MaxInflight instead of
// buffering unbounded response bytes in memory.
const maxFlushBacklog = 1 << 20

// flushBatchBuckets are the histogram bounds for frames-per-flush: small
// powers of two, since a batch can never exceed the number of concurrent
// writers on the connection.
var flushBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// A flushEntry is one frame queued for write. head always starts with the
// 4-byte length prefix; tail optionally carries a large payload that is
// written vectored rather than copied into scratch. fb, when non-nil, is
// the pooled scratch backing head and is recycled once the frame is on the
// wire (or abandoned on error).
type flushEntry struct {
	head []byte
	tail []byte
	fb   *frameBuf
}

// A connFlusher coalesces concurrent frame writes on one connection into
// vectored batches — group-commit for the data plane. The first writer to
// arrive while the connection is idle becomes the flusher and writes its
// frame immediately (a lone call pays no added latency). Writers that
// arrive while a flush is in flight enqueue their frame and wait; the
// flusher drains the whole accumulated queue with a single
// net.Buffers.WriteTo (writev on TCP), so N concurrent callers cost one
// syscall instead of N.
//
// Every write blocks until its frame is on the wire or the connection has
// failed, which preserves the data plane's buffer-ownership contract:
// callers may recycle pooled frames the moment write returns.
type connFlusher struct {
	w     io.Writer
	tx    *metrics.Counter   // payload bytes (prefix excluded), successful writes only
	hist  *metrics.Histogram // frames per flush batch
	stall *atomic.Int64      // injected pre-flush stall (chaos); nil on clients
	clk   clock.Clock

	mu        sync.Mutex
	flushed   sync.Cond // doneSeq advanced or err set
	space     sync.Cond // pendingBytes dropped below the backlog cap
	queue     []flushEntry
	spare     []flushEntry // recycled backing array for queue
	bufs      [][]byte     // reusable writev scratch
	enqSeq    uint64       // sequence of the last enqueued frame
	doneSeq   uint64       // sequence of the last frame on the wire
	pending   int          // bytes queued but not yet written
	lastDepth int          // frames in the most recently committed batch
	flushing  bool
	err       error // terminal; set on first write failure
}

func newConnFlusher(w io.Writer, tx *metrics.Counter, hist *metrics.Histogram, stall *atomic.Int64, clk clock.Clock) *connFlusher {
	f := &connFlusher{w: w, tx: tx, hist: hist, stall: stall, clk: clock.Or(clk)}
	f.flushed.L = &f.mu
	f.space.L = &f.mu
	return f
}

// write queues one frame and blocks until it has been written (nil) or the
// connection has failed (the write error). head must start with the filled
// 4-byte length prefix; fb, when non-nil, transfers to the flusher and is
// recycled after the flush. On error the flusher has already dropped every
// reference to the frame, so caller-owned buffers are safely reusable.
func (f *connFlusher) write(head, tail []byte, fb *frameBuf) error {
	f.mu.Lock()
	// Backpressure: past the backlog cap, block until the in-flight flush
	// makes room. The cap only binds while a flush is actually running —
	// otherwise this writer is about to become the flusher itself.
	for f.pending >= maxFlushBacklog && f.flushing && f.err == nil {
		f.space.Wait()
	}
	if f.err != nil {
		err := f.err
		f.mu.Unlock()
		if fb != nil {
			putFrame(fb)
		}
		return err
	}
	f.enqSeq++
	seq := f.enqSeq
	f.queue = append(f.queue, flushEntry{head: head, tail: tail, fb: fb})
	f.pending += len(head) + len(tail)

	if !f.flushing {
		f.flushing = true
		// Adaptive group commit: when the connection has shown concurrency
		// (the previous batch carried more than one frame), yield once before
		// committing so writers that are runnable but not yet enqueued can
		// pile in — a quick socket write never releases the P, so without the
		// yield a few-core scheduler would commit every flush one frame deep.
		// A lone caller pays nothing: its batches are one deep, so it skips
		// the yield and flushes immediately. The periodic probe (every 64th
		// frame) is what lets batching bootstrap: one yielded flush reveals
		// whether concurrent writers exist.
		if f.lastDepth > 1 || seq&0x3f == 0 {
			f.mu.Unlock()
			runtime.Gosched()
			f.mu.Lock()
		}
		f.runFlush()
	} else {
		// Group-commit: a flush is in flight; our frame rides in the next
		// batch it drains.
		for f.doneSeq < seq && f.err == nil {
			f.flushed.Wait()
		}
	}
	done := f.doneSeq >= seq
	err := f.err
	f.mu.Unlock()
	if done {
		return nil
	}
	return err
}

// runFlush drains the queue in batches. Called with f.mu held and
// f.flushing just set; returns with f.mu held and f.flushing cleared. The
// lock is released around the actual socket writes, which is what lets
// later writers coalesce into the next batch.
func (f *connFlusher) runFlush() {
	for len(f.queue) > 0 && f.err == nil {
		batch := f.queue
		f.queue = f.spare[:0]
		var stall time.Duration
		if f.stall != nil {
			stall = time.Duration(f.stall.Load())
		}
		f.mu.Unlock()

		if stall > 0 {
			// Fault injection (degrade-dataplane-batching): hold the flush
			// open so concurrent writers pile into deeper batches and the
			// coalescing paths get exercised under test schedules.
			f.clk.Sleep(stall)
		}
		var err error
		var wire int
		if len(batch) == 1 && batch[0].tail == nil {
			wire = len(batch[0].head)
			_, err = f.w.Write(batch[0].head)
		} else {
			bufs := f.bufs[:0]
			for _, e := range batch {
				bufs = append(bufs, e.head)
				wire += len(e.head)
				if len(e.tail) > 0 {
					bufs = append(bufs, e.tail)
					wire += len(e.tail)
				}
			}
			f.bufs = bufs // keep the grown scratch
			// WriteTo consumes a private header so f.bufs keeps its base;
			// writev handles partial writes internally.
			nb := net.Buffers(bufs)
			_, err = nb.WriteTo(f.w)
			for i := range bufs {
				bufs[i] = nil
			}
		}
		frames := len(batch)
		if f.hist != nil {
			f.hist.Put(float64(frames))
		}
		for i := range batch {
			if batch[i].fb != nil {
				putFrame(batch[i].fb)
			}
			batch[i] = flushEntry{}
		}

		f.mu.Lock()
		f.spare = batch[:0]
		f.pending -= wire
		f.lastDepth = frames
		if err != nil {
			f.err = err
		} else {
			f.doneSeq += uint64(frames)
			// Count only bytes that made it to the wire, excluding the
			// 4-byte prefixes, matching the pre-batching tx accounting.
			f.tx.Add(uint64(wire - 4*frames))
		}
		f.flushed.Broadcast()
		f.space.Broadcast()
	}
	if f.err != nil && len(f.queue) > 0 {
		// The connection is dead: fail everything still queued. Dropping the
		// entries returns buffer ownership to the waiters, which observe
		// f.err and surface a retryable transport error.
		for i := range f.queue {
			f.pending -= len(f.queue[i].head) + len(f.queue[i].tail)
			if f.queue[i].fb != nil {
				putFrame(f.queue[i].fb)
			}
			f.queue[i] = flushEntry{}
		}
		f.queue = f.queue[:0]
		f.flushed.Broadcast()
		f.space.Broadcast()
	}
	f.flushing = false
}
