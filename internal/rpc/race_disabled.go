//go:build !race

package rpc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
