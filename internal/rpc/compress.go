package rpc

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// DefaultCompressThreshold is the payload size above which compression is
// attempted when enabled. Small payloads are never compressed: the CPU cost
// exceeds the byte savings.
const DefaultCompressThreshold = 4 << 10

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// compress flate-compresses p. It returns (nil, false) when compression
// would not shrink the payload, in which case the caller sends it raw.
func compress(p []byte) ([]byte, bool) {
	var buf bytes.Buffer
	buf.Grow(len(p) / 2)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(p); err != nil {
		flateWriters.Put(w)
		return nil, false
	}
	if err := w.Close(); err != nil {
		flateWriters.Put(w)
		return nil, false
	}
	flateWriters.Put(w)
	if buf.Len() >= len(p) {
		return nil, false
	}
	return buf.Bytes(), true
}

// decompress inflates p.
func decompress(p []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxFrameSize+1))
	if err != nil {
		return nil, fmt.Errorf("rpc: decompressing payload: %w", err)
	}
	if len(out) > maxFrameSize {
		return nil, fmt.Errorf("rpc: decompressed payload exceeds frame limit")
	}
	return out, nil
}
