package rpc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// DefaultCompressThreshold is the payload size above which compression is
// attempted when enabled. Small payloads are never compressed: the CPU cost
// exceeds the byte savings.
const DefaultCompressThreshold = 4 << 10

// Compressed payload wire format: a 4-byte little-endian uncompressed
// length followed by the raw flate stream. Both ends of a connection run
// the same binary (see the package comment), so the format needs no
// versioning. Carrying the inflated size lets decompress allocate its
// output in one exact-size slice instead of growing through io.ReadAll.
const compressPrefix = 4

// A compressor pairs a pooled flate writer with its reusable output
// buffer. compress hands the caller the compressor whose buffer backs the
// returned payload; the caller releases it once the bytes are on the wire.
type compressor struct {
	fw  *flate.Writer
	out sliceWriter
}

// sliceWriter is an allocation-free io.Writer over a reusable byte slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var compressors = sync.Pool{
	New: func() any {
		fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return &compressor{fw: fw}
	},
}

// release returns the compressor (and its output buffer) to the pool. The
// payload previously returned by compress is invalid afterwards.
func (c *compressor) release() {
	if cap(c.out.b) > maxPooledFrame {
		c.out.b = nil
	}
	compressors.Put(c)
}

// An inflater pairs a pooled flate reader with its reusable source reader.
type inflater struct {
	fr  io.ReadCloser
	src bytes.Reader
}

var inflaters = sync.Pool{
	New: func() any {
		inf := new(inflater)
		inf.fr = flate.NewReader(&inf.src)
		return inf
	},
}

// compress flate-compresses p into a pooled buffer prefixed with the
// uncompressed length. It returns (nil, nil, false) when compression would
// not shrink the payload, in which case the caller sends it raw. On
// success the returned payload aliases the compressor's buffer: the caller
// must call release once the bytes are written (the flusher blocks until
// then, so release-after-write is safe).
func compress(p []byte) ([]byte, *compressor, bool) {
	c := compressors.Get().(*compressor)
	c.out.b = append(c.out.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(c.out.b, uint32(len(p)))
	c.fw.Reset(&c.out)
	if _, err := c.fw.Write(p); err != nil {
		c.release()
		return nil, nil, false
	}
	if err := c.fw.Close(); err != nil {
		c.release()
		return nil, nil, false
	}
	if len(c.out.b) >= len(p) {
		c.release()
		return nil, nil, false
	}
	return c.out.b, c, true
}

// decompress inflates a payload produced by compress into a fresh
// exact-size slice.
func decompress(p []byte) ([]byte, error) {
	if len(p) < compressPrefix {
		return nil, fmt.Errorf("rpc: compressed payload of %d bytes lacks length prefix", len(p))
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxFrameSize {
		return nil, fmt.Errorf("rpc: decompressed payload exceeds frame limit")
	}
	inf := inflaters.Get().(*inflater)
	defer inflaters.Put(inf)
	inf.src.Reset(p[compressPrefix:])
	if err := inf.fr.(flate.Resetter).Reset(&inf.src, nil); err != nil {
		return nil, fmt.Errorf("rpc: resetting inflater: %w", err)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(inf.fr, out); err != nil {
		return nil, fmt.Errorf("rpc: decompressing payload: %w", err)
	}
	// The stream must end exactly at the declared length; trailing garbage
	// or a short stream means corruption.
	var extra [1]byte
	if m, _ := inf.fr.Read(extra[:]); m != 0 {
		return nil, fmt.Errorf("rpc: compressed payload longer than declared length")
	}
	return out, nil
}
