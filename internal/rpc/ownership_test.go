package rpc

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/codec"
)

// These tests pin the data plane's buffer-ownership rules (DESIGN.md §9):
// Call hands back a private copy, CallFramed hands back a pooled Response
// whose payload dies at Release, and releasing twice is a loud bug.

// startFramedEcho starts a server whose handler echoes through the pooled
// zero-copy path.
func startFramedEcho(t *testing.T) *Client {
	t.Helper()
	s := NewServer()
	s.RegisterFramed("own.Echo", func(ctx context.Context, args []byte) ([]byte, BufOwner, error) {
		enc := codec.GetEncoder()
		enc.Reserve(ResponseHeadroom)
		enc.Raw(args)
		return enc.Framed(), enc, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return c
}

// TestCallResultIsPrivateCopy verifies the copy-on-retain boundary of the
// legacy Call API: the returned payload must survive arbitrarily many later
// calls that recycle the pooled read buffers underneath.
func TestCallResultIsPrivateCopy(t *testing.T) {
	c := startFramedEcho(t)
	ctx := context.Background()
	method := MethodKey("own.Echo")

	first, err := c.Call(ctx, method, bytes.Repeat([]byte("A"), 64), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the same connection with different payloads of the same size,
	// which reuse (and overwrite) the pooled read buffers.
	for i := 0; i < 50; i++ {
		if _, err := c.Call(ctx, method, bytes.Repeat([]byte("B"), 64), CallOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if want := bytes.Repeat([]byte("A"), 64); !bytes.Equal(first, want) {
		t.Errorf("retained Call result was overwritten by later calls: %q", first)
	}
}

// TestCallFramedResponseLifecycle verifies that a Response payload is
// stable until Release even while other calls land on the connection, and
// that a second Release panics instead of silently corrupting the pool.
func TestCallFramedResponseLifecycle(t *testing.T) {
	c := startFramedEcho(t)
	ctx := context.Background()
	method := MethodKey("own.Echo")

	enc := codec.GetEncoder()
	enc.Reserve(PayloadHeadroom)
	enc.Raw(bytes.Repeat([]byte("A"), 64))
	resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
	codec.PutEncoder(enc)
	if err != nil {
		t.Fatal(err)
	}

	// Before Release the payload is owned by this caller: later traffic on
	// the same client must not touch it (each in-flight response has its own
	// pooled buffer).
	for i := 0; i < 10; i++ {
		if _, err := c.Call(ctx, method, bytes.Repeat([]byte("B"), 64), CallOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if want := bytes.Repeat([]byte("A"), 64); !bytes.Equal(resp.Data(), want) {
		t.Fatalf("Response payload mutated before Release: %q", resp.Data())
	}

	resp.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	resp.Release()
}

// BenchmarkCallFramed measures the zero-copy client path against a framed
// echo server over real TCP; BenchmarkCallLegacy is the same round trip
// through the copying Call API, for the A9 before/after comparison.
func BenchmarkCallFramed(b *testing.B) {
	c := benchClient(b)
	method := MethodKey("own.Echo")
	ctx := context.Background()
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := codec.GetEncoder()
		enc.Reserve(PayloadHeadroom)
		enc.Raw(payload)
		resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
		codec.PutEncoder(enc)
	}
}

func BenchmarkCallLegacy(b *testing.B) {
	c := benchClient(b)
	method := MethodKey("own.Echo")
	ctx := context.Background()
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, method, payload, CallOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchClient(b *testing.B) *Client {
	b.Helper()
	s := NewServer()
	s.RegisterFramed("own.Echo", func(ctx context.Context, args []byte) ([]byte, BufOwner, error) {
		enc := codec.GetEncoder()
		enc.Reserve(ResponseHeadroom)
		enc.Raw(args)
		return enc.Framed(), enc, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	b.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return c
}
