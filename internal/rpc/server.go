package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// A Handler executes one component method. args is the request payload
// (already stripped of the RPC header); the returned bytes are the result
// payload. Application-level errors are encoded inside the result payload
// by generated code; a non-nil error return here signals a dispatch
// failure (bad payload, handler panic) and is reported to the caller as a
// transport error.
type Handler func(ctx context.Context, args []byte) ([]byte, error)

// A BufOwner owns a pooled buffer handed to the transport. The transport
// calls Release exactly once, after the buffer's bytes are on the wire (or
// abandoned); the buffer is invalid afterwards. codec.Encoder implements
// BufOwner, so handlers can hand their pooled encoder straight to the
// server.
type BufOwner interface{ Release() }

// A FramedHandler is the zero-copy variant of Handler. The returned buffer
// must hold ResponseHeadroom bytes of scratch followed by the result
// payload (see codec.Encoder.Reserve); the server fills the response
// framing into the scratch in place and writes the buffer with a single
// Write. A non-nil owner is released by the server once the response has
// been written; on a non-nil error both framed and owner must be nil.
//
// args aliases a pooled read buffer that is recycled when the handler's
// response has been written: a handler may alias args in its result but
// must copy anything it retains beyond returning.
type FramedHandler func(ctx context.Context, args []byte) (framed []byte, owner BufOwner, err error)

// CallInfo describes the call being handled, available to handlers via
// InfoFromContext.
type CallInfo struct {
	Method string
	// Trace is the inbound span context; its Sampled bit is the root
	// tracer's decision carried on the wire (flagSampled).
	Trace tracing.SpanContext
	Shard uint64
	// Meta is the call's wire metadata: priority class, attempt ordinal,
	// hedge marker.
	Meta CallMeta
}

type callInfoKey struct{}

// InfoFromContext returns the CallInfo for an in-flight handler invocation.
func InfoFromContext(ctx context.Context) (CallInfo, bool) {
	ci, ok := ctx.Value(callInfoKey{}).(CallInfo)
	return ci, ok
}

// ServerOptions configures a server's admission control (paper §5: the
// runtime, not the developer, owns graceful handling of overload).
type ServerOptions struct {
	// MaxInflight bounds the number of concurrently executing handlers.
	// Zero means unlimited (the historical behavior).
	MaxInflight int
	// MaxQueue bounds the number of requests allowed to wait for an
	// execution slot once MaxInflight is reached. Requests beyond the
	// queue — and queued requests whose deadline expires before a slot
	// frees — are shed with statusOverloaded instead of piling up.
	// Zero means no queue: reject immediately at capacity.
	MaxQueue int
	// Clock supplies the timers behind injected dispatch delay (SetDelay)
	// and drain polling. Nil means the wall clock; deterministic tests
	// inject a fake.
	Clock clock.Clock
}

// A Server accepts weaver-protocol connections and dispatches requests to
// registered handlers.
type Server struct {
	opts ServerOptions

	mu       sync.Mutex
	handlers map[MethodID]*registeredHandler
	lis      net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Admission control: adm is the priority-aware admission gate (nil
	// when unlimited); queued mirrors its wait-queue depth.
	adm    *admitter
	queued atomic.Int64

	// Dispatch interceptor chain (see ServerInterceptor). chain is
	// rebuilt under mu by Use and read under mu by dispatch.
	interceptors []ServerInterceptor
	chain        ServerNext

	// Drain state: once draining is set, new requests are answered with
	// statusUnavailable (never executed, so callers retry elsewhere) while
	// inflightReqs counts requests already past that gate.
	draining     atomic.Bool
	inflightReqs atomic.Int64

	// delayNanos injects latency before every dispatch. It exists for the
	// chaos harness, which uses it to simulate a sick/slow replica.
	delayNanos atomic.Int64

	// flushStallNanos injects a stall before every response-flusher batch
	// write, forcing concurrent responses to coalesce into deeper batches.
	// It exists for the chaos/sim harnesses (degrade-dataplane-batching).
	flushStallNanos atomic.Int64

	// readStallNanos injects a stall before every batched frame read — the
	// stall-read fault: a replica that drains its receive queue slowly, so
	// requests pile up in the kernel buffer and arrive in deep batches.
	readStallNanos atomic.Int64

	// wheel tracks every in-flight request deadline on one coalesced
	// ticker (see clock.Wheel) instead of a runtime timer per request.
	wheel *clock.Wheel
	// pool runs requests on reusable worker goroutines.
	pool *workerPool

	// Metrics.
	requests  *metrics.Counter
	errored   *metrics.Counter
	shed      *metrics.Counter
	unavail   *metrics.Counter
	rxBytes   *metrics.Counter
	txBytes   *metrics.Counter
	flushHist *metrics.Histogram
	readHist  *metrics.Histogram
	// Per-priority-class admission outcomes, indexed by shed rank.
	admittedByClass [numPriorities]*metrics.Counter
	shedByClass     [numPriorities]*metrics.Counter
	hedgeDropMetric *metrics.Counter
}

type registeredHandler struct {
	name string
	fn   Handler       // exactly one of fn
	ffn  FramedHandler // and ffn is set

	// tombstone marks a method whose handler was unregistered (the
	// component moved away). Requests for it are answered with
	// statusUnavailable — a retryable "never executed" signal — instead of
	// the hard dispatch error a genuinely unknown method gets.
	tombstone bool
	// inflight counts calls currently executing this handler; Unregister
	// waits on it to drain. Add happens under Server.mu, so a waiter that
	// has removed the handler from the map cannot miss a straggler.
	inflight sync.WaitGroup
}

// NewServer returns a server with no handlers registered and no admission
// limits.
func NewServer() *Server {
	return NewServerWithOptions(ServerOptions{})
}

// NewServerWithOptions returns a server with the given admission control
// configuration and no handlers registered.
func NewServerWithOptions(opts ServerOptions) *Server {
	s := &Server{
		opts:     opts,
		handlers: map[MethodID]*registeredHandler{},
		conns:    map[net.Conn]struct{}{},
		requests: metrics.Default.Counter("rpc.server.requests"),
		errored:  metrics.Default.Counter("rpc.server.errors"),
		shed:     metrics.Default.Counter("rpc.server.shed"),
		unavail:  metrics.Default.Counter("rpc.server.unavailable"),
		rxBytes:  metrics.Default.Counter("rpc.server.rx_bytes"),
		txBytes:  metrics.Default.Counter("rpc.server.tx_bytes"),

		flushHist: metrics.Default.Histogram("rpc.server.flush_batch_frames", flushBatchBuckets),
		readHist:  metrics.Default.Histogram("rpc.server.read_batch_frames", flushBatchBuckets),

		hedgeDropMetric: metrics.Default.Counter("rpc.server.hedge_dropped"),
	}
	for rank, p := range priorityByRank {
		s.admittedByClass[rank] = metrics.Default.Counter("rpc.server.admitted." + p.String())
		s.shedByClass[rank] = metrics.Default.Counter("rpc.server.shed." + p.String())
	}
	s.opts.Clock = clock.Or(opts.Clock)
	if opts.MaxInflight > 0 {
		s.adm = newAdmitter(opts.MaxInflight, opts.MaxQueue, &s.queued, s.hedgeDropMetric)
	}
	// One wheel tick per millisecond while any deadline is outstanding;
	// 256 slots keep a tick's sweep to the entries actually due.
	s.wheel = clock.NewWheel(s.opts.Clock, time.Millisecond, 256)
	// The worker cap only bounds goroutine reuse, not concurrency (past it,
	// dispatch falls back to plain goroutines). Admission can park at most
	// MaxInflight+MaxQueue workers, so size above that watermark.
	workers := 512
	if opts.MaxInflight > 0 {
		workers = opts.MaxInflight + opts.MaxQueue
		if workers < 16 {
			workers = 16
		}
	}
	s.pool = newWorkerPool(workers)
	s.rebuildChainLocked()
	return s
}

// SetDelay injects d of latency before each dispatch, respecting request
// cancellation. Chaos tests use it to degrade a replica; zero clears it.
func (s *Server) SetDelay(d time.Duration) { s.delayNanos.Store(int64(d)) }

// SetFlushStall injects d of stall before each response-flusher batch
// write, so concurrent responses pile into deeper coalesced batches — the
// degrade-dataplane-batching fault. Zero clears it. Unlike SetDelay this
// does not delay dispatch: it squeezes the write path specifically, which
// also exercises the flusher's pending-bytes backpressure.
func (s *Server) SetFlushStall(d time.Duration) { s.flushStallNanos.Store(int64(d)) }

// SetReadStall injects d of stall before each batched frame read, so the
// peer's frames pile up in the socket buffer and arrive in deep batches —
// the stall-read (slow reader) fault. Zero clears it. Responses still
// flush promptly; only the receive path is squeezed.
func (s *Server) SetReadStall(d time.Duration) { s.readStallNanos.Store(int64(d)) }

// admit blocks until the request may execute, or reports that it must be
// shed. With no limit configured every request is admitted immediately.
// At capacity the request waits in a bounded queue ordered by the meta's
// priority class; it is shed if the queue is full of equal-or-higher
// priority work, if a higher-priority arrival evicts it, or if its
// deadline expires (or its caller cancels) before a slot frees —
// executing it then would be wasted work.
func (s *Server) admit(ctx context.Context, meta CallMeta) bool {
	if s.adm == nil {
		return true
	}
	return s.adm.admit(ctx, meta)
}

// release returns an execution slot.
func (s *Server) release() {
	if s.adm != nil {
		s.adm.release()
	}
}

// Register installs a handler for the fully-qualified method name. It
// panics if the name (or its 32-bit hash) is already taken: hash collisions
// must be caught at startup, not mid-request.
func (s *Server) Register(fullName string, h Handler) {
	s.register(&registeredHandler{name: fullName, fn: h})
}

// RegisterFramed installs a zero-copy handler for the fully-qualified
// method name, with the same collision rules as Register.
func (s *Server) RegisterFramed(fullName string, h FramedHandler) {
	s.register(&registeredHandler{name: fullName, ffn: h})
}

func (s *Server) register(h *registeredHandler) {
	id := MethodKey(h.name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.handlers[id]; ok && !(prev.tombstone && prev.name == h.name) {
		panic(fmt.Sprintf("rpc: method registration conflict: %q and %q share id %#x", prev.name, h.name, id))
	}
	s.handlers[id] = h
}

// Unregister removes the handler for fullName and blocks until its
// in-flight calls have finished. A tombstone is left behind: later requests
// for the method are answered with statusUnavailable — a retryable signal
// that the request was never executed — because the usual reason for
// unregistration is that the component moved to another group and the
// caller simply holds stale routing. Re-registering the name later (the
// component moved back) is allowed. Unregistering a name that was never
// registered is a no-op.
func (s *Server) Unregister(fullName string) {
	id := MethodKey(fullName)
	s.mu.Lock()
	h, ok := s.handlers[id]
	if !ok || h.tombstone || h.name != fullName {
		s.mu.Unlock()
		return
	}
	s.handlers[id] = &registeredHandler{name: fullName, tombstone: true}
	s.mu.Unlock()
	h.inflight.Wait()
}

// Drain puts the server into a draining state and waits for in-flight
// requests to finish. New requests are answered with statusUnavailable
// (never executed, so callers safely retry on another replica) rather than
// refused at the socket: the listener and connections stay open so
// in-flight responses are still delivered and stale callers get a clean
// retry signal instead of a broken connection. Drain returns nil once no
// request is in flight, or ctx.Err() if the deadline expires first.
// Draining is terminal — it is the first phase of a graceful shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflightReqs.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.opts.Clock.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Serve accepts connections from lis until the server is closed. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Listen starts serving on a fresh TCP listener bound to addr (use
// "127.0.0.1:0" for an ephemeral port) and returns the bound address.
// Serving continues on a background goroutine until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = s.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the listener, closes all connections, and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// Every serveConn has drained its requests; retire the idle workers.
	s.pool.stop()
	return nil
}

// serveConn owns one connection: a batched frameReader slices every
// request frame the kernel has buffered out of one Read, and each request
// runs on the worker pool with its deadline tracked by the server's timer
// wheel — no goroutine spawn, runtime timer, or buffer copy per request.
// Responses coalesce through the connection's write flusher.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}

	st := newConnState()
	defer st.wg.Wait()

	cw := s.newConnWriter(conn)
	fr := newFrameReader(conn, s.readHist, &s.readStallNanos, s.opts.Clock)
	defer fr.close()

	for {
		// Each request frame aliases the shared pooled read buffer and
		// holds a reference to it; the reference drops after the response
		// is written, so handlers may alias args freely while the reader
		// moves on to fresh buffers.
		frame, rb, err := fr.next()
		if err != nil {
			// Cancel everything still running on this connection: the
			// caller is gone.
			st.cancelAll()
			return
		}
		s.rxBytes.Add(uint64(len(frame)))
		if len(frame) == 0 {
			rb.release()
			continue
		}
		typ, payload := frame[0], frame[1:]
		switch typ {
		case frameRequest:
			var hdr header
			n, err := hdr.decode(payload)
			if err != nil {
				rb.release()
				continue // malformed; drop
			}
			s.requests.Inc()

			rc := &reqCtx{clk: s.opts.Clock, wheel: s.wheel}
			if hdr.deadline != 0 {
				rc.deadline = time.Unix(0, hdr.deadline)
				s.wheel.Schedule(&rc.entry, rc.deadline, rc)
			}
			st.add(hdr.id, rc)
			st.wg.Add(1)
			s.pool.submit(reqWork{s: s, cw: cw, st: st, rc: rc, rb: rb, hdr: hdr, args: payload[n:]})

		case frameCancel:
			if len(payload) >= 8 {
				st.cancel(getUint64(payload))
			}
			rb.release()

		case framePing:
			_ = cw.write([]byte{framePong}, payload)
			rb.release()

		default:
			// Servers do not send pings, so pongs (and unknown types) are
			// ignored.
			rb.release()
		}
	}
}

// handleRequest runs one request to completion: admission, dispatch, and
// response write. It runs on a per-request goroutine; args aliases the
// pooled request frame, which the caller returns to the pool afterwards.
func (s *Server) handleRequest(ctx context.Context, cw *connWriter, hdr header, args []byte) {
	// Count in-flight before checking the drain gate: Drain stores the flag
	// and then polls the counter, so a request that saw draining==false is
	// guaranteed visible to the poll.
	s.inflightReqs.Add(1)
	defer s.inflightReqs.Add(-1)
	if s.draining.Load() {
		s.unavail.Inc()
		_ = cw.respond(hdr.id, statusUnavailable, nil)
		return
	}

	if hdr.flags&flagPayloadCompressed != 0 {
		inflated, err := decompress(args)
		if err != nil {
			return // corrupt payload; drop like other malformed frames
		}
		args = inflated
	}

	rank := hdr.meta.Priority.shedRank()
	if !s.admit(ctx, hdr.meta) {
		s.shed.Inc()
		s.shedByClass[rank].Inc()
		_ = cw.respond(hdr.id, statusOverloaded, nil)
		return
	}
	s.admittedByClass[rank].Inc()
	result, framed, owner, herr := s.dispatch(ctx, hdr, args)
	s.release()

	if herr != nil {
		if owner != nil {
			owner.Release()
		}
		if errors.Is(herr, errUnavailable) {
			s.unavail.Inc()
			_ = cw.respond(hdr.id, statusUnavailable, nil)
			return
		}
		s.errored.Inc()
		_ = cw.respond(hdr.id, statusError, []byte(herr.Error()))
		return
	}
	payload := result
	if framed {
		payload = result[ResponseHeadroom:]
	}
	if hdr.flags&flagAcceptCompressed != 0 && len(payload) >= DefaultCompressThreshold {
		if small, comp, ok := compress(payload); ok {
			if owner != nil {
				owner.Release()
			}
			_ = cw.respond(hdr.id, statusOKCompressed, small)
			comp.release()
			return
		}
	}
	if framed {
		_ = cw.respondFramed(hdr.id, statusOK, result)
		if owner != nil {
			owner.Release()
		}
		return
	}
	_ = cw.respond(hdr.id, statusOK, result)
}

// connWriter coalesces response writes on one server connection through a
// connFlusher; tx bytes are counted only for writes that succeed. Response
// writers are per-request handler goroutines still holding their admission
// slot, so the flusher's backlog cap turns a congested connection into
// backpressure on MaxInflight.
type connWriter struct {
	fl *connFlusher
}

func (s *Server) newConnWriter(w io.Writer) *connWriter {
	return &connWriter{fl: newConnFlusher(w, s.txBytes, s.flushHist, &s.flushStallNanos, s.opts.Clock)}
}

// write frames and writes arbitrary chunks (pings/pongs).
func (cw *connWriter) write(chunks ...[]byte) error {
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	fb := getFrame()
	buf := append(fb.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	for _, c := range chunks {
		buf = append(buf, c...)
	}
	fb.b = buf
	return cw.fl.write(buf, nil, fb)
}

// respond assembles a response frame (type, id, status, payload) in pooled
// scratch and enqueues it on the flusher. Payloads above vectoredThreshold
// stay out of scratch and ride the writev as a separate buffer.
func (cw *connWriter) respond(id uint64, status byte, payload []byte) error {
	n := 1 + 8 + 1 + len(payload)
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	fb := getFrame()
	buf := append(fb.b[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	buf = append(buf, frameResponse)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = append(buf, status)
	if len(payload) > vectoredThreshold {
		fb.b = buf
		return cw.fl.write(buf, payload, fb)
	}
	buf = append(buf, payload...)
	fb.b = buf
	return cw.fl.write(buf, nil, fb)
}

// respondFramed fills the ResponseHeadroom scratch at the front of framed
// in place and enqueues the buffer on the flusher — the zero-copy path for
// pooled handler results. The buffer stays owned by the flusher until the
// call returns.
func (cw *connWriter) respondFramed(id uint64, status byte, framed []byte) error {
	n := len(framed) - 4
	if n > maxFrameSize {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(framed[0:4], uint32(n))
	framed[4] = frameResponse
	binary.LittleEndian.PutUint64(framed[5:13], id)
	framed[13] = status
	return cw.fl.write(framed, nil, nil)
}

// dispatch runs the interceptor chain (ending in the handler) for
// hdr.method, converting panics into errors so one bad request cannot
// take down the proclet. For framed handlers it reports framed=true:
// result then carries ResponseHeadroom scratch ahead of the payload, and
// owner (when non-nil) must be released once the result bytes are no
// longer referenced.
func (s *Server) dispatch(ctx context.Context, hdr header, args []byte) (result []byte, framed bool, owner BufOwner, err error) {
	s.mu.Lock()
	h, ok := s.handlers[hdr.method]
	chain := s.chain
	if ok && !h.tombstone {
		h.inflight.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false, nil, fmt.Errorf("rpc: unknown method %#x", hdr.method)
	}
	if h.tombstone {
		return nil, false, nil, errUnavailable
	}
	defer h.inflight.Done()
	defer func() {
		if r := recover(); r != nil {
			result, framed, owner = nil, false, nil
			err = fmt.Errorf("rpc: handler %s panicked: %v\n%s", h.name, r, debug.Stack())
		}
	}()

	info := CallInfo{
		Method: h.name,
		Trace: tracing.SpanContext{
			Trace:   tracing.TraceID(hdr.trace),
			Span:    tracing.SpanID(hdr.span),
			Parent:  tracing.SpanID(hdr.parent),
			Sampled: hdr.flags&flagSampled != 0,
		},
		Shard: hdr.shard,
		Meta:  hdr.meta,
	}
	ctx = context.WithValue(ctx, callInfoKey{}, info)
	if info.Trace.Valid() {
		ctx = tracing.ContextWith(ctx, info.Trace)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, nil, err
	}
	// Run the chain on a pooled call carrier; on panic the carrier is
	// abandoned rather than pooled (its fields may be mid-mutation).
	sc := getServerCall()
	sc.Info, sc.Args, sc.handler = info, args, h
	err = chain(ctx, sc)
	result, framed, owner = sc.result, sc.framed, sc.owner
	putServerCall(sc)
	return result, framed, owner, err
}

// ErrShutdown is returned for calls attempted on a closed client.
var ErrShutdown = errors.New("rpc: client is shut down")

// errUnavailable is the server-internal signal that dispatch found a
// tombstoned (unregistered) handler; it surfaces to callers as
// statusUnavailable, never as an error string.
var errUnavailable = errors.New("rpc: handler unavailable")

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
