package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tracing"
)

// A Handler executes one component method. args is the request payload
// (already stripped of the RPC header); the returned bytes are the result
// payload. Application-level errors are encoded inside the result payload
// by generated code; a non-nil error return here signals a dispatch
// failure (bad payload, handler panic) and is reported to the caller as a
// transport error.
type Handler func(ctx context.Context, args []byte) ([]byte, error)

// CallInfo describes the call being handled, available to handlers via
// InfoFromContext.
type CallInfo struct {
	Method string
	Trace  tracing.SpanContext
	Shard  uint64
}

type callInfoKey struct{}

// InfoFromContext returns the CallInfo for an in-flight handler invocation.
func InfoFromContext(ctx context.Context) (CallInfo, bool) {
	ci, ok := ctx.Value(callInfoKey{}).(CallInfo)
	return ci, ok
}

// ServerOptions configures a server's admission control (paper §5: the
// runtime, not the developer, owns graceful handling of overload).
type ServerOptions struct {
	// MaxInflight bounds the number of concurrently executing handlers.
	// Zero means unlimited (the historical behavior).
	MaxInflight int
	// MaxQueue bounds the number of requests allowed to wait for an
	// execution slot once MaxInflight is reached. Requests beyond the
	// queue — and queued requests whose deadline expires before a slot
	// frees — are shed with statusOverloaded instead of piling up.
	// Zero means no queue: reject immediately at capacity.
	MaxQueue int
}

// A Server accepts weaver-protocol connections and dispatches requests to
// registered handlers.
type Server struct {
	opts ServerOptions

	mu       sync.Mutex
	handlers map[MethodID]registeredHandler
	lis      net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Admission control: slots is a semaphore over executing handlers
	// (nil when unlimited); queued counts waiters for a slot.
	slots  chan struct{}
	queued atomic.Int64

	// delayNanos injects latency before every dispatch. It exists for the
	// chaos harness, which uses it to simulate a sick/slow replica.
	delayNanos atomic.Int64

	// Metrics.
	requests *metrics.Counter
	errored  *metrics.Counter
	shed     *metrics.Counter
	rxBytes  *metrics.Counter
	txBytes  *metrics.Counter
}

type registeredHandler struct {
	name string
	fn   Handler
}

// NewServer returns a server with no handlers registered and no admission
// limits.
func NewServer() *Server {
	return NewServerWithOptions(ServerOptions{})
}

// NewServerWithOptions returns a server with the given admission control
// configuration and no handlers registered.
func NewServerWithOptions(opts ServerOptions) *Server {
	s := &Server{
		opts:     opts,
		handlers: map[MethodID]registeredHandler{},
		conns:    map[net.Conn]struct{}{},
		requests: metrics.Default.Counter("rpc.server.requests"),
		errored:  metrics.Default.Counter("rpc.server.errors"),
		shed:     metrics.Default.Counter("rpc.server.shed"),
		rxBytes:  metrics.Default.Counter("rpc.server.rx_bytes"),
		txBytes:  metrics.Default.Counter("rpc.server.tx_bytes"),
	}
	if opts.MaxInflight > 0 {
		s.slots = make(chan struct{}, opts.MaxInflight)
	}
	return s
}

// SetDelay injects d of latency before each dispatch, respecting request
// cancellation. Chaos tests use it to degrade a replica; zero clears it.
func (s *Server) SetDelay(d time.Duration) { s.delayNanos.Store(int64(d)) }

// admit blocks until the request may execute, or reports that it must be
// shed. With no limit configured every request is admitted immediately.
// At capacity the request waits in a bounded queue; it is shed if the
// queue is full, or if its deadline expires (or its caller cancels)
// before a slot frees — executing it then would be wasted work.
func (s *Server) admit(ctx context.Context) bool {
	if s.slots == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	if s.opts.MaxQueue <= 0 || ctx.Err() != nil {
		return false
	}
	if s.queued.Add(1) > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		return false
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		if ctx.Err() != nil {
			<-s.slots
			return false
		}
		return true
	case <-ctx.Done():
		return false
	}
}

// release returns an execution slot.
func (s *Server) release() {
	if s.slots != nil {
		<-s.slots
	}
}

// Register installs a handler for the fully-qualified method name. It
// panics if the name (or its 32-bit hash) is already taken: hash collisions
// must be caught at startup, not mid-request.
func (s *Server) Register(fullName string, h Handler) {
	id := MethodKey(fullName)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.handlers[id]; ok {
		panic(fmt.Sprintf("rpc: method registration conflict: %q and %q share id %#x", prev.name, fullName, id))
	}
	s.handlers[id] = registeredHandler{name: fullName, fn: h}
}

// Serve accepts connections from lis until the server is closed. It always
// returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Listen starts serving on a fresh TCP listener bound to addr (use
// "127.0.0.1:0" for an ephemeral port) and returns the bound address.
// Serving continues on a background goroutine until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = s.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Close stops the listener, closes all connections, and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// serveConn owns one connection: it reads frames and dispatches requests,
// each on its own goroutine, with responses serialized through a write
// mutex.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}

	var (
		writeMu  sync.Mutex
		inflight sync.Map // request id -> context.CancelFunc
		connWG   sync.WaitGroup
	)
	defer connWG.Wait()

	write := func(chunks ...[]byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		var n int
		for _, c := range chunks {
			n += len(c)
		}
		s.txBytes.Add(uint64(n))
		return writeFrame(conn, chunks...)
	}

	for {
		frame, err := readFrame(conn)
		if err != nil {
			// Cancel everything still running on this connection: the
			// caller is gone.
			inflight.Range(func(_, v any) bool {
				v.(context.CancelFunc)()
				return true
			})
			return
		}
		s.rxBytes.Add(uint64(len(frame)))
		if len(frame) == 0 {
			continue
		}
		typ, payload := frame[0], frame[1:]
		switch typ {
		case frameRequest:
			var hdr header
			if err := hdr.decode(payload); err != nil {
				continue // malformed; drop
			}
			args := payload[headerSize:]
			s.requests.Inc()
			if hdr.flags&flagPayloadCompressed != 0 {
				inflated, err := decompress(args)
				if err != nil {
					continue // corrupt payload; drop like other malformed frames
				}
				args = inflated
			}

			var ctx context.Context
			var cancel context.CancelFunc
			if hdr.deadline != 0 {
				ctx, cancel = context.WithDeadline(context.Background(), time.Unix(0, hdr.deadline))
			} else {
				ctx, cancel = context.WithCancel(context.Background())
			}
			inflight.Store(hdr.id, cancel)

			connWG.Add(1)
			go func(hdr header, args []byte) {
				defer connWG.Done()
				defer func() {
					if c, ok := inflight.LoadAndDelete(hdr.id); ok {
						c.(context.CancelFunc)()
					}
				}()

				var idBuf [9]byte
				idBuf[0] = frameResponse
				putUint64(idBuf[1:], hdr.id)

				if !s.admit(ctx) {
					s.shed.Inc()
					_ = write(idBuf[:], []byte{statusOverloaded})
					return
				}
				result, herr := s.dispatch(ctx, hdr, args)
				s.release()

				if herr != nil {
					s.errored.Inc()
					_ = write(idBuf[:], []byte{statusError}, []byte(herr.Error()))
					return
				}
				if hdr.flags&flagAcceptCompressed != 0 && len(result) >= DefaultCompressThreshold {
					if small, ok := compress(result); ok {
						_ = write(idBuf[:], []byte{statusOKCompressed}, small)
						return
					}
				}
				_ = write(idBuf[:], []byte{statusOK}, result)
			}(hdr, args)

		case frameCancel:
			if len(payload) < 8 {
				continue
			}
			id := getUint64(payload)
			if c, ok := inflight.Load(id); ok {
				c.(context.CancelFunc)()
			}

		case framePing:
			_ = write([]byte{framePong}, payload)

		case framePong:
			// Servers do not send pings; ignore.
		}
	}
}

// dispatch runs the handler for hdr.method, converting panics into errors
// so one bad request cannot take down the proclet.
func (s *Server) dispatch(ctx context.Context, hdr header, args []byte) (result []byte, err error) {
	s.mu.Lock()
	h, ok := s.handlers[hdr.method]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: unknown method %#x", hdr.method)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler %s panicked: %v\n%s", h.name, r, debug.Stack())
		}
	}()

	info := CallInfo{
		Method: h.name,
		Trace:  tracing.SpanContext{Trace: tracing.TraceID(hdr.trace), Span: tracing.SpanID(hdr.span), Parent: tracing.SpanID(hdr.parent)},
		Shard:  hdr.shard,
	}
	ctx = context.WithValue(ctx, callInfoKey{}, info)
	if info.Trace.Valid() {
		ctx = tracing.ContextWith(ctx, info.Trace)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d := time.Duration(s.delayNanos.Load()); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return h.fn(ctx, args)
}

// ErrShutdown is returned for calls attempted on a closed client.
var ErrShutdown = errors.New("rpc: client is shut down")

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
