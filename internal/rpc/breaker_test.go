package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker state-machine tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// Start well away from the zero time: the bucket ring uses IsZero to
	// detect uninitialized buckets.
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreakerOptions(clock *fakeClock) BreakerOptions {
	return BreakerOptions{
		Window:     10 * time.Second,
		Buckets:    5,
		Threshold:  0.5,
		MinSamples: 8,
		Cooldown:   time.Second,
		now:        clock.now,
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(testBreakerOptions(clock))

	for i := 0; i < 4; i++ {
		b.Report(false)
	}
	for i := 0; i < 3; i++ {
		b.Report(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 4 ok / 3 fail = %v, want closed", got)
	}
	b.Report(true) // 8 samples, 4 failures: exactly at the 0.5 threshold
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 4 ok / 4 fail = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the cooldown")
	}

	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open trial after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown trial = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial succeeds: closed, with a fresh window.
	b.Report(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	for i := 0; i < 3; i++ {
		b.Report(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("window not reset after recovery: 3 failures tripped to %v", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(testBreakerOptions(clock))
	for i := 0; i < 8; i++ {
		b.Report(true)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open trial not admitted")
	}
	b.Report(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call before a second cooldown")
	}
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown did not admit a new trial")
	}
}

func TestBreakerMinSamplesGate(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(testBreakerOptions(clock))
	for i := 0; i < 7; i++ {
		b.Report(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state with 7 samples (MinSamples 8) = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerWindowForgetsOldOutcomes(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(testBreakerOptions(clock))
	for i := 0; i < 7; i++ {
		b.Report(true)
	}
	// A long idle period expires the whole window; the next failure stands
	// alone and must not combine with the forgotten ones to trip.
	clock.advance(11 * time.Second)
	b.Report(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after idle window expiry = %v, want closed", got)
	}
}

func TestBreakerStragglersIgnoredWhileOpen(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(testBreakerOptions(clock))
	for i := 0; i < 8; i++ {
		b.Report(true)
	}
	// In-flight calls from before the trip finish after it; their outcomes
	// must not perturb the open state (only the half-open trial decides).
	b.Report(false)
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("straggler successes changed open state to %v", got)
	}
}

func TestBreakerGroupProbeRecovery(t *testing.T) {
	clock := newFakeClock()
	g := NewBreakerGroup(BreakerOptions{
		MinSamples: 2,
		Cooldown:   time.Second,
		now:        clock.now,
	})
	var probeFail atomic.Bool
	probeFail.Store(true)
	var probeCalls atomic.Int64
	g.SetProbe(func(ctx context.Context, addr string) error {
		probeCalls.Add(1)
		if probeFail.Load() {
			return errors.New("still sick")
		}
		return nil
	})

	if !g.Healthy("a") {
		t.Fatal("unknown address reported unhealthy")
	}
	g.Report("a", true)
	g.Report("a", true)
	if got := g.State("a"); got != BreakerOpen {
		t.Fatalf("state after 2/2 failures = %v, want open", got)
	}
	if g.Healthy("a") {
		t.Fatal("open breaker reported healthy")
	}
	if !g.Healthy("b") {
		t.Fatal("unrelated address reported unhealthy")
	}

	// While the probe keeps failing the replica must stay quarantined:
	// each cooldown expiry admits exactly one probe, the probe fails, and
	// the breaker reopens without ever reporting healthy.
	for round := int64(0); round < 3; round++ {
		clock.advance(time.Second)
		if g.Healthy("a") {
			t.Fatal("replica reported healthy while probe fails")
		}
		// The probe runs off the request path; wait for its verdict to
		// land (half-open trial resolved, breaker open again).
		waitFor(t, func() bool { return probeCalls.Load() > round })
		waitFor(t, func() bool { return g.State("a") == BreakerOpen })
	}
	if probeCalls.Load() == 0 {
		t.Fatal("no probe launched after cooldown")
	}

	// Probe starts succeeding: the breaker must close.
	probeFail.Store(false)
	clock.advance(time.Second)
	if g.Healthy("a") {
		t.Fatal("replica reported healthy before the probe's verdict")
	}
	waitFor(t, func() bool { return g.State("a") == BreakerClosed })
	if !g.Healthy("a") {
		t.Fatal("closed breaker reported unhealthy")
	}
}

func TestBreakerGroupNoProbeAdmitsSingleTrial(t *testing.T) {
	clock := newFakeClock()
	g := NewBreakerGroup(BreakerOptions{
		MinSamples: 2,
		Cooldown:   time.Second,
		now:        clock.now,
	})
	g.Report("a", true)
	g.Report("a", true)
	if g.Healthy("a") {
		t.Fatal("open breaker reported healthy")
	}
	clock.advance(time.Second)
	// With no probe configured, exactly one real request is the trial.
	if !g.Healthy("a") {
		t.Fatal("half-open trial not admitted after cooldown")
	}
	if g.Healthy("a") {
		t.Fatal("second trial admitted while the first is outstanding")
	}
	g.Report("a", false)
	if got := g.State("a"); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
}

func TestBreakerGroupForget(t *testing.T) {
	g := NewBreakerGroup(BreakerOptions{MinSamples: 1})
	g.Report("gone", true)
	if got := g.State("gone"); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	g.Forget(map[string]bool{"kept": true})
	if got := g.State("gone"); got != BreakerClosed {
		t.Fatalf("forgotten address still has breaker state %v", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
