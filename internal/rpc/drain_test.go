package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestUnregisterDrainsInflight verifies that Unregister blocks until calls
// already executing the handler finish, and that later calls get
// ErrUnavailable instead of a hard error.
func TestUnregisterDrainsInflight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		finished.Store(true)
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { c.Close(); s.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	var callErr error
	go func() {
		defer wg.Done()
		_, callErr = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	}()
	<-started

	unregistered := make(chan struct{})
	go func() {
		s.Unregister("test.Slow")
		close(unregistered)
	}()

	select {
	case <-unregistered:
		t.Fatal("Unregister returned while a call was still executing")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-unregistered:
	case <-time.After(2 * time.Second):
		t.Fatal("Unregister did not return after the in-flight call finished")
	}
	wg.Wait()
	if callErr != nil {
		t.Fatalf("in-flight call during Unregister failed: %v", callErr)
	}
	if !finished.Load() {
		t.Fatal("handler did not run to completion")
	}

	// The method is now tombstoned: callers get a retryable unavailable.
	_, err = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call after Unregister = %v, want ErrUnavailable", err)
	}

	// Re-registering the same name (the component moved back) must work.
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		return []byte("back"), nil
	})
	out, err := c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	if err != nil || string(out) != "back" {
		t.Fatalf("call after re-register = %q, %v", out, err)
	}
}

// TestUnregisterUnknownIsNoop ensures unregistering a never-registered name
// does nothing, and that unknown methods still fail hard (not retryable).
func TestUnregisterUnknownIsNoop(t *testing.T) {
	c, s, _ := startEcho(t)
	s.Unregister("test.Nonexistent")
	_, err := c.Call(context.Background(), MethodKey("test.Nonexistent"), nil, CallOptions{})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown method = %v, want hard dispatch error", err)
	}
}

// TestDrainFinishesInflight verifies Drain lets queued work complete and
// answers new requests with a retryable unavailable instead of dropping
// them or breaking the connection.
func TestDrainFinishesInflight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { c.Close(); s.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	var slowOut []byte
	var slowErr error
	go func() {
		defer wg.Done()
		slowOut, slowErr = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Wait until the server is visibly draining (new calls get
	// unavailable), then release the in-flight call.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
		if errors.Is(err, ErrUnavailable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started refusing new work: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)

	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	wg.Wait()
	if slowErr != nil || string(slowOut) != "done" {
		t.Fatalf("in-flight call during Drain = %q, %v; want done, nil", slowOut, slowErr)
	}
}

// TestDrainTimesOut verifies Drain respects its context when a handler
// never finishes.
func TestDrainTimesOut(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("test.Stuck", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { close(release); c.Close(); s.Close() })

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("test.Stuck"), nil, CallOptions{})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline exceeded", err)
	}
}
