package rpc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestUnregisterDrainsInflight verifies that Unregister blocks until calls
// already executing the handler finish, and that later calls get
// ErrUnavailable instead of a hard error.
func TestUnregisterDrainsInflight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		finished.Store(true)
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { c.Close(); s.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	var callErr error
	go func() {
		defer wg.Done()
		_, callErr = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	}()
	<-started

	unregistered := make(chan struct{})
	go func() {
		s.Unregister("test.Slow")
		close(unregistered)
	}()

	// Unregister blocks on a WaitGroup (no timers), so give its goroutine
	// plenty of chances to run, then check it has not returned: the
	// in-flight handler is still parked on release.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	select {
	case <-unregistered:
		t.Fatal("Unregister returned while a call was still executing")
	default:
	}
	close(release)
	select {
	case <-unregistered:
	case <-time.After(2 * time.Second):
		t.Fatal("Unregister did not return after the in-flight call finished")
	}
	wg.Wait()
	if callErr != nil {
		t.Fatalf("in-flight call during Unregister failed: %v", callErr)
	}
	if !finished.Load() {
		t.Fatal("handler did not run to completion")
	}

	// The method is now tombstoned: callers get a retryable unavailable.
	_, err = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call after Unregister = %v, want ErrUnavailable", err)
	}

	// Re-registering the same name (the component moved back) must work.
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		return []byte("back"), nil
	})
	out, err := c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	if err != nil || string(out) != "back" {
		t.Fatalf("call after re-register = %q, %v", out, err)
	}
}

// TestUnregisterUnknownIsNoop ensures unregistering a never-registered name
// does nothing, and that unknown methods still fail hard (not retryable).
func TestUnregisterUnknownIsNoop(t *testing.T) {
	c, s, _ := startEcho(t)
	s.Unregister("test.Nonexistent")
	_, err := c.Call(context.Background(), MethodKey("test.Nonexistent"), nil, CallOptions{})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown method = %v, want hard dispatch error", err)
	}
}

// TestDrainFinishesInflight verifies Drain lets queued work complete and
// answers new requests with a retryable unavailable instead of dropping
// them or breaking the connection. Drain's internal poll runs on the
// server's clock, so the test drives it with a fake clock instead of
// sleeping.
func TestDrainFinishesInflight(t *testing.T) {
	fake := clock.NewFake()
	s := NewServerWithOptions(ServerOptions{Clock: fake})
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { c.Close(); s.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	var slowOut []byte
	var slowErr error
	go func() {
		defer wg.Done()
		slowOut, slowErr = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Drain stores the draining flag, sees the in-flight call, and parks on
	// the fake clock's poll timer — so the timer registering IS the "server
	// is visibly draining" signal.
	waitFor(t, func() bool { return fake.Waiting() > 0 })

	// New calls must now get a retryable unavailable, never execute.
	_, err = c.Call(context.Background(), MethodKey("test.Slow"), nil, CallOptions{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call while draining = %v, want ErrUnavailable", err)
	}
	close(release)

	// Step the poll loop until Drain observes zero in-flight requests.
	for done := false; !done; {
		select {
		case err := <-drained:
			if err != nil {
				t.Fatalf("Drain = %v", err)
			}
			done = true
		default:
			if fake.Waiting() > 0 {
				fake.Advance(2 * time.Millisecond)
			}
			runtime.Gosched()
		}
	}
	wg.Wait()
	if slowErr != nil || string(slowOut) != "done" {
		t.Fatalf("in-flight call during Drain = %q, %v; want done, nil", slowOut, slowErr)
	}
}

// TestDrainTimesOut verifies Drain respects its context when a handler
// never finishes. The fake clock keeps Drain's poll parked so the context
// is provably what unblocked it.
func TestDrainTimesOut(t *testing.T) {
	fake := clock.NewFake()
	s := NewServerWithOptions(ServerOptions{Clock: fake})
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("test.Stuck", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() { close(release); c.Close(); s.Close() })

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("test.Stuck"), nil, CallOptions{})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	// Drain is parked on its poll timer with the stuck handler in flight;
	// canceling the context must be what unblocks it.
	waitFor(t, func() bool { return fake.Waiting() > 0 })
	cancel()
	select {
	case err := <-drained:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Drain = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after its context was canceled")
	}
}
