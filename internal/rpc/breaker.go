package rpc

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// This file implements the client side of overload protection: a
// per-replica circuit breaker. The paper (§5) argues the runtime should
// own graceful handling of sick replicas; a breaker gives the data plane a
// memory of recent outcomes, so callers stop sending work to a replica
// that keeps failing or shedding and instead probe it cheaply (Ping) until
// it recovers.

// BreakerState is a circuit breaker's current disposition.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: the replica looks healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the replica exceeded the failure threshold; requests
	// are routed elsewhere until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and a single probe is deciding
	// whether to close (probe succeeds) or re-open (probe fails).
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions tunes the breaker state machine.
type BreakerOptions struct {
	// Window is the rolling window over which failures are counted
	// (default 5s). Outcomes older than the window are forgotten.
	Window time.Duration
	// Buckets is the window's subdivision granularity (default 5).
	Buckets int
	// Threshold is the failure fraction within the window that trips the
	// breaker open (default 0.5).
	Threshold float64
	// MinSamples is the minimum number of outcomes in the window before
	// the threshold applies (default 8), so one early failure cannot trip
	// a cold breaker.
	MinSamples int
	// Cooldown is how long the breaker stays open before a half-open
	// probe is attempted (default 1s).
	Cooldown time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

func (o *BreakerOptions) fill() {
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.Buckets <= 0 {
		o.Buckets = 5
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// breakerBucket accumulates outcomes for one time slice of the window.
type breakerBucket struct {
	start    time.Time
	ok, fail int
}

// A Breaker tracks one replica's recent call outcomes in a rolling window
// and trips open when the failure fraction exceeds the threshold.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	buckets  []breakerBucket
	cur      int
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	opts.fill()
	return &Breaker{opts: opts, buckets: make([]breakerBucket, opts.Buckets)}
}

// State returns the current state without advancing it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// rotateLocked advances the bucket ring so that the current bucket covers
// now, zeroing buckets that fell out of the window.
func (b *Breaker) rotateLocked(now time.Time) {
	span := b.opts.Window / time.Duration(len(b.buckets))
	cur := &b.buckets[b.cur]
	if cur.start.IsZero() {
		cur.start = now
		return
	}
	for now.Sub(b.buckets[b.cur].start) >= span {
		next := (b.cur + 1) % len(b.buckets)
		b.buckets[next] = breakerBucket{start: b.buckets[b.cur].start.Add(span)}
		b.cur = next
		if b.buckets[b.cur].start.Add(b.opts.Window).Before(now) {
			// Far behind (idle period): restart the window at now.
			b.buckets[b.cur].start = now
		}
	}
}

// tallyLocked returns in-window totals.
func (b *Breaker) tallyLocked(now time.Time) (ok, fail int) {
	for _, bk := range b.buckets {
		if !bk.start.IsZero() && now.Sub(bk.start) < b.opts.Window {
			ok += bk.ok
			fail += bk.fail
		}
	}
	return ok, fail
}

// Report records one call outcome and updates the state machine.
func (b *Breaker) Report(failure bool) {
	now := b.opts.now()
	b.mu.Lock()
	defer b.mu.Unlock()

	switch b.state {
	case BreakerHalfOpen:
		// The probe's verdict decides the state outright.
		b.probing = false
		if failure {
			b.state = BreakerOpen
			b.openedAt = now
		} else {
			b.state = BreakerClosed
			b.buckets = make([]breakerBucket, len(b.buckets))
			b.cur = 0
		}
		return
	case BreakerOpen:
		// Stragglers from before the trip; the window already decided.
		return
	}

	b.rotateLocked(now)
	if failure {
		b.buckets[b.cur].fail++
	} else {
		b.buckets[b.cur].ok++
	}
	ok, fail := b.tallyLocked(now)
	if total := ok + fail; total >= b.opts.MinSamples &&
		float64(fail) >= b.opts.Threshold*float64(total) {
		b.state = BreakerOpen
		b.openedAt = now
	}
}

// Allow reports whether a call (or probe) may be sent to the replica. In
// the open state it returns false until the cooldown elapses, then
// transitions to half-open and admits exactly one trial; further calls are
// rejected until that trial reports.
func (b *Breaker) Allow() bool {
	now := b.opts.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// A BreakerGroup maintains one Breaker per replica address. When a breaker
// opens and its cooldown elapses, the group launches a half-open liveness
// probe (the data plane's existing Ping) in the background; the replica
// stays quarantined until a probe succeeds.
type BreakerGroup struct {
	opts  BreakerOptions
	probe func(ctx context.Context, addr string) error

	mu sync.Mutex
	m  map[string]*Breaker

	opened *metrics.Counter
	closed *metrics.Counter
	probes *metrics.Counter
}

// NewBreakerGroup returns an empty group. Breakers are created lazily on
// first Report for an address.
func NewBreakerGroup(opts BreakerOptions) *BreakerGroup {
	opts.fill()
	return &BreakerGroup{
		opts:   opts,
		m:      map[string]*Breaker{},
		opened: metrics.Default.Counter("rpc.breaker.opened"),
		closed: metrics.Default.Counter("rpc.breaker.closed"),
		probes: metrics.Default.Counter("rpc.breaker.probes"),
	}
}

// SetProbe installs the half-open liveness probe (typically a closure over
// Client.Ping). Without a probe, recovery uses a real request as the
// half-open trial instead.
func (g *BreakerGroup) SetProbe(probe func(ctx context.Context, addr string) error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.probe = probe
}

// get returns the breaker for addr, or nil if none exists yet.
func (g *BreakerGroup) get(addr string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[addr]
}

// State returns the breaker state for addr (closed if never reported).
func (g *BreakerGroup) State(addr string) BreakerState {
	if b := g.get(addr); b != nil {
		return b.State()
	}
	return BreakerClosed
}

// Report records one call outcome against addr's breaker and counts trips
// and recoveries.
func (g *BreakerGroup) Report(addr string, failure bool) {
	g.mu.Lock()
	b := g.m[addr]
	if b == nil {
		b = NewBreaker(g.opts)
		g.m[addr] = b
	}
	g.mu.Unlock()

	before := b.State()
	b.Report(failure)
	after := b.State()
	if before != BreakerOpen && after == BreakerOpen {
		g.opened.Inc()
	}
	if before != BreakerClosed && after == BreakerClosed {
		g.closed.Inc()
	}
}

// Healthy reports whether routing should consider addr. A closed (or
// unknown) breaker is healthy. An open breaker is not; once its cooldown
// elapses, Healthy kicks off a background probe (if configured) or admits
// one real request as the half-open trial.
func (g *BreakerGroup) Healthy(addr string) bool {
	b := g.get(addr)
	if b == nil {
		return true
	}
	if b.State() == BreakerClosed {
		return true
	}

	g.mu.Lock()
	probe := g.probe
	g.mu.Unlock()
	if probe == nil {
		// No probe configured: let one real request through as the trial.
		return b.Allow()
	}
	if b.Allow() {
		// Won the half-open slot: probe liveness off the request path.
		g.probes.Inc()
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.Cooldown)
			defer cancel()
			err := probe(ctx, addr)
			g.Report(addr, err != nil)
		}()
	}
	return false
}

// Forget drops breakers for addresses not in live, so replicas removed
// from the routing table do not leak state.
func (g *BreakerGroup) Forget(live map[string]bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for addr := range g.m {
		if !live[addr] {
			delete(g.m, addr)
		}
	}
}
