package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/tracing"
)

// startEcho starts a server with an echo handler and returns a connected
// client plus a cleanup-registered shutdown.
func startEcho(t *testing.T) (*Client, *Server, string) {
	t.Helper()
	s := NewServer()
	s.Register("test.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		out := make([]byte, len(args))
		copy(out, args)
		return out, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addr, ClientOptions{})
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return c, s, addr
}

func TestEchoRoundTrip(t *testing.T) {
	c, _, _ := startEcho(t)
	got, err := c.Call(context.Background(), MethodKey("test.Echo"), []byte("payload"), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Errorf("echo = %q", got)
	}
}

func TestEmptyPayload(t *testing.T) {
	c, _, _ := startEcho(t)
	got, err := c.Call(context.Background(), MethodKey("test.Echo"), nil, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("echo of empty = %v", got)
	}
}

func TestLargePayload(t *testing.T) {
	c, _, _ := startEcho(t)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	got, err := c.Call(context.Background(), MethodKey("test.Echo"), big, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) || got[1<<20] != big[1<<20] {
		t.Errorf("large payload corrupted")
	}
}

func TestUnknownMethod(t *testing.T) {
	c, _, _ := startEcho(t)
	_, err := c.Call(context.Background(), MethodKey("test.NoSuch"), nil, CallOptions{})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	s := NewServer()
	s.Register("test.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{NumConns: 1})
	defer c.Close()

	const n = 50
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("req-%d", i))
			got, err := c.Call(context.Background(), MethodKey("test.Slow"), payload, CallOptions{})
			if err == nil && string(got) != string(payload) {
				err = fmt.Errorf("response mismatch: %q", got)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	// 50 sequential 20ms calls would take 1s; multiplexing should finish in
	// a fraction of that.
	if elapsed > 500*time.Millisecond {
		t.Errorf("50 concurrent calls took %v; not multiplexed?", elapsed)
	}
}

func TestDeadlinePropagatedToServer(t *testing.T) {
	sawDeadline := make(chan bool, 1)
	s := NewServer()
	s.Register("test.Check", func(ctx context.Context, args []byte) ([]byte, error) {
		_, ok := ctx.Deadline()
		sawDeadline <- ok
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Call(ctx, MethodKey("test.Check"), nil, CallOptions{}); err != nil {
		t.Fatal(err)
	}
	if !<-sawDeadline {
		t.Error("server handler saw no deadline")
	}
}

func TestCancellationPropagates(t *testing.T) {
	started := make(chan struct{})
	canceled := make(chan struct{})
	s := NewServer()
	s.Register("test.Hang", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, MethodKey("test.Hang"), nil, CallOptions{})
		done <- err
	}()
	<-started
	cancel()

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("call error = %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Error("server handler never observed cancellation")
	}
}

func TestHandlerPanicReturnsError(t *testing.T) {
	s := NewServer()
	s.Register("test.Panic", func(ctx context.Context, args []byte) ([]byte, error) {
		panic("deliberate")
	})
	s.Register("test.OK", func(ctx context.Context, args []byte) ([]byte, error) {
		return []byte("fine"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	_, err = c.Call(context.Background(), MethodKey("test.Panic"), nil, CallOptions{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic call err = %v", err)
	}
	// The connection must survive a handler panic.
	got, err := c.Call(context.Background(), MethodKey("test.OK"), nil, CallOptions{})
	if err != nil || string(got) != "fine" {
		t.Errorf("follow-up call = %q, %v", got, err)
	}
}

func TestReconnectAfterServerRestart(t *testing.T) {
	s := NewServer()
	s.Register("test.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go func() { _ = s.Serve(lis) }()

	c := NewClient(addr, ClientOptions{})
	defer c.Close()
	if _, err := c.Call(context.Background(), MethodKey("test.Echo"), []byte("a"), CallOptions{}); err != nil {
		t.Fatal(err)
	}

	// Restart the server on the same port.
	s.Close()
	s2 := NewServer()
	s2.Register("test.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	var lis2 net.Listener
	for i := 0; i < 50; i++ {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer s2.Close()
	go func() { _ = s2.Serve(lis2) }()

	// First call may fail while the old connection is discovered dead;
	// retry until the client reconnects.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Call(context.Background(), MethodKey("test.Echo"), []byte("b"), CallOptions{})
		if err == nil {
			if string(got) != "b" {
				t.Fatalf("echo after restart = %q", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTraceContextPropagates(t *testing.T) {
	var got tracing.SpanContext
	s := NewServer()
	s.Register("test.Trace", func(ctx context.Context, args []byte) ([]byte, error) {
		if info, ok := InfoFromContext(ctx); ok {
			got = info.Trace
		}
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	want := tracing.SpanContext{Trace: 111, Span: 222, Parent: 333}
	if _, err := c.Call(context.Background(), MethodKey("test.Trace"), nil, CallOptions{Trace: want}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("trace context = %+v, want %+v", got, want)
	}
}

func TestShardPropagates(t *testing.T) {
	var got uint64
	s := NewServer()
	s.Register("test.Shard", func(ctx context.Context, args []byte) ([]byte, error) {
		if info, ok := InfoFromContext(ctx); ok {
			got = info.Shard
		}
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()
	if _, err := c.Call(context.Background(), MethodKey("test.Shard"), nil, CallOptions{Shard: 777}); err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Errorf("shard = %d, want 777", got)
	}
}

func TestPing(t *testing.T) {
	c, _, _ := startEcho(t)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPingFailsAfterServerClose(t *testing.T) {
	c, s, _ := startEcho(t)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Either the ping fails outright or the connection is found dead and
	// redial fails.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Ping(context.Background()); err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("ping kept succeeding after server close")
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("test.Block", func(ctx context.Context, args []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(block)
	c := NewClient(addr, ClientOptions{})

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("test.Block"), nil, CallOptions{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call hung after Close")
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	c, _, _ := startEcho(t)
	c.Close()
	_, err := c.Call(context.Background(), MethodKey("test.Echo"), nil, CallOptions{})
	if err == nil {
		t.Error("call after Close succeeded")
	}
}

func TestRegisterCollisionPanics(t *testing.T) {
	s := NewServer()
	s.Register("a.B.C", func(ctx context.Context, args []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	s.Register("a.B.C", func(ctx context.Context, args []byte) ([]byte, error) { return nil, nil })
}

func TestMethodKeyDeterministic(t *testing.T) {
	if MethodKey("x.Y.Z") != MethodKey("x.Y.Z") {
		t.Error("MethodKey not deterministic")
	}
	if MethodKey("x.Y.Z") == MethodKey("x.Y.W") {
		t.Error("distinct names collide (unlucky, pick different test names)")
	}
}

func TestCodecPayloadOverRPC(t *testing.T) {
	// End-to-end: a struct encoded with the unversioned codec survives the
	// wire, mimicking what generated stubs do.
	type req struct {
		Who   string
		Count int
	}
	s := NewServer()
	s.Register("test.Greet", func(ctx context.Context, args []byte) ([]byte, error) {
		var r req
		if err := codec.Unmarshal(args, &r); err != nil {
			return nil, err
		}
		return codec.Marshal(fmt.Sprintf("hello %s x%d", r.Who, r.Count)), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	out, err := c.Call(context.Background(), MethodKey("test.Greet"), codec.Marshal(req{Who: "world", Count: 3}), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var msg string
	if err := codec.Unmarshal(out, &msg); err != nil {
		t.Fatal(err)
	}
	if msg != "hello world x3" {
		t.Errorf("msg = %q", msg)
	}
}

func TestServerConnCleanupCancelsOnDisconnect(t *testing.T) {
	var sawCancel atomic.Bool
	started := make(chan struct{})
	s := NewServer()
	s.Register("test.Hang", func(ctx context.Context, args []byte) ([]byte, error) {
		close(started)
		<-ctx.Done()
		sawCancel.Store(true)
		return nil, ctx.Err()
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("test.Hang"), nil, CallOptions{})
	}()
	<-started
	c.Close() // drop the TCP connection entirely

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if sawCancel.Load() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("handler not canceled after client disconnect")
}
