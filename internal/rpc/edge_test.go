package rpc

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// rawRequest writes a request frame for method with the given id and args
// over a raw connection.
func rawRequest(t *testing.T, conn net.Conn, id uint64, method MethodID, flags uint8, args []byte) {
	t.Helper()
	hdr := header{id: id, method: method, flags: flags}
	var buf [1 + headerSize]byte
	buf[0] = frameRequest
	hdr.encode(buf[1:])
	if err := writeFrame(conn, buf[:], args); err != nil {
		t.Fatal(err)
	}
}

// rawReadResponse reads frames until a response arrives and returns its id,
// status, and payload.
func rawReadResponse(t *testing.T, conn net.Conn) (id uint64, status byte, data []byte) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		frame, err := readFrame(conn)
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		if len(frame) >= 10 && frame[0] == frameResponse {
			return getUint64(frame[1:9]), frame[9], frame[10:]
		}
	}
}

func TestCancelAfterResponseIgnored(t *testing.T) {
	_, _, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rawRequest(t, conn, 7, MethodKey("test.Echo"), 0, []byte("first"))
	id, status, data := rawReadResponse(t, conn)
	if id != 7 || status != statusOK || string(data) != "first" {
		t.Fatalf("first response = id %d status %d %q", id, status, data)
	}

	// Cancel a request that has already completed; the server must treat it
	// as a no-op, not corrupt connection state.
	var cbuf [9]byte
	cbuf[0] = frameCancel
	putUint64(cbuf[1:], 7)
	if err := writeFrame(conn, cbuf[:]); err != nil {
		t.Fatal(err)
	}
	// A cancel for an id never seen must also be harmless.
	putUint64(cbuf[1:], 9999)
	if err := writeFrame(conn, cbuf[:]); err != nil {
		t.Fatal(err)
	}

	rawRequest(t, conn, 8, MethodKey("test.Echo"), 0, []byte("second"))
	id, status, data = rawReadResponse(t, conn)
	if id != 8 || status != statusOK || string(data) != "second" {
		t.Fatalf("post-cancel response = id %d status %d %q", id, status, data)
	}
}

func TestConcurrentCancelResponseRace(t *testing.T) {
	// Race client-side cancellation against server responses across many
	// goroutines and timings; under -race this exercises the server's
	// inflight map and the client's pending map for unsynchronized access.
	s := NewServer()
	s.Register("race.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{NumConns: 2})
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				go func(after time.Duration) {
					time.Sleep(after)
					cancel()
				}(time.Duration((i%7)*20) * time.Microsecond)
				_, _ = c.Call(ctx, MethodKey("race.Echo"), []byte("x"), CallOptions{})
				cancel()
			}
		}(g)
	}
	wg.Wait()

	// The connection must still be fully functional.
	got, err := c.Call(context.Background(), MethodKey("race.Echo"), []byte("alive"), CallOptions{})
	if err != nil || string(got) != "alive" {
		t.Fatalf("call after cancel storm = %q, %v", got, err)
	}
}

// fakeRawServer accepts connections and lets a per-request handler decide
// the raw bytes (or silence) to send back.
func fakeRawServer(t *testing.T, respond func(conn net.Conn, reqFrame []byte)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					frame, err := readFrame(conn)
					if err != nil {
						return
					}
					respond(conn, frame)
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

func TestCorruptCompressedResponse(t *testing.T) {
	// A server that answers every request with statusOKCompressed garbage:
	// the client must surface a decode error, not hang or panic.
	addr := fakeRawServer(t, func(conn net.Conn, reqFrame []byte) {
		if len(reqFrame) < 1+headerSize || reqFrame[0] != frameRequest {
			return
		}
		id := reqFrame[1:9]
		garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
		_ = writeFrame(conn, []byte{frameResponse}, id, []byte{statusOKCompressed}, garbage)
	})

	c := NewClient(addr, ClientOptions{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Call(ctx, MethodKey("test.Echo"), []byte("hi"), CallOptions{})
	if err == nil {
		t.Fatal("corrupt compressed response decoded successfully")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
}

func TestCorruptCompressedRequestDropped(t *testing.T) {
	// A request frame claiming a compressed payload that does not inflate
	// must be dropped without killing the connection or the server.
	_, _, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rawRequest(t, conn, 1, MethodKey("test.Echo"), flagPayloadCompressed, []byte{0xff, 0xfe, 0xfd})
	rawRequest(t, conn, 2, MethodKey("test.Echo"), 0, []byte("ok"))

	// The only response must be for the valid request.
	id, status, data := rawReadResponse(t, conn)
	if id != 2 || status != statusOK || string(data) != "ok" {
		t.Fatalf("response after corrupt frame = id %d status %d %q, want id 2 ok", id, status, data)
	}
}

func TestPingTimeout(t *testing.T) {
	// A server that accepts but never answers: Ping must give up after
	// PingTimeout rather than hanging forever.
	addr := fakeRawServer(t, func(net.Conn, []byte) {})

	c := NewClient(addr, ClientOptions{PingTimeout: 50 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	err := c.Ping(context.Background())
	if err == nil {
		t.Fatal("ping to mute server succeeded")
	}
	if !strings.Contains(err.Error(), "ping timeout") {
		t.Errorf("err = %v, want ping timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("ping took %v to time out (PingTimeout 50ms)", elapsed)
	}
}
