package rpc

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/tracing"
)

// TestMetaDefaultWireBytesUnchanged pins the compatibility contract: a
// call with default metadata must put exactly the same bytes on the wire
// as before the meta extension existed — fixed header, no extension, no
// new flags.
func TestMetaDefaultWireBytesUnchanged(t *testing.T) {
	h := header{id: 42, method: MethodKey("x.Y"), deadline: 123456, shard: 7}
	var plain [headerSize]byte
	h.encode(plain[:])

	var ext [headerSize + metaExtMax]byte
	n := h.encodeWithExt(ext[:])
	if n != headerSize {
		t.Fatalf("default meta encoded %d bytes, want %d (no extension)", n, headerSize)
	}
	if !bytes.Equal(ext[:n], plain[:]) {
		t.Fatal("default-meta encodeWithExt bytes differ from the fixed header")
	}
	if h.flags&(flagMetaExt|flagHedge|flagSampled) != 0 {
		t.Fatalf("default meta set flags %#x", h.flags)
	}
}

// TestMetaExtRoundTrip drives every priority class and a spread of attempt
// ordinals through encodeWithExt/decode, checking the extension stays
// within its headroom budget and decodes to the same metadata.
func TestMetaExtRoundTrip(t *testing.T) {
	for _, p := range []Priority{PriorityNormal, PriorityLow, PriorityHigh, PriorityCritical} {
		for _, attempt := range []uint8{0, 1, 3, 255} {
			for _, hedge := range []bool{false, true} {
				h := header{
					id:     9,
					method: MethodKey("x.Y"),
					meta:   CallMeta{Priority: p, Attempt: attempt, Hedge: hedge},
				}
				if hedge {
					h.flags |= flagHedge
				}
				var buf [headerSize + metaExtMax]byte
				n := h.encodeWithExt(buf[:])
				if n > headerSize+metaExtMax {
					t.Fatalf("meta %v/%d overflowed headroom: %d bytes", p, attempt, n)
				}
				if p == PriorityNormal && attempt == 0 && n != headerSize {
					t.Fatalf("zero-valued meta grew the header to %d bytes", n)
				}
				var got header
				m, err := got.decode(buf[:n])
				if err != nil {
					t.Fatalf("decode(%v, %d, hedge=%v): %v", p, attempt, hedge, err)
				}
				if m != n {
					t.Fatalf("decode consumed %d bytes, encoded %d", m, n)
				}
				if got.meta != (CallMeta{Priority: p, Attempt: attempt, Hedge: hedge}) {
					t.Fatalf("meta round trip = %+v, want %v/%d/hedge=%v", got.meta, p, attempt, hedge)
				}
			}
		}
	}
}

// TestMetaExtTruncatedRejected checks that a header advertising an
// extension it does not carry fails to decode instead of reading past the
// buffer or inventing metadata.
func TestMetaExtTruncatedRejected(t *testing.T) {
	h := header{id: 1, method: MethodKey("x.Y"), meta: CallMeta{Priority: PriorityCritical, Attempt: 2}}
	var buf [headerSize + metaExtMax]byte
	n := h.encodeWithExt(buf[:])
	if n <= headerSize {
		t.Fatal("test needs a non-empty extension")
	}
	var got header
	if _, err := got.decode(buf[:headerSize]); err == nil {
		t.Fatal("decode accepted a header whose advertised extension is missing")
	}
}

// TestMetaVisibleToHandler sends priority, attempt, hedge, and the sampled
// trace bit across a real connection and checks the handler observes them
// in its CallInfo.
func TestMetaVisibleToHandler(t *testing.T) {
	s := NewServer()
	infos := make(chan CallInfo, 1)
	s.Register("meta.Probe", func(ctx context.Context, args []byte) ([]byte, error) {
		info, _ := InfoFromContext(ctx)
		infos <- info
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	sc := tracing.NewTrace()
	sc.Sampled = true
	meta := CallMeta{Priority: PriorityHigh, Attempt: 2, Hedge: true}
	if _, err := c.Call(context.Background(), MethodKey("meta.Probe"), nil,
		CallOptions{Trace: sc, Meta: meta}); err != nil {
		t.Fatal(err)
	}
	info := <-infos
	if info.Meta != meta {
		t.Errorf("handler saw meta %+v, want %+v", info.Meta, meta)
	}
	if info.Trace.Trace != sc.Trace || !info.Trace.Sampled {
		t.Errorf("handler saw trace %+v, want trace id %d with sampled bit", info.Trace, sc.Trace)
	}
}
