package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/metrics"
)

// mkFrame length-prefixes a payload the way writeFrame does.
func mkFrame(payload []byte) []byte {
	f := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(f, uint32(len(payload)))
	copy(f[4:], payload)
	return f
}

// chunkReader returns its chunks one Read at a time (splitting a chunk that
// exceeds the destination), then final (io.EOF if unset). errs[i], when set,
// is returned together with the last bytes of chunk i — the
// data-plus-error Read contract the frameReader must honor.
type chunkReader struct {
	chunks [][]byte
	errs   []error
	final  error
	i      int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.i >= len(c.chunks) {
		if c.final != nil {
			return 0, c.final
		}
		return 0, io.EOF
	}
	n := copy(p, c.chunks[c.i])
	if n < len(c.chunks[c.i]) {
		c.chunks[c.i] = c.chunks[c.i][n:]
		return n, nil
	}
	var err error
	if c.errs != nil {
		err = c.errs[c.i]
	}
	c.i++
	return n, err
}

func TestFrameReaderSlicesBatchFromOneRead(t *testing.T) {
	// Three frames arriving in a single Read must come back from three
	// next() calls without further I/O, and the histogram must record one
	// 3-frame batch.
	var batch []byte
	want := [][]byte{[]byte("alpha"), []byte("bee"), []byte("gamma-gamma")}
	for _, p := range want {
		batch = append(batch, mkFrame(p)...)
	}
	hist := metrics.Default.Histogram("test.readbatch.slices", flushBatchBuckets)
	count0, sum0 := hist.Count(), hist.Sum()
	fr := newFrameReader(&chunkReader{chunks: [][]byte{batch}}, hist, nil, nil)
	defer fr.close()

	for i, w := range want {
		got, rb, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d = %q, want %q", i, got, w)
		}
		rb.release()
	}
	if _, _, err := fr.next(); err != io.EOF {
		t.Fatalf("after batch: err = %v, want io.EOF", err)
	}
	if c, s := hist.Count()-count0, hist.Sum()-sum0; c != 1 || s != 3 {
		t.Fatalf("histogram recorded %d reads summing %.0f frames, want 1 read of 3 frames", c, s)
	}
}

func TestFrameReaderReassemblesPartialFrames(t *testing.T) {
	// One frame dribbling in over four Reads, split inside the length
	// prefix and inside the payload.
	payload := bytes.Repeat([]byte("xyz"), 100)
	f := mkFrame(payload)
	fr := newFrameReader(&chunkReader{chunks: [][]byte{
		f[:2], f[2:7], f[7:200], f[200:],
	}}, nil, nil, nil)
	defer fr.close()

	got, rb, err := fr.next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(payload))
	}
	rb.release()
}

func TestFrameReaderDrainsFramesArrivingWithEOF(t *testing.T) {
	// A Read may return complete frames together with io.EOF; they must
	// drain before the error surfaces, and the error must stay io.EOF (a
	// clean close), not ErrUnexpectedEOF.
	batch := append(mkFrame([]byte("one")), mkFrame([]byte("two"))...)
	fr := newFrameReader(&chunkReader{
		chunks: [][]byte{batch},
		errs:   []error{io.EOF},
	}, nil, nil, nil)
	defer fr.close()

	for _, want := range []string{"one", "two"} {
		got, rb, err := fr.next()
		if err != nil {
			t.Fatalf("frame %q: %v", want, err)
		}
		if string(got) != want {
			t.Fatalf("frame = %q, want %q", got, want)
		}
		rb.release()
	}
	if _, _, err := fr.next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncatedFrameIsUnexpectedEOF(t *testing.T) {
	full := mkFrame([]byte("complete"))
	partial := mkFrame([]byte("never-finishes"))[:9]
	fr := newFrameReader(&chunkReader{chunks: [][]byte{append(full, partial...)}}, nil, nil, nil)
	defer fr.close()

	got, rb, err := fr.next()
	if err != nil || string(got) != "complete" {
		t.Fatalf("first frame = %q, %v", got, err)
	}
	rb.release()
	if _, _, err := fr.next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameReaderOversizedFrame(t *testing.T) {
	// A frame bigger than the pooled buffer gets a dedicated buffer;
	// interleave it with pooled-size frames to cross the boundary twice.
	big := bytes.Repeat([]byte{0xAB}, readBufSize+17)
	want := [][]byte{[]byte("before"), big, []byte("after")}
	var stream []byte
	for _, p := range want {
		stream = append(stream, mkFrame(p)...)
	}
	fr := newFrameReader(bytes.NewReader(stream), nil, nil, nil)
	defer fr.close()

	for i, w := range want {
		got, rb, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(w))
		}
		rb.release()
	}
}

func TestFrameReaderRejectsAbsurdLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxFrameSize+1))
	fr := newFrameReader(bytes.NewReader(hdr[:]), nil, nil, nil)
	defer fr.close()
	if _, _, err := fr.next(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want frame length limit error", err)
	}
}

func TestFrameReaderZeroLengthFrame(t *testing.T) {
	stream := append(mkFrame(nil), mkFrame([]byte("next"))...)
	fr := newFrameReader(bytes.NewReader(stream), nil, nil, nil)
	defer fr.close()
	got, rb, err := fr.next()
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length frame = %q, %v", got, err)
	}
	rb.release()
	got, rb, err = fr.next()
	if err != nil || string(got) != "next" {
		t.Fatalf("frame after zero-length = %q, %v", got, err)
	}
	rb.release()
}

func TestFrameReaderPayloadsOutliveReader(t *testing.T) {
	// Frames sliced from one batch hold references to the shared buffer:
	// closing the reader (conn death) must not invalidate them.
	want := [][]byte{[]byte("held-one"), []byte("held-two")}
	stream := append(mkFrame(want[0]), mkFrame(want[1])...)
	fr := newFrameReader(bytes.NewReader(stream), nil, nil, nil)

	var frames [][]byte
	var bufs []*readBuf
	for range want {
		got, rb, err := fr.next()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, got)
		bufs = append(bufs, rb)
	}
	fr.close()
	for i, w := range want {
		if !bytes.Equal(frames[i], w) {
			t.Fatalf("after close, frame %d = %q, want %q", i, frames[i], w)
		}
		bufs[i].release()
	}
}

// TestHedgeLoserRecycledWaiterSlot races canceled callers (hedge losers)
// against in-flight responses while winners immediately reuse pooled waiter
// slots. A verdict crossing slots would hand caller A caller B's payload —
// every successful call asserts it got its own echo — and under -race the
// forget/complete handoff on the recycled channel is checked for
// unsynchronized access.
func TestHedgeLoserRecycledWaiterSlot(t *testing.T) {
	s := NewServer()
	s.Register("hedge.Echo", func(ctx context.Context, args []byte) ([]byte, error) {
		return args, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{NumConns: 1})
	defer c.Close()
	method := MethodKey("hedge.Echo")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 17))
			for i := 0; i < 200; i++ {
				// The loser: canceled at a delay tuned to collide with the
				// response's arrival.
				lctx, cancel := context.WithCancel(context.Background())
				loserPayload := fmt.Sprintf("loser-%d-%d", g, i)
				done := make(chan struct{})
				go func() {
					defer close(done)
					got, err := c.Call(lctx, method, []byte(loserPayload), CallOptions{
						Meta: CallMeta{Hedge: true},
					})
					if err == nil && string(got) != loserPayload {
						t.Errorf("hedge loser got %q, want %q", got, loserPayload)
					}
				}()
				time.Sleep(time.Duration(rng.IntN(150)) * time.Microsecond)
				cancel()

				// The winner: issued immediately, likely landing in the
				// loser's just-recycled waiter slot.
				winnerPayload := fmt.Sprintf("winner-%d-%d", g, i)
				got, err := c.Call(context.Background(), method, []byte(winnerPayload), CallOptions{})
				if err != nil {
					t.Errorf("hedge winner: %v", err)
				} else if string(got) != winnerPayload {
					t.Errorf("hedge winner got %q, want %q", got, winnerPayload)
				}
				<-done
			}
		}(g)
	}
	wg.Wait()

	// Nothing may be left registered, and the conn must still work.
	cc, err := c.conn(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := cc.pendingCount(); n != 0 {
		t.Errorf("%d calls still registered after the storm", n)
	}
	if got, err := c.Call(context.Background(), method, []byte("alive"), CallOptions{}); err != nil || string(got) != "alive" {
		t.Fatalf("call after storm = %q, %v", got, err)
	}
}

// TestConnDeathRacesHalfParsedBatch kills the connection mid-batch: the
// server answers a burst of calls with one segment holding every response
// plus a truncated frame, then closes. Every response sliced from the batch
// must reach its caller and stay valid — the shared read buffer is
// refcounted past both the reader's error path and the conn-death sweep —
// while later calls fail cleanly.
func TestConnDeathRacesHalfParsedBatch(t *testing.T) {
	const calls = 8
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// Concurrent callers race-dial, so accept every conn; the losers of the
	// dial race close theirs immediately and only the installed conn ever
	// carries the requests.
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				// Collect every request, then answer them all in one segment
				// that ends with a frame whose advertised length never
				// arrives.
				var batch []byte
				for i := 0; i < calls; i++ {
					frame, err := readFrame(conn)
					if err != nil {
						return
					}
					if frame[0] != frameRequest || len(frame) < 1+headerSize {
						continue
					}
					id := frame[1:9]
					resp := []byte{frameResponse}
					resp = append(resp, id...)
					resp = append(resp, statusOK)
					resp = append(resp, []byte(fmt.Sprintf("resp-%d", getUint64(id)))...)
					batch = append(batch, mkFrame(resp)...)
				}
				var trunc [4]byte
				binary.LittleEndian.PutUint32(trunc[:], 100)
				batch = append(batch, trunc[:]...)
				batch = append(batch, []byte("only ten b")...)
				_, _ = conn.Write(batch)
			}(conn)
		}
	}()

	c := NewClient(lis.Addr().String(), ClientOptions{NumConns: 1})
	defer c.Close()
	method := MethodKey("batch.Echo")

	var mu sync.Mutex
	resps := make(map[uint64]*Response)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := codec.GetEncoder()
			defer codec.PutEncoder(enc)
			enc.Reserve(PayloadHeadroom)
			enc.Raw([]byte("ask"))
			resp, err := c.CallFramed(context.Background(), method, enc.Framed(), CallOptions{})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			var id uint64
			if _, err := fmt.Sscanf(string(resp.Data()), "resp-%d", &id); err != nil {
				t.Errorf("unparseable response %q", resp.Data())
				resp.Release()
				return
			}
			mu.Lock()
			resps[id] = resp
			mu.Unlock()
		}()
	}
	wg.Wait()

	// The truncated tail kills the conn; a new call must fail (the fake
	// server accepts only once).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, method, []byte("late"), CallOptions{}); err == nil {
		t.Error("call after conn death succeeded")
	}

	// Held responses sliced from the half-parsed batch are still intact.
	mu.Lock()
	defer mu.Unlock()
	if len(resps) != calls {
		t.Fatalf("%d responses delivered, want %d", len(resps), calls)
	}
	for id, resp := range resps {
		if want := fmt.Sprintf("resp-%d", id); string(resp.Data()) != want {
			t.Errorf("held response %d = %q, want %q", id, resp.Data(), want)
		}
		resp.Release()
	}
}

// TestDrainRacesWorkerPool races server drain and shutdown against pooled
// workers mid-request: slow handlers occupy pool workers while Drain polls
// and Close stops the pool; dispatch concurrently submits new work. Under
// -race this exercises the pool's idle-stack handoff against stop().
func TestDrainRacesWorkerPool(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := NewServer()
		var started atomic.Int32
		s.Register("drain.Slow", func(ctx context.Context, args []byte) ([]byte, error) {
			started.Add(1)
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
			}
			return args, nil
		})
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(addr, ClientOptions{NumConns: 2})

		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				// Errors are expected once shutdown wins the race.
				_, _ = c.Call(ctx, MethodKey("drain.Slow"), []byte("w"), CallOptions{})
			}(i)
		}
		// Let some handlers get onto pool workers, then drain and close
		// while the rest are still dispatching.
		for started.Load() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
		_ = s.Drain(dctx)
		dcancel()
		s.Close()
		wg.Wait()
		c.Close()
	}
}

// BenchmarkReadBatch measures the receive path under concurrent callers and
// reports how many frames each Read syscall delivers (the read-side
// analogue of the flusher's frames-per-write). At 1 caller every read
// carries one frame; at 64 the server's group commit coalesces responses
// into segments the client drains in one Read.
func BenchmarkReadBatch(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("Callers%d", callers), func(b *testing.B) {
			s := NewServer()
			s.RegisterFramed("rb.Echo", func(ctx context.Context, args []byte) ([]byte, BufOwner, error) {
				enc := codec.GetEncoder()
				enc.Reserve(ResponseHeadroom)
				enc.Raw(args)
				return enc.Framed(), enc, nil
			})
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			c := NewClient(addr, ClientOptions{})
			defer c.Close()
			method := MethodKey("rb.Echo")
			payload := bytes.Repeat([]byte("x"), 128)

			// Warm the conns so dialing stays out of the measurement.
			if _, err := c.Call(context.Background(), method, payload, CallOptions{}); err != nil {
				b.Fatal(err)
			}

			count0, sum0 := c.readHist.Count(), c.readHist.Sum()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx := context.Background()
					for next.Add(1) <= int64(b.N) {
						enc := codec.GetEncoder()
						enc.Reserve(PayloadHeadroom)
						enc.Raw(payload)
						resp, err := c.CallFramed(ctx, method, enc.Framed(), CallOptions{})
						if err != nil {
							b.Error(err)
							return
						}
						resp.Release()
						codec.PutEncoder(enc)
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if reads := c.readHist.Count() - count0; reads > 0 {
				b.ReportMetric((c.readHist.Sum()-sum0)/float64(reads), "frames/read")
			}
		})
	}
}
