package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// readBufSize is the target capacity of a pooled receive buffer: one Read
// of this size drains every frame a busy peer has queued, and the pool
// keeps steady-state reads allocation-free. Frames larger than this get a
// dedicated buffer that is dropped instead of pooled.
const readBufSize = 64 << 10

// A readBuf is one pooled receive buffer shared by every frame sliced out
// of it. The frameReader holds one reference while it may still parse
// frames from the buffer; each frame handed out holds another until its
// consumer releases it. The buffer returns to the pool when the last
// reference drops, so frames from one batch can finish out of order and
// outlive the reader's move to the next buffer.
type readBuf struct {
	b    []byte
	refs atomic.Int32
}

var readBufPool = sync.Pool{New: func() any {
	return &readBuf{b: make([]byte, readBufSize)}
}}

func getReadBuf(size int) *readBuf {
	if size <= readBufSize {
		rb := readBufPool.Get().(*readBuf)
		rb.refs.Store(1)
		return rb
	}
	rb := &readBuf{b: make([]byte, size)}
	rb.refs.Store(1)
	return rb
}

func (rb *readBuf) retain() { rb.refs.Add(1) }

func (rb *readBuf) release() {
	if rb.refs.Add(-1) == 0 && cap(rb.b) == readBufSize {
		readBufPool.Put(rb)
	}
}

// A frameReader amortizes receive syscalls: instead of two ReadFulls per
// frame (length prefix, then body), it issues one large Read into a pooled
// readBuf and slices out every complete frame that arrived. Under
// concurrent callers the peer's write flusher coalesces many frames per
// segment, so one syscall commonly drains a whole batch — the receive-side
// mirror of the connFlusher's vectored writes.
//
// Frames returned by next alias the current readBuf and carry a reference
// to it; the caller must release the readBuf when done with the payload.
// frameReader itself is single-goroutine (one per connection read loop).
type frameReader struct {
	r   io.Reader
	clk clock.Clock
	// hist records frames sliced per Read syscall (including zero-frame
	// reads that only completed a partial frame).
	hist *metrics.Histogram
	// stall, when non-nil and positive, injects a pause before each Read —
	// the chaos stall-read fault (a slow-draining peer).
	stall *atomic.Int64

	cur     *readBuf
	pos     int // parse offset into cur.b
	end     int // valid bytes in cur.b
	frames  int
	started bool // a Read has happened; frames counts since the last one
	err     error
}

func newFrameReader(r io.Reader, hist *metrics.Histogram, stall *atomic.Int64, clk clock.Clock) *frameReader {
	return &frameReader{r: r, clk: clock.Or(clk), hist: hist, stall: stall}
}

// next returns the next frame payload and the readBuf backing it, blocking
// to Read when no complete frame is buffered. Frames buffered before an
// I/O error are delivered before the error surfaces. The returned payload
// aliases rb; the caller owns one reference and must rb.release() when the
// payload is dead.
func (fr *frameReader) next() ([]byte, *readBuf, error) {
	for {
		need := 0
		if avail := fr.end - fr.pos; avail >= 4 {
			n := int(binary.LittleEndian.Uint32(fr.cur.b[fr.pos:]))
			if n > maxFrameSize {
				fr.err = fmt.Errorf("rpc: frame length %d exceeds limit", n)
				return nil, nil, fr.err
			}
			if avail >= 4+n {
				payload := fr.cur.b[fr.pos+4 : fr.pos+4+n : fr.pos+4+n]
				fr.pos += 4 + n
				fr.frames++
				fr.cur.retain()
				return payload, fr.cur, nil
			}
			need = 4 + n
		}
		if fr.err != nil {
			if fr.err == io.EOF && fr.end > fr.pos {
				// The connection died mid-frame: the bytes left over after
				// draining every complete frame are a truncation.
				fr.err = io.ErrUnexpectedEOF
			}
			return nil, nil, fr.err
		}
		if err := fr.fill(need); err != nil {
			// Latch the error but keep parsing: a Read may return complete
			// frames together with EOF, and they must drain first.
			fr.err = err
		}
	}
}

// fill performs one Read into the current buffer, first making room: a
// sole-owner buffer is compacted in place, while a buffer still referenced
// by outstanding frames is replaced with a fresh one (the partial tail is
// copied over — a few header bytes, not payloads). need, when non-zero, is
// the total size of the partially-buffered frame; oversized frames get a
// dedicated exact-size buffer.
func (fr *frameReader) fill(need int) error {
	if fr.hist != nil && fr.started {
		fr.hist.Put(float64(fr.frames))
	}
	fr.started = true
	fr.frames = 0

	if fr.stall != nil {
		if d := fr.stall.Load(); d > 0 {
			fr.clk.Sleep(time.Duration(d))
		}
	}

	if fr.cur == nil {
		fr.cur = getReadBuf(readBufSize)
		fr.pos, fr.end = 0, 0
	}
	tail := fr.end - fr.pos
	switch {
	case need > cap(fr.cur.b):
		// Frame bigger than the pooled size: move the partial bytes into a
		// dedicated buffer that fits the whole frame.
		big := getReadBuf(need)
		copy(big.b, fr.cur.b[fr.pos:fr.end])
		fr.cur.release()
		fr.cur = big
		fr.pos, fr.end = 0, tail
	case fr.end == cap(fr.cur.b) || fr.pos == fr.end:
		// Out of room (or cheaply resettable): reclaim the consumed prefix.
		if fr.cur.refs.Load() == 1 {
			// Sole owner — no outstanding frame aliases the buffer, so the
			// partial tail can slide to the front in place.
			copy(fr.cur.b, fr.cur.b[fr.pos:fr.end])
		} else {
			fresh := getReadBuf(readBufSize)
			copy(fresh.b, fr.cur.b[fr.pos:fr.end])
			fr.cur.release()
			fr.cur = fresh
		}
		fr.pos, fr.end = 0, tail
	}

	n, err := fr.r.Read(fr.cur.b[fr.end:cap(fr.cur.b)])
	fr.end += n
	return err
}

// close records the final batch and releases the reader's own reference
// to its current buffer. Outstanding frames keep theirs; the buffer is
// pooled when the last one is released.
func (fr *frameReader) close() {
	if fr.hist != nil && fr.started && fr.frames > 0 {
		fr.hist.Put(float64(fr.frames))
	}
	if fr.cur != nil {
		fr.cur.release()
		fr.cur = nil
	}
}
