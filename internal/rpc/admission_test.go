package rpc

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// startLimited starts a server with the given admission limits, a blocking
// "adm.Block" handler, and a trivial "adm.Fast" handler. The returned
// release func unblocks every blocked handler (idempotent via close).
func startLimited(t *testing.T, opts ServerOptions) (s *Server, addr string, started chan struct{}, release func()) {
	t.Helper()
	s = NewServerWithOptions(opts)
	block := make(chan struct{})
	started = make(chan struct{}, 64)
	s.Register("adm.Block", func(ctx context.Context, args []byte) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	})
	s.Register("adm.Fast", func(ctx context.Context, args []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var released bool
	release = func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(func() {
		release()
		s.Close()
	})
	return s, addr, started, release
}

func TestAdmissionShedsAtCapacity(t *testing.T) {
	_, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	shedBefore := metrics.Default.Counter("rpc.server.shed").Value()

	blockDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		blockDone <- err
	}()
	<-started // the single slot is now occupied

	_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call at capacity: err = %v, want ErrOverloaded", err)
	}
	if got := metrics.Default.Counter("rpc.server.shed").Value(); got <= shedBefore {
		t.Errorf("shed counter did not advance: %d -> %d", shedBefore, got)
	}

	release()
	if err := <-blockDone; err != nil {
		t.Fatalf("blocked call failed: %v", err)
	}
	// With the slot free again, calls must flow.
	if _, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{}); err != nil {
		t.Fatalf("call after release: %v", err)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 2})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	blockDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		blockDone <- err
	}()
	<-started

	// This call queues behind the blocked one rather than being shed.
	fastDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
		fastDone <- err
	}()
	// Wait until the server has actually queued it (admission has no
	// timers, so this is a condition wait rather than a clock advance),
	// then confirm it is still parked there, not answered.
	waitFor(t, func() bool { return s.queued.Load() > 0 })
	select {
	case err := <-fastDone:
		t.Fatalf("queued call returned early: %v", err)
	default:
	}

	release()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("queued call failed after slot freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued call never ran after slot freed")
	}
	if err := <-blockDone; err != nil {
		t.Fatalf("blocked call failed: %v", err)
	}
}

func TestAdmissionQueueOverflowSheds(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 1})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	// Fill the one queue slot with a second blocked call.
	queued := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		queued <- err
	}()
	// Wait until the server has actually queued it.
	waitFor(t, func() bool { return s.queued.Load() > 0 })

	// The queue is full: the next request must be shed immediately.
	start := time.Now()
	_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call with full queue: err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %v; should be immediate", elapsed)
	}

	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued call failed: %v", err)
	}
}

func TestAdmissionShedsExpiredDeadlineWhileQueued(t *testing.T) {
	_, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 4})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	// Speak raw frames so the client-side deadline cannot mask the server's
	// decision: the request queues, its deadline expires before a slot
	// frees, and the server must answer statusOverloaded rather than hold
	// the request or execute it late.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	hdr := header{
		id:       1,
		method:   MethodKey("adm.Fast"),
		deadline: time.Now().Add(60 * time.Millisecond).UnixNano(),
	}
	var buf [1 + headerSize]byte
	buf[0] = frameRequest
	hdr.encode(buf[1:])
	if err := writeFrame(conn, buf[:]); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no response for queued-then-expired request: %v", err)
	}
	if frame[0] != frameResponse {
		t.Fatalf("frame type = %d, want response", frame[0])
	}
	if id := getUint64(frame[1:9]); id != 1 {
		t.Fatalf("response id = %d, want 1", id)
	}
	if status := frame[9]; status != statusOverloaded {
		t.Fatalf("status = %d, want statusOverloaded (%d)", status, statusOverloaded)
	}
}
