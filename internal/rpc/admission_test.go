package rpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// startLimited starts a server with the given admission limits, a blocking
// "adm.Block" handler, and a trivial "adm.Fast" handler. The returned
// release func unblocks every blocked handler (idempotent via close).
func startLimited(t *testing.T, opts ServerOptions) (s *Server, addr string, started chan struct{}, release func()) {
	t.Helper()
	s = NewServerWithOptions(opts)
	block := make(chan struct{})
	started = make(chan struct{}, 64)
	s.Register("adm.Block", func(ctx context.Context, args []byte) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	})
	s.Register("adm.Fast", func(ctx context.Context, args []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var released bool
	release = func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(func() {
		release()
		s.Close()
	})
	return s, addr, started, release
}

func TestAdmissionShedsAtCapacity(t *testing.T) {
	_, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	shedBefore := metrics.Default.Counter("rpc.server.shed").Value()

	blockDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		blockDone <- err
	}()
	<-started // the single slot is now occupied

	_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call at capacity: err = %v, want ErrOverloaded", err)
	}
	if got := metrics.Default.Counter("rpc.server.shed").Value(); got <= shedBefore {
		t.Errorf("shed counter did not advance: %d -> %d", shedBefore, got)
	}

	release()
	if err := <-blockDone; err != nil {
		t.Fatalf("blocked call failed: %v", err)
	}
	// With the slot free again, calls must flow.
	if _, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{}); err != nil {
		t.Fatalf("call after release: %v", err)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 2})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	blockDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		blockDone <- err
	}()
	<-started

	// This call queues behind the blocked one rather than being shed.
	fastDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
		fastDone <- err
	}()
	// Wait until the server has actually queued it (admission has no
	// timers, so this is a condition wait rather than a clock advance),
	// then confirm it is still parked there, not answered.
	waitFor(t, func() bool { return s.queued.Load() > 0 })
	select {
	case err := <-fastDone:
		t.Fatalf("queued call returned early: %v", err)
	default:
	}

	release()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("queued call failed after slot freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued call never ran after slot freed")
	}
	if err := <-blockDone; err != nil {
		t.Fatalf("blocked call failed: %v", err)
	}
}

func TestAdmissionQueueOverflowSheds(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 1})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	// Fill the one queue slot with a second blocked call.
	queued := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
		queued <- err
	}()
	// Wait until the server has actually queued it.
	waitFor(t, func() bool { return s.queued.Load() > 0 })

	// The queue is full: the next request must be shed immediately.
	start := time.Now()
	_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil, CallOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call with full queue: err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %v; should be immediate", elapsed)
	}

	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued call failed: %v", err)
	}
}

// TestPriorityAdmissionShedsLowFirst saturates a MaxInflight=1 server,
// parks two low-priority calls in its two queue slots, and then sends a
// high-priority call: the newcomer must evict one of the queued low calls
// (which observes ErrOverloaded) rather than being refused itself, and
// must complete once the slot frees.
func TestPriorityAdmissionShedsLowFirst(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 2})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	shedLowBefore := metrics.Default.Counter("rpc.server.shed.low").Value()
	admittedHighBefore := metrics.Default.Counter("rpc.server.admitted.high").Value()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started // the single slot is now occupied

	lowDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil,
				CallOptions{Meta: CallMeta{Priority: PriorityLow}})
			lowDone <- err
		}()
	}
	waitFor(t, func() bool { return s.queued.Load() == 2 })

	// The queue is full of low-priority work: a high-priority arrival must
	// displace one low call immediately and take its place.
	highDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil,
			CallOptions{Meta: CallMeta{Priority: PriorityHigh}})
		highDone <- err
	}()
	select {
	case err := <-lowDone:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("evicted low call: err = %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no low-priority call was evicted for the high-priority arrival")
	}
	select {
	case err := <-highDone:
		t.Fatalf("high-priority call returned while the slot was blocked: %v", err)
	default:
	}

	release()
	if err := <-highDone; err != nil {
		t.Fatalf("high-priority call failed after slot freed: %v", err)
	}
	if err := <-lowDone; err != nil {
		t.Fatalf("surviving low call failed after slot freed: %v", err)
	}

	if got := metrics.Default.Counter("rpc.server.shed.low").Value(); got <= shedLowBefore {
		t.Errorf("rpc.server.shed.low did not advance: %d -> %d", shedLowBefore, got)
	}
	if got := metrics.Default.Counter("rpc.server.admitted.high").Value(); got <= admittedHighBefore {
		t.Errorf("rpc.server.admitted.high did not advance: %d -> %d", admittedHighBefore, got)
	}
}

// TestPriorityEvictionPrefersQueuedHedge fills the queue with one hedged
// and one plain low-priority call; the high-priority arrival must evict
// the hedged duplicate (its twin is still running elsewhere) and count it
// in rpc.server.hedge_dropped.
func TestPriorityEvictionPrefersQueuedHedge(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 2})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	droppedBefore := metrics.Default.Counter("rpc.server.hedge_dropped").Value()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	plainDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil,
			CallOptions{Meta: CallMeta{Priority: PriorityLow}})
		plainDone <- err
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	hedgeDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), MethodKey("adm.Fast"), nil,
			CallOptions{Meta: CallMeta{Priority: PriorityLow, Hedge: true}})
		hedgeDone <- err
	}()
	waitFor(t, func() bool { return s.queued.Load() == 2 })

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Fast"), nil,
			CallOptions{Meta: CallMeta{Priority: PriorityHigh}})
	}()

	select {
	case err := <-hedgeDone:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("evicted hedge: err = %v, want ErrOverloaded", err)
		}
	case err := <-plainDone:
		t.Fatalf("plain call evicted ahead of the queued hedge: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no queued call was evicted")
	}
	if got := metrics.Default.Counter("rpc.server.hedge_dropped").Value(); got <= droppedBefore {
		t.Errorf("rpc.server.hedge_dropped did not advance: %d -> %d", droppedBefore, got)
	}
}

// TestPriorityQueuedHedgeDroppedOnCancel parks a hedged call in the queue
// and cancels its caller (as the data plane does when the hedge's twin
// answers first): the server must drop it unexecuted and count it.
func TestPriorityQueuedHedgeDroppedOnCancel(t *testing.T) {
	s, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 2})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	droppedBefore := metrics.Default.Counter("rpc.server.hedge_dropped").Value()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	hedgeDone := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, MethodKey("adm.Fast"), nil,
			CallOptions{Meta: CallMeta{Hedge: true}})
		hedgeDone <- err
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	cancel() // the primary answered elsewhere; this duplicate is abandoned
	if err := <-hedgeDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled hedge: err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool {
		return metrics.Default.Counter("rpc.server.hedge_dropped").Value() > droppedBefore
	})
	waitFor(t, func() bool { return s.queued.Load() == 0 })
}

// BenchmarkPriorityShedding saturates a small-MaxInflight server with an
// even mix of low- and high-priority calls and reports, besides the usual
// ns/op, what fraction of each class completed. The point of the numbers:
// under sustained overload the high class should complete at (near) 1.0
// while the low class absorbs the shedding.
func BenchmarkPriorityShedding(b *testing.B) {
	s := NewServerWithOptions(ServerOptions{MaxInflight: 2, MaxQueue: 4})
	s.Register("bench.Work", func(ctx context.Context, args []byte) ([]byte, error) {
		time.Sleep(50 * time.Microsecond)
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	method := MethodKey("bench.Work")
	var goroutines atomic.Int64
	var lowOK, lowShed, highOK, highShed atomic.Int64
	b.SetParallelism(8) // oversubscribe so the 2 slots are always contended
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Alternate classes across worker goroutines.
		var opts CallOptions
		high := goroutines.Add(1)%2 == 0
		if high {
			opts.Meta = CallMeta{Priority: PriorityHigh}
		} else {
			opts.Meta = CallMeta{Priority: PriorityLow}
		}
		for pb.Next() {
			_, err := c.Call(context.Background(), method, nil, opts)
			switch {
			case err == nil && high:
				highOK.Add(1)
			case err == nil:
				lowOK.Add(1)
			case errors.Is(err, ErrOverloaded) && high:
				highShed.Add(1)
			case errors.Is(err, ErrOverloaded):
				lowShed.Add(1)
			default:
				b.Error(err)
			}
		}
	})
	b.StopTimer()
	frac := func(ok, shed int64) float64 {
		if ok+shed == 0 {
			return 1
		}
		return float64(ok) / float64(ok+shed)
	}
	b.ReportMetric(frac(highOK.Load(), highShed.Load()), "high-ok-frac")
	b.ReportMetric(frac(lowOK.Load(), lowShed.Load()), "low-ok-frac")
}

func TestAdmissionShedsExpiredDeadlineWhileQueued(t *testing.T) {
	_, addr, started, release := startLimited(t, ServerOptions{MaxInflight: 1, MaxQueue: 4})
	defer release()
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), MethodKey("adm.Block"), nil, CallOptions{})
	}()
	<-started

	// Speak raw frames so the client-side deadline cannot mask the server's
	// decision: the request queues, its deadline expires before a slot
	// frees, and the server must answer statusOverloaded rather than hold
	// the request or execute it late.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	hdr := header{
		id:       1,
		method:   MethodKey("adm.Fast"),
		deadline: time.Now().Add(60 * time.Millisecond).UnixNano(),
	}
	var buf [1 + headerSize]byte
	buf[0] = frameRequest
	hdr.encode(buf[1:])
	if err := writeFrame(conn, buf[:]); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no response for queued-then-expired request: %v", err)
	}
	if frame[0] != frameResponse {
		t.Fatalf("frame type = %d, want response", frame[0])
	}
	if id := getUint64(frame[1:9]); id != 1 {
		t.Fatalf("response id = %d, want 1", id)
	}
	if status := frame[9]; status != statusOverloaded {
		t.Fatalf("status = %d, want statusOverloaded (%d)", status, statusOverloaded)
	}
}
