package deploy

import (
	"context"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/manager"
	"repro/internal/testpkg"
)

const (
	storeName      = "repro/internal/testpkg/Store"
	storeProxyName = "repro/internal/testpkg/StoreProxy"
)

// TestColocatedRoutedDispatchHonorsAssignment is the regression test for
// ROADMAP item 1 (assignment-aware local dispatch). Store (routed) and
// StoreProxy (its colocated caller) share a 2-replica group. A proxy
// replica serving a call for a key the assignment maps to its sibling must
// forward it over the data plane instead of taking the local fast path;
// before the fix each proxy always answered from its own colocated Store,
// so reads through the proxy diverged from affinity-routed writes whenever
// the round-robin picked the non-owner replica.
func TestColocatedRoutedDispatchHonorsAssignment(t *testing.T) {
	testpkg.ResetStoreEvents()
	d := startDeployment(t, manager.Config{
		App: "test",
		Groups: map[string][]string{
			"kv": {storeName, storeProxyName},
		},
		Autoscale: map[string]autoscale.Config{
			"kv": {MinReplicas: 2, MaxReplicas: 2},
		},
	})
	ctx := context.Background()

	store, err := Get[testpkg.Store](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Get[testpkg.StoreProxy](ctx, d)
	if err != nil {
		t.Fatal(err)
	}

	// Both replicas live, and the 2-replica assignment applied by the
	// driver AND by each colocated proxy replica's own balancer.
	waitFor(t, 10*time.Second, func() bool {
		if d.Manager.ReplicaCount("kv") != 2 || d.RoutingReplicas(storeName) != 2 {
			return false
		}
		for _, id := range []string{"kv/0", "kv/1"} {
			p, ok := d.Proclet(id)
			if !ok || p.RoutingReplicas(storeName) != 2 {
				return false
			}
		}
		return true
	})

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	// Affinity-routed writes from the driver, reads through the proxy.
	// Several reads per key so the round-robin lands on both proxy
	// replicas; every one must observe the written value.
	for i, key := range keys {
		want := int64(100 + i)
		if _, err := store.Put(ctx, key, want); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		for j := 0; j < 4; j++ {
			got, err := proxy.GetVia(ctx, key)
			if err != nil {
				t.Fatalf("GetVia(%s): %v", key, err)
			}
			if got != want {
				t.Fatalf("GetVia(%s) = %d, want %d: colocated proxy read a non-owner replica", key, got, want)
			}
		}
	}

	// Writes through the proxy, affinity-routed reads from the driver.
	for i, key := range keys {
		want := int64(200 + i)
		for j := 0; j < 2; j++ {
			if _, err := proxy.PutVia(ctx, key, want); err != nil {
				t.Fatalf("PutVia(%s): %v", key, err)
			}
		}
		got, err := store.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if got != want {
			t.Fatalf("Get(%s) = %d, want %d: proxy write landed on a non-owner replica", key, got, want)
		}
	}

	// Stronger check: per key, every recorded event must name the same
	// serving replica — the assignment's owner — regardless of which proxy
	// replica relayed the call.
	byKey := map[string]uint64{}
	for _, ev := range testpkg.StoreEvents() {
		if first, ok := byKey[ev.Key]; !ok {
			byKey[ev.Key] = ev.Replica
		} else if first != ev.Replica {
			t.Fatalf("key %q served by replicas %d and %d; affinity broken for colocated callers", ev.Key, first, ev.Replica)
		}
	}
}

// TestMutualReferenceGroupsInitialize is the regression test for ROADMAP
// item 2 (mutual-init deadlock under static colocation). Two explicit
// groups reference each other: ns's Chain calls ew's Echo, and ew's
// Backref calls ns's Counter. With eager remote-conn setup each group's
// init blocked waiting for the other group's routing info before
// registering its own replica, so neither registered and both timed out
// after 30s. With lazy conn setup init completes immediately and the
// first calls wait (briefly) inside the data-plane conn instead.
func TestMutualReferenceGroupsInitialize(t *testing.T) {
	d := startDeployment(t, manager.Config{
		App: "test",
		Groups: map[string][]string{
			"ns": {"repro/internal/testpkg/Chain", "repro/internal/testpkg/Counter"},
			"ew": {"repro/internal/testpkg/Echo", "repro/internal/testpkg/Backref"},
		},
	})
	// Well under the old 30s init timeout: the deadlock, if reintroduced,
	// fails this deadline instead of hanging the test.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	start := time.Now()

	chain, err := Get[testpkg.Chain](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := chain.Relay(ctx, "m", 2); err != nil || got != "m.." {
		t.Fatalf("Relay = %q, %v", got, err)
	}

	backref, err := Get[testpkg.Backref](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backref.Poke(ctx, "k"); err != nil {
		t.Fatalf("Poke: %v", err)
	}

	if elapsed := time.Since(start); elapsed > 25*time.Second {
		t.Fatalf("mutual-reference init took %v; deadlock likely reintroduced", elapsed)
	}
	if n := d.Manager.ReplicaCount("ns"); n == 0 {
		t.Error("ns group has no replicas")
	}
	if n := d.Manager.ReplicaCount("ew"); n == 0 {
		t.Error("ew group has no replicas")
	}
}
