package deploy

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/testpkg"
	"repro/weaver"
)

// fill adapts weaver.FillComponent for deployers.
func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

func startDeployment(t *testing.T, cfg manager.Config) *InProcess {
	t.Helper()
	ctx := context.Background()
	d, err := StartInProcess(ctx, Options{Config: cfg, Fill: fill})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func TestCrossProcessCall(t *testing.T) {
	d := startDeployment(t, manager.Config{App: "test"})
	ctx := context.Background()

	chain, err := Get[testpkg.Chain](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chain.Relay(ctx, "x", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "x..." {
		t.Errorf("Relay = %q", got)
	}

	// Chain and Echo live in different groups, so Echo must have been
	// started on demand (the StartComponent flow).
	if n := d.Manager.ReplicaCount("Echo"); n == 0 {
		t.Error("Echo group has no replicas after a cross-group call")
	}
	if n := d.Manager.ReplicaCount("Chain"); n == 0 {
		t.Error("Chain group has no replicas")
	}
}

func TestColocatedGroupSharesProcessState(t *testing.T) {
	// Chain and Echo colocated: calls between them stay local, so Echo
	// never gets its own group replicas.
	d := startDeployment(t, manager.Config{
		App: "test",
		Groups: map[string][]string{
			"pair": {"repro/internal/testpkg/Chain", "repro/internal/testpkg/Echo"},
		},
	})
	ctx := context.Background()
	chain, err := Get[testpkg.Chain](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Relay(ctx, "y", 2); err != nil {
		t.Fatal(err)
	}
	if n := d.Manager.ReplicaCount("pair"); n == 0 {
		t.Error("pair group has no replicas")
	}
}

func TestApplicationErrorAcrossProcesses(t *testing.T) {
	d := startDeployment(t, manager.Config{App: "test"})
	ctx := context.Background()
	failer, err := Get[testpkg.Failer](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failer.Maybe(ctx, false); err != nil {
		t.Fatalf("non-failing call: %v", err)
	}
	_, err = failer.Maybe(ctx, true)
	if err == nil || !strings.Contains(err.Error(), "requested failure") {
		t.Errorf("err = %v", err)
	}
	var re *weaver.RemoteError
	if !asError(err, &re) {
		t.Errorf("error type = %T, want *weaver.RemoteError", err)
	}
}

func asError[T error](err error, target *T) bool {
	for err != nil {
		if e, ok := err.(T); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestRoutedComponentAffinity(t *testing.T) {
	d := startDeployment(t, manager.Config{
		App: "test",
		Autoscale: map[string]autoscale.Config{
			"Counter": {MinReplicas: 3, MaxReplicas: 3},
		},
	})
	ctx := context.Background()
	counter, err := Get[testpkg.Counter](ctx, d)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for all three replicas to be live AND for the resulting routing
	// assignment to reach the driver's balancer, so it is stable before the
	// first call. Waiting only on the manager's count races with the async
	// routing push: an early call could still route on a 1-replica view.
	waitFor(t, 10*time.Second, func() bool {
		return d.Manager.ReplicaCount("Counter") == 3 &&
			d.RoutingReplicas("repro/internal/testpkg/Counter") == 3
	})

	// Each key's counts must be consistent, i.e. all increments for a key
	// land on the same replica. With 3 replicas and per-replica state,
	// broken affinity would scatter increments and produce values < n.
	const n = 30
	for _, key := range []string{"alpha", "beta", "gamma", "delta"} {
		var last int64
		for i := 0; i < n; i++ {
			v, err := counter.Add(ctx, key, 1)
			if err != nil {
				t.Fatalf("Add(%s): %v", key, err)
			}
			last = v
		}
		if last != n {
			t.Errorf("key %s: final count = %d, want %d (affinity broken)", key, last, n)
		}
	}
}

func TestCrashedReplicaIsRestarted(t *testing.T) {
	d := startDeployment(t, manager.Config{App: "test"})
	ctx := context.Background()
	echoClient, err := Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := echoClient.Echo(ctx, "pre"); err != nil {
		t.Fatal(err)
	}

	// Crash the only Echo replica.
	if !d.KillReplica("Echo/0") {
		t.Fatal("Echo/0 not found")
	}

	// Calls must succeed again once the manager restarts the replica.
	deadline := time.Now().Add(15 * time.Second)
	for {
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := echoClient.Echo(cctx, "post")
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("Echo never recovered: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestAutoscaleUp(t *testing.T) {
	d := startDeployment(t, manager.Config{
		App:           "test",
		ScaleInterval: 100 * time.Millisecond,
		Autoscale: map[string]autoscale.Config{
			"Echo": {MinReplicas: 1, MaxReplicas: 4, TargetLoadPerReplica: 50, ScaleDownDelay: time.Hour},
		},
	})
	ctx := context.Background()
	echoClient, err := Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}

	// Drive far more than 50 calls/sec at Echo.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cctx, cancel := context.WithTimeout(ctx, time.Second)
				_, _ = echoClient.Echo(cctx, "load")
				cancel()
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	waitFor(t, 20*time.Second, func() bool { return d.Manager.ReplicaCount("Echo") >= 2 })
}

func TestManagerAggregatesTelemetry(t *testing.T) {
	d := startDeployment(t, manager.Config{App: "test"})
	ctx := context.Background()
	chain, err := Get[testpkg.Chain](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := chain.Relay(ctx, "t", 2); err != nil {
			t.Fatal(err)
		}
	}
	// Reports flow on a 100ms cadence in tests.
	waitFor(t, 10*time.Second, func() bool {
		edges := d.Manager.Graph().Edges()
		for _, e := range edges {
			if e.Caller == "repro/internal/testpkg/Chain" && e.Callee == "repro/internal/testpkg/Echo" && e.Remote > 0 {
				return true
			}
		}
		return false
	})

	merged := d.Manager.MergedMetrics()
	if len(merged) == 0 {
		t.Error("no merged metrics at manager")
	}
	found := false
	for name := range merged {
		if strings.HasPrefix(name, "component.calls.Echo") {
			found = true
		}
	}
	if !found {
		t.Errorf("no Echo call counters in merged metrics: %v", keys(merged))
	}
}

func TestStatusReport(t *testing.T) {
	d := startDeployment(t, manager.Config{App: "test"})
	ctx := context.Background()
	echo, err := Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	// Remote conns are lazy: Get alone no longer waits for a replica, but a
	// completed call proves one registered and served it.
	if _, err := echo.Echo(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	status := d.Manager.Status()
	var sawMain, sawEcho bool
	for _, g := range status {
		if g.Name == "main" && len(g.Replicas) == 1 {
			sawMain = true
		}
		if g.Name == "Echo" && len(g.Replicas) >= 1 {
			sawEcho = true
			if g.Replicas[0].Addr == "" {
				t.Error("Echo replica has no address")
			}
		}
	}
	if !sawMain || !sawEcho {
		t.Errorf("status missing groups: %+v", status)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

var _ = fmt.Sprintf // reserved for debugging
