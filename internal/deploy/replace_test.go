package deploy

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/testpkg"
)

const moverName = "repro/internal/testpkg/Mover"

// TestMoveComponentUnderLoad hammers a routed component while the manager
// moves it between groups — including onto and off the driver process —
// and proves the re-placement protocol's contract: no call is lost, no
// call executes twice, and the routing epochs each client observes only
// ever increase.
func TestMoveComponentUnderLoad(t *testing.T) {
	testpkg.ResetMoverCounts()
	d := startDeployment(t, manager.Config{
		App:    "test",
		Logger: logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
	})
	ctx := context.Background()

	mover, err := Get[testpkg.Mover](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mover.Deliver(ctx, -1); err != nil {
		t.Fatal(err)
	}

	// Watch the driver's routing epochs for the component: the data-plane
	// epoch and the core route epoch must both be monotonic.
	var (
		stopWatch  = make(chan struct{})
		watchDone  = make(chan struct{})
		violations atomic.Int64
		flipsSeen  atomic.Int64
		lastDP     uint64
		lastRoute  uint64
		wasLocal   bool
	)
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if v := d.RoutingVersion(moverName); v < lastDP {
				violations.Add(1)
			} else {
				lastDP = v
			}
			v, local := d.RouteVersion(moverName)
			if v < lastRoute {
				violations.Add(1)
			} else {
				if v > lastRoute || local != wasLocal {
					flipsSeen.Add(1)
				}
				lastRoute = v
				wasLocal = local
			}
		}
	}()

	// Load: several clients deliver strictly distinct sequence numbers and
	// record every client-visible success.
	var (
		seq       atomic.Int64
		sent      sync.Map // seq -> true, recorded only on success
		loadErr   atomic.Value
		stopLoad  = make(chan struct{})
		loadGroup sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		loadGroup.Add(1)
		go func() {
			defer loadGroup.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				s := seq.Add(1)
				if _, err := mover.Deliver(ctx, s); err != nil {
					loadErr.Store(err)
					return
				}
				sent.Store(s, true)
			}
		}()
	}

	// Three consecutive re-placements under load: into a fresh group, onto
	// the driver process (local dispatch), and back off it.
	for _, dest := range []string{"mv2", "main", "Mover"} {
		if err := d.Manager.MoveComponent(ctx, moverName, dest); err != nil {
			t.Fatalf("MoveComponent(%s): %v", dest, err)
		}
		if g, _ := d.Manager.GroupOf(moverName); g != dest {
			t.Fatalf("after move, GroupOf = %q, want %q", g, dest)
		}
		// Keep load flowing on the new placement: wait for observed
		// progress (or a client error, checked below) rather than a
		// wall-clock pause.
		base := seq.Load()
		waitFor(t, 20*time.Second, func() bool {
			return loadErr.Load() != nil || seq.Load() >= base+200
		})
	}

	close(stopLoad)
	loadGroup.Wait()
	close(stopWatch)
	<-watchDone

	if err, ok := loadErr.Load().(error); ok {
		t.Fatalf("client-visible error during re-placement: %v", err)
	}
	if n := violations.Load(); n > 0 {
		t.Errorf("observed %d non-monotonic routing version transitions", n)
	}
	if flipsSeen.Load() == 0 {
		t.Error("driver never observed a route flip; moves did not exercise the resolver")
	}

	// Exactly-once accounting: every client success executed exactly once.
	counts := testpkg.MoverCounts()
	var lost, dup int
	sent.Range(func(k, _ any) bool {
		switch n := counts[k.(int64)]; {
		case n == 0:
			lost++
		case n > 1:
			dup++
		}
		return true
	})
	for s, n := range counts {
		if s >= 0 && n > 1 {
			dup++
		}
	}
	if lost > 0 || dup > 0 {
		t.Fatalf("re-placement dropped %d and duplicated %d of %d calls", lost, dup, seq.Load())
	}
	if seq.Load() < 100 {
		t.Fatalf("only %d calls issued; load too light to trust the test", seq.Load())
	}
}

// TestScaleDownDrainsUnderLoad scales a group up under heavy load, then
// lets the autoscaler shrink it while a client keeps calling: stopping
// replicas must finish what they admitted and refuse the rest with a
// retryable status, so the client sees zero failures.
func TestScaleDownDrainsUnderLoad(t *testing.T) {
	d := startDeployment(t, manager.Config{
		App:           "test",
		ScaleInterval: 100 * time.Millisecond,
		Autoscale: map[string]autoscale.Config{
			"Echo": {
				MinReplicas:          1,
				MaxReplicas:          3,
				TargetLoadPerReplica: 50,
				ScaleDownDelay:       300 * time.Millisecond,
			},
		},
		Logger: logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
	})
	ctx := context.Background()
	echo, err := Get[testpkg.Echo](ctx, d)
	if err != nil {
		t.Fatal(err)
	}

	var calls, failures atomic.Int64
	stop := make(chan struct{})
	slow := make(chan struct{}) // closed -> throttle to trigger scale-down
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				select {
				case <-slow:
					if w != 0 {
						return // drop to a single light client
					}
					time.Sleep(60 * time.Millisecond)
				default:
				}
				if _, err := echo.Echo(ctx, "x"); err != nil {
					failures.Add(1)
					t.Errorf("Echo failed: %v", err)
					return
				}
				calls.Add(1)
			}
		}(w)
	}

	// Heavy phase: wait for the scale-up.
	waitFor(t, 20*time.Second, func() bool { return d.Manager.ReplicaCount("Echo") >= 3 })
	// Light phase: the autoscaler must shrink the group back down while
	// the remaining client keeps succeeding.
	close(slow)
	waitFor(t, 20*time.Second, func() bool { return d.Manager.ReplicaCount("Echo") <= 1 })
	// Keep calling on the shrunken fleet until the remaining client has
	// made visible progress (or failed, checked below).
	base := calls.Load()
	waitFor(t, 20*time.Second, func() bool {
		return failures.Load() > 0 || calls.Load() >= base+10
	})
	close(stop)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d of %d calls failed during scale-down", n, calls.Load())
	}
	if calls.Load() == 0 {
		t.Fatal("no calls issued")
	}
}
