package deploy

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/boutique"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/tracing"
	"repro/weaver"
)

// traceFill is like fill but satisfies listener fields (the boutique
// frontend declares one) with throwaway ports.
func traceFill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	listen := func(string) (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
	return weaver.FillComponent(impl, name, logger, resolve, listen)
}

// TestMultiHopTraceAssembled deploys the boutique with every component in
// its own group (so calls cross the data plane) and checks that one user
// request — frontend ViewCart fanning out to cart, catalog, currency, and
// shipping — is assembled by the manager into a single trace: one trace
// id, each hop's span parented on the frontend call's span, and the
// sampled bit carried across processes rather than re-decided per hop.
func TestMultiHopTraceAssembled(t *testing.T) {
	ctx := context.Background()
	d, err := StartInProcess(ctx, Options{
		Config:        manager.Config{App: "trace-test"},
		Fill:          traceFill,
		TraceFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	fe, err := Get[boutique.Frontend](ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	const user = "trace-user"
	if err := fe.AddToCart(ctx, user, "OLJCESPC7Z", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := fe.ViewCart(ctx, user, "EUR"); err != nil {
		t.Fatal(err)
	}

	// Spans reach the manager via each proclet's periodic telemetry
	// report; poll until the ViewCart trace has all its hops. Span
	// components are full registration names.
	var got []tracing.Span
	all := map[uint64][]tracing.Span{}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && got == nil {
		all = map[uint64][]tracing.Span{}
		for _, s := range d.Manager.Spans() {
			all[s.Trace] = append(all[s.Trace], s)
		}
		for _, spans := range all {
			if hasSpan(spans, "Frontend", "ViewCart") &&
				hasSpan(spans, "Cart", "GetCart") &&
				hasSpan(spans, "ProductCatalog", "GetProduct") {
				got = spans
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got == nil {
		for id, spans := range all {
			for _, s := range spans {
				t.Logf("trace %d: %s.%s parent=%d remote=%v", id, s.Component, s.Method, s.Parent, s.Remote)
			}
		}
		t.Fatalf("no complete ViewCart trace assembled; collected %d traces", len(all))
	}

	// Every hop of the request must hang off the frontend call's span.
	root, _ := findSpan(got, "Frontend", "ViewCart")
	for _, hop := range []struct{ component, method string }{
		{"Cart", "GetCart"},
		{"ProductCatalog", "GetProduct"},
		{"Currency", "Convert"},
		{"Shipping", "GetQuote"},
	} {
		s, ok := findSpan(got, hop.component, hop.method)
		if !ok {
			t.Errorf("trace %d missing %s.%s span", root.Trace, hop.component, hop.method)
			continue
		}
		if s.Trace != root.Trace {
			t.Errorf("%s.%s span in trace %d, want %d", hop.component, hop.method, s.Trace, root.Trace)
		}
		if s.Parent != root.ID {
			t.Errorf("%s.%s span parent = %d, want the ViewCart span %d", hop.component, hop.method, s.Parent, root.ID)
		}
		if !s.Remote {
			t.Errorf("%s.%s span not marked remote; the hop should have crossed the data plane", hop.component, hop.method)
		}
	}
}

func hasSpan(spans []tracing.Span, component, method string) bool {
	_, ok := findSpan(spans, component, method)
	return ok
}

func findSpan(spans []tracing.Span, component, method string) (tracing.Span, bool) {
	for _, s := range spans {
		if strings.HasSuffix(s.Component, "/"+component) && s.Method == method {
			return s, true
		}
	}
	return tracing.Span{}, false
}
