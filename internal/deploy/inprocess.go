// Package deploy provides deployer implementations that tie together the
// manager, envelopes, and proclets (paper Figure 3).
//
// InProcess runs a complete multiprocess-shaped deployment inside a single
// OS process: every "replica" is a goroutine-hosted proclet speaking the
// real control-plane pipe protocol to a real envelope, and component calls
// between groups cross real TCP sockets through the data plane. It exists
// for integration tests, chaos tests, and benchmarks, where spawning many
// OS processes would be slow and hard to instrument; the subprocess
// deployer in cmd/weaver shares every line of manager/envelope/proclet
// code with it.
package deploy

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/callgraph"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/pipe"
	"repro/internal/proclet"
	"repro/internal/tracing"
)

// managerRef is an envelope.Manager that delegates to the current manager.
// Envelopes are attached to the ref, not to a manager, so a manager
// rebuild (RestartManager) repoints the whole fleet atomically.
type managerRef struct {
	p atomic.Pointer[manager.Manager]
}

func (r *managerRef) get() *manager.Manager { return r.p.Load() }

func (r *managerRef) RegisterReplica(e *envelope.Envelope, reg pipe.RegisterReplica) error {
	return r.get().RegisterReplica(e, reg)
}
func (r *managerRef) ComponentsToHost(e *envelope.Envelope) ([]string, error) {
	return r.get().ComponentsToHost(e)
}
func (r *managerRef) StartComponent(e *envelope.Envelope, component string, routed bool) error {
	return r.get().StartComponent(e, component, routed)
}
func (r *managerRef) LoadReport(e *envelope.Envelope, lr pipe.LoadReport) {
	r.get().LoadReport(e, lr)
}
func (r *managerRef) Logs(entries []logging.Entry)      { r.get().Logs(entries) }
func (r *managerRef) Traces(spans []tracing.Span)       { r.get().Traces(spans) }
func (r *managerRef) GraphEdges(edges []callgraph.Edge) { r.get().GraphEdges(edges) }
func (r *managerRef) ReplicaExited(e *envelope.Envelope, err error) {
	r.get().ReplicaExited(e, err)
}

// FillFunc injects weaver state into component implementations; it is
// weaver.FillComponent adapted by the caller (the public weaver package
// owns the field types, so the closure must come from above).
type FillFunc func(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error

// Inventory builds the component inventory from the in-process registry.
func Inventory() []manager.ComponentInfo {
	var out []manager.ComponentInfo
	for _, reg := range codegen.All() {
		out = append(out, manager.ComponentInfo{Name: reg.Name, Routed: reg.Routed})
	}
	return out
}

// InProcess is a running in-process deployment.
type InProcess struct {
	Manager *manager.Manager
	main    *proclet.Proclet

	// ref is the envelope-facing manager indirection; cfg and starter are
	// retained so RestartManager can rebuild the manager from scratch.
	ref     *managerRef
	cfg     manager.Config
	starter manager.Starter

	mu       sync.Mutex
	proclets map[string]*proclet.Proclet
}

// Options configures an in-process deployment.
type Options struct {
	Config manager.Config
	Fill   FillFunc
	// ReportInterval overrides the proclets' load-report cadence
	// (default 100ms, faster than production for snappy tests).
	ReportInterval time.Duration
	// TraceFraction is each proclet's trace sampling rate.
	TraceFraction float64
	// BypassAssignmentDispatch restores the historical (buggy) colocated
	// dispatch that ignored the affinity assignment. Testing-only: the sim
	// harness sets it to demonstrate rediscovering the bug from a seed.
	BypassAssignmentDispatch bool
}

// StartInProcess boots a deployment: a manager, a main driver proclet, and
// on-demand goroutine proclets for every other group.
func StartInProcess(ctx context.Context, opts Options) (*InProcess, error) {
	if opts.Fill == nil {
		return nil, fmt.Errorf("deploy: missing Fill")
	}
	if opts.ReportInterval <= 0 {
		opts.ReportInterval = 100 * time.Millisecond
	}
	if len(opts.Config.Components) == 0 {
		opts.Config.Components = Inventory()
	}
	if opts.Config.Version == "" {
		opts.Config.Version = "v1"
	}

	d := &InProcess{proclets: map[string]*proclet.Proclet{}, ref: &managerRef{}}

	startProclet := func(ctx context.Context, group, id string, _ envelope.Manager) (*envelope.Envelope, *proclet.Proclet, error) {
		envConn, procConn, err := pipe.Pair()
		if err != nil {
			return nil, nil, err
		}
		// Envelopes talk to the manager through the ref, so a manager
		// rebuild repoints them without re-attaching.
		e := envelope.Attach(id, group, envConn, d.ref)
		p, err := proclet.Start(ctx, proclet.Options{
			Conn:           procConn,
			ProcletID:      id,
			Group:          group,
			Version:        opts.Config.Version,
			Fill:           opts.Fill,
			ReportInterval: opts.ReportInterval,
			TraceFraction:  opts.TraceFraction,
			MaxInflight:    opts.Config.MaxInflightPerReplica,
			MaxQueue:       opts.Config.MaxOverloadQueue,
			Logger:         logging.New(logging.Options{Component: "proclet", Replica: id, Min: logging.LevelWarn}),

			BypassAssignmentDispatch: opts.BypassAssignmentDispatch,
		})
		if err != nil {
			envConn.Close()
			procConn.Close()
			return nil, nil, err
		}
		d.mu.Lock()
		d.proclets[id] = p
		d.mu.Unlock()
		return e, p, nil
	}

	starter := func(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
		e, _, err := startProclet(ctx, group, id, mgr)
		return e, err
	}

	mgr, err := manager.New(opts.Config, starter)
	if err != nil {
		return nil, err
	}
	d.Manager = mgr
	d.ref.p.Store(mgr)
	d.cfg = opts.Config
	d.starter = starter

	// Start the main driver proclet directly, as a subprocess deployer
	// starts the main binary.
	_, mainP, err := startProclet(ctx, "main", "main/0", mgr)
	if err != nil {
		mgr.Stop()
		return nil, err
	}
	d.main = mainP
	return d, nil
}

// Runtime returns the main driver's component runtime; Get drives the
// application through it.
func (d *InProcess) Runtime() *core.Runtime { return d.main.Runtime() }

// Get returns a client for the component with interface type T, as seen
// from the main driver.
func Get[T any](ctx context.Context, d *InProcess) (T, error) {
	var zero T
	v, err := d.Runtime().Get(ctx, reflect.TypeOf((*T)(nil)).Elem())
	if err != nil {
		return zero, err
	}
	return v.(T), nil
}

// RoutingReplicas reports how many replicas the main driver's client-side
// balancer currently knows for the named component. Tests that depend on a
// stable routing assignment should wait on this rather than (only) the
// manager's replica count: the manager learns of a replica before the
// routing push reaches the driver.
func (d *InProcess) RoutingReplicas(component string) int {
	return d.main.RoutingReplicas(component)
}

// RouteVersion reports the routing epoch and locality (true = direct
// in-process dispatch) of the main driver's installed route for a
// component (see core.Runtime.RouteVersion). Tests use it to assert that
// observed placement flips are monotonic.
func (d *InProcess) RouteVersion(component string) (version uint64, local bool) {
	return d.main.Runtime().RouteVersion(component)
}

// RoutingVersion reports the routing epoch the main driver has applied for
// a component's data-plane route (0 before the first routing push).
func (d *InProcess) RoutingVersion(component string) uint64 {
	return d.main.RoutingVersion(component)
}

// Proclet returns the proclet for a replica id, if it is running.
func (d *InProcess) Proclet(id string) (*proclet.Proclet, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.proclets[id]
	return p, ok
}

// Proclets returns a snapshot of all live proclets by replica id
// (including the main driver). The sim harness iterates it to check that
// every process has applied the routing epoch it is waiting on.
func (d *InProcess) Proclets() map[string]*proclet.Proclet {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]*proclet.Proclet, len(d.proclets))
	for id, p := range d.proclets {
		out[id] = p
	}
	return out
}

// Groups returns the names of all non-main groups that currently have
// replicas, sorted — the default fault targets (part of the chaos/sim
// shared fault surface).
func (d *InProcess) Groups() []string {
	var out []string
	for _, g := range d.Manager.Status() {
		if g.Name != "main" && len(g.Replicas) > 0 {
			out = append(out, g.Name)
		}
	}
	return out
}

// GroupReplicas returns the replica ids of a group, sorted.
func (d *InProcess) GroupReplicas(group string) []string {
	var out []string
	for _, g := range d.Manager.Status() {
		if g.Name == group {
			for _, r := range g.Replicas {
				out = append(out, r.ID)
			}
		}
	}
	return out
}

// DegradeReplica injects delay into a replica's data plane (0 restores
// it), simulating a slow or flapping replica for chaos tests. It returns
// false if the replica does not exist.
func (d *InProcess) DegradeReplica(id string, delay time.Duration) bool {
	d.mu.Lock()
	p, ok := d.proclets[id]
	d.mu.Unlock()
	if !ok {
		return false
	}
	p.InjectDataPlaneDelay(delay)
	return true
}

// DegradeBatching stalls a replica's data-plane response flusher by stall
// before every batch write (0 restores it), forcing its responses to
// coalesce into deep batches. It returns false if the replica does not
// exist.
func (d *InProcess) DegradeBatching(id string, stall time.Duration) bool {
	d.mu.Lock()
	p, ok := d.proclets[id]
	d.mu.Unlock()
	if !ok {
		return false
	}
	p.InjectFlushStall(stall)
	return true
}

// StallReads stalls a replica's data-plane frame reader by stall before
// every batched read (0 restores it) — the slow-reader fault: inbound
// requests pile up in the socket buffer and drain in deep read batches. It
// returns false if the replica does not exist.
func (d *InProcess) StallReads(id string, stall time.Duration) bool {
	d.mu.Lock()
	p, ok := d.proclets[id]
	d.mu.Unlock()
	if !ok {
		return false
	}
	p.InjectReadStall(stall)
	return true
}

// KillReplica abruptly terminates a replica's proclet (no graceful
// shutdown), simulating a crash for chaos tests. It returns false if the
// replica does not exist.
func (d *InProcess) KillReplica(id string) bool {
	d.mu.Lock()
	p, ok := d.proclets[id]
	if ok {
		delete(d.proclets, id)
	}
	d.mu.Unlock()
	if !ok {
		return false
	}
	p.Shutdown(fmt.Errorf("killed by test"))
	return true
}

// RestartManager simulates a manager crash and rebuild: the old manager is
// detached (its control loops stop; its replicas keep running and keep
// serving data-plane traffic), a fresh manager is built from the original
// config with empty observed state, the fleet's envelopes are repointed at
// it, and every proclet is asked to re-register. The call returns once the
// new manager has recovered the fleet — adopted every replica, floored its
// routing epoch above everything the proclets have applied, and
// rebroadcast routing for every group — or once ctx expires (recovery is
// then force-finished with whatever re-registered).
func (d *InProcess) RestartManager(ctx context.Context) (*manager.Manager, error) {
	old := d.Manager
	envs := old.Envelopes()
	old.Detach()

	mgr, err := manager.New(d.cfg, d.starter)
	if err != nil {
		return nil, fmt.Errorf("deploy: rebuilding manager: %w", err)
	}
	mgr.Adopt(envs)
	d.ref.p.Store(mgr)
	d.Manager = mgr
	for _, e := range envs {
		_ = e.Reregister() // dead proclets are recovered via ctx expiry
	}
	if err := mgr.WaitRecovered(ctx); err != nil {
		return mgr, err
	}
	return mgr, nil
}

// Stop shuts the deployment down.
func (d *InProcess) Stop() {
	d.Manager.Stop()
	d.mu.Lock()
	procs := make([]*proclet.Proclet, 0, len(d.proclets))
	for _, p := range d.proclets {
		procs = append(procs, p)
	}
	d.proclets = map[string]*proclet.Proclet{}
	d.mu.Unlock()
	for _, p := range procs {
		p.Shutdown(nil)
	}
}
