// Package tracing implements lightweight distributed tracing for component
// method calls. Every cross-component call carries a trace context (trace
// id, span id) in its RPC header; proclets record completed spans and export
// them over the control plane, where the manager assembles them into
// end-to-end traces and feeds the call-graph analyzer (paper §5.1).
package tracing

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request.
type TraceID uint64

// SpanID identifies one operation within a trace.
type SpanID uint64

// SpanContext is the portion of a span that crosses process boundaries.
type SpanContext struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	// Sampled is the root tracer's sampling decision: made once where the
	// trace starts and carried to every hop (a flag bit on the wire), so a
	// multi-process trace is recorded in full or not at all, even if
	// processes were configured with different sampling fractions.
	Sampled bool
}

// Valid reports whether the context carries a real trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// A Span records one timed operation: a component method invocation.
// Spans cross the control-plane pipe, so the struct is tagged.
type Span struct {
	Trace      uint64 `tag:"1"`
	ID         uint64 `tag:"2"`
	Parent     uint64 `tag:"3"`
	Component  string `tag:"4"`
	Method     string `tag:"5"`
	Caller     string `tag:"6"` // calling component, "" for external entry
	StartNanos int64  `tag:"7"`
	EndNanos   int64  `tag:"8"`
	Err        string `tag:"9"`
	Remote     bool   `tag:"10"`
	Bytes      int64  `tag:"11"` // serialized request+response size
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration {
	return time.Duration(s.EndNanos - s.StartNanos)
}

type ctxKey struct{}

// NewTrace returns a fresh root span context.
func NewTrace() SpanContext {
	return SpanContext{Trace: TraceID(nonZero()), Span: SpanID(nonZero())}
}

// Child returns a new child context of sc, inheriting the sampling
// decision.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{Trace: sc.Trace, Span: SpanID(nonZero()), Parent: sc.Span, Sampled: sc.Sampled}
}

func nonZero() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// ContextWith returns ctx annotated with sc.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context from ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// Recorder accumulates completed spans for export. It applies head sampling:
// a trace is recorded iff its trace id falls inside the sampled fraction, so
// all processes make the same decision for a given trace without
// coordination.
type Recorder struct {
	mu       sync.Mutex
	spans    []Span
	max      int
	fraction float64 // sampled fraction in [0, 1]
}

// NewRecorder returns a recorder retaining at most max spans (0 =
// unlimited) and sampling the given fraction of traces.
func NewRecorder(max int, fraction float64) *Recorder {
	return &Recorder{max: max, fraction: fraction}
}

// Sampled reports whether spans of the given trace should be recorded.
func (r *Recorder) Sampled(t TraceID) bool {
	if r == nil || r.fraction <= 0 {
		return false
	}
	if r.fraction >= 1 {
		return true
	}
	return float64(t)/float64(^uint64(0)) < r.fraction
}

// Record stores a completed span if its trace is sampled by this
// recorder's fraction. Callers holding a SpanContext should prefer
// RecordSampled, which honors the root's decision carried on the wire.
func (r *Recorder) Record(s Span) {
	if r == nil || !r.Sampled(TraceID(s.Trace)) {
		return
	}
	r.record(s)
}

// RecordSampled stores a completed span iff sampled — the decision the
// trace's root made, regardless of this recorder's own fraction.
func (r *Recorder) RecordSampled(s Span, sampled bool) {
	if r == nil || !sampled {
		return
	}
	r.record(s)
}

func (r *Recorder) record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
	if r.max > 0 && len(r.spans) > r.max {
		r.spans = r.spans[len(r.spans)-r.max:]
	}
}

// Drain removes and returns all recorded spans.
func (r *Recorder) Drain() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.spans
	r.spans = nil
	return out
}

// Len reports the number of retained spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}
