package tracing

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func TestNewTraceAndChild(t *testing.T) {
	sc := NewTrace()
	if !sc.Valid() {
		t.Fatal("new trace invalid")
	}
	child := sc.Child()
	if child.Trace != sc.Trace {
		t.Error("child changed trace id")
	}
	if child.Parent != sc.Span {
		t.Error("child parent != parent span")
	}
	if child.Span == sc.Span {
		t.Error("child reused span id")
	}
}

func TestContextRoundTrip(t *testing.T) {
	sc := NewTrace()
	ctx := ContextWith(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Errorf("FromContext = %+v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Error("empty context carries a span")
	}
}

func TestRecorderSampling(t *testing.T) {
	always := NewRecorder(100, 1.0)
	never := NewRecorder(100, 0)
	span := Span{Trace: 42, ID: 1, Component: "C"}
	always.Record(span)
	never.Record(span)
	if always.Len() != 1 {
		t.Errorf("always recorder len = %d", always.Len())
	}
	if never.Len() != 0 {
		t.Errorf("never recorder len = %d", never.Len())
	}
}

func TestSamplingConsistentAcrossRecorders(t *testing.T) {
	// The same trace must get the same decision from any recorder with the
	// same fraction — that is what makes uncoordinated head sampling work
	// across processes.
	a := NewRecorder(0, 0.25)
	b := NewRecorder(0, 0.25)
	f := func(id uint64) bool {
		return a.Sampled(TraceID(id)) == b.Sampled(TraceID(id))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplingFractionApproximate(t *testing.T) {
	r := NewRecorder(0, 0.3)
	sampled := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Sampled(TraceID(NewTrace().Trace)) {
			sampled++
		}
	}
	frac := float64(sampled) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("sampled fraction = %.3f, want ~0.30", frac)
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(10, 1.0)
	for i := 0; i < 50; i++ {
		r.Record(Span{Trace: 1, ID: uint64(i + 1)})
	}
	spans := r.Drain()
	if len(spans) != 10 {
		t.Errorf("retained = %d", len(spans))
	}
	if spans[0].ID != 41 {
		t.Errorf("oldest retained = %d, want 41", spans[0].ID)
	}
	if r.Len() != 0 {
		t.Error("Drain did not empty recorder")
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{StartNanos: 1000, EndNanos: 4000}
	if s.Duration() != 3*time.Microsecond {
		t.Errorf("duration = %v", s.Duration())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Span{Trace: 1}) // must not panic
	if r.Sampled(1) {
		t.Error("nil recorder samples")
	}
}
