package manager

// This file is the actuator: the only code in the manager that starts
// replicas, stops them, or pushes routing to proclets. Reconcilers
// (internal/cplane) decide WHAT the fabric should look like; the actuator
// diffs desired against observed and performs the envelope operations, in
// a fixed order — routing pushes first, then starts, then stops — so no
// proclet keeps routing to a replica that is draining. `make lint`
// enforces that routing sends appear nowhere else in this package.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cplane"
	"repro/internal/envelope"
	"repro/internal/pipe"
	"repro/internal/routing"
)

// actuateOpts tunes one actuation pass. sync makes starts and stops block
// until done (StartGroup/ResizeGroup semantics); otherwise they run in the
// background as the control loops do.
type actuateOpts struct {
	sync bool
}

// An ActionRecord is one actuator action, kept in a bounded ring for the
// /control dashboard page.
type ActionRecord struct {
	When   time.Time
	Kind   string // "push", "start", "stop", "recover"
	Detail string
	Epoch  uint64 // routing epoch stamped, if any
}

// maxActionLog bounds the action ring.
const maxActionLog = 128

func (m *Manager) recordAction(kind, detail string, epoch uint64) {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	m.actions = append(m.actions, ActionRecord{When: m.clk.Now(), Kind: kind, Detail: detail, Epoch: epoch})
	if len(m.actions) > maxActionLog {
		m.actions = m.actions[len(m.actions)-maxActionLog:]
	}
}

// Actions returns the actuator's recent actions, oldest first.
func (m *Manager) Actions() []ActionRecord {
	m.actMu.Lock()
	defer m.actMu.Unlock()
	return append([]ActionRecord(nil), m.actions...)
}

// actuate executes an action plan: broadcast routing for dirty groups,
// launch requested replicas, gracefully stop marked ones. The plan's
// Starting counts are already committed to the store (reconcilers raise
// Starting in the desired state), so actuate only performs the launches.
func (m *Manager) actuate(ctx context.Context, acts cplane.Actions, opts actuateOpts) error {
	for _, group := range acts.Push {
		m.broadcastGroupRouting(group)
	}

	var firstErr error
	for _, a := range acts.Start {
		for i := 0; i < a.N; i++ {
			if opts.sync && a.Backoff == 0 {
				if err := m.launchReplica(ctx, a.Group); err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			}
			go func(a cplane.StartAction) {
				if a.Backoff > 0 {
					select {
					case <-m.clk.After(a.Backoff):
					case <-m.ctx.Done():
						m.store.Update(func(s *cplane.State) {
							if g := s.Groups[a.Group]; g != nil && g.Starting > 0 {
								g.Starting--
							}
						})
						return
					}
				}
				if err := m.launchReplica(m.ctx, a.Group); err != nil {
					m.cfg.Logger.Error("starting replica", err, "group", a.Group)
				}
			}(a)
		}
	}

	if len(acts.Stop) > 0 {
		m.mu.Lock()
		envs := make([]*envelope.Envelope, 0, len(acts.Stop))
		for _, a := range acts.Stop {
			if e := m.envs[a.Replica]; e != nil {
				envs = append(envs, e)
			}
		}
		m.mu.Unlock()
		for _, a := range acts.Stop {
			m.recordAction("stop", fmt.Sprintf("stopping %s", a.Replica), 0)
		}
		if opts.sync {
			var wg sync.WaitGroup
			for _, e := range envs {
				wg.Add(1)
				go func(e *envelope.Envelope) {
					defer wg.Done()
					e.Stop(5 * time.Second)
				}(e)
			}
			wg.Wait()
		} else {
			for _, e := range envs {
				go e.Stop(5 * time.Second)
			}
		}
	}
	return firstErr
}

// launchReplica starts one replica of a group through the deployer's
// Starter. The group's Starting count was already raised by the committed
// desired state; launchReplica decrements it when the launch resolves. The
// proclet usually registers (RegisterReplica) before the starter returns,
// so the replica record may already exist.
func (m *Manager) launchReplica(ctx context.Context, group string) error {
	var id string
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[group]
		if g == nil {
			return
		}
		id = fmt.Sprintf("%s/%d", group, g.NextID)
		g.NextID++
	})
	if id == "" {
		return fmt.Errorf("manager: unknown group %q", group)
	}
	if m.isStopped() {
		m.store.Update(func(s *cplane.State) {
			if g := s.Groups[group]; g != nil && g.Starting > 0 {
				g.Starting--
			}
		})
		return fmt.Errorf("manager: stopped")
	}
	m.recordAction("start", fmt.Sprintf("launching %s", id), 0)

	env, err := m.starter(ctx, group, id, m)

	m.store.Update(func(s *cplane.State) {
		g := s.Groups[group]
		if g == nil {
			return
		}
		if g.Starting > 0 {
			g.Starting--
		}
		if err != nil {
			return
		}
		if g.Replicas[id] == nil {
			g.Replicas[id] = &cplane.Replica{
				ID:         id,
				Healthy:    true,
				LastReport: m.clk.Now(),
				Applied:    map[string]uint64{},
			}
		}
	})
	if err != nil {
		m.cfg.Logger.Error("starting replica", err, "group", group, "replica", id)
		return err
	}
	m.mu.Lock()
	m.envelopes[env] = true
	m.envs[id] = env
	m.mu.Unlock()
	m.cfg.Logger.Info("replica started", "group", group, "replica", id)
	return nil
}

// stampGroupRouting draws one fresh epoch and builds the RoutingInfo
// messages for a group's components from the current ready replica set,
// stamping LastPush for each. This (with its callers below) is the single
// site that issues routing epochs.
func (m *Manager) stampGroupRouting(group string) []pipe.RoutingInfo {
	var out []pipe.RoutingInfo
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[group]
		if g == nil {
			return
		}
		addrs := s.ReadyAddrs(group)
		v := s.NextEpoch()
		out = make([]pipe.RoutingInfo, 0, len(g.Components))
		for _, c := range g.Components {
			ri := pipe.RoutingInfo{Component: c, Replicas: addrs, Version: v}
			if g.Routed[c] && len(addrs) > 0 {
				a := routing.EqualSlices(v, addrs, m.cfg.SlicesPerReplica)
				ri.Assignment = &a
			}
			s.LastPush[c] = cplane.Push{Version: v, Addrs: addrs}
			out = append(out, ri)
		}
	})
	return out
}

// noteApplied records a proclet's ack of a routing push in the observed
// state: the replica has applied this epoch for this component.
func (m *Manager) noteApplied(group, replicaID, component string, version uint64) {
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[group]
		if g == nil {
			return
		}
		rep := g.Replicas[replicaID]
		if rep == nil {
			return
		}
		if version > rep.Applied[component] {
			rep.Applied[component] = version
		}
	})
}

// broadcastGroupRouting pushes fresh routing info for a group's components
// to every envelope. Pushes are acked: each proclet's ack records the
// applied epoch in the observed state, closing the desired-vs-observed
// loop the /control page and the sim invariants inspect.
func (m *Manager) broadcastGroupRouting(group string) {
	infos := m.stampGroupRouting(group)
	if len(infos) == 0 {
		return
	}
	m.mu.Lock()
	envs := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		envs = append(envs, e)
	}
	m.mu.Unlock()
	m.recordAction("push", fmt.Sprintf("group %s: %d components to %d proclets, %d replicas",
		group, len(infos), len(envs), len(infos[0].Replicas)), infos[0].Version)
	for _, e := range envs {
		for _, ri := range infos {
			ri, e := ri, e
			_ = e.PushRoutingInfo(ri, func() {
				m.noteApplied(e.Group, e.ID, ri.Component, ri.Version)
			})
		}
	}
}

// pushGroupRoutingTo stamps and sends a group's routing info to a single
// envelope (the StartComponent fast path: the requester learns about
// already-running replicas immediately).
func (m *Manager) pushGroupRoutingTo(group string, e *envelope.Envelope) {
	for _, ri := range m.stampGroupRouting(group) {
		ri := ri
		_ = e.PushRoutingInfo(ri, func() {
			m.noteApplied(e.Group, e.ID, ri.Component, ri.Version)
		})
	}
}

// callRoutingInfo synchronously pushes one RoutingInfo to every envelope
// in envs and waits for all acks (re-placement's flip step). Successful
// acks record applied epochs like broadcasts do.
func (m *Manager) callRoutingInfo(ctx context.Context, envs []*envelope.Envelope, ri pipe.RoutingInfo) error {
	return m.forEachEnvelope(ctx, envs, func(sctx context.Context, e *envelope.Envelope) error {
		if err := e.CallRoutingInfo(sctx, ri); err != nil {
			return err
		}
		m.noteApplied(e.Group, e.ID, ri.Component, ri.Version)
		return nil
	})
}

// forEachEnvelope runs fn against every envelope in parallel with a
// per-step timeout and returns the first hard failure. An envelope whose
// proclet exited during the step does not fail the step: it is gone, and
// gone proclets hold no stale state.
func (m *Manager) forEachEnvelope(ctx context.Context, envs []*envelope.Envelope, fn func(context.Context, *envelope.Envelope) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(envs))
	for i, e := range envs {
		wg.Add(1)
		go func(i int, e *envelope.Envelope) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, moveStepTimeout)
			defer cancel()
			err := fn(sctx, e)
			if err == nil {
				return
			}
			select {
			case <-e.Done():
				return // replica exited mid-step; nothing to fence
			default:
			}
			errs[i] = err
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- control-plane introspection (the /control page) ---

// GroupControl summarizes one group's desired-vs-observed position.
type GroupControl struct {
	Name       string
	Components []string
	Target     int // last reconciler-desired replica count
	Starting   int
	Live       int // registered replicas
	Ready      int // routable replicas (ready, healthy, not stopping)
	Restarts   int
	// Lag counts (replica, component) pairs whose applied routing epoch
	// trails the newest stamped push for that component.
	Lag int
}

// ControlStatus is the control-plane snapshot the dashboard renders.
type ControlStatus struct {
	StateVersion uint64
	RouteEpoch   uint64
	Groups       []GroupControl
	Actions      []ActionRecord // oldest first
}

// ControlStatus summarizes the versioned control-plane state and the
// actuator's recent actions.
func (m *Manager) ControlStatus() ControlStatus {
	s := m.store.Snapshot()
	st := ControlStatus{
		StateVersion: s.Version,
		RouteEpoch:   s.RouteEpoch,
		Actions:      m.Actions(),
	}
	for _, name := range s.SortedGroupNames() {
		g := s.Groups[name]
		gc := GroupControl{
			Name:       name,
			Components: append([]string(nil), g.Components...),
			Target:     g.Target,
			Starting:   g.Starting,
			Live:       len(g.Replicas),
			Restarts:   g.Restarts,
		}
		ids := make([]string, 0, len(g.Replicas))
		for id := range g.Replicas {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			r := g.Replicas[id]
			if r.Ready && r.Healthy && !r.Stopping {
				gc.Ready++
			}
			for c, p := range s.LastPush {
				if p.Version > 0 && r.Applied[c] < p.Version {
					gc.Lag++
				}
			}
		}
		st.Groups = append(st.Groups, gc)
	}
	return st
}
