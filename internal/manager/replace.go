package manager

// This file implements live re-placement: the manager periodically
// re-plans colocation from the observed call graph and applies the plan to
// the running deployment by moving components between groups, without
// dropping or duplicating calls. See DESIGN.md §10 for the protocol.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/envelope"
	"repro/internal/pipe"
	"repro/internal/placement"
	"repro/internal/routing"
)

// A MoveRecord describes one applied re-placement move.
type MoveRecord struct {
	Component string
	From, To  string
	// Version is the routing epoch that flipped ownership to To.
	Version uint64
	When    time.Time
}

// PlacementStatus is a snapshot of the live re-placement state: what runs
// where, what the planner currently recommends, and what has been moved.
type PlacementStatus struct {
	// Current maps running group names to their components, and
	// CurrentScore is the fraction of observed calls it makes local.
	Current      map[string][]string
	CurrentScore float64
	// Recommended is the planner's latest plan for the same call graph.
	Recommended      map[string][]string
	RecommendedScore float64
	// TotalCalls is the call volume the scores are computed over.
	TotalCalls uint64
	// Moves lists applied moves, oldest first.
	Moves []MoveRecord
}

// grouping snapshots the current group -> components map.
func (m *Manager) grouping() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]string, len(m.groups))
	for name, g := range m.groups {
		out[name] = append([]string(nil), g.components...)
	}
	return out
}

// PlacementStatus computes the current placement snapshot.
func (m *Manager) PlacementStatus() PlacementStatus {
	g := m.graph.Analyze()
	var total uint64
	for _, e := range g.Edges {
		if e.Caller != "" {
			total += e.Calls
		}
	}
	current := m.grouping()
	ev := placement.Evaluate(g, m.cfg.Placement)
	return PlacementStatus{
		Current:          current,
		CurrentScore:     placement.Score(g, current),
		Recommended:      ev.Plan,
		RecommendedScore: ev.Score,
		TotalCalls:       total,
		Moves:            m.Moves(),
	}
}

// Moves returns the applied re-placement moves, oldest first.
func (m *Manager) Moves() []MoveRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MoveRecord(nil), m.moves...)
}

// placementLoop periodically re-plans and applies beneficial plans.
func (m *Manager) placementLoop() {
	ticker := time.NewTicker(m.cfg.PlacementInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := m.placementOnce(m.ctx); err != nil {
				m.cfg.Logger.Error("re-placement", err)
			}
		case <-m.ctx.Done():
			return
		}
	}
}

// placementOnce runs one iteration of the control loop: plan, compare
// against the running grouping, and move components if the gain clears the
// threshold. Components of the "main" group — the driver process — are
// never moved automatically in either direction.
func (m *Manager) placementOnce(ctx context.Context) error {
	g := m.graph.Analyze()
	var total uint64
	for _, e := range g.Edges {
		if e.Caller != "" {
			total += e.Calls
		}
	}
	if total < m.cfg.PlacementMinCalls {
		return nil // not enough signal yet
	}
	current := m.grouping()
	ev := placement.Evaluate(g, m.cfg.Placement)
	cur := placement.Score(g, current)
	if ev.Score-cur < m.cfg.PlacementMinGain {
		return nil // running grouping is good enough
	}
	moves := placement.Diff(current, ev.Plan)
	for _, mv := range moves {
		if mv.From == "main" || mv.To == "main" {
			continue
		}
		if err := m.MoveComponent(ctx, mv.Component, mv.To); err != nil {
			return fmt.Errorf("moving %s from %s to %s: %w", mv.Component, mv.From, mv.To, err)
		}
	}
	return nil
}

// moveStepTimeout bounds each acked step of a move, and moveReadyTimeout
// bounds waiting for the destination group's first ready replica.
const (
	moveStepTimeout  = 10 * time.Second
	moveReadyTimeout = 20 * time.Second
)

// MoveComponent relocates a component to another colocation group at
// runtime, drain-safely:
//
//  1. Ensure the destination group exists and runs a ready replica.
//  2. Host the component on every destination replica and wait until its
//     handlers serve (epoch vHost).
//  3. Under the manager lock, flip ownership in the group tables and stamp
//     a fresh epoch vFlip; broadcast the component's new routing to every
//     proclet and wait for all acks. From each proclet's ack on, its new
//     calls target the destination; calls already in flight complete where
//     they started.
//  4. Re-push hosting to destination replicas that registered mid-move.
//  5. Tell the old hosts to stop the component: each demotes its local
//     route, unregisters the handlers, and acks once in-flight calls have
//     drained. Stragglers that still reach the old hosts are refused with
//     a retryable never-executed status.
//
// Every step draws a strictly increasing epoch, so a step replayed late
// (after an ack timeout) is fenced out by whatever superseded it. Moves
// are serialized; concurrent calls queue.
func (m *Manager) MoveComponent(ctx context.Context, component, dest string) error {
	m.moveMu.Lock()
	defer m.moveMu.Unlock()

	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return fmt.Errorf("manager: stopped")
	}
	src, ok := m.compGroup[component]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: unknown component %q", component)
	}
	if src == dest {
		m.mu.Unlock()
		return nil
	}
	srcG := m.groups[src]
	dstG := m.groups[dest]
	if dstG == nil {
		if err := m.addGroupLocked(dest, nil); err != nil {
			m.mu.Unlock()
			return err
		}
		dstG = m.groups[dest]
	}
	routed := srcG.routed[component]
	m.mu.Unlock()

	// Step 1: a ready destination replica.
	min := dstG.as.Config().MinReplicas
	if min < 1 {
		min = 1
	}
	if err := m.StartGroup(ctx, dest, min); err != nil {
		return err
	}
	if err := m.waitGroupReady(ctx, dstG); err != nil {
		return err
	}

	// Step 2: host on the destination.
	m.mu.Lock()
	vHost := m.nextEpochLocked()
	comps := append(append([]string(nil), dstG.components...), component)
	hosted := m.readyEnvelopesLocked(dstG)
	m.mu.Unlock()
	hostOn := func(envs []*envelope.Envelope, v uint64) error {
		return m.forEachEnvelope(ctx, envs, func(sctx context.Context, e *envelope.Envelope) error {
			return e.CallHostComponents(sctx, comps, v)
		})
	}
	if err := hostOn(hosted, vHost); err != nil {
		return fmt.Errorf("manager: hosting %s on %s: %w", component, dest, err)
	}

	// Step 3: flip ownership + routing under one epoch, broadcast, await
	// all acks.
	m.mu.Lock()
	srcG.components = removeString(srcG.components, component)
	delete(srcG.routed, component)
	dstG.components = append(dstG.components, component)
	sort.Strings(dstG.components)
	dstG.routed[component] = routed
	m.compGroup[component] = dest
	vFlip := m.nextEpochLocked()
	addrs := readyAddrsLocked(dstG)
	ri := pipe.RoutingInfo{Component: component, Replicas: addrs, Version: vFlip}
	if routed && len(addrs) > 0 {
		a := routing.EqualSlices(vFlip, addrs, m.cfg.SlicesPerReplica)
		ri.Assignment = &a
	}
	m.lastPush[component] = pushRecord{version: vFlip, addrs: addrs}
	all := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		all = append(all, e)
	}
	srcReps := m.readyEnvelopesLocked(srcG)
	m.mu.Unlock()
	if err := m.forEachEnvelope(ctx, all, func(sctx context.Context, e *envelope.Envelope) error {
		return e.CallRoutingInfo(sctx, ri)
	}); err != nil {
		// Ownership already flipped; leave the old hosts serving as a
		// safety net for whoever missed the ack and report the failure.
		return fmt.Errorf("manager: broadcasting routing for %s: %w", component, err)
	}

	// Step 4: destination replicas that registered between steps 2 and 3
	// fetched their hosting list before the flip; re-push so they host the
	// component too (idempotent on the others).
	m.mu.Lock()
	vHost2 := m.nextEpochLocked()
	late := m.readyEnvelopesLocked(dstG)
	m.mu.Unlock()
	if len(late) > len(hosted) {
		if err := hostOn(late, vHost2); err != nil {
			return fmt.Errorf("manager: re-hosting %s on %s: %w", component, dest, err)
		}
	}

	// Step 5: drain and release on the old hosts.
	if err := m.forEachEnvelope(ctx, srcReps, func(sctx context.Context, e *envelope.Envelope) error {
		return e.CallStopComponent(sctx, component, vFlip)
	}); err != nil {
		return fmt.Errorf("manager: draining %s on %s: %w", component, src, err)
	}

	rec := MoveRecord{Component: component, From: src, To: dest, Version: vFlip, When: time.Now()}
	m.mu.Lock()
	m.moves = append(m.moves, rec)
	if len(m.moves) > 256 {
		m.moves = m.moves[len(m.moves)-256:]
	}
	m.mu.Unlock()
	m.cfg.Logger.Info("component moved", "component", component, "from", src, "to", dest, "epoch", fmt.Sprint(vFlip))
	return nil
}

// waitGroupReady blocks until g has at least one routable replica.
func (m *Manager) waitGroupReady(ctx context.Context, g *group) error {
	deadline := time.Now().Add(moveReadyTimeout)
	for {
		m.mu.Lock()
		n := len(readyAddrsLocked(g))
		m.mu.Unlock()
		if n > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("manager: group %q has no ready replica", g.name)
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		case <-m.ctx.Done():
			return fmt.Errorf("manager: stopped")
		}
	}
}

// readyEnvelopesLocked returns the envelopes of g's routable replicas.
// Caller holds m.mu.
func (m *Manager) readyEnvelopesLocked(g *group) []*envelope.Envelope {
	var envs []*envelope.Envelope
	for _, r := range g.replicas {
		if r.ready && r.healthy && !r.stopping && r.env != nil {
			envs = append(envs, r.env)
		}
	}
	return envs
}

// forEachEnvelope runs fn against every envelope in parallel with a
// per-step timeout and returns the first hard failure. An envelope whose
// proclet exited during the step does not fail the move: it is gone, and
// gone proclets hold no stale state.
func (m *Manager) forEachEnvelope(ctx context.Context, envs []*envelope.Envelope, fn func(context.Context, *envelope.Envelope) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(envs))
	for i, e := range envs {
		wg.Add(1)
		go func(i int, e *envelope.Envelope) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, moveStepTimeout)
			defer cancel()
			err := fn(sctx, e)
			if err == nil {
				return
			}
			select {
			case <-e.Done():
				return // replica exited mid-step; nothing to fence
			default:
			}
			errs[i] = err
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
