package manager

// This file implements live re-placement: the manager periodically
// re-plans colocation from the observed call graph and applies the plan to
// the running deployment by moving components between groups, without
// dropping or duplicating calls. See DESIGN.md §10 for the protocol. The
// planning half is the pure cplane.ReconcilePlacement reconciler; this
// file is the move actuation.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cplane"
	"repro/internal/envelope"
	"repro/internal/pipe"
	"repro/internal/placement"
	"repro/internal/routing"
)

// A MoveRecord describes one applied re-placement move.
type MoveRecord struct {
	Component string
	From, To  string
	// Version is the routing epoch that flipped ownership to To.
	Version uint64
	When    time.Time
}

// PlacementStatus is a snapshot of the live re-placement state: what runs
// where, what the planner currently recommends, and what has been moved.
type PlacementStatus struct {
	// Current maps running group names to their components, and
	// CurrentScore is the fraction of observed calls it makes local.
	Current      map[string][]string
	CurrentScore float64
	// Recommended is the planner's latest plan for the same call graph.
	Recommended      map[string][]string
	RecommendedScore float64
	// TotalCalls is the call volume the scores are computed over.
	TotalCalls uint64
	// Moves lists applied moves, oldest first.
	Moves []MoveRecord
}

// grouping snapshots the current group -> components map.
func (m *Manager) grouping() map[string][]string {
	s := m.store.Snapshot()
	out := make(map[string][]string, len(s.Groups))
	for name, g := range s.Groups {
		out[name] = append([]string(nil), g.Components...)
	}
	return out
}

// PlacementStatus computes the current placement snapshot.
func (m *Manager) PlacementStatus() PlacementStatus {
	g := m.graph.Analyze()
	var total uint64
	for _, e := range g.Edges {
		if e.Caller != "" {
			total += e.Calls
		}
	}
	current := m.grouping()
	ev := placement.Evaluate(g, m.cfg.Placement)
	return PlacementStatus{
		Current:          current,
		CurrentScore:     placement.Score(g, current),
		Recommended:      ev.Plan,
		RecommendedScore: ev.Score,
		TotalCalls:       total,
		Moves:            m.Moves(),
	}
}

// Moves returns the applied re-placement moves, oldest first.
func (m *Manager) Moves() []MoveRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MoveRecord(nil), m.moves...)
}

// placementLoop periodically re-plans and applies beneficial plans.
func (m *Manager) placementLoop() {
	ticker := time.NewTicker(m.cfg.PlacementInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := m.placementOnce(m.ctx); err != nil {
				m.cfg.Logger.Error("re-placement", err)
			}
		case <-m.ctx.Done():
			return
		}
	}
}

// placementOnce runs one iteration of the control loop: the pure
// reconciler plans from the observed state and merged call graph, and the
// moves it returns (if any) are applied one by one.
func (m *Manager) placementOnce(ctx context.Context) error {
	moves := cplane.ReconcilePlacement(m.store.Snapshot(), m.graph.Analyze(),
		m.cfg.Placement, m.cfg.PlacementMinGain, m.cfg.PlacementMinCalls)
	for _, mv := range moves {
		if err := m.MoveComponent(ctx, mv.Component, mv.To); err != nil {
			return fmt.Errorf("moving %s from %s to %s: %w", mv.Component, mv.From, mv.To, err)
		}
	}
	return nil
}

// moveStepTimeout bounds each acked step of a move, and moveReadyTimeout
// bounds waiting for the destination group's first ready replica.
const (
	moveStepTimeout  = 10 * time.Second
	moveReadyTimeout = 20 * time.Second
)

// MoveComponent relocates a component to another colocation group at
// runtime, drain-safely:
//
//  1. Ensure the destination group exists and runs a ready replica.
//  2. Host the component on every destination replica and wait until its
//     handlers serve (epoch vHost).
//  3. In one store update, flip ownership in the control-plane state and
//     stamp a fresh epoch vFlip; broadcast the component's new routing to
//     every proclet and wait for all acks. From each proclet's ack on, its
//     new calls target the destination; calls already in flight complete
//     where they started.
//  4. Re-push hosting to destination replicas that registered mid-move.
//  5. Tell the old hosts to stop the component: each demotes its local
//     route, unregisters the handlers, and acks once in-flight calls have
//     drained. Stragglers that still reach the old hosts are refused with
//     a retryable never-executed status.
//
// Every step draws a strictly increasing epoch, so a step replayed late
// (after an ack timeout) is fenced out by whatever superseded it. Moves
// are serialized; concurrent calls queue.
func (m *Manager) MoveComponent(ctx context.Context, component, dest string) error {
	m.moveMu.Lock()
	defer m.moveMu.Unlock()

	if m.isStopped() {
		return fmt.Errorf("manager: stopped")
	}
	var (
		src      string
		known    bool
		addGroup error
	)
	m.store.Update(func(s *cplane.State) {
		src, known = s.CompGroup[component]
		if !known || src == dest {
			return
		}
		if s.Groups[dest] == nil {
			addGroup = m.addGroupTo(s, dest, nil)
		}
	})
	if !known {
		return fmt.Errorf("manager: unknown component %q", component)
	}
	if src == dest {
		return nil
	}
	if addGroup != nil {
		return addGroup
	}

	// Step 1: a ready destination replica.
	min := m.scaler(dest).Config().MinReplicas
	if min < 1 {
		min = 1
	}
	if err := m.StartGroup(ctx, dest, min); err != nil {
		return err
	}
	if err := m.waitGroupReady(ctx, dest); err != nil {
		return err
	}

	// Step 2: host on the destination.
	var (
		vHost  uint64
		comps  []string
		hosted []*envelope.Envelope
	)
	m.store.Update(func(s *cplane.State) {
		vHost = s.NextEpoch()
		comps = append(append([]string(nil), s.Groups[dest].Components...), component)
		hosted = m.readyEnvelopes(s, dest)
	})
	hostOn := func(envs []*envelope.Envelope, v uint64) error {
		return m.forEachEnvelope(ctx, envs, func(sctx context.Context, e *envelope.Envelope) error {
			return e.CallHostComponents(sctx, comps, v)
		})
	}
	if err := hostOn(hosted, vHost); err != nil {
		return fmt.Errorf("manager: hosting %s on %s: %w", component, dest, err)
	}

	// Step 3: flip ownership + routing under one epoch, broadcast, await
	// all acks.
	var (
		vFlip   uint64
		ri      pipe.RoutingInfo
		srcReps []*envelope.Envelope
	)
	m.store.Update(func(s *cplane.State) {
		routed := s.Groups[src].Routed[component]
		_ = s.Relocate(component, dest)
		vFlip = s.NextEpoch()
		addrs := s.ReadyAddrs(dest)
		ri = pipe.RoutingInfo{Component: component, Replicas: addrs, Version: vFlip}
		if routed && len(addrs) > 0 {
			a := routing.EqualSlices(vFlip, addrs, m.cfg.SlicesPerReplica)
			ri.Assignment = &a
		}
		s.LastPush[component] = cplane.Push{Version: vFlip, Addrs: addrs}
		srcReps = m.readyEnvelopes(s, src)
	})
	m.mu.Lock()
	all := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		all = append(all, e)
	}
	m.mu.Unlock()
	m.recordAction("push", fmt.Sprintf("move flip %s -> %s", component, dest), vFlip)
	if err := m.callRoutingInfo(ctx, all, ri); err != nil {
		// Ownership already flipped; leave the old hosts serving as a
		// safety net for whoever missed the ack and report the failure.
		return fmt.Errorf("manager: broadcasting routing for %s: %w", component, err)
	}

	// Step 4: destination replicas that registered between steps 2 and 3
	// fetched their hosting list before the flip; re-push so they host the
	// component too (idempotent on the others).
	var (
		vHost2 uint64
		late   []*envelope.Envelope
	)
	m.store.Update(func(s *cplane.State) {
		vHost2 = s.NextEpoch()
		late = m.readyEnvelopes(s, dest)
	})
	if len(late) > len(hosted) {
		if err := hostOn(late, vHost2); err != nil {
			return fmt.Errorf("manager: re-hosting %s on %s: %w", component, dest, err)
		}
	}

	// Step 5: drain and release on the old hosts.
	if err := m.forEachEnvelope(ctx, srcReps, func(sctx context.Context, e *envelope.Envelope) error {
		return e.CallStopComponent(sctx, component, vFlip)
	}); err != nil {
		return fmt.Errorf("manager: draining %s on %s: %w", component, src, err)
	}

	rec := MoveRecord{Component: component, From: src, To: dest, Version: vFlip, When: time.Now()}
	m.mu.Lock()
	m.moves = append(m.moves, rec)
	if len(m.moves) > 256 {
		m.moves = m.moves[len(m.moves)-256:]
	}
	m.mu.Unlock()
	m.cfg.Logger.Info("component moved", "component", component, "from", src, "to", dest, "epoch", fmt.Sprint(vFlip))
	return nil
}

// waitGroupReady blocks until a group has at least one routable replica.
func (m *Manager) waitGroupReady(ctx context.Context, group string) error {
	deadline := time.Now().Add(moveReadyTimeout)
	for {
		if len(m.store.Snapshot().ReadyAddrs(group)) > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("manager: group %q has no ready replica", group)
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		case <-m.ctx.Done():
			return fmt.Errorf("manager: stopped")
		}
	}
}

// readyEnvelopes returns the envelopes of a group's routable replicas per
// the state snapshot s.
func (m *Manager) readyEnvelopes(s *cplane.State, group string) []*envelope.Envelope {
	ids := s.ReadyReplicaIDs(group)
	m.mu.Lock()
	defer m.mu.Unlock()
	var envs []*envelope.Envelope
	for _, id := range ids {
		if e := m.envs[id]; e != nil {
			envs = append(envs, e)
		}
	}
	return envs
}
