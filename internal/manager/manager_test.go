package manager

import (
	"context"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/logging"
)

func inventory() []ComponentInfo {
	return []ComponentInfo{
		{Name: "app/A"},
		{Name: "app/B", Routed: true},
		{Name: "app/C"},
	}
}

func noStart(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
	panic("no replicas should start in this test")
}

func quietLogger() *logging.Logger {
	return logging.New(logging.Options{Component: "test", Sink: logging.Discard})
}

func TestGroupAssignment(t *testing.T) {
	m, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups:     map[string][]string{"pair": {"app/A", "app/B"}},
		Logger:     quietLogger(),
	}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	if g, _ := m.GroupOf("app/A"); g != "pair" {
		t.Errorf("A in %q", g)
	}
	if g, _ := m.GroupOf("app/B"); g != "pair" {
		t.Errorf("B in %q", g)
	}
	// C gets a singleton group named by its short name.
	if g, _ := m.GroupOf("app/C"); g != "C" {
		t.Errorf("C in %q", g)
	}
	// The main group always exists.
	found := false
	for _, gs := range m.Status() {
		if gs.Name == "main" {
			found = true
		}
	}
	if !found {
		t.Error("no main group")
	}
}

func TestRejectsUnknownComponentInGroup(t *testing.T) {
	_, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups:     map[string][]string{"g": {"app/Nope"}},
		Logger:     quietLogger(),
	}, noStart)
	if err == nil || !strings.Contains(err.Error(), "unknown component") {
		t.Errorf("err = %v", err)
	}
}

func TestRejectsComponentInTwoGroups(t *testing.T) {
	_, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups: map[string][]string{
			"g1": {"app/A"},
			"g2": {"app/A"},
		},
		Logger: quietLogger(),
	}, noStart)
	if err == nil || !strings.Contains(err.Error(), "groups") {
		t.Errorf("err = %v", err)
	}
}

func TestRejectsEmptyInventory(t *testing.T) {
	if _, err := New(Config{App: "t", Logger: quietLogger()}, noStart); err == nil {
		t.Error("empty inventory accepted")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop()
}

func TestUnknownGroupStart(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.StartGroup(context.Background(), "nope", 1); err == nil {
		t.Error("starting unknown group succeeded")
	}
}

func TestReplicaCountUnknownGroup(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if n := m.ReplicaCount("nope"); n != 0 {
		t.Errorf("count = %d", n)
	}
}
