package manager

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/pipe"
)

func inventory() []ComponentInfo {
	return []ComponentInfo{
		{Name: "app/A"},
		{Name: "app/B", Routed: true},
		{Name: "app/C"},
	}
}

func noStart(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
	panic("no replicas should start in this test")
}

func quietLogger() *logging.Logger {
	return logging.New(logging.Options{Component: "test", Sink: logging.Discard})
}

func TestGroupAssignment(t *testing.T) {
	m, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups:     map[string][]string{"pair": {"app/A", "app/B"}},
		Logger:     quietLogger(),
	}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	if g, _ := m.GroupOf("app/A"); g != "pair" {
		t.Errorf("A in %q", g)
	}
	if g, _ := m.GroupOf("app/B"); g != "pair" {
		t.Errorf("B in %q", g)
	}
	// C gets a singleton group named by its short name.
	if g, _ := m.GroupOf("app/C"); g != "C" {
		t.Errorf("C in %q", g)
	}
	// The main group always exists.
	found := false
	for _, gs := range m.Status() {
		if gs.Name == "main" {
			found = true
		}
	}
	if !found {
		t.Error("no main group")
	}
}

func TestRejectsUnknownComponentInGroup(t *testing.T) {
	_, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups:     map[string][]string{"g": {"app/Nope"}},
		Logger:     quietLogger(),
	}, noStart)
	if err == nil || !strings.Contains(err.Error(), "unknown component") {
		t.Errorf("err = %v", err)
	}
}

func TestRejectsComponentInTwoGroups(t *testing.T) {
	_, err := New(Config{
		App:        "t",
		Components: inventory(),
		Groups: map[string][]string{
			"g1": {"app/A"},
			"g2": {"app/A"},
		},
		Logger: quietLogger(),
	}, noStart)
	if err == nil || !strings.Contains(err.Error(), "groups") {
		t.Errorf("err = %v", err)
	}
}

func TestRejectsEmptyInventory(t *testing.T) {
	if _, err := New(Config{App: "t", Logger: quietLogger()}, noStart); err == nil {
		t.Error("empty inventory accepted")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop()
}

func TestUnknownGroupStart(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.StartGroup(context.Background(), "nope", 1); err == nil {
		t.Error("starting unknown group succeeded")
	}
}

func TestReplicaCountUnknownGroup(t *testing.T) {
	m, err := New(Config{App: "t", Components: inventory(), Logger: quietLogger()}, noStart)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if n := m.ReplicaCount("nope"); n != 0 {
		t.Errorf("count = %d", n)
	}
}

// fleet is a test starter that attaches real envelopes to dangling pipe
// ends (no proclet behind them) and counts launches.
type fleet struct {
	mu    sync.Mutex
	count int
	ids   []string
	envs  []*envelope.Envelope
	conns []*pipe.Conn
}

func (f *fleet) starter(ctx context.Context, group, id string, mgr envelope.Manager) (*envelope.Envelope, error) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		return nil, err
	}
	e := envelope.Attach(id, group, envConn, mgr)
	f.mu.Lock()
	f.count++
	f.ids = append(f.ids, id)
	f.envs = append(f.envs, e)
	f.conns = append(f.conns, procConn)
	f.mu.Unlock()
	return e, nil
}

func (f *fleet) launches() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

func (f *fleet) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.conns {
		c.Close()
	}
}

// TestRestartBackoffOnFakeClock pins the crash-restart policy to the
// injected clock: after a crash the relaunch must wait exactly
// restartBackoff on the manager's clock — no relaunch while the fake clock
// stands still, a relaunch as soon as it advances past the backoff.
func TestRestartBackoffOnFakeClock(t *testing.T) {
	fake := clock.NewFake()
	f := &fleet{}
	m, err := New(Config{
		App:           "t",
		Components:    inventory(),
		ScaleInterval: time.Hour, // park the autoscaler; the test owns time
		Clock:         fake,
		Logger:        quietLogger(),
	}, f.starter)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	defer f.close()

	if err := m.StartGroup(context.Background(), "A", 1); err != nil {
		t.Fatal(err)
	}
	if n := f.launches(); n != 1 {
		t.Fatalf("launches after StartGroup = %d, want 1", n)
	}

	// Crash the replica. The restart must arm a timer on the fake clock.
	f.mu.Lock()
	crashed := f.envs[0]
	f.mu.Unlock()
	m.ReplicaExited(crashed, errors.New("boom"))

	deadline := time.Now().Add(2 * time.Second)
	for fake.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restart never armed a timer on the injected clock")
		}
		time.Sleep(time.Millisecond)
	}
	if n := f.launches(); n != 1 {
		t.Fatalf("relaunched before the backoff elapsed: launches = %d", n)
	}

	// Just short of the backoff: still nothing.
	fake.Advance(restartBackoff - time.Millisecond)
	if fake.Waiting() != 1 {
		t.Fatalf("timer fired %v early", time.Millisecond)
	}
	if n := f.launches(); n != 1 {
		t.Fatalf("relaunched %v early: launches = %d", time.Millisecond, n)
	}

	// Past the backoff: the relaunch happens.
	fake.Advance(time.Millisecond)
	deadline = time.Now().Add(2 * time.Second)
	for f.launches() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no relaunch after advancing past the backoff: launches = %d", f.launches())
		}
		time.Sleep(time.Millisecond)
	}
	f.mu.Lock()
	relaunched := f.ids[1]
	f.mu.Unlock()
	if relaunched != "A/1" {
		t.Errorf("relaunched replica id = %q, want A/1", relaunched)
	}
}
