// Package manager implements the global manager from the paper's deployer
// architecture (Figure 3): the control plane that decides where components
// run, how many replicas each group gets, and how requests are routed. It
// receives proclet API calls (Table 1) relayed by envelopes, launches new
// replicas through a deployer-provided Starter, feeds load reports to the
// autoscaler, aggregates metrics/logs/traces, and pushes routing updates.
//
// The manager is strictly a control plane: proclets exchange data-plane
// traffic directly with one another.
package manager

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/tracing"
)

// ComponentInfo describes one component of the application being deployed.
// Deployers obtain the inventory from the application binary itself
// (WEAVER_DESCRIBE) or from the in-process registry.
type ComponentInfo struct {
	Name   string
	Routed bool
}

// Config parameterizes a deployment.
type Config struct {
	// App names the application; Version identifies this rollout.
	App     string
	Version string

	// Components is the application's component inventory.
	Components []ComponentInfo

	// Groups maps a colocation group name to the full names of the
	// components it hosts. Components in the same group share an OS
	// process. Components not mentioned anywhere get a singleton group of
	// their own (the paper's apples-to-apples "no co-location" default).
	// The special group "main" is the driver process started by the
	// deployer; it exists even if it hosts no components.
	Groups map[string][]string

	// DefaultAutoscale applies to groups without an explicit entry in
	// Autoscale.
	DefaultAutoscale autoscale.Config
	Autoscale        map[string]autoscale.Config

	// SlicesPerReplica controls affinity-assignment granularity.
	SlicesPerReplica int

	// ScaleInterval is the autoscaler evaluation period (default 500ms).
	ScaleInterval time.Duration

	// ReplicaStaleAfter marks a replica unhealthy when it has not reported
	// load for this long (default 5s).
	ReplicaStaleAfter time.Duration

	// MaxRestarts bounds automatic restarts of crashed replicas per group
	// (default 8).
	MaxRestarts int

	// MaxInflightPerReplica bounds concurrently executing data-plane
	// requests in each replica; MaxOverloadQueue bounds the admission wait
	// queue beyond that. Requests past both bounds are shed with a fast
	// overloaded status instead of queueing unboundedly (paper §5: the
	// runtime owns graceful handling of overload). Zero means unlimited.
	// Deployers read these when starting replicas.
	MaxInflightPerReplica int
	MaxOverloadQueue      int

	// PlacementInterval enables the live re-placement control loop: every
	// interval the manager re-plans colocation from the merged call graph
	// and, when the plan's locality score beats the running grouping by at
	// least PlacementMinGain, moves components between groups at runtime.
	// Zero disables the loop; MoveComponent remains available either way.
	PlacementInterval time.Duration
	// PlacementMinGain is the minimum locality-score improvement (absolute,
	// in [0,1]) worth moving components for (default 0.05).
	PlacementMinGain float64
	// PlacementMinCalls is how many calls the merged graph must have seen
	// before the loop trusts it enough to plan (default 100).
	PlacementMinCalls uint64
	// Placement bounds the plans the loop computes.
	Placement placement.Config

	Logger *logging.Logger
}

// Starter launches one replica of a group and returns its envelope. The
// manager passes itself as the envelope's Manager.
type Starter func(ctx context.Context, group, replicaID string, mgr envelope.Manager) (*envelope.Envelope, error)

type replica struct {
	id    string
	env   *envelope.Envelope
	addr  string
	ready bool

	healthy    bool
	rate       float64
	lastReport time.Time

	stopping bool
}

type group struct {
	name       string
	components []string
	routed     map[string]bool
	replicas   map[string]*replica
	as         *autoscale.Autoscaler
	nextID     int
	restarts   int
	starting   int // replicas being started right now
}

// Manager is the global manager.
type Manager struct {
	cfg     Config
	starter Starter
	ctx     context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	groups    map[string]*group
	compGroup map[string]string
	envelopes map[*envelope.Envelope]bool
	known     map[string]bool // component inventory
	routedSet map[string]bool // routed components of the inventory
	stopped   bool

	// routeVersion is the global routing epoch: every routing broadcast
	// and every re-placement step draws a fresh, strictly increasing value
	// from it (under mu). Proclets and balancers discard anything older
	// than what they have applied, so delayed or reordered pushes can
	// never resurrect a superseded placement.
	routeVersion uint64

	// lastPush records, per component, the newest routing info stamped for
	// broadcast (epoch + replica addresses). Test harnesses use it as the
	// settle barrier: once every live proclet has applied this epoch, the
	// fabric has quiesced after a topology change.
	lastPush map[string]pushRecord

	// moveMu serializes re-placement moves; moves (under mu) records the
	// applied ones.
	moveMu sync.Mutex
	moves  []MoveRecord

	logs    *logging.Aggregator
	graph   *callgraph.Collector
	metrics map[string][]metrics.Snapshot // replica id -> latest snapshot

	traceMu sync.Mutex
	spans   []tracing.Span
}

// New builds a manager for the given deployment. Call Stop when done.
func New(cfg Config, starter Starter) (*Manager, error) {
	if len(cfg.Components) == 0 {
		return nil, fmt.Errorf("manager: no components in inventory")
	}
	if cfg.Logger == nil {
		cfg.Logger = logging.New(logging.Options{Component: "manager"})
	}
	if cfg.ScaleInterval <= 0 {
		cfg.ScaleInterval = 500 * time.Millisecond
	}
	if cfg.ReplicaStaleAfter <= 0 {
		cfg.ReplicaStaleAfter = 5 * time.Second
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.SlicesPerReplica <= 0 {
		cfg.SlicesPerReplica = 4
	}
	if cfg.PlacementMinGain <= 0 {
		cfg.PlacementMinGain = 0.05
	}
	if cfg.PlacementMinCalls == 0 {
		cfg.PlacementMinCalls = 100
	}

	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		starter:   starter,
		ctx:       ctx,
		cancel:    cancel,
		groups:    map[string]*group{},
		compGroup: map[string]string{},
		envelopes: map[*envelope.Envelope]bool{},
		lastPush:  map[string]pushRecord{},
		logs:      logging.NewAggregator(200000),
		graph:     callgraph.NewCollector(),
		metrics:   map[string][]metrics.Snapshot{},
	}

	m.known = map[string]bool{}
	m.routedSet = map[string]bool{}
	for _, c := range cfg.Components {
		m.known[c.Name] = true
		if c.Routed {
			m.routedSet[c.Name] = true
		}
	}

	// Explicit groups first, in sorted order for determinism.
	groupNames := make([]string, 0, len(cfg.Groups))
	for name := range cfg.Groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		if err := m.addGroupLocked(name, cfg.Groups[name]); err != nil {
			return nil, err
		}
	}
	// The main group always exists.
	if _, ok := m.groups["main"]; !ok {
		if err := m.addGroupLocked("main", nil); err != nil {
			return nil, err
		}
	}
	// Singleton groups for everything else.
	for _, c := range cfg.Components {
		if _, ok := m.compGroup[c.Name]; ok {
			continue
		}
		name := core.ShortName(c.Name)
		if _, clash := m.groups[name]; clash {
			name = strings.ReplaceAll(c.Name, "/", ".")
		}
		if err := m.addGroupLocked(name, []string{c.Name}); err != nil {
			return nil, err
		}
	}

	go m.scaleLoop()
	if cfg.PlacementInterval > 0 {
		go m.placementLoop()
	}
	return m, nil
}

// addGroupLocked creates a colocation group. The caller holds m.mu (or, in
// New, is the only goroutine with access). Re-placement uses it to create
// destination groups recommended by the planner at runtime.
func (m *Manager) addGroupLocked(name string, components []string) error {
	if _, dup := m.groups[name]; dup {
		return fmt.Errorf("manager: duplicate group %q", name)
	}
	g := &group{
		name:       name,
		components: append([]string(nil), components...),
		routed:     map[string]bool{},
		replicas:   map[string]*replica{},
	}
	asCfg := m.cfg.DefaultAutoscale
	if c, ok := m.cfg.Autoscale[name]; ok {
		asCfg = c
	}
	g.as = autoscale.New(asCfg)
	for _, c := range components {
		if !m.known[c] {
			return fmt.Errorf("manager: group %q lists unknown component %q", name, c)
		}
		if prev, taken := m.compGroup[c]; taken {
			return fmt.Errorf("manager: component %q in groups %q and %q", c, prev, name)
		}
		m.compGroup[c] = name
		g.routed[c] = m.routedSet[c]
	}
	m.groups[name] = g
	return nil
}

// GroupOf returns the colocation group hosting a component.
func (m *Manager) GroupOf(component string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.compGroup[component]
	return g, ok
}

// LogAggregator returns the manager's log aggregator.
func (m *Manager) LogAggregator() *logging.Aggregator { return m.logs }

// Graph returns the aggregated application call graph.
func (m *Manager) Graph() *callgraph.Collector { return m.graph }

// Spans returns a copy of the collected trace spans.
func (m *Manager) Spans() []tracing.Span {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	return append([]tracing.Span(nil), m.spans...)
}

// MergedMetrics aggregates the latest metric snapshot across all replicas.
func (m *Manager) MergedMetrics() map[string]metrics.Snapshot {
	m.mu.Lock()
	batches := make([][]metrics.Snapshot, 0, len(m.metrics))
	for _, b := range m.metrics {
		batches = append(batches, b)
	}
	m.mu.Unlock()
	return metrics.MergeAll(batches...)
}

// StartGroup ensures that the named group is running at least n replicas.
// The deployer calls it for "main"; everything else starts on demand.
func (m *Manager) StartGroup(ctx context.Context, name string, n int) error {
	m.mu.Lock()
	g, ok := m.groups[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: unknown group %q", name)
	}
	need := n - len(g.replicas) - g.starting
	g.starting += max(0, need)
	m.mu.Unlock()
	var firstErr error
	for i := 0; i < need; i++ {
		if err := m.startReplica(ctx, g); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ResizeGroup sets a group's replica count to exactly n, synchronously:
// scale-ups return once the new replicas are started, scale-downs once the
// stopped replicas (newest first) have drained and exited. It is the
// scriptable replica lifecycle used by the simulation harness; unlike the
// autoscaler it is driven by the test schedule, not by load.
func (m *Manager) ResizeGroup(ctx context.Context, name string, n int) error {
	if n < 0 {
		return fmt.Errorf("manager: negative replica target %d for group %q", n, name)
	}
	m.mu.Lock()
	g, ok := m.groups[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: unknown group %q", name)
	}
	live := g.starting
	for _, r := range g.replicas {
		if !r.stopping {
			live++
		}
	}
	if n > live {
		need := n - live
		g.starting += need
		m.mu.Unlock()
		var firstErr error
		for i := 0; i < need; i++ {
			if err := m.startReplica(ctx, g); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	// Scale down: gracefully stop the newest replicas first, as the
	// autoscaler does, so drains are exercised rather than crashes.
	var stop []*replica
	ids := make([]string, 0, len(g.replicas))
	for id := range g.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i := len(ids) - 1; i >= 0 && live > n; i-- {
		r := g.replicas[ids[i]]
		if !r.stopping {
			r.stopping = true
			stop = append(stop, r)
			live--
		}
	}
	m.mu.Unlock()
	if len(stop) == 0 {
		return nil
	}
	m.broadcastGroupRouting(g)
	var wg sync.WaitGroup
	for _, r := range stop {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			r.env.Stop(5 * time.Second)
		}(r)
	}
	wg.Wait()
	return nil
}

// startReplica launches one replica of g. The caller must have incremented
// g.starting; startReplica decrements it.
func (m *Manager) startReplica(ctx context.Context, g *group) error {
	m.mu.Lock()
	id := fmt.Sprintf("%s/%d", g.name, g.nextID)
	g.nextID++
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		m.mu.Lock()
		g.starting--
		m.mu.Unlock()
		return fmt.Errorf("manager: stopped")
	}

	env, err := m.starter(ctx, g.name, id, m)

	m.mu.Lock()
	g.starting--
	if err != nil {
		m.mu.Unlock()
		m.cfg.Logger.Error("starting replica", err, "group", g.name, "replica", id)
		return err
	}
	// The proclet may already have registered (RegisterReplica runs on the
	// envelope's serve goroutine, often before the starter returns); do not
	// clobber its record.
	if rep := g.replicas[id]; rep != nil {
		rep.env = env
	} else {
		g.replicas[id] = &replica{id: id, env: env, healthy: true, lastReport: time.Now()}
	}
	m.envelopes[env] = true
	m.mu.Unlock()
	m.cfg.Logger.Info("replica started", "group", g.name, "replica", id)
	return nil
}

// --- envelope.Manager implementation (the Table 1 API) ---

// RegisterReplica implements envelope.Manager.
func (m *Manager) RegisterReplica(e *envelope.Envelope, r pipe.RegisterReplica) error {
	m.mu.Lock()
	g, ok := m.groups[e.Group]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: replica of unknown group %q", e.Group)
	}
	rep := g.replicas[e.ID]
	if rep == nil {
		// A replica the manager did not start (e.g. the main driver, which
		// the deployer launches directly): adopt it.
		rep = &replica{id: e.ID, env: e, healthy: true}
		g.replicas[e.ID] = rep
		m.envelopes[e] = true
	}
	rep.addr = r.Addr
	rep.ready = true
	rep.lastReport = time.Now()
	m.mu.Unlock()

	m.cfg.Logger.Info("replica registered", "group", e.Group, "replica", e.ID, "addr", r.Addr)
	m.broadcastGroupRouting(g)
	return nil
}

// adoptEnvelopeLocked ensures e receives routing broadcasts. Proclets talk
// to the manager (ComponentsToHost, StartComponent) before they register,
// so the manager must track their envelopes from first contact.
func (m *Manager) adoptEnvelopeLocked(e *envelope.Envelope) {
	m.envelopes[e] = true
}

// ComponentsToHost implements envelope.Manager.
func (m *Manager) ComponentsToHost(e *envelope.Envelope) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adoptEnvelopeLocked(e)
	g, ok := m.groups[e.Group]
	if !ok {
		return nil, fmt.Errorf("manager: unknown group %q", e.Group)
	}
	return append([]string(nil), g.components...), nil
}

// StartComponent implements envelope.Manager.
func (m *Manager) StartComponent(e *envelope.Envelope, component string, routed bool) error {
	m.mu.Lock()
	m.adoptEnvelopeLocked(e)
	gname, ok := m.compGroup[component]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("manager: unknown component %q", component)
	}
	g := m.groups[gname]
	need := 0
	if len(g.replicas)+g.starting == 0 {
		need = g.as.Config().MinReplicas
		g.starting += need
	}
	m.mu.Unlock()

	for i := 0; i < need; i++ {
		go func() {
			if err := m.startReplica(m.ctx, g); err != nil {
				m.cfg.Logger.Error("start component replica", err, "component", component)
			}
		}()
	}

	// Push current routing info (possibly empty) so the requester learns
	// about already-running replicas immediately.
	m.pushGroupRoutingTo(g, e)
	return nil
}

// LoadReport implements envelope.Manager.
func (m *Manager) LoadReport(e *envelope.Envelope, lr pipe.LoadReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[e.Group]
	if !ok {
		return
	}
	rep, ok := g.replicas[e.ID]
	if !ok {
		return
	}
	rep.rate = lr.CallsPerSec
	rep.healthy = lr.Healthy
	rep.lastReport = time.Now()
	m.metrics[e.ID] = lr.Metrics
}

// Logs implements envelope.Manager.
func (m *Manager) Logs(entries []logging.Entry) { m.logs.Add(entries) }

// Traces implements envelope.Manager.
func (m *Manager) Traces(spans []tracing.Span) {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	m.spans = append(m.spans, spans...)
	if len(m.spans) > 200000 {
		m.spans = m.spans[len(m.spans)-200000:]
	}
}

// GraphEdges implements envelope.Manager.
func (m *Manager) GraphEdges(edges []callgraph.Edge) { m.graph.Merge(edges) }

// ReplicaExited implements envelope.Manager.
func (m *Manager) ReplicaExited(e *envelope.Envelope, exitErr error) {
	m.mu.Lock()
	g, ok := m.groups[e.Group]
	if !ok {
		m.mu.Unlock()
		return
	}
	rep := g.replicas[e.ID]
	delete(g.replicas, e.ID)
	delete(m.envelopes, e)
	delete(m.metrics, e.ID)
	deliberate := m.stopped || (rep != nil && rep.stopping) || exitErr == nil
	restart := !deliberate && g.restarts < m.cfg.MaxRestarts && len(g.components) > 0
	if restart {
		g.restarts++
		g.starting++
	}
	m.mu.Unlock()

	if exitErr != nil {
		m.cfg.Logger.Warn("replica exited", "group", e.Group, "replica", e.ID, "err", exitErr.Error())
	}
	m.broadcastGroupRouting(g)

	if restart {
		// Restart crashed replicas with a small backoff (paper §3.1:
		// "component replicas may fail and get restarted").
		go func() {
			select {
			case <-time.After(100 * time.Millisecond):
			case <-m.ctx.Done():
				m.mu.Lock()
				g.starting--
				m.mu.Unlock()
				return
			}
			if err := m.startReplica(m.ctx, g); err != nil {
				m.cfg.Logger.Error("restarting replica", err, "group", g.name)
			}
		}()
	}
}

// --- routing ---

// nextEpochLocked draws a fresh global routing epoch. Caller holds m.mu.
func (m *Manager) nextEpochLocked() uint64 {
	m.routeVersion++
	return m.routeVersion
}

// readyAddrsLocked returns the sorted data-plane addresses of g's routable
// replicas. Caller holds m.mu.
func readyAddrsLocked(g *group) []string {
	var addrs []string
	for _, r := range g.replicas {
		if r.ready && r.healthy && !r.stopping {
			addrs = append(addrs, r.addr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// pushRecord snapshots one component's newest stamped routing info.
type pushRecord struct {
	version uint64
	addrs   []string
}

// routingInfoLocked builds the RoutingInfo messages for g's components,
// stamped with a fresh global epoch.
func (m *Manager) routingInfoLocked(g *group) []pipe.RoutingInfo {
	addrs := readyAddrsLocked(g)
	v := m.nextEpochLocked()
	out := make([]pipe.RoutingInfo, 0, len(g.components))
	for _, c := range g.components {
		ri := pipe.RoutingInfo{
			Component: c,
			Replicas:  addrs,
			Version:   v,
		}
		if g.routed[c] && len(addrs) > 0 {
			a := routing.EqualSlices(v, addrs, m.cfg.SlicesPerReplica)
			ri.Assignment = &a
		}
		m.lastPush[c] = pushRecord{version: v, addrs: addrs}
		out = append(out, ri)
	}
	return out
}

// RouteEpoch returns the current global routing epoch (the newest value
// stamped on any routing broadcast or re-placement step).
func (m *Manager) RouteEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routeVersion
}

// LastRouting returns the newest routing epoch stamped for a component and
// the replica addresses it carried. Harnesses use it to wait until every
// proclet's applied RoutingVersion catches up after a topology change.
func (m *Manager) LastRouting(component string) (version uint64, addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pr := m.lastPush[component]
	return pr.version, append([]string(nil), pr.addrs...)
}

// broadcastGroupRouting pushes fresh routing info for g's components to
// every envelope.
func (m *Manager) broadcastGroupRouting(g *group) {
	m.mu.Lock()
	infos := m.routingInfoLocked(g)
	envs := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		envs = append(envs, e)
	}
	m.mu.Unlock()
	for _, e := range envs {
		for _, ri := range infos {
			_ = e.SendRoutingInfo(ri)
		}
	}
}

// pushGroupRoutingTo sends g's routing info to a single envelope.
func (m *Manager) pushGroupRoutingTo(g *group, e *envelope.Envelope) {
	m.mu.Lock()
	infos := m.routingInfoLocked(g)
	m.mu.Unlock()
	for _, ri := range infos {
		_ = e.SendRoutingInfo(ri)
	}
}

// --- scaling and health ---

func (m *Manager) scaleLoop() {
	ticker := time.NewTicker(m.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.scaleOnce(time.Now())
		case <-m.ctx.Done():
			return
		}
	}
}

// scaleOnce evaluates autoscaling and health for every running group.
func (m *Manager) scaleOnce(now time.Time) {
	type action struct {
		g     *group
		start int
		stop  []*replica
		dirty bool
	}
	var actions []action

	m.mu.Lock()
	for _, g := range m.groups {
		if g.name == "main" || len(g.replicas)+g.starting == 0 {
			continue // main is the driver; empty groups start on demand
		}
		var a action
		a.g = g

		// Health: mark stale replicas unhealthy so routing skips them.
		var totalRate float64
		healthyCount := 0
		for _, r := range g.replicas {
			wasHealthy := r.healthy
			if now.Sub(r.lastReport) > m.cfg.ReplicaStaleAfter {
				r.healthy = false
			}
			if r.healthy != wasHealthy {
				a.dirty = true
			}
			if r.healthy && r.ready && !r.stopping {
				healthyCount++
				totalRate += r.rate
			}
		}

		current := len(g.replicas) + g.starting
		desired := g.as.Desired(current, totalRate, now)
		if desired > current {
			a.start = desired - current
			g.starting += a.start
		} else if desired < current && len(g.replicas) > desired {
			// Stop the newest replicas first.
			ids := make([]string, 0, len(g.replicas))
			for id := range g.replicas {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for i := len(ids) - 1; i >= 0 && len(ids)-len(a.stop) > desired; i-- {
				r := g.replicas[ids[i]]
				if !r.stopping {
					r.stopping = true
					a.stop = append(a.stop, r)
					a.dirty = true
				}
			}
		}
		if a.start > 0 || len(a.stop) > 0 || a.dirty {
			actions = append(actions, a)
		}
	}
	m.mu.Unlock()

	for _, a := range actions {
		for i := 0; i < a.start; i++ {
			go func(g *group) {
				if err := m.startReplica(m.ctx, g); err != nil {
					m.cfg.Logger.Error("scale up", err, "group", g.name)
				}
			}(a.g)
		}
		if a.dirty || len(a.stop) > 0 {
			m.broadcastGroupRouting(a.g)
		}
		for _, r := range a.stop {
			go r.env.Stop(5 * time.Second)
		}
		if a.start > 0 {
			m.cfg.Logger.Info("scaling up", "group", a.g.name, "new", fmt.Sprint(a.start))
		}
		if len(a.stop) > 0 {
			m.cfg.Logger.Info("scaling down", "group", a.g.name, "stopping", fmt.Sprint(len(a.stop)))
		}
	}
}

// GroupStatus describes one group for status reporting.
type GroupStatus struct {
	Name       string
	Components []string
	Replicas   []ReplicaStatus
}

// ReplicaStatus describes one replica.
type ReplicaStatus struct {
	ID      string
	Addr    string
	Healthy bool
	Rate    float64
	Pid     int
}

// Status returns a snapshot of all groups and replicas, sorted by name.
func (m *Manager) Status() []GroupStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]GroupStatus, 0, len(m.groups))
	for _, g := range m.groups {
		gs := GroupStatus{Name: g.name, Components: append([]string(nil), g.components...)}
		ids := make([]string, 0, len(g.replicas))
		for id := range g.replicas {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			r := g.replicas[id]
			gs.Replicas = append(gs.Replicas, ReplicaStatus{
				ID:      r.id,
				Addr:    r.addr,
				Healthy: r.healthy,
				Rate:    r.rate,
				Pid:     r.env.Pid(),
			})
		}
		out = append(out, gs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReplicaCount returns the number of live replicas of a group.
func (m *Manager) ReplicaCount(group string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[group]
	if !ok {
		return 0
	}
	return len(g.replicas)
}

// Stop shuts down every replica and the manager itself.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	envs := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		envs = append(envs, e)
	}
	m.mu.Unlock()

	m.cancel()
	var wg sync.WaitGroup
	for _, e := range envs {
		wg.Add(1)
		go func(e *envelope.Envelope) {
			defer wg.Done()
			e.Stop(3 * time.Second)
		}(e)
	}
	wg.Wait()
}
