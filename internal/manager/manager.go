// Package manager implements the global manager from the paper's deployer
// architecture (Figure 3): the control plane that decides where components
// run, how many replicas each group gets, and how requests are routed. It
// receives proclet API calls (Table 1) relayed by envelopes, launches new
// replicas through a deployer-provided Starter, feeds load reports to the
// autoscaler, aggregates metrics/logs/traces, and pushes routing updates.
//
// The manager is strictly a control plane: proclets exchange data-plane
// traffic directly with one another.
//
// Internally the manager is a reconciler/actuator split over a versioned
// desired-state store (internal/cplane, DESIGN.md §14): decision loops are
// pure reconcilers from an observed snapshot to a desired state, and one
// actuator (actuator.go) diffs desired against observed and performs the
// envelope operations — it is the only code that starts replicas, stops
// them, or pushes routing.
package manager

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/callgraph"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cplane"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/placement"
	"repro/internal/tracing"
)

// ComponentInfo describes one component of the application being deployed.
// Deployers obtain the inventory from the application binary itself
// (WEAVER_DESCRIBE) or from the in-process registry.
type ComponentInfo struct {
	Name   string
	Routed bool
}

// Config parameterizes a deployment.
type Config struct {
	// App names the application; Version identifies this rollout.
	App     string
	Version string

	// Components is the application's component inventory.
	Components []ComponentInfo

	// Groups maps a colocation group name to the full names of the
	// components it hosts. Components in the same group share an OS
	// process. Components not mentioned anywhere get a singleton group of
	// their own (the paper's apples-to-apples "no co-location" default).
	// The special group "main" is the driver process started by the
	// deployer; it exists even if it hosts no components.
	Groups map[string][]string

	// DefaultAutoscale applies to groups without an explicit entry in
	// Autoscale.
	DefaultAutoscale autoscale.Config
	Autoscale        map[string]autoscale.Config

	// SlicesPerReplica controls affinity-assignment granularity.
	SlicesPerReplica int

	// ScaleInterval is the autoscaler evaluation period (default 500ms).
	ScaleInterval time.Duration

	// ReplicaStaleAfter marks a replica unhealthy when it has not reported
	// load for this long (default 5s).
	ReplicaStaleAfter time.Duration

	// MaxRestarts bounds automatic restarts of crashed replicas per group
	// (default 8).
	MaxRestarts int

	// MaxInflightPerReplica bounds concurrently executing data-plane
	// requests in each replica; MaxOverloadQueue bounds the admission wait
	// queue beyond that. Requests past both bounds are shed with a fast
	// overloaded status instead of queueing unboundedly (paper §5: the
	// runtime owns graceful handling of overload). Zero means unlimited.
	// Deployers read these when starting replicas.
	MaxInflightPerReplica int
	MaxOverloadQueue      int

	// PlacementInterval enables the live re-placement control loop: every
	// interval the manager re-plans colocation from the merged call graph
	// and, when the plan's locality score beats the running grouping by at
	// least PlacementMinGain, moves components between groups at runtime.
	// Zero disables the loop; MoveComponent remains available either way.
	PlacementInterval time.Duration
	// PlacementMinGain is the minimum locality-score improvement (absolute,
	// in [0,1]) worth moving components for (default 0.05).
	PlacementMinGain float64
	// PlacementMinCalls is how many calls the merged graph must have seen
	// before the loop trusts it enough to plan (default 100).
	PlacementMinCalls uint64
	// Placement bounds the plans the loop computes.
	Placement placement.Config

	// Clock injects time for the crash-restart backoff; nil means the real
	// clock. Tests drive restarts with a fake clock.
	Clock clock.Clock

	Logger *logging.Logger
}

// Starter launches one replica of a group and returns its envelope. The
// manager passes itself as the envelope's Manager.
type Starter func(ctx context.Context, group, replicaID string, mgr envelope.Manager) (*envelope.Envelope, error)

// restartBackoff is how long a crashed replica waits before relaunching.
const restartBackoff = 100 * time.Millisecond

// Manager is the global manager.
type Manager struct {
	cfg     Config
	starter Starter
	ctx     context.Context
	cancel  context.CancelFunc
	clk     clock.Clock

	// store holds the versioned control-plane state (the single source of
	// truth for groups, replicas, hosting, and routing epochs). All
	// decision logic reads snapshots and commits desired states here.
	store *cplane.Store

	known     map[string]bool // component inventory (immutable after New)
	routedSet map[string]bool // routed components of the inventory

	// mu guards the runtime registries that cannot live in the value store:
	// live envelope handles and per-replica metrics batches.
	mu        sync.Mutex
	envs      map[string]*envelope.Envelope // replica id -> envelope
	envelopes map[*envelope.Envelope]bool   // every envelope we push to
	stopped   bool

	// Manager-rebuild recovery: while recovering > 0, registrations are
	// adoptions of already-running replicas and routing broadcasts are
	// deferred until the fleet has re-registered (or recovery is forced).
	recovering   int
	reregistered map[string]bool
	recovered    chan struct{}
	recoveryDone bool

	// asMu guards the per-group autoscalers (they carry hysteresis state,
	// so they live outside the value store).
	asMu sync.Mutex
	as   map[string]*autoscale.Autoscaler

	// moveMu serializes re-placement moves; moves (under mu) records the
	// applied ones.
	moveMu sync.Mutex
	moves  []MoveRecord

	// actMu guards the actuator action log (a bounded ring shown on the
	// /control dashboard page).
	actMu   sync.Mutex
	actions []ActionRecord

	logs    *logging.Aggregator
	graph   *callgraph.Collector
	metrics map[string][]metrics.Snapshot // replica id -> latest snapshot

	traceMu sync.Mutex
	spans   []tracing.Span
}

// New builds a manager for the given deployment. Call Stop when done.
func New(cfg Config, starter Starter) (*Manager, error) {
	if len(cfg.Components) == 0 {
		return nil, fmt.Errorf("manager: no components in inventory")
	}
	if cfg.Logger == nil {
		cfg.Logger = logging.New(logging.Options{Component: "manager"})
	}
	if cfg.ScaleInterval <= 0 {
		cfg.ScaleInterval = 500 * time.Millisecond
	}
	if cfg.ReplicaStaleAfter <= 0 {
		cfg.ReplicaStaleAfter = 5 * time.Second
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.SlicesPerReplica <= 0 {
		cfg.SlicesPerReplica = 4
	}
	if cfg.PlacementMinGain <= 0 {
		cfg.PlacementMinGain = 0.05
	}
	if cfg.PlacementMinCalls == 0 {
		cfg.PlacementMinCalls = 100
	}

	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		starter:   starter,
		ctx:       ctx,
		cancel:    cancel,
		clk:       clock.Or(cfg.Clock),
		envs:      map[string]*envelope.Envelope{},
		envelopes: map[*envelope.Envelope]bool{},
		as:        map[string]*autoscale.Autoscaler{},
		logs:      logging.NewAggregator(200000),
		graph:     callgraph.NewCollector(),
		metrics:   map[string][]metrics.Snapshot{},
	}

	m.known = map[string]bool{}
	m.routedSet = map[string]bool{}
	for _, c := range cfg.Components {
		m.known[c.Name] = true
		if c.Routed {
			m.routedSet[c.Name] = true
		}
	}

	init, err := m.initialState()
	if err != nil {
		cancel()
		return nil, err
	}
	m.store = cplane.NewStore(init)

	go m.scaleLoop()
	if cfg.PlacementInterval > 0 {
		go m.placementLoop()
	}
	return m, nil
}

// initialState builds the seed control-plane state from the config:
// explicit groups (sorted for determinism), the always-present main group,
// and singleton groups for every unassigned component.
func (m *Manager) initialState() (*cplane.State, error) {
	s := cplane.NewState()
	groupNames := make([]string, 0, len(m.cfg.Groups))
	for name := range m.cfg.Groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		if err := m.addGroupTo(s, name, m.cfg.Groups[name]); err != nil {
			return nil, err
		}
	}
	if _, ok := s.Groups["main"]; !ok {
		if err := m.addGroupTo(s, "main", nil); err != nil {
			return nil, err
		}
	}
	for _, c := range m.cfg.Components {
		if _, ok := s.CompGroup[c.Name]; ok {
			continue
		}
		name := core.ShortName(c.Name)
		if _, clash := s.Groups[name]; clash {
			name = strings.ReplaceAll(c.Name, "/", ".")
		}
		if err := m.addGroupTo(s, name, []string{c.Name}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// addGroupTo validates components against the inventory and creates a
// group in s. Re-placement and recovery use it to create groups at
// runtime.
func (m *Manager) addGroupTo(s *cplane.State, name string, components []string) error {
	for _, c := range components {
		if !m.known[c] {
			return fmt.Errorf("manager: group %q lists unknown component %q", name, c)
		}
	}
	if _, err := s.AddGroup(name, components, m.routedSet); err != nil {
		return fmt.Errorf("manager: %w", err)
	}
	return nil
}

// scaler returns the autoscaler for a group, creating it on first use.
func (m *Manager) scaler(group string) *autoscale.Autoscaler {
	m.asMu.Lock()
	defer m.asMu.Unlock()
	if as, ok := m.as[group]; ok {
		return as
	}
	cfg := m.cfg.DefaultAutoscale
	if c, ok := m.cfg.Autoscale[group]; ok {
		cfg = c
	}
	as := autoscale.New(cfg)
	m.as[group] = as
	return as
}

func (m *Manager) isStopped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stopped
}

// GroupOf returns the colocation group hosting a component.
func (m *Manager) GroupOf(component string) (string, bool) {
	s := m.store.Snapshot()
	g, ok := s.CompGroup[component]
	return g, ok
}

// LogAggregator returns the manager's log aggregator.
func (m *Manager) LogAggregator() *logging.Aggregator { return m.logs }

// Graph returns the aggregated application call graph.
func (m *Manager) Graph() *callgraph.Collector { return m.graph }

// Spans returns a copy of the collected trace spans.
func (m *Manager) Spans() []tracing.Span {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	return append([]tracing.Span(nil), m.spans...)
}

// MergedMetrics aggregates the latest metric snapshot across all replicas.
func (m *Manager) MergedMetrics() map[string]metrics.Snapshot {
	m.mu.Lock()
	batches := make([][]metrics.Snapshot, 0, len(m.metrics))
	for _, b := range m.metrics {
		batches = append(batches, b)
	}
	m.mu.Unlock()
	return metrics.MergeAll(batches...)
}

// ControlState returns the current control-plane snapshot. Callers must
// treat it as read-only. Harnesses assert invariants on it; the dashboard
// renders it.
func (m *Manager) ControlState() *cplane.State { return m.store.Snapshot() }

// StartGroup ensures that the named group is running at least n replicas.
// The deployer calls it for "main"; everything else starts on demand.
func (m *Manager) StartGroup(ctx context.Context, name string, n int) error {
	found := false
	var acts cplane.Actions
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[name]
		if g == nil {
			return
		}
		found = true
		need := n - len(g.Replicas) - g.Starting
		if need > 0 {
			g.Starting += need
			acts.Start = []cplane.StartAction{{Group: name, N: need}}
		}
	})
	if !found {
		return fmt.Errorf("manager: unknown group %q", name)
	}
	return m.actuate(ctx, acts, actuateOpts{sync: true})
}

// ResizeGroup sets a group's replica count to exactly n, synchronously:
// scale-ups return once the new replicas are started, scale-downs once the
// stopped replicas (newest first) have drained and exited. It is the
// scriptable replica lifecycle used by the simulation harness; unlike the
// autoscaler it is driven by the test schedule, not by load.
func (m *Manager) ResizeGroup(ctx context.Context, name string, n int) error {
	var acts cplane.Actions
	var rerr error
	m.store.Update(func(s *cplane.State) {
		des, err := cplane.ReconcileResize(s, name, n)
		if err != nil {
			rerr = fmt.Errorf("manager: %w", err)
			return
		}
		acts = cplane.Diff(s, des)
		cplane.Commit(s, des)
	})
	if rerr != nil {
		return rerr
	}
	return m.actuate(ctx, acts, actuateOpts{sync: true})
}

// --- envelope.Manager implementation (the Table 1 API) ---

// replicaOrdinal parses the numeric suffix of a replica id ("kv/3" -> 3).
func replicaOrdinal(id string) (int, bool) {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// RegisterReplica implements envelope.Manager. During normal operation it
// records a fresh replica as ready and re-broadcasts its group's routing.
// During recovery (a rebuilt manager re-learning a running fleet) it
// adopts the replica's observed state wholesale: unknown groups are
// created, hosting claims relocate components, applied routing epochs
// floor the global epoch counter so new broadcasts are never fenced as
// stale.
func (m *Manager) RegisterReplica(e *envelope.Envelope, r pipe.RegisterReplica) error {
	m.mu.Lock()
	m.envelopes[e] = true
	m.envs[e.ID] = e
	recovering := m.recovering > 0
	m.mu.Unlock()

	found := false
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[e.Group]
		if g == nil {
			if !recovering {
				return
			}
			// A group the config does not know (e.g. created by a past
			// re-placement move): recreate it from the replica's claim.
			if err := m.addGroupTo(s, e.Group, nil); err != nil {
				return
			}
			g = s.Groups[e.Group]
		}
		found = true
		rep := g.Replicas[e.ID]
		if rep == nil {
			// A replica the manager did not start (the main driver, or any
			// replica during recovery): adopt it.
			rep = &cplane.Replica{ID: e.ID, Healthy: true, Applied: map[string]uint64{}}
			g.Replicas[e.ID] = rep
		}
		rep.Addr = r.Addr
		rep.Ready = true
		rep.Healthy = true
		rep.LastReport = m.clk.Now()
		if r.Epoch > s.RouteEpoch {
			s.RouteEpoch = r.Epoch
		}
		for c, v := range r.Routing {
			if v > rep.Applied[c] {
				rep.Applied[c] = v
			}
			if v > s.RouteEpoch {
				s.RouteEpoch = v
			}
		}
		if n, ok := replicaOrdinal(e.ID); ok && n >= g.NextID {
			g.NextID = n + 1
		}
		if recovering {
			// Observed hosting wins over the config-derived default: if the
			// replica hosts a component mapped elsewhere, the component was
			// moved before the rebuild — relocate it.
			for _, c := range r.Hosted {
				if cur, ok := s.CompGroup[c]; ok && cur != e.Group {
					_ = s.Relocate(c, e.Group)
				}
			}
		}
	})
	if !found {
		return fmt.Errorf("manager: replica of unknown group %q", e.Group)
	}

	m.cfg.Logger.Info("replica registered", "group", e.Group, "replica", e.ID, "addr", r.Addr)
	if recovering {
		m.noteReregistered(e.ID)
		return nil
	}
	return m.actuate(m.ctx, cplane.Actions{Push: []string{e.Group}}, actuateOpts{})
}

// adoptEnvelope ensures e receives routing broadcasts. Proclets talk to
// the manager (ComponentsToHost, StartComponent) before they register, so
// the manager must track their envelopes from first contact.
func (m *Manager) adoptEnvelope(e *envelope.Envelope) {
	m.mu.Lock()
	m.envelopes[e] = true
	m.mu.Unlock()
}

// ComponentsToHost implements envelope.Manager.
func (m *Manager) ComponentsToHost(e *envelope.Envelope) ([]string, error) {
	m.adoptEnvelope(e)
	s := m.store.Snapshot()
	g := s.Groups[e.Group]
	if g == nil {
		return nil, fmt.Errorf("manager: unknown group %q", e.Group)
	}
	return append([]string(nil), g.Components...), nil
}

// StartComponent implements envelope.Manager.
func (m *Manager) StartComponent(e *envelope.Envelope, component string, routed bool) error {
	m.adoptEnvelope(e)
	var gname string
	found := false
	var acts cplane.Actions
	m.store.Update(func(s *cplane.State) {
		gn, ok := s.CompGroup[component]
		if !ok {
			return
		}
		found = true
		gname = gn
		g := s.Groups[gn]
		if len(g.Replicas)+g.Starting == 0 {
			need := m.scaler(gn).Config().MinReplicas
			g.Starting += need
			acts.Start = []cplane.StartAction{{Group: gn, N: need}}
		}
	})
	if !found {
		return fmt.Errorf("manager: unknown component %q", component)
	}
	_ = m.actuate(m.ctx, acts, actuateOpts{})

	// Push current routing info (possibly empty) so the requester learns
	// about already-running replicas immediately.
	m.pushGroupRoutingTo(gname, e)
	return nil
}

// LoadReport implements envelope.Manager.
func (m *Manager) LoadReport(e *envelope.Envelope, lr pipe.LoadReport) {
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[e.Group]
		if g == nil {
			return
		}
		rep := g.Replicas[e.ID]
		if rep == nil {
			return
		}
		rep.Rate = lr.CallsPerSec
		rep.Healthy = lr.Healthy
		rep.LastReport = m.clk.Now()
	})
	m.mu.Lock()
	m.metrics[e.ID] = lr.Metrics
	m.mu.Unlock()
}

// Logs implements envelope.Manager.
func (m *Manager) Logs(entries []logging.Entry) { m.logs.Add(entries) }

// Traces implements envelope.Manager.
func (m *Manager) Traces(spans []tracing.Span) {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	m.spans = append(m.spans, spans...)
	if len(m.spans) > 200000 {
		m.spans = m.spans[len(m.spans)-200000:]
	}
}

// GraphEdges implements envelope.Manager.
func (m *Manager) GraphEdges(edges []callgraph.Edge) { m.graph.Merge(edges) }

// ReplicaExited implements envelope.Manager. The restart decision is the
// pure cplane.ReconcileRestart policy; the actuator relaunches after a
// clock-driven backoff (paper §3.1: "component replicas may fail and get
// restarted").
func (m *Manager) ReplicaExited(e *envelope.Envelope, exitErr error) {
	m.mu.Lock()
	delete(m.envelopes, e)
	delete(m.envs, e.ID)
	delete(m.metrics, e.ID)
	stopped := m.stopped
	m.mu.Unlock()

	found := false
	var acts cplane.Actions
	m.store.Update(func(s *cplane.State) {
		g := s.Groups[e.Group]
		if g == nil {
			return
		}
		found = true
		rep := g.Replicas[e.ID]
		delete(g.Replicas, e.ID)
		deliberate := stopped || (rep != nil && rep.Stopping) || exitErr == nil
		if des := cplane.ReconcileRestart(s, e.Group, deliberate, m.cfg.MaxRestarts); des != nil {
			acts = cplane.Diff(s, des)
			cplane.Commit(s, des)
		}
		acts.Push = []string{e.Group} // topology shrank either way
	})
	if !found {
		return
	}
	for i := range acts.Start {
		acts.Start[i].Backoff = restartBackoff
	}

	if exitErr != nil {
		m.cfg.Logger.Warn("replica exited", "group", e.Group, "replica", e.ID, "err", exitErr.Error())
	}
	_ = m.actuate(m.ctx, acts, actuateOpts{})
}

// RouteEpoch returns the current global routing epoch (the newest value
// stamped on any routing broadcast or re-placement step).
func (m *Manager) RouteEpoch() uint64 {
	return m.store.Snapshot().RouteEpoch
}

// LastRouting returns the newest routing epoch stamped for a component and
// the replica addresses it carried. Harnesses use it to wait until every
// proclet's applied RoutingVersion catches up after a topology change.
func (m *Manager) LastRouting(component string) (version uint64, addrs []string) {
	p := m.store.Snapshot().LastPush[component]
	return p.Version, append([]string(nil), p.Addrs...)
}

// --- scaling and health ---

func (m *Manager) scaleLoop() {
	ticker := time.NewTicker(m.cfg.ScaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.scaleOnce(time.Now())
		case <-m.ctx.Done():
			return
		}
	}
}

// scaleOnce runs one reconcile pass of the autoscale + health loop: the
// pure reconciler proposes a desired state using the per-group autoscaler
// as its oracle, and the actuator applies the diff.
func (m *Manager) scaleOnce(now time.Time) {
	oracle := func(group string, current int, load float64, at time.Time) int {
		return m.scaler(group).Desired(current, load, at)
	}
	var acts cplane.Actions
	m.store.Update(func(s *cplane.State) {
		des := cplane.ReconcileScale(s, oracle, now, m.cfg.ReplicaStaleAfter)
		acts = cplane.Diff(s, des)
		cplane.Commit(s, des)
	})
	if acts.Empty() {
		return
	}
	for _, a := range acts.Start {
		m.cfg.Logger.Info("scaling up", "group", a.Group, "new", fmt.Sprint(a.N))
	}
	stops := map[string]int{}
	for _, a := range acts.Stop {
		stops[a.Group]++
	}
	for g, n := range stops {
		m.cfg.Logger.Info("scaling down", "group", g, "stopping", fmt.Sprint(n))
	}
	_ = m.actuate(m.ctx, acts, actuateOpts{})
}

// GroupStatus describes one group for status reporting.
type GroupStatus struct {
	Name       string
	Components []string
	Replicas   []ReplicaStatus
}

// ReplicaStatus describes one replica.
type ReplicaStatus struct {
	ID      string
	Addr    string
	Healthy bool
	Rate    float64
	Pid     int
}

// Status returns a snapshot of all groups and replicas, sorted by name.
func (m *Manager) Status() []GroupStatus {
	s := m.store.Snapshot()
	out := make([]GroupStatus, 0, len(s.Groups))
	for _, name := range s.SortedGroupNames() {
		g := s.Groups[name]
		gs := GroupStatus{Name: name, Components: append([]string(nil), g.Components...)}
		ids := make([]string, 0, len(g.Replicas))
		for id := range g.Replicas {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			r := g.Replicas[id]
			gs.Replicas = append(gs.Replicas, ReplicaStatus{
				ID:      r.ID,
				Addr:    r.Addr,
				Healthy: r.Healthy,
				Rate:    r.Rate,
				Pid:     m.pidOf(id),
			})
		}
		out = append(out, gs)
	}
	return out
}

func (m *Manager) pidOf(replicaID string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.envs[replicaID]; e != nil {
		return e.Pid()
	}
	return 0
}

// ReplicaCount returns the number of live replicas of a group.
func (m *Manager) ReplicaCount(group string) int {
	g := m.store.Snapshot().Groups[group]
	if g == nil {
		return 0
	}
	return len(g.Replicas)
}

// Stop shuts down every replica and the manager itself.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	envs := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		envs = append(envs, e)
	}
	m.mu.Unlock()

	m.cancel()
	var wg sync.WaitGroup
	for _, e := range envs {
		wg.Add(1)
		go func(e *envelope.Envelope) {
			defer wg.Done()
			e.Stop(3 * time.Second)
		}(e)
	}
	wg.Wait()
}

// --- manager rebuild (recovery from re-registration) ---

// Detach stops the manager's control loops and marks it stopped WITHOUT
// stopping its replicas. It is the teardown half of a simulated manager
// crash: the fleet keeps serving, and a successor manager adopts the
// orphaned envelopes with Adopt.
func (m *Manager) Detach() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	m.cancel()
}

// Envelopes returns every envelope the manager currently tracks.
func (m *Manager) Envelopes() []*envelope.Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*envelope.Envelope, 0, len(m.envelopes))
	for e := range m.envelopes {
		out = append(out, e)
	}
	return out
}

// Adopt hands a freshly built manager the envelopes of an already-running
// fleet (from a predecessor's Envelopes). The manager enters recovery: it
// expects one re-registration per envelope (the deployer sends
// envelope.Reregister after repointing them here) and defers routing
// broadcasts until the fleet has re-registered, then rebroadcasts every
// group at epochs above the recovered floor. WaitRecovered blocks until
// that happens.
func (m *Manager) Adopt(envs []*envelope.Envelope) {
	m.mu.Lock()
	for _, e := range envs {
		m.envelopes[e] = true
		if e.ID != "" {
			m.envs[e.ID] = e
		}
	}
	m.recovering = len(envs)
	m.reregistered = map[string]bool{}
	m.recovered = make(chan struct{})
	m.recoveryDone = false
	m.mu.Unlock()
	m.recordAction("recover", fmt.Sprintf("adopted %d envelopes, awaiting re-registration", len(envs)), 0)
	if len(envs) == 0 {
		m.finishRecovery()
	}
}

func (m *Manager) noteReregistered(id string) {
	m.mu.Lock()
	if m.recovering <= 0 || m.reregistered[id] {
		m.mu.Unlock()
		return
	}
	m.reregistered[id] = true
	m.recovering--
	done := m.recovering == 0
	m.mu.Unlock()
	if done {
		m.finishRecovery()
	}
}

// finishRecovery ends recovery (idempotently) and rebroadcasts every
// group's routing at fresh epochs above the recovered floor, rebuilding
// every proclet's routing view under the new manager.
func (m *Manager) finishRecovery() {
	m.mu.Lock()
	if m.recoveryDone || m.recovered == nil {
		m.mu.Unlock()
		return
	}
	m.recoveryDone = true
	m.recovering = 0
	close(m.recovered)
	m.mu.Unlock()

	s := m.store.Snapshot()
	var groups []string
	for _, name := range s.SortedGroupNames() {
		if len(s.Groups[name].Components) > 0 {
			groups = append(groups, name)
		}
	}
	m.recordAction("recover", fmt.Sprintf("recovery complete, rebroadcasting %d groups", len(groups)), s.RouteEpoch)
	_ = m.actuate(m.ctx, cplane.Actions{Push: groups}, actuateOpts{})
}

// WaitRecovered blocks until recovery completes. If ctx expires first,
// recovery is force-finished with whatever has re-registered (missing
// replicas re-register later through the normal path).
func (m *Manager) WaitRecovered(ctx context.Context) error {
	m.mu.Lock()
	ch := m.recovered
	m.mu.Unlock()
	if ch == nil {
		return nil // never adopted anything
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		m.finishRecovery()
		return ctx.Err()
	}
}
