// Package proclet implements the small, environment-agnostic daemon linked
// into every application binary (paper §4.3). A proclet manages the
// components hosted in its process: it registers itself with the runtime
// over the control-plane pipe (RegisterReplica), learns which components to
// host (ComponentsToHost), asks for components it needs to call
// (StartComponent), serves hosted components on the data plane, and ships
// load, metrics, logs, traces, and call-graph edges back to its envelope.
package proclet

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/callgraph"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/tracing"
)

// Options configures a Proclet.
type Options struct {
	// Conn is the control-plane connection to the envelope.
	Conn *pipe.Conn
	// ProcletID uniquely identifies this replica (e.g. "cart/2").
	ProcletID string
	// Group is this replica's colocation group.
	Group string
	// Version is the application version, used for atomic rollouts.
	Version string
	// Fill injects weaver state into component implementations (see
	// core.Options.Fill). The logger passed through is the proclet's.
	Fill func(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error
	// ListenAddr is the address the data-plane server binds
	// (default "127.0.0.1:0").
	ListenAddr string
	// MaxInflight bounds concurrently executing data-plane requests in
	// this replica; MaxQueue bounds the admission wait queue beyond that.
	// Zero means unlimited (see rpc.ServerOptions).
	MaxInflight int
	MaxQueue    int
	// ReportInterval is how often load reports and telemetry batches are
	// shipped (default 500ms).
	ReportInterval time.Duration
	// TraceFraction is the sampled fraction of traces (default 0.01).
	TraceFraction float64
	// Logger is the proclet's own logger; component logs are routed to the
	// envelope regardless.
	Logger *logging.Logger
	// BypassAssignmentDispatch disables assignment-aware local dispatch:
	// colocated routed calls always take the local fast path, even when the
	// affinity assignment maps the key to a sibling replica. This is the
	// historical (buggy) behavior; it exists only so the simulation harness
	// can demonstrate rediscovering the bug from a seed. Never set it in
	// production deployments.
	BypassAssignmentDispatch bool
}

// routeState tracks what this proclet knows about one remote component.
type routeState struct {
	conn    *core.DataPlaneConn
	version uint64 // newest routing epoch accepted (fences stale pushes)
	// applied and replicas describe the last push fully installed in the
	// balancer; they are published only after Balancer.Update returns, so
	// readers never run ahead of what Pick sees.
	applied  uint64
	replicas int
}

// Proclet is the per-process daemon.
type Proclet struct {
	opts    Options
	runtime *core.Runtime
	srv     *rpc.Server
	addr    string

	metrics *metrics.Registry
	logBuf  *logging.Buffer
	tracer  *tracing.Recorder
	graph   *callgraph.Collector

	mu       sync.Mutex
	hosted   map[string]bool
	routes   map[string]*routeState
	started  map[string]bool // StartComponent already sent
	maxEpoch uint64          // highest routing/placement epoch seen anywhere

	acks   sync.Map // id -> chan *pipe.Message
	nextID atomic.Uint64

	lastCalls  float64
	lastReport time.Time

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
	err          atomic.Value // error that terminated the proclet
}

// Start creates a proclet, registers it with the envelope, and begins
// serving. It returns once registration completes; use Wait to block until
// shutdown.
func Start(ctx context.Context, opts Options) (*Proclet, error) {
	if opts.Conn == nil {
		return nil, fmt.Errorf("proclet: no control-plane connection")
	}
	if opts.ReportInterval <= 0 {
		opts.ReportInterval = 500 * time.Millisecond
	}
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.TraceFraction == 0 {
		opts.TraceFraction = 0.01
	}
	if opts.Logger == nil {
		opts.Logger = logging.New(logging.Options{Component: "proclet", Replica: opts.ProcletID, Min: logging.LevelInfo})
	}

	p := &Proclet{
		opts:       opts,
		metrics:    metrics.NewRegistry(),
		logBuf:     logging.NewBuffer(100000),
		tracer:     tracing.NewRecorder(100000, opts.TraceFraction),
		graph:      callgraph.NewCollector(),
		hosted:     map[string]bool{},
		routes:     map[string]*routeState{},
		started:    map[string]bool{},
		shutdownCh: make(chan struct{}),
	}

	p.srv = rpc.NewServerWithOptions(rpc.ServerOptions{
		MaxInflight: opts.MaxInflight,
		MaxQueue:    opts.MaxQueue,
	})
	addr, err := p.srv.Listen(opts.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("proclet: data plane listen: %w", err)
	}
	p.addr = addr

	componentLogger := logging.New(logging.Options{
		Component: "app",
		Replica:   opts.ProcletID,
		Sink:      p.logBuf,
	})
	routedLocal := p.routedShardLocal
	if opts.BypassAssignmentDispatch {
		routedLocal = nil
	}
	p.runtime = core.NewRuntime(core.Options{
		Hosted: p.isHosted,
		RemoteConn: func(reg *codegen.Registration) (codegen.Conn, error) {
			return p.remoteConn(reg)
		},
		RoutedLocal: routedLocal,
		Fill: func(impl any, name string, resolve func(reflect.Type) (any, error)) error {
			if opts.Fill == nil {
				return fmt.Errorf("proclet: no fill function configured")
			}
			return opts.Fill(impl, name, componentLogger.With(core.ShortName(name)), resolve)
		},
		Logger:  opts.Logger,
		Graph:   p.graph,
		Tracer:  p.tracer,
		Metrics: p.metrics,
	})

	go p.recvLoop(ctx)

	// Fetch and host the initial component assignment BEFORE registering:
	// registration publishes our data-plane address to other proclets, so
	// every assigned component's handlers must be serving by then.
	reply, err := p.call(ctx, &pipe.Message{Kind: pipe.KindComponentsToHost})
	if err != nil {
		p.srv.Close()
		return nil, fmt.Errorf("proclet: fetching components to host: %w", err)
	}
	if reply.HostComponents != nil {
		if err := p.hostComponents(ctx, reply.HostComponents.Components, reply.HostComponents.Version); err != nil {
			p.srv.Close()
			return nil, err
		}
	}

	if err := p.send(p.registrationMsg()); err != nil {
		p.srv.Close()
		return nil, fmt.Errorf("proclet: registering replica: %w", err)
	}

	p.lastReport = time.Now()
	go p.reportLoop(ctx)
	return p, nil
}

// registrationMsg builds a complete RegisterReplica message reflecting the
// proclet's current observed state: hosted components, applied routing
// epochs, and the highest epoch seen. A rebuilt manager recovers its
// control state from exactly this message (KindReregister), so it must
// carry everything the control plane cannot rederive on its own.
func (p *Proclet) registrationMsg() *pipe.Message {
	p.mu.Lock()
	hosted := make([]string, 0, len(p.hosted))
	for c := range p.hosted {
		hosted = append(hosted, c)
	}
	sort.Strings(hosted)
	applied := make(map[string]uint64, len(p.routes))
	for c, rs := range p.routes {
		if rs.applied > 0 {
			applied[c] = rs.applied
		}
	}
	epoch := p.maxEpoch
	p.mu.Unlock()
	return &pipe.Message{
		Kind: pipe.KindRegisterReplica,
		RegisterReplica: &pipe.RegisterReplica{
			ProcletID: p.opts.ProcletID,
			Group:     p.opts.Group,
			Pid:       int64(os.Getpid()),
			Addr:      p.addr,
			Version:   p.opts.Version,
			Hosted:    hosted,
			Routing:   applied,
			Epoch:     epoch,
		},
	}
}

// noteEpoch records the highest epoch observed on any control push. Caller
// holds p.mu.
func (p *Proclet) noteEpochLocked(v uint64) {
	if v > p.maxEpoch {
		p.maxEpoch = v
	}
}

// Addr returns the proclet's data-plane address.
func (p *Proclet) Addr() string { return p.addr }

// Group returns the colocation group this proclet belongs to.
func (p *Proclet) Group() string { return p.opts.Group }

// Hosted returns the sorted components this proclet currently hosts.
func (p *Proclet) Hosted() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.hosted))
	for c := range p.hosted {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Runtime returns the component runtime backing this proclet.
func (p *Proclet) Runtime() *core.Runtime { return p.runtime }

// Metrics returns the proclet's metrics registry.
func (p *Proclet) Metrics() *metrics.Registry { return p.metrics }

// InjectDataPlaneDelay makes the data-plane server add d of latency to
// every dispatched request (0 clears it). The chaos harness uses it to
// simulate a slow or flapping replica.
func (p *Proclet) InjectDataPlaneDelay(d time.Duration) { p.srv.SetDelay(d) }

// InjectFlushStall makes the data-plane server stall d before every
// response-flusher batch write (0 clears it), forcing concurrent responses
// through the write-coalescing paths. The chaos and sim harnesses use it as
// the degrade-dataplane-batching fault.
func (p *Proclet) InjectFlushStall(d time.Duration) { p.srv.SetFlushStall(d) }

// InjectReadStall makes the data-plane server stall d before every batched
// frame read (0 clears it), so inbound requests pile up in the socket
// buffer and arrive in deep read batches. The chaos and sim harnesses use
// it as the stall-read (slow reader) fault.
func (p *Proclet) InjectReadStall(d time.Duration) { p.srv.SetReadStall(d) }

// Route returns the data-plane connection this proclet uses to call the
// named remote component, if one has been built. Tests use it to observe
// breaker and hedging state.
func (p *Proclet) Route(component string) (*core.DataPlaneConn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs, ok := p.routes[component]
	if !ok {
		return nil, false
	}
	return rs.conn, true
}

// Wait blocks until the proclet shuts down and returns the terminating
// error, if any.
func (p *Proclet) Wait() error {
	<-p.shutdownCh
	if e, ok := p.err.Load().(error); ok {
		return e
	}
	return nil
}

// Shutdown terminates the proclet: components are shut down and the data
// plane closed. A graceful shutdown (err == nil, e.g. a scale-down) first
// drains the data plane: new requests are refused with a retryable
// "unavailable" status while queued and in-flight calls run to completion,
// so a replica leaving the fleet drops no requests.
func (p *Proclet) Shutdown(err error) {
	p.shutdownOnce.Do(func() {
		if err != nil {
			p.err.Store(err)
		} else {
			dctx, dcancel := context.WithTimeout(context.Background(), 3*time.Second)
			_ = p.srv.Drain(dctx)
			dcancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = p.runtime.Shutdown(ctx)
		p.srv.Close()
		p.mu.Lock()
		for _, rs := range p.routes {
			rs.conn.Close()
		}
		p.mu.Unlock()
		// Closing the control-plane connection tells the envelope this
		// replica is gone (the pipe-EOF liveness signal).
		_ = p.opts.Conn.Close()
		close(p.shutdownCh)
	})
}

func (p *Proclet) isHosted(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hosted[name]
}

// send transmits a fire-and-forget message.
func (p *Proclet) send(m *pipe.Message) error {
	return p.opts.Conn.Send(m)
}

// call transmits a request and waits for its Ack. Proclet-initiated
// request IDs are odd; envelope-initiated ones even (see package pipe).
func (p *Proclet) call(ctx context.Context, m *pipe.Message) (*pipe.Message, error) {
	id := p.nextID.Add(1)<<1 | 1
	m.ID = id
	ch := make(chan *pipe.Message, 1)
	p.acks.Store(id, ch)
	defer p.acks.Delete(id)
	if err := p.send(m); err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return nil, fmt.Errorf("proclet: envelope error: %s", reply.Err)
		}
		return reply, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.shutdownCh:
		return nil, fmt.Errorf("proclet: shut down")
	}
}

// recvLoop dispatches envelope messages until the pipe breaks.
//
// Host and stop requests run on their own goroutines: hosting a component
// initializes it, which resolves its dependencies, which can block waiting
// for routing info — info that only this loop can deliver. Handling them
// inline would deadlock the control plane. Routing pushes are applied
// inline so they keep their pipe order.
func (p *Proclet) recvLoop(ctx context.Context) {
	for {
		m, err := p.opts.Conn.Recv()
		if err != nil {
			// The envelope died or closed the pipe: shut down. This is the
			// mechanism by which orphaned proclets exit.
			p.Shutdown(fmt.Errorf("proclet: control plane closed: %w", err))
			return
		}
		switch m.Kind {
		case pipe.KindAck:
			if ch, ok := p.acks.Load(m.ID); ok {
				ch.(chan *pipe.Message) <- m
			}
		case pipe.KindHostComponents:
			m := m
			go func() {
				var err error
				if m.HostComponents != nil {
					err = p.hostComponents(ctx, m.HostComponents.Components, m.HostComponents.Version)
					if err != nil {
						p.opts.Logger.Error("hosting components", err)
					}
				}
				p.ackTo(m, err)
			}()
		case pipe.KindStopComponent:
			m := m
			go func() {
				var err error
				if m.StopComponent != nil {
					err = p.unhostComponent(m.StopComponent.Component, m.StopComponent.Version)
					if err != nil {
						p.opts.Logger.Error("stopping component", err)
					}
				}
				p.ackTo(m, err)
			}()
		case pipe.KindRoutingInfo:
			if m.RoutingInfo != nil {
				p.updateRouting(m.RoutingInfo)
			}
			p.ackTo(m, nil)
		case pipe.KindReregister:
			// A rebuilt manager is recovering observed state: answer with a
			// fresh, complete registration.
			_ = p.send(p.registrationMsg())
			p.ackTo(m, nil)
		case pipe.KindShutdown:
			p.Shutdown(nil)
			return
		}
	}
}

// ackTo answers an envelope-initiated request; unsolicited pushes (ID 0)
// get no reply.
func (p *Proclet) ackTo(m *pipe.Message, err error) {
	if m.ID == 0 {
		return
	}
	reply := &pipe.Message{Kind: pipe.KindAck, ID: m.ID}
	if err != nil {
		reply.Err = err.Error()
	}
	_ = p.send(reply)
}

// hostComponents initializes and serves any newly assigned components.
// version is the routing epoch of the placement decision (0 for the
// initial assignment); it fences the local-route flip so a delayed host
// push cannot override a newer placement.
func (p *Proclet) hostComponents(ctx context.Context, components []string, version uint64) error {
	var fresh []string
	p.mu.Lock()
	p.noteEpochLocked(version)
	for _, c := range components {
		if !p.hosted[c] {
			p.hosted[c] = true
			fresh = append(fresh, c)
		}
	}
	p.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}
	p.opts.Logger.Info("hosting components", "components", strings.Join(shortNames(fresh), ","))
	if err := core.HostComponents(ctx, p.runtime, p.srv, fresh); err != nil {
		return err
	}
	// Flip local callers of the newly hosted components to direct dispatch
	// (dynamic FastLocal). Stubs resolved while the component was remote
	// pick up the new route on their next call.
	for _, c := range fresh {
		if err := p.runtime.PromoteLocal(ctx, c, version); err != nil {
			return err
		}
	}
	return nil
}

// unhostComponent stops hosting one component (the drain side of a live
// re-placement move): local callers flip back to the data plane, then the
// component's handlers are unregistered, draining in-flight remote calls.
func (p *Proclet) unhostComponent(component string, version uint64) error {
	p.mu.Lock()
	p.noteEpochLocked(version)
	wasHosted := p.hosted[component]
	delete(p.hosted, component)
	p.mu.Unlock()
	if !wasHosted {
		return nil
	}
	// Demote before unregistering: once local callers use the data plane,
	// nothing new targets the handlers and the drain can only shrink. The
	// routing epoch that moved the component away was broadcast before this
	// request, so building the data-plane conn does not block.
	if err := p.runtime.DemoteLocal(component, version); err != nil {
		return err
	}
	if err := core.UnhostComponent(p.srv, component); err != nil {
		return err
	}
	p.opts.Logger.Info("stopped hosting component", "component", core.ShortName(component))
	return nil
}

// procletNoReplicaGrace is how long a proclet's data-plane calls wait for a
// cold component's replica set to become non-empty. It is generous because
// the manager may be spawning the component's very first replica (in a
// subprocess deployment that includes an exec).
const procletNoReplicaGrace = 15 * time.Second

// newRouteState builds the client-side routing state for one component.
// The proclet's span recorder is handed to the conn so hedge-loser spans
// land in the same export stream as served-call spans.
func newRouteState(component string, routed bool, tracer *tracing.Recorder) *routeState {
	var bal routing.Balancer
	if routed {
		bal = routing.NewAffinity()
	} else {
		bal = routing.NewRoundRobin()
	}
	return &routeState{
		conn: core.NewDataPlaneConnWith(component, bal, core.ConnOptions{
			// NumConns zero: stripe each peer min(4, GOMAXPROCS) wide.
			NoReplicaGrace: procletNoReplicaGrace,
			Tracer:         tracer,
		}),
	}
}

// remoteConn builds (once per component) the data-plane connection used to
// call a component not hosted here, asking the manager to start it.
//
// Setup is deliberately lazy: the conn is returned without waiting for the
// first routing push. A blocking wait here deadlocks static colocation
// configs where two groups' components reference each other — each group
// would sit in component init waiting for the other group's routing, and
// neither would reach RegisterReplica. Early calls instead wait inside the
// conn (DataPlaneConn.pickReplica polls out NoReplicaGrace) while the
// manager spins the component up and routing propagates.
func (p *Proclet) remoteConn(reg *codegen.Registration) (codegen.Conn, error) {
	p.mu.Lock()
	rs, ok := p.routes[reg.Name]
	if !ok {
		rs = newRouteState(reg.Name, reg.Routed, p.tracer)
		p.routes[reg.Name] = rs
	}
	needStart := !p.started[reg.Name]
	p.started[reg.Name] = true
	p.mu.Unlock()

	if needStart {
		if err := p.send(&pipe.Message{
			Kind:           pipe.KindStartComponent,
			StartComponent: &pipe.StartComponent{Component: reg.Name, Routed: reg.Routed},
		}); err != nil {
			return nil, fmt.Errorf("proclet: StartComponent(%s): %w", reg.Name, err)
		}
	}
	return rs.conn, nil
}

// routedShardLocal implements core.Options.RoutedLocal: it reports whether
// this replica owns a routed component's shard under the affinity
// assignment this proclet has applied. known is false before any
// assignment arrives (warm-up, or an unrouted component), which keeps the
// local fast path.
func (p *Proclet) routedShardLocal(component string, shard uint64) (owns, known bool) {
	p.mu.Lock()
	rs := p.routes[component]
	p.mu.Unlock()
	if rs == nil {
		return false, false
	}
	aff, ok := rs.conn.Balancer().(*routing.Affinity)
	if !ok {
		return false, false
	}
	owners := aff.Owners(shard)
	if len(owners) == 0 {
		return false, false
	}
	for _, o := range owners {
		if o == p.addr {
			return true, true
		}
	}
	return false, true
}

// updateRouting applies a routing push from the envelope.
func (p *Proclet) updateRouting(ri *pipe.RoutingInfo) {
	p.mu.Lock()
	rs, ok := p.routes[ri.Component]
	if !ok {
		// Routing info for a component we have not asked about yet: create
		// the state so a later remoteConn finds it ready.
		reg, found := codegen.Find(ri.Component)
		rs = newRouteState(ri.Component, found && reg.Routed, p.tracer)
		p.routes[ri.Component] = rs
		p.started[ri.Component] = true
	}
	p.noteEpochLocked(ri.Version)
	if ri.Version < rs.version {
		p.mu.Unlock()
		return // stale
	}
	rs.version = ri.Version
	p.mu.Unlock()

	rs.conn.Balancer().Update(ri.Replicas, ri.Assignment)
	// Publish the applied epoch and replica count only after the balancer
	// has applied the update, so RoutingVersion and RoutingReplicas never
	// run ahead of what Pick sees.
	p.mu.Lock()
	if rs.version == ri.Version {
		rs.applied = ri.Version
		rs.replicas = len(ri.Replicas)
	}
	p.mu.Unlock()
}

// RoutingVersion reports the routing epoch this proclet has applied for a
// component's data-plane route (0 before any routing info arrived). The
// epoch is published only after the balancer finished applying the push,
// so observing version v implies Pick sees assignment v (or newer).
func (p *Proclet) RoutingVersion(component string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs, ok := p.routes[component]; ok {
		return rs.applied
	}
	return 0
}

// RoutingReplicas reports how many replicas this proclet's client-side
// balancer currently knows for a component (by full registration name).
// Routing info propagates asynchronously from the manager, so code that
// needs a stable replica set — e.g. a test asserting routing affinity —
// must wait for the client-visible count, not just the manager's.
func (p *Proclet) RoutingReplicas(component string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rs, ok := p.routes[component]; ok {
		return rs.replicas
	}
	return 0
}

// reportLoop periodically ships load reports and telemetry.
func (p *Proclet) reportLoop(ctx context.Context) {
	ticker := time.NewTicker(p.opts.ReportInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.reportOnce()
		case <-p.shutdownCh:
			return
		case <-ctx.Done():
			return
		}
	}
}

func (p *Proclet) reportOnce() {
	snap := p.metrics.Snapshot()
	// Include the process-global registry so transport-level metrics
	// (rpc.server.shed, rpc.breaker.*, rpc.client.*) reach the manager's
	// merged view and the dashboard; the two registries' name spaces are
	// disjoint (component.* vs rpc.*).
	snap = append(snap, metrics.Default.Snapshot()...)

	// Load = delta of calls served by this replica per second.
	var totalCalls float64
	for _, s := range snap {
		if s.Kind == metrics.KindCounter && strings.HasPrefix(s.Name, "component.served.") {
			totalCalls += s.Value
		}
	}
	now := time.Now()
	elapsed := now.Sub(p.lastReport).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = (totalCalls - p.lastCalls) / elapsed
	}
	p.lastCalls = totalCalls
	p.lastReport = now

	_ = p.send(&pipe.Message{
		Kind: pipe.KindLoadReport,
		LoadReport: &pipe.LoadReport{
			Healthy:     true,
			CallsPerSec: rate,
			Metrics:     snap,
		},
	})

	if entries := p.logBuf.Drain(); len(entries) > 0 {
		_ = p.send(&pipe.Message{Kind: pipe.KindLogBatch, LogBatch: &pipe.LogBatch{Entries: entries}})
	}
	if spans := p.tracer.Drain(); len(spans) > 0 {
		_ = p.send(&pipe.Message{Kind: pipe.KindTraceBatch, TraceBatch: &pipe.TraceBatch{Spans: spans}})
	}
	if edges := p.graph.Drain(); len(edges) > 0 {
		_ = p.send(&pipe.Message{Kind: pipe.KindGraphBatch, GraphBatch: &pipe.GraphBatch{Edges: edges}})
	}
}

func shortNames(full []string) []string {
	out := make([]string, len(full))
	for i, f := range full {
		out[i] = core.ShortName(f)
	}
	return out
}
