package proclet

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/callgraph"
	"repro/internal/envelope"
	"repro/internal/logging"
	"repro/internal/pipe"
	"repro/internal/tracing"
)

// scriptedManager serves the minimal control plane a proclet needs.
type scriptedManager struct {
	host    []string
	lastReg chan pipe.RegisterReplica
	loads   chan pipe.LoadReport
}

func newScriptedManager(host ...string) *scriptedManager {
	return &scriptedManager{
		host:    host,
		lastReg: make(chan pipe.RegisterReplica, 8),
		loads:   make(chan pipe.LoadReport, 1024),
	}
}

func (m *scriptedManager) RegisterReplica(e *envelope.Envelope, r pipe.RegisterReplica) error {
	m.lastReg <- r
	return nil
}
func (m *scriptedManager) ComponentsToHost(*envelope.Envelope) ([]string, error) {
	return m.host, nil
}
func (m *scriptedManager) StartComponent(*envelope.Envelope, string, bool) error { return nil }
func (m *scriptedManager) LoadReport(e *envelope.Envelope, lr pipe.LoadReport) {
	select {
	case m.loads <- lr:
	default:
	}
}
func (m *scriptedManager) Logs([]logging.Entry)                    {}
func (m *scriptedManager) Traces([]tracing.Span)                   {}
func (m *scriptedManager) GraphEdges([]callgraph.Edge)             {}
func (m *scriptedManager) ReplicaExited(*envelope.Envelope, error) {}

func noFill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return nil
}

func TestStartRequiresConn(t *testing.T) {
	_, err := Start(context.Background(), Options{})
	if err == nil || !strings.Contains(err.Error(), "connection") {
		t.Errorf("err = %v", err)
	}
}

func TestStartRegistersWithAddr(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := newScriptedManager()
	envelope.Attach("p/0", "p", envConn, mgr)

	p, err := Start(context.Background(), Options{
		Conn:      procConn,
		ProcletID: "p/0",
		Group:     "p",
		Fill:      noFill,
		Logger:    logging.New(logging.Options{Sink: logging.Discard}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(nil)

	select {
	case reg := <-mgr.lastReg:
		if reg.ProcletID != "p/0" || reg.Group != "p" || reg.Addr != p.Addr() || reg.Addr == "" {
			t.Errorf("registration = %+v (proclet addr %s)", reg, p.Addr())
		}
		if reg.Pid == 0 {
			t.Error("no pid in registration")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("proclet never registered")
	}
}

func TestPeriodicLoadReports(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := newScriptedManager()
	envelope.Attach("p/0", "p", envConn, mgr)
	p, err := Start(context.Background(), Options{
		Conn: procConn, ProcletID: "p/0", Group: "p",
		Fill:           noFill,
		ReportInterval: 50 * time.Millisecond,
		Logger:         logging.New(logging.Options{Sink: logging.Discard}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(nil)

	for i := 0; i < 2; i++ {
		select {
		case lr := <-mgr.loads:
			if !lr.Healthy {
				t.Error("proclet reported unhealthy")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no load report")
		}
	}
}

func TestShutdownOnPipeClose(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := newScriptedManager()
	e := envelope.Attach("p/0", "p", envConn, mgr)
	p, err := Start(context.Background(), Options{
		Conn: procConn, ProcletID: "p/0", Group: "p",
		Fill:   noFill,
		Logger: logging.New(logging.Options{Sink: logging.Discard}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The envelope disappears: the proclet must shut itself down (orphan
	// cleanup).
	envConn.Close()
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("orphaned proclet exited without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("orphaned proclet never shut down")
	}
	_ = e
}

func TestGracefulShutdownMessage(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := newScriptedManager()
	e := envelope.Attach("p/0", "p", envConn, mgr)
	p, err := Start(context.Background(), Options{
		Conn: procConn, ProcletID: "p/0", Group: "p",
		Fill:   noFill,
		Logger: logging.New(logging.Options{Sink: logging.Discard}),
	})
	if err != nil {
		t.Fatal(err)
	}

	go e.Stop(3 * time.Second)
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("proclet ignored shutdown")
	}
}
