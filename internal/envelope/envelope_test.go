package envelope

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/callgraph"
	"repro/internal/logging"
	"repro/internal/pipe"
	"repro/internal/tracing"
)

// fakeManager records calls for assertions.
type fakeManager struct {
	mu         sync.Mutex
	registered []pipe.RegisterReplica
	started    []string
	loads      []pipe.LoadReport
	logs       []logging.Entry
	exits      []error
	components []string
}

func (f *fakeManager) RegisterReplica(e *Envelope, r pipe.RegisterReplica) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.registered = append(f.registered, r)
	return nil
}

func (f *fakeManager) ComponentsToHost(e *Envelope) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.components, nil
}

func (f *fakeManager) StartComponent(e *Envelope, c string, routed bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.started = append(f.started, c)
	if c == "bad" {
		return fmt.Errorf("no such component")
	}
	return nil
}

func (f *fakeManager) LoadReport(e *Envelope, lr pipe.LoadReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads = append(f.loads, lr)
}

func (f *fakeManager) Logs(entries []logging.Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logs = append(f.logs, entries...)
}

func (f *fakeManager) Traces([]tracing.Span)       {}
func (f *fakeManager) GraphEdges([]callgraph.Edge) {}

func (f *fakeManager) ReplicaExited(e *Envelope, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.exits = append(f.exits, err)
}

func setup(t *testing.T) (*fakeManager, *Envelope, *pipe.Conn) {
	t.Helper()
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := &fakeManager{components: []string{"app/X"}}
	e := Attach("test/0", "test", envConn, mgr)
	t.Cleanup(func() {
		procConn.Close()
		<-e.Done()
	})
	return mgr, e, procConn
}

func TestRegisterRelayedAndInfoStored(t *testing.T) {
	mgr, e, proc := setup(t)
	err := proc.Send(&pipe.Message{
		Kind: pipe.KindRegisterReplica,
		ID:   1,
		RegisterReplica: &pipe.RegisterReplica{
			ProcletID: "test/0", Group: "test", Addr: "127.0.0.1:1234", Pid: 99,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Kind != pipe.KindAck || ack.ID != 1 || ack.Err != "" {
		t.Fatalf("ack = %+v", ack)
	}
	mgr.mu.Lock()
	n := len(mgr.registered)
	mgr.mu.Unlock()
	if n != 1 {
		t.Fatalf("registered = %d", n)
	}
	if e.Addr() != "127.0.0.1:1234" {
		t.Errorf("addr = %q", e.Addr())
	}
	info, ok := e.Info()
	if !ok || info.Pid != 99 {
		t.Errorf("info = %+v, %v", info, ok)
	}
}

func TestComponentsToHostAck(t *testing.T) {
	_, _, proc := setup(t)
	if err := proc.Send(&pipe.Message{Kind: pipe.KindComponentsToHost, ID: 2}); err != nil {
		t.Fatal(err)
	}
	ack, err := proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.HostComponents == nil || len(ack.HostComponents.Components) != 1 || ack.HostComponents.Components[0] != "app/X" {
		t.Errorf("ack = %+v", ack)
	}
}

func TestStartComponentErrorPropagates(t *testing.T) {
	_, _, proc := setup(t)
	if err := proc.Send(&pipe.Message{
		Kind: pipe.KindStartComponent, ID: 3,
		StartComponent: &pipe.StartComponent{Component: "bad"},
	}); err != nil {
		t.Fatal(err)
	}
	ack, err := proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Error("error not propagated in ack")
	}
}

func TestTelemetryForwarded(t *testing.T) {
	mgr, _, proc := setup(t)
	_ = proc.Send(&pipe.Message{Kind: pipe.KindLogBatch, LogBatch: &pipe.LogBatch{
		Entries: []logging.Entry{{Msg: "hello"}},
	}})
	_ = proc.Send(&pipe.Message{Kind: pipe.KindLoadReport, ID: 4, LoadReport: &pipe.LoadReport{CallsPerSec: 7}})
	// LoadReport is acked; wait for it so the log batch has been handled.
	if _, err := proc.Recv(); err != nil {
		t.Fatal(err)
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.logs) != 1 || mgr.logs[0].Msg != "hello" {
		t.Errorf("logs = %+v", mgr.logs)
	}
	if len(mgr.loads) != 1 || mgr.loads[0].CallsPerSec != 7 {
		t.Errorf("loads = %+v", mgr.loads)
	}
}

func TestPushesReachProclet(t *testing.T) {
	_, e, proc := setup(t)
	if err := e.SendHostComponents([]string{"app/Y"}); err != nil {
		t.Fatal(err)
	}
	m, err := proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != pipe.KindHostComponents || m.HostComponents.Components[0] != "app/Y" {
		t.Errorf("push = %+v", m)
	}
	if err := e.SendRoutingInfo(pipe.RoutingInfo{Component: "app/Y", Replicas: []string{"a:1"}, Version: 2}); err != nil {
		t.Fatal(err)
	}
	m, err = proc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != pipe.KindRoutingInfo || m.RoutingInfo.Version != 2 {
		t.Errorf("push = %+v", m)
	}
}

func TestExitDetection(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := &fakeManager{}
	e := Attach("x/0", "x", envConn, mgr)
	procConn.Close() // proclet "crashes"
	select {
	case <-e.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("envelope never noticed the exit")
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.exits) != 1 || mgr.exits[0] == nil {
		t.Errorf("exits = %+v (crash should carry an error)", mgr.exits)
	}
}

func TestStopIsGraceful(t *testing.T) {
	envConn, procConn, err := pipe.Pair()
	if err != nil {
		t.Fatal(err)
	}
	mgr := &fakeManager{}
	e := Attach("x/0", "x", envConn, mgr)

	// A cooperative proclet: close the pipe when told to shut down.
	go func() {
		for {
			m, err := procConn.Recv()
			if err != nil {
				return
			}
			if m.Kind == pipe.KindShutdown {
				procConn.Close()
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		e.Stop(5 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung")
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.exits) != 1 || mgr.exits[0] != nil {
		t.Errorf("exits = %+v (graceful stop should carry nil)", mgr.exits)
	}
}
