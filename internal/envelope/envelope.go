// Package envelope implements the envelope process wrapper from the
// paper's deployer architecture (Figure 3). An envelope is the parent of
// one proclet: it spawns the application binary as a subprocess (or
// attaches to an in-process proclet in tests), relays the proclet's
// control-plane API calls to the global manager, and pushes placement and
// routing decisions back down the pipe.
package envelope

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/callgraph"
	"repro/internal/logging"
	"repro/internal/pipe"
	"repro/internal/tracing"
)

// Manager is the subset of the global manager the envelope relays proclet
// API calls to (paper Table 1 plus telemetry).
type Manager interface {
	// RegisterReplica records a proclet as alive and ready.
	RegisterReplica(e *Envelope, r pipe.RegisterReplica) error
	// ComponentsToHost returns the components e's proclet should host.
	ComponentsToHost(e *Envelope) ([]string, error)
	// StartComponent ensures a component is started somewhere and that
	// routing info will be pushed to e.
	StartComponent(e *Envelope, component string, routed bool) error
	// LoadReport ingests a health/load report from e.
	LoadReport(e *Envelope, lr pipe.LoadReport)
	// Telemetry sinks.
	Logs(entries []logging.Entry)
	Traces(spans []tracing.Span)
	GraphEdges(edges []callgraph.Edge)
	// ReplicaExited reports that e's proclet is gone.
	ReplicaExited(e *Envelope, err error)
}

// Envelope supervises one proclet.
type Envelope struct {
	ID    string
	Group string

	conn *pipe.Conn
	cmd  *exec.Cmd // nil for in-process proclets
	mgr  Manager

	mu         sync.Mutex
	registered pipe.RegisterReplica
	hasInfo    bool

	// Envelope-initiated requests (live re-placement, acked routing
	// pushes): acks holds, per outstanding request ID, either a reply
	// channel (Call) or a callback (PushRoutingInfo). Envelope IDs are
	// even, proclet IDs odd, so the two request streams never collide on
	// the pipe.
	acks   sync.Map // uint64 -> chan *pipe.Message | func(*pipe.Message)
	nextID atomic.Uint64

	stopping atomic.Bool
	done     chan struct{}
}

// SpawnOptions configures a subprocess proclet.
type SpawnOptions struct {
	// Binary and Args name the application executable. The envelope always
	// re-executes the same application binary; which components the child
	// actually runs is decided by the manager, not by the command line.
	Binary string
	Args   []string
	// Env entries (KEY=VALUE) appended to the child environment.
	Env []string
	// ID and Group identify the replica.
	ID, Group string
	// Version is the application version of this rollout.
	Version string
}

// Spawn launches the application binary as a proclet subprocess wired to a
// new envelope. The child inherits the control-plane pipe on fds 3 and 4
// and discovers proclet mode via the WEAVER_PROCLET environment variable.
func Spawn(ctx context.Context, opts SpawnOptions, mgr Manager) (*Envelope, error) {
	// envelope -> proclet pipe
	epR, epW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	// proclet -> envelope pipe
	peR, peW, err := os.Pipe()
	if err != nil {
		epR.Close()
		epW.Close()
		return nil, err
	}

	cmd := exec.CommandContext(ctx, opts.Binary, opts.Args...)
	cmd.Env = append(os.Environ(),
		"WEAVER_PROCLET=1",
		"WEAVER_REPLICA="+opts.ID,
		"WEAVER_GROUP="+opts.Group,
		"WEAVER_VERSION="+opts.Version,
	)
	cmd.Env = append(cmd.Env, opts.Env...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.ExtraFiles = []*os.File{epR, peW} // fds 3 (read) and 4 (write) in the child
	cmd.Cancel = func() error { return cmd.Process.Kill() }

	if err := cmd.Start(); err != nil {
		for _, f := range []*os.File{epR, epW, peR, peW} {
			f.Close()
		}
		return nil, fmt.Errorf("envelope: spawning %s: %w", opts.Binary, err)
	}
	// Close the child's ends in the parent.
	epR.Close()
	peW.Close()

	e := &Envelope{
		ID:    opts.ID,
		Group: opts.Group,
		conn:  pipe.NewConn(peR, epW),
		cmd:   cmd,
		mgr:   mgr,
		done:  make(chan struct{}),
	}
	go e.serve()
	go e.reap()
	return e, nil
}

// Attach wires an envelope to an in-process proclet over conn. Used by the
// in-process deployer and tests; the protocol is identical to Spawn's.
func Attach(id, group string, conn *pipe.Conn, mgr Manager) *Envelope {
	e := &Envelope{
		ID:    id,
		Group: group,
		conn:  conn,
		mgr:   mgr,
		done:  make(chan struct{}),
	}
	go e.serve()
	return e
}

// Info returns the proclet's registration, if it has registered.
func (e *Envelope) Info() (pipe.RegisterReplica, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registered, e.hasInfo
}

// Addr returns the proclet's data-plane address ("" before registration).
func (e *Envelope) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registered.Addr
}

// Pid returns the subprocess pid, or 0 for in-process proclets.
func (e *Envelope) Pid() int {
	if e.cmd == nil || e.cmd.Process == nil {
		return 0
	}
	return e.cmd.Process.Pid
}

// Done is closed when the proclet connection has terminated.
func (e *Envelope) Done() <-chan struct{} { return e.done }

// serve relays proclet messages to the manager until the pipe breaks.
func (e *Envelope) serve() {
	defer close(e.done)
	for {
		m, err := e.conn.Recv()
		if err != nil {
			deliberate := e.stopping.Load()
			if deliberate {
				e.mgr.ReplicaExited(e, nil)
			} else {
				e.mgr.ReplicaExited(e, fmt.Errorf("envelope: proclet %s pipe closed: %v", e.ID, err))
			}
			return
		}
		e.handle(m)
	}
}

func (e *Envelope) handle(m *pipe.Message) {
	ack := func(reply *pipe.Message, err error) {
		if m.ID == 0 {
			return
		}
		if reply == nil {
			reply = &pipe.Message{}
		}
		reply.Kind = pipe.KindAck
		reply.ID = m.ID
		if err != nil {
			reply.Err = err.Error()
		}
		_ = e.conn.Send(reply)
	}

	switch m.Kind {
	case pipe.KindAck:
		// Reply to an envelope-initiated request (Call or PushRoutingInfo).
		if v, ok := e.acks.Load(m.ID); ok {
			switch h := v.(type) {
			case chan *pipe.Message:
				h <- m
			case func(*pipe.Message):
				e.acks.Delete(m.ID)
				h(m)
			}
		}

	case pipe.KindRegisterReplica:
		if m.RegisterReplica == nil {
			ack(nil, fmt.Errorf("malformed RegisterReplica"))
			return
		}
		e.mu.Lock()
		e.registered = *m.RegisterReplica
		e.hasInfo = true
		e.mu.Unlock()
		ack(nil, e.mgr.RegisterReplica(e, *m.RegisterReplica))

	case pipe.KindComponentsToHost:
		components, err := e.mgr.ComponentsToHost(e)
		ack(&pipe.Message{HostComponents: &pipe.HostComponents{Components: components}}, err)

	case pipe.KindStartComponent:
		if m.StartComponent == nil {
			ack(nil, fmt.Errorf("malformed StartComponent"))
			return
		}
		ack(nil, e.mgr.StartComponent(e, m.StartComponent.Component, m.StartComponent.Routed))

	case pipe.KindLoadReport:
		if m.LoadReport != nil {
			e.mgr.LoadReport(e, *m.LoadReport)
		}
		ack(nil, nil)

	case pipe.KindLogBatch:
		if m.LogBatch != nil {
			e.mgr.Logs(m.LogBatch.Entries)
		}
	case pipe.KindTraceBatch:
		if m.TraceBatch != nil {
			e.mgr.Traces(m.TraceBatch.Spans)
		}
	case pipe.KindGraphBatch:
		if m.GraphBatch != nil {
			e.mgr.GraphEdges(m.GraphBatch.Edges)
		}
	}
}

// SendHostComponents pushes an updated hosting assignment to the proclet.
func (e *Envelope) SendHostComponents(components []string) error {
	return e.conn.Send(&pipe.Message{
		Kind:           pipe.KindHostComponents,
		HostComponents: &pipe.HostComponents{Components: components},
	})
}

// SendRoutingInfo pushes routing information for one component.
func (e *Envelope) SendRoutingInfo(ri pipe.RoutingInfo) error {
	return e.conn.Send(&pipe.Message{Kind: pipe.KindRoutingInfo, RoutingInfo: &ri})
}

// PushRoutingInfo pushes routing information with an ack callback: onAck
// runs (on the envelope's serve goroutine) once the proclet has applied
// the push. It is the observed-state feedback path — the manager records
// each replica's applied routing epoch from these acks. If the proclet
// dies before acking, the callback never runs; a dead proclet holds no
// routes worth tracking.
func (e *Envelope) PushRoutingInfo(ri pipe.RoutingInfo, onAck func()) error {
	if onAck == nil {
		return e.SendRoutingInfo(ri)
	}
	id := e.nextID.Add(1) << 1 // even, nonzero
	e.acks.Store(id, func(m *pipe.Message) {
		if m.Err == "" {
			onAck()
		}
	})
	if err := e.conn.Send(&pipe.Message{Kind: pipe.KindRoutingInfo, RoutingInfo: &ri, ID: id}); err != nil {
		e.acks.Delete(id)
		return err
	}
	return nil
}

// Reregister asks the proclet to re-send its registration, carrying its
// full observed state (hosted components, applied routing epochs). A
// rebuilt manager sends this to every adopted envelope to recover control
// state it no longer has.
func (e *Envelope) Reregister() error {
	return e.conn.Send(&pipe.Message{Kind: pipe.KindReregister})
}

// Call sends an envelope-initiated request down the pipe and waits for the
// proclet's ack. The manager's re-placement protocol uses it for the
// operations whose *completion* matters: hosting a component on a new
// group, applying a routing epoch, and draining a stopped component.
func (e *Envelope) Call(ctx context.Context, m *pipe.Message) error {
	id := e.nextID.Add(1) << 1 // even, nonzero
	m.ID = id
	ch := make(chan *pipe.Message, 1)
	e.acks.Store(id, ch)
	defer e.acks.Delete(id)
	if err := e.conn.Send(m); err != nil {
		return err
	}
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return fmt.Errorf("envelope: proclet %s: %s", e.ID, reply.Err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.done:
		return fmt.Errorf("envelope: proclet %s is gone", e.ID)
	}
}

// CallHostComponents asks the proclet to host components (with the routing
// epoch of the placement decision) and waits until their handlers serve.
func (e *Envelope) CallHostComponents(ctx context.Context, components []string, version uint64) error {
	return e.Call(ctx, &pipe.Message{
		Kind:           pipe.KindHostComponents,
		HostComponents: &pipe.HostComponents{Components: components, Version: version},
	})
}

// CallRoutingInfo pushes routing information and waits until the proclet
// has applied it.
func (e *Envelope) CallRoutingInfo(ctx context.Context, ri pipe.RoutingInfo) error {
	return e.Call(ctx, &pipe.Message{Kind: pipe.KindRoutingInfo, RoutingInfo: &ri})
}

// CallStopComponent asks the proclet to stop hosting a component and waits
// until its in-flight calls have drained and its handlers are released.
func (e *Envelope) CallStopComponent(ctx context.Context, component string, version uint64) error {
	return e.Call(ctx, &pipe.Message{
		Kind:          pipe.KindStopComponent,
		StopComponent: &pipe.StopComponent{Component: component, Version: version},
	})
}

// Stop asks the proclet to shut down gracefully, then — for subprocesses —
// kills it after the grace period. It returns once the proclet is gone.
func (e *Envelope) Stop(grace time.Duration) {
	e.stopping.Store(true)
	_ = e.conn.Send(&pipe.Message{Kind: pipe.KindShutdown})
	select {
	case <-e.done:
	case <-time.After(grace):
		if e.cmd != nil && e.cmd.Process != nil {
			_ = e.cmd.Process.Kill()
		}
		e.conn.Close()
		<-e.done
	}
}

// Kill forcibly terminates the proclet without a graceful shutdown. Used
// by chaos tests to simulate crashes.
func (e *Envelope) Kill() {
	if e.cmd != nil && e.cmd.Process != nil {
		_ = e.cmd.Process.Signal(syscall.SIGKILL)
	}
	e.conn.Close()
}

// reap waits for the subprocess so it does not become a zombie.
func (e *Envelope) reap() {
	if e.cmd != nil {
		_ = e.cmd.Wait()
	}
}
