package sim

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Kind enumerates the operations a simulated schedule is built from:
// workload calls against the deployment's test components interleaved with
// fault and topology mutations.
type Kind int

// The op grammar. Workload ops exercise three call shapes: direct
// affinity-routed calls (Put/Get), calls relayed through an unrouted
// component colocated with its routed callee (ProxyPut/ProxyGet — the shape
// that historically dispatched blindly to the local replica), at-most-once
// calls (Deliver, weaver:noretry), and mixed-priority bursts that saturate
// admission so low-priority work gets shed. Fault ops drive the
// deployment fabric: crash-and-restart, explicit resharding, live
// re-placement, and data-plane degradation.
const (
	OpPut          Kind = iota // direct Store.Put, affinity-routed by key
	OpGet                      // direct Store.Get
	OpProxyPut                 // Store.Put relayed through colocated StoreProxy
	OpProxyGet                 // Store.Get relayed through colocated StoreProxy
	OpDeliver                  // Mover.Deliver, at-most-once semantics
	OpEcho                     // unrouted sanity call
	OpKill                     // crash a replica; the manager must heal it
	OpScale                    // resize a group to N replicas
	OpMove                     // live re-placement of Mover between groups
	OpDegrade                  // inject data-plane delay into a replica
	OpRestore                  // remove injected delay
	OpDegradeBatch             // stall a replica's response flusher (forces write coalescing)
	OpRestoreBatch             // remove injected flush stall
	OpBurst                    // mixed-priority burst: concurrent low Gets + high Delivers
	OpMgrRestart               // tear down the manager and rebuild it from re-registration
	OpStallRead                // stall a replica's batched frame reader (slow-reader fault)
	OpRestoreRead              // remove injected read stall
)

// Burst shape: enough concurrent low-priority Store.Gets to saturate a
// replica's MaxInflight+MaxQueue admission budget, racing a handful of
// at-most-once high-priority Mover.Delivers. The point is to shed
// low-priority work mid-schedule and then check that the delivery ledger
// still balances (checkAMO).
const (
	burstGets     = 10
	burstDelivers = 4
)

// Op is one step of a simulated schedule. Which fields are meaningful
// depends on Kind. Replica targets are an abstract Index resolved against
// the sorted live replica list at execution time (mod its length), so a
// trace stays executable as replicas die, restart, and get renamed.
type Op struct {
	Kind  Kind
	Key   string // OpPut/OpGet/OpProxyPut/OpProxyGet/OpBurst
	Val   int64  // value written (puts) or sequence number (OpDeliver; first of burstDelivers for OpBurst)
	Group string // fault target: "kv" or "mv" (Mover's current group)
	Index int    // abstract replica index for OpKill/OpDegrade/OpRestore
	N     int    // target size for OpScale
}

func (o Op) String() string {
	switch o.Kind {
	case OpPut:
		return fmt.Sprintf("put %s=%d", o.Key, o.Val)
	case OpGet:
		return fmt.Sprintf("get %s", o.Key)
	case OpProxyPut:
		return fmt.Sprintf("proxy-put %s=%d", o.Key, o.Val)
	case OpProxyGet:
		return fmt.Sprintf("proxy-get %s", o.Key)
	case OpDeliver:
		return fmt.Sprintf("deliver %d", o.Val)
	case OpEcho:
		return "echo"
	case OpKill:
		return fmt.Sprintf("kill %s[%d]", o.Group, o.Index)
	case OpScale:
		return fmt.Sprintf("scale %s=%d", o.Group, o.N)
	case OpMove:
		return "move mover"
	case OpDegrade:
		return fmt.Sprintf("degrade %s[%d]", o.Group, o.Index)
	case OpRestore:
		return fmt.Sprintf("restore %s[%d]", o.Group, o.Index)
	case OpDegradeBatch:
		return fmt.Sprintf("degrade-dataplane-batching %s[%d]", o.Group, o.Index)
	case OpRestoreBatch:
		return fmt.Sprintf("restore-dataplane-batching %s[%d]", o.Group, o.Index)
	case OpBurst:
		return fmt.Sprintf("burst %dx get %s + delivers %d..%d", burstGets, o.Key, o.Val, o.Val+burstDelivers-1)
	case OpMgrRestart:
		return "restart manager"
	case OpStallRead:
		return fmt.Sprintf("stall-read %s[%d]", o.Group, o.Index)
	case OpRestoreRead:
		return fmt.Sprintf("restore-read %s[%d]", o.Group, o.Index)
	}
	return fmt.Sprintf("op(%d)", int(o.Kind))
}

// FormatTrace renders a trace as numbered lines for failure reports.
func FormatTrace(trace []Op) string {
	var b strings.Builder
	for i, op := range trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i, op)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Generate derives a schedule of n ops from a seed. It is a pure function:
// the same (seed, n) always yields the same trace, which is what makes a
// printed seed a complete bug report. Written values and delivery sequence
// numbers are globally unique within a trace, so a read observing a value
// identifies exactly which write produced it.
func Generate(seed uint64, n int) []Op {
	rng := rand.New(rand.NewPCG(seed, 0x51f7ed))
	keys := []string{"a", "b", "c", "d", "e", "f"}
	key := func() string { return keys[rng.IntN(len(keys))] }
	group := func() string {
		if rng.IntN(3) == 0 {
			return "mv"
		}
		return "kv"
	}
	var nextVal, nextSeq int64
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch r := rng.IntN(100); {
		case r < 14:
			nextVal++
			ops = append(ops, Op{Kind: OpPut, Key: key(), Val: nextVal})
		case r < 26:
			ops = append(ops, Op{Kind: OpGet, Key: key()})
		case r < 38:
			nextVal++
			ops = append(ops, Op{Kind: OpProxyPut, Key: key(), Val: nextVal})
		case r < 50:
			ops = append(ops, Op{Kind: OpProxyGet, Key: key()})
		case r < 54:
			first := nextSeq + 1
			nextSeq += burstDelivers
			ops = append(ops, Op{Kind: OpBurst, Key: key(), Val: first})
		case r < 64:
			nextSeq++
			ops = append(ops, Op{Kind: OpDeliver, Val: nextSeq})
		case r < 68:
			ops = append(ops, Op{Kind: OpEcho})
		case r < 76:
			ops = append(ops, Op{Kind: OpKill, Group: group(), Index: rng.IntN(4)})
		case r < 82:
			ops = append(ops, Op{Kind: OpScale, Group: group(), N: 1 + rng.IntN(3)})
		case r < 88:
			ops = append(ops, Op{Kind: OpMove})
		case r < 92:
			ops = append(ops, Op{Kind: OpDegrade, Group: "kv", Index: rng.IntN(4)})
		case r == 92:
			// Carved out of the degrade-batching band, consuming the same
			// single IntN(4) draw that band would, so every pre-existing
			// pinned seed's trace is byte-identical (none of the
			// smoke-campaign seeds draws 92). Targets the mover's group:
			// the op's purpose is at-most-once accounting under a stalled
			// reader.
			ops = append(ops, Op{Kind: OpStallRead, Group: "mv", Index: rng.IntN(4)})
		case r == 93:
			// Carved out of the degrade-batching band without consuming an
			// extra rng draw, so every pre-existing pinned seed's trace is
			// unchanged (none of the smoke-campaign seeds draws 93).
			ops = append(ops, Op{Kind: OpMgrRestart})
		case r < 95:
			ops = append(ops, Op{Kind: OpDegradeBatch, Group: "kv", Index: rng.IntN(4)})
		case r == 96:
			// Carved out of the restore band with an identical draw count
			// (no smoke-campaign seed draws 96); undoes stall-read.
			ops = append(ops, Op{Kind: OpRestoreRead, Group: "mv", Index: rng.IntN(4)})
		case r < 98:
			ops = append(ops, Op{Kind: OpRestore, Group: "kv", Index: rng.IntN(4)})
		default:
			ops = append(ops, Op{Kind: OpRestoreBatch, Group: "kv", Index: rng.IntN(4)})
		}
	}
	return ops
}
