package sim

import "context"

// Shrink minimizes a failing trace with delta debugging (ddmin): it
// repeatedly re-runs candidate sub-traces against fresh deployments,
// keeping any reduction that still violates some invariant (not
// necessarily the original one — a smaller trace exposing a different
// violation is an equally good reproduction). The number of extra runs is
// capped by Options.ShrinkBudget; when the budget runs out the best trace
// found so far is returned.
//
// Because every workload check in the executor is fenced and
// sampling-complete (see world.checkProxyReads), a candidate's pass/fail
// outcome is a function of the candidate alone — so ddmin itself is
// deterministic and the same seed always shrinks to the same trace.
func Shrink(ctx context.Context, opts Options, trace []Op) ([]Op, string, error) {
	opts = opts.withDefaults()
	budget := opts.ShrinkBudget
	lastViolation := ""
	var harnessErr error
	fails := func(t []Op) bool {
		if budget <= 0 || harnessErr != nil {
			return false
		}
		budget--
		v, err := RunTrace(ctx, opts, t)
		if err != nil {
			harnessErr = err
			return false
		}
		if v != "" {
			lastViolation = v
			return true
		}
		return false
	}

	cur := append([]Op(nil), trace...)
	n := 2
	for len(cur) >= 2 && budget > 0 && harnessErr == nil {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur) && budget > 0; start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if fails(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur, lastViolation, harnessErr
}
