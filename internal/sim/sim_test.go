package sim

import (
	"context"
	"flag"
	"reflect"
	"testing"
)

var (
	simSeed = flag.Uint64("sim.seed", 0,
		"replay a single sim seed (TestSimSeed); 0 skips the test")
	simSeeds = flag.Int("sim.seeds", 0,
		"number of seeds for the open-ended soak campaign (TestSimSoak); 0 skips")
	simBase = flag.Uint64("sim.base", 1,
		"first seed of the soak campaign")
	simOps = flag.Int("sim.ops", 0,
		"ops per generated schedule (0 = harness default)")
)

// badSeed is a seed whose schedule deterministically rediscovers the
// historical assignment-blind colocated dispatch bug (ROADMAP item 1) when
// the deployment runs with BypassAssignmentDispatch. It was found by the
// harness itself; see TestSimSeedReproducesDispatchBug.
const badSeed = 1

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(7, 64)
	b := Generate(7, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not a pure function of the seed")
	}
	if reflect.DeepEqual(a, Generate(8, 64)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestSimCampaign is the fixed-seed smoke campaign run by `make sim` (and
// by plain `go test`): a handful of schedules covering crashes, resharding,
// re-placement, and degradation must uphold every invariant.
func TestSimCampaign(t *testing.T) {
	Run(t, Options{Ops: *simOps, Log: t.Logf}, 1, 2, 3)
}

// TestSimSeed replays one seed given on the command line, the workflow a
// failure report prints:
//
//	go test ./internal/sim -run TestSimSeed -sim.seed=N
func TestSimSeed(t *testing.T) {
	if *simSeed == 0 {
		t.Skip("pass -sim.seed=N to replay a seed")
	}
	Run(t, Options{Ops: *simOps, Log: t.Logf}, *simSeed)
}

// TestSimSoak runs an open-ended campaign for nightly jobs (`make
// sim-soak`), logging every seed before running it so a crash of the
// harness itself still identifies the schedule.
func TestSimSoak(t *testing.T) {
	if *simSeeds <= 0 {
		t.Skip("pass -sim.seeds=N to run the soak campaign")
	}
	for i := 0; i < *simSeeds; i++ {
		seed := *simBase + uint64(i)
		t.Logf("sim-soak: running seed %d", seed)
		Run(t, Options{Ops: *simOps, Log: t.Logf}, seed)
	}
}

// TestSimStallReadSeed pins a generated schedule that exercises the
// slow-reader fault: seed 48 stalls the mover group's batched frame reader
// at op 0, issues three at-most-once deliveries (plus the harness's
// in-stall probe) while requests pile up in the stalled replica's socket
// buffer, restores the reader at op 6, and injects a second stall at op 8
// that is never restored — so teardown must also drain cleanly under an
// active read stall. The at-most-once ledger is checked while stalled and
// at every subsequent step.
func TestSimStallReadSeed(t *testing.T) {
	Run(t, Options{Ops: *simOps, Log: t.Logf}, 48)
}

// TestSimManagerRestart drives a handcrafted schedule through a manager
// teardown-and-rebuild: writes land, the manager restarts (twice, once
// right after a crash-heal and a resharding), and reads, at-most-once
// deliveries, and a live re-placement must still uphold every invariant
// under the rebuilt manager — routing epochs never regress, no hosting is
// orphaned, and the delivery ledger balances.
func TestSimManagerRestart(t *testing.T) {
	trace := []Op{
		{Kind: OpPut, Key: "a", Val: 1},
		{Kind: OpProxyPut, Key: "b", Val: 2},
		{Kind: OpDeliver, Val: 1},
		{Kind: OpMgrRestart},
		{Kind: OpGet, Key: "a"},
		{Kind: OpProxyGet, Key: "b"},
		{Kind: OpDeliver, Val: 2},
		{Kind: OpKill, Group: "kv", Index: 0},
		{Kind: OpScale, Group: "kv", N: 3},
		{Kind: OpMgrRestart},
		{Kind: OpPut, Key: "c", Val: 3},
		{Kind: OpGet, Key: "c"},
		{Kind: OpMove},
		{Kind: OpDeliver, Val: 3},
		{Kind: OpGet, Key: "c"},
	}
	v, err := RunTrace(context.Background(), Options{}, trace)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if v != "" {
		t.Fatalf("manager-restart schedule violated an invariant: %s", v)
	}
}

// TestSimSeedReproducesDispatchBug demonstrates the harness's central
// promise on a real, historical bug: with the assignment-ignoring
// colocated dispatch restored (the pre-fix behavior of ROADMAP item 1),
// a known seed fails deterministically — same seed, same violation, same
// shrunk trace, twice in a row — and the very same seed passes against the
// fixed dispatch.
func TestSimSeedReproducesDispatchBug(t *testing.T) {
	ctx := context.Background()
	buggy := Options{Ops: 24, Bypass: true, ShrinkBudget: 12}

	first, err := RunSeed(ctx, buggy, badSeed)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if first.Violation == "" {
		t.Fatalf("seed %d no longer reproduces the dispatch bug under bypass", badSeed)
	}
	if len(first.Shrunk) == 0 || len(first.Shrunk) > len(first.Trace) {
		t.Fatalf("shrunk trace has %d ops (full trace %d)", len(first.Shrunk), len(first.Trace))
	}
	t.Logf("seed %d under buggy dispatch: %s", badSeed, first.Violation)
	t.Logf("shrunk to %d of %d ops:\n%s", len(first.Shrunk), len(first.Trace), FormatTrace(first.Shrunk))

	// Determinism: a second full run+shrink of the same seed must land on
	// the identical violation and the identical minimal trace.
	second, err := RunSeed(ctx, buggy, badSeed)
	if err != nil {
		t.Fatalf("harness error on replay: %v", err)
	}
	if second.Violation != first.Violation {
		t.Errorf("replay diverged:\n first: %s\nsecond: %s", first.Violation, second.Violation)
	}
	if !reflect.DeepEqual(first.Shrunk, second.Shrunk) {
		t.Errorf("shrunk traces diverged:\n first:\n%s\nsecond:\n%s",
			FormatTrace(first.Shrunk), FormatTrace(second.Shrunk))
	}

	// And the minimal trace must still be a direct repro on its own.
	v, err := RunTrace(ctx, buggy, first.Shrunk)
	if err != nil {
		t.Fatalf("harness error replaying shrunk trace: %v", err)
	}
	if v == "" {
		t.Error("shrunk trace did not reproduce the violation")
	}

	// With assignment-aware dispatch (the fix), the same seed is clean.
	fixed, err := RunSeed(ctx, Options{Ops: 24}, badSeed)
	if err != nil {
		t.Fatalf("harness error with fixed dispatch: %v", err)
	}
	if fixed.Violation != "" {
		t.Errorf("seed %d still fails with fixed dispatch: %s", badSeed, fixed.Violation)
	}
}
