// Package sim is a deterministic simulation testing harness for the
// deployment fabric, in the spirit the paper sketches in §5.3: because an
// entire "distributed" application — manager, envelopes, proclets, routing,
// and real TCP data planes — fits inside one test process, whole-system
// fault exploration becomes a unit test.
//
// A run derives a schedule of operations from a single PRNG seed
// (Generate), executes it step by step against a fresh in-process
// deployment, and checks global invariants after every step:
//
//   - per-key register semantics on a routed store: a read (direct or
//     through a colocated proxy) must return the last acknowledged write
//     since the key's hosting topology last changed;
//   - at-most-once semantics for weaver:noretry calls: every acknowledged
//     delivery executed exactly once, nothing executed twice, nothing
//     executed that was never sent;
//   - routing epochs observed by the driver never regress — including
//     across a manager teardown and rebuild (OpMgrRestart);
//   - the published control-plane state satisfies its structural
//     invariants after every op (hosting bijection, epoch bounds, replica
//     bookkeeping — cplane.CheckInvariants), and no live proclet hosts a
//     component the control plane assigns to another group.
//
// Faults — replica crashes, explicit resharding, live re-placement,
// manager restarts, and data-plane degradation — are drawn from the same
// seed, so a failure
// reproduces from the printed seed alone, and the harness shrinks the
// failing schedule to a minimal op trace (Shrink) before reporting it.
//
// Every step that could be timing-dependent is fenced: after each topology
// mutation the harness waits until the manager's latest routing push has
// been applied by the driver and by every replica of the affected group
// (the colocated callers), so schedules are replayable even though the
// deployment underneath runs real goroutines and real sockets.
package sim

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaos"
	"repro/internal/cplane"
	"repro/internal/deploy"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/internal/testpkg"
	"repro/weaver"
)

const (
	storeName = "repro/internal/testpkg/Store"
	proxyName = "repro/internal/testpkg/StoreProxy"
	moverName = "repro/internal/testpkg/Mover"

	// simDegradeDelay is small enough that degraded replicas stay inside
	// call deadlines (degradation must not taint value expectations), large
	// enough to reorder real work under the race detector.
	simDegradeDelay = 50 * time.Millisecond

	// simBatchStall is the response-flusher stall injected by
	// degrade-dataplane-batching ops: each batch write pauses this long, so
	// concurrent responses from the replica coalesce into deep batches
	// while individual calls stay far inside op deadlines.
	simBatchStall = 2 * time.Millisecond

	// simReadStall is the frame-reader stall injected by stall-read ops:
	// each batched read pauses this long, so inbound requests pile up in
	// the replica's socket buffer and drain in deep read batches while
	// individual calls stay far inside op deadlines.
	simReadStall = 2 * time.Millisecond

	opTimeout     = 5 * time.Second
	settleTimeout = 20 * time.Second
)

// Options configures simulation runs.
type Options struct {
	// Ops is the schedule length derived from each seed (default 24).
	Ops int
	// Bypass runs the deployment with the historical assignment-ignoring
	// colocated dispatch (deploy.Options.BypassAssignmentDispatch), so
	// tests can demonstrate the harness rediscovering that bug from a seed.
	Bypass bool
	// ShrinkBudget caps how many extra deployments a shrink may boot
	// (default 16).
	ShrinkBudget int
	// Log, when set, receives progress lines (typically t.Logf).
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Ops <= 0 {
		o.Ops = 24
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 16
	}
	return o
}

// Report is the outcome of one seeded run.
type Report struct {
	Seed  uint64
	Trace []Op
	// Violation is the first invariant violation ("" for a clean run).
	Violation string
	// Shrunk is the minimized still-failing trace, with ShrunkViolation the
	// violation it produces. Only set when Violation is non-empty.
	Shrunk          []Op
	ShrunkViolation string
}

func fill(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
	return weaver.FillComponent(impl, name, logger, resolve, nil)
}

// world is one deployment under simulation plus the checker's model of it.
type world struct {
	d *deploy.InProcess
	// faults is the deployment's fault-injection surface. Fault ops go
	// through the interface (not the concrete deployment) so the schedule
	// grammar stays portable to any deployment implementing chaos.Surface.
	faults chaos.Surface
	store  testpkg.Store
	proxy  testpkg.StoreProxy
	mover  testpkg.Mover
	echo   testpkg.Echo

	// expect holds the per-key register expectation: the last acknowledged
	// write since the key's hosting topology last changed. Keys are removed
	// ("tainted") when the kv group's replica set or assignment changes —
	// the store keeps replica-local in-memory state, so affinity is a
	// cache-locality mechanism, not durability.
	expect map[string]int64
	// tried/acked track Deliver sequence numbers that were sent and that
	// returned success, for the at-most-once check against the store's
	// process-global execution counts.
	tried map[int64]bool
	acked map[int64]bool

	kvSize     int
	moverGroup string
	// lastVersion tracks the routing epoch the driver has applied per
	// component, for the monotonicity invariant.
	lastVersion map[string]uint64
}

func newWorld(ctx context.Context, bypass bool) (*world, error) {
	testpkg.ResetMoverCounts()
	testpkg.ResetStoreEvents()
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "sim",
			Groups: map[string][]string{
				"kv": {storeName, proxyName},
				"mv": {moverName},
			},
			Autoscale: map[string]autoscale.Config{
				"kv": {MinReplicas: 2, MaxReplicas: 3},
				"mv": {MinReplicas: 1, MaxReplicas: 3},
			},
			// The schedule owns topology: park the autoscaler, and let the
			// manager heal any number of injected crashes.
			ScaleInterval: time.Hour,
			MaxRestarts:   1000,
			// Tight admission budgets so OpBurst's concurrent low-priority
			// reads overflow the queue and get shed; sequential ops never
			// come close to the limit.
			MaxInflightPerReplica: 2,
			MaxOverloadQueue:      2,
			Logger:                logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
		},
		Fill:                     fill,
		BypassAssignmentDispatch: bypass,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: boot: %w", err)
	}
	w := &world{
		d:           d,
		faults:      d,
		expect:      map[string]int64{},
		tried:       map[int64]bool{},
		acked:       map[int64]bool{},
		kvSize:      2,
		moverGroup:  "mv",
		lastVersion: map[string]uint64{},
	}
	ok := false
	defer func() {
		if !ok {
			d.Stop()
		}
	}()
	if w.store, err = deploy.Get[testpkg.Store](ctx, d); err != nil {
		return nil, err
	}
	if w.proxy, err = deploy.Get[testpkg.StoreProxy](ctx, d); err != nil {
		return nil, err
	}
	if w.mover, err = deploy.Get[testpkg.Mover](ctx, d); err != nil {
		return nil, err
	}
	if w.echo, err = deploy.Get[testpkg.Echo](ctx, d); err != nil {
		return nil, err
	}

	// Prime every client so each group starts and the driver installs
	// routes, then fence on the initial assignment.
	bctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := w.store.Get(bctx, "boot"); err != nil {
		return nil, fmt.Errorf("sim: prime store: %w", err)
	}
	if _, err := w.proxy.GetVia(bctx, "boot"); err != nil {
		return nil, fmt.Errorf("sim: prime proxy: %w", err)
	}
	w.tried[0] = true
	if _, err := w.mover.Deliver(bctx, 0); err != nil {
		return nil, fmt.Errorf("sim: prime mover: %w", err)
	}
	w.acked[0] = true
	if _, err := w.echo.Echo(bctx, "boot"); err != nil {
		return nil, fmt.Errorf("sim: prime echo: %w", err)
	}
	if err := w.settle(ctx); err != nil {
		return nil, err
	}
	ok = true
	return w, nil
}

func (w *world) close() { w.d.Stop() }

// resolveGroup maps a trace's abstract fault target to the live group name:
// "mv" follows Mover as re-placements move it between groups.
func (w *world) resolveGroup(g string) string {
	if g == "mv" {
		return w.moverGroup
	}
	return g
}

// taint forgets every register expectation. Called when the kv group's
// replica set or assignment changes: replica-local state does not survive
// crashes, and resharding remaps keys onto replicas that never saw them.
func (w *world) taint() {
	for k := range w.expect {
		delete(w.expect, k)
	}
}

// checkProxyReads reads a key back through the proxy twice in a row.
// Driver→proxy dispatch is round-robin, so with two or more replicas the
// two reads land on two distinct proxy replicas — which makes
// assignment-blind colocated dispatch fail deterministically (one of the
// sampled replicas is not the key's owner) instead of depending on how the
// ephemeral ports happened to sort this run.
func (w *world) checkProxyReads(ctx context.Context, i int, op Op) string {
	for j := 0; j < 2; j++ {
		got, err := w.proxy.GetVia(ctx, op.Key)
		if err != nil {
			continue // availability is not this harness's invariant
		}
		if want, ok := w.expect[op.Key]; ok && got != want {
			return fmt.Sprintf("op %d (%s): proxied read #%d of %q = %d, want %d (colocated dispatch off the assignment owner?)",
				i, op, j, op.Key, got, want)
		}
	}
	return ""
}

// checkAMO verifies at-most-once accounting for Deliver: every acknowledged
// sequence executed exactly once, nothing executed twice, and nothing
// executed that the schedule never sent.
func (w *world) checkAMO(at string) string {
	counts := testpkg.MoverCounts()
	for seq := range w.acked {
		if n := counts[seq]; n != 1 {
			return fmt.Sprintf("%s: at-most-once violated: acked deliver %d executed %d times", at, seq, n)
		}
	}
	for seq, n := range counts {
		if n > 1 {
			return fmt.Sprintf("%s: deliver %d executed %d times (duplicate execution)", at, seq, n)
		}
		if !w.tried[seq] {
			return fmt.Sprintf("%s: phantom execution of deliver %d, which was never sent", at, seq)
		}
	}
	return ""
}

// apply executes one op and returns the first invariant violation it
// observes ("" if none). The error return is for harness failures — boot,
// settle, or move-protocol errors — which are bugs in the test rig (or the
// fabric's liveness), not invariant violations to shrink.
func (w *world) apply(ctx context.Context, i int, op Op) (string, error) {
	step, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()

	switch op.Kind {
	case OpPut:
		if _, err := w.store.Put(step, op.Key, op.Val); err != nil {
			delete(w.expect, op.Key) // outcome unknown
		} else {
			w.expect[op.Key] = op.Val
		}

	case OpGet:
		got, err := w.store.Get(step, op.Key)
		if err != nil {
			break
		}
		if want, ok := w.expect[op.Key]; ok && got != want {
			return fmt.Sprintf("op %d (%s): direct read of %q = %d, want %d", i, op, op.Key, got, want), nil
		}

	case OpProxyPut:
		if _, err := w.proxy.PutVia(step, op.Key, op.Val); err != nil {
			delete(w.expect, op.Key)
			break
		}
		w.expect[op.Key] = op.Val
		// Self-verify immediately: a write the proxy relayed to a
		// non-owner replica is invisible to the owner, and the double
		// read samples both replicas.
		if v := w.checkProxyReads(step, i, op); v != "" {
			return v, nil
		}

	case OpProxyGet:
		if v := w.checkProxyReads(step, i, op); v != "" {
			return v, nil
		}

	case OpDeliver:
		w.tried[op.Val] = true
		if _, err := w.mover.Deliver(step, op.Val); err == nil {
			w.acked[op.Val] = true
		}
		if v := w.checkAMO(fmt.Sprintf("op %d (%s)", i, op)); v != "" {
			return v, nil
		}

	case OpBurst:
		// Saturate admission with concurrent low-priority reads while
		// at-most-once high-priority delivers race them. Shedding is the
		// expected outcome for some of the reads (availability is not the
		// invariant); what must hold afterwards is that any read that did
		// succeed saw the register value and that the delivery ledger still
		// balances — no acked deliver lost, none executed twice.
		for seq := op.Val; seq < op.Val+burstDelivers; seq++ {
			w.tried[seq] = true
		}
		gets := make([]int64, burstGets)
		getErrs := make([]error, burstGets)
		delErrs := make([]error, burstDelivers)
		var wg sync.WaitGroup
		for j := 0; j < burstGets; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				gets[j], getErrs[j] = w.store.Get(step, op.Key)
			}(j)
		}
		for j := 0; j < burstDelivers; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				_, delErrs[j] = w.mover.Deliver(step, op.Val+int64(j))
			}(j)
		}
		wg.Wait()
		for j, err := range delErrs {
			if err == nil {
				w.acked[op.Val+int64(j)] = true
			}
		}
		if want, ok := w.expect[op.Key]; ok {
			for j, err := range getErrs {
				if err == nil && gets[j] != want {
					return fmt.Sprintf("op %d (%s): burst read #%d of %q = %d, want %d", i, op, j, op.Key, gets[j], want), nil
				}
			}
		}
		if v := w.checkAMO(fmt.Sprintf("op %d (%s)", i, op)); v != "" {
			return v, nil
		}

	case OpEcho:
		if got, err := w.echo.Echo(step, "ping"); err == nil && got != "ping" {
			return fmt.Sprintf("op %d (%s): echo corrupted: %q", i, op, got), nil
		}

	case OpKill:
		group := w.resolveGroup(op.Group)
		ids := w.d.GroupReplicas(group)
		if len(ids) == 0 {
			break
		}
		if !w.d.KillReplica(ids[op.Index%len(ids)]) {
			break
		}
		if group == "kv" {
			w.taint()
		}
		if err := w.settle(ctx); err != nil {
			return "", fmt.Errorf("op %d (%s): %w", i, op, err)
		}

	case OpScale:
		group := w.resolveGroup(op.Group)
		if err := w.d.Manager.ResizeGroup(step, group, op.N); err != nil {
			break // e.g. the group dissolved after a move; benign no-op
		}
		if group == "kv" {
			w.kvSize = op.N
			w.taint()
		}
		if err := w.settle(ctx); err != nil {
			return "", fmt.Errorf("op %d (%s): %w", i, op, err)
		}

	case OpMove:
		dest := "mv2"
		if w.moverGroup == "mv2" {
			dest = "mv"
		}
		if err := w.d.Manager.MoveComponent(step, moverName, dest); err != nil {
			return "", fmt.Errorf("op %d (%s): MoveComponent: %w", i, op, err)
		}
		w.moverGroup = dest
		if err := w.settle(ctx); err != nil {
			return "", fmt.Errorf("op %d (%s): %w", i, op, err)
		}

	case OpDegrade:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) > 0 {
			w.faults.DegradeReplica(ids[op.Index%len(ids)], simDegradeDelay)
		}

	case OpRestore:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) > 0 {
			w.faults.DegradeReplica(ids[op.Index%len(ids)], 0)
		}

	case OpDegradeBatch:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) > 0 {
			w.faults.DegradeBatching(ids[op.Index%len(ids)], simBatchStall)
		}

	case OpRestoreBatch:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) > 0 {
			w.faults.DegradeBatching(ids[op.Index%len(ids)], 0)
		}

	case OpStallRead:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) == 0 {
			break
		}
		w.faults.StallReads(ids[op.Index%len(ids)], simReadStall)
		// Probe the at-most-once ledger through the stalled reader: the
		// deliver drains from a deep socket backlog, but it must still
		// execute exactly once if acked and never twice. Probe sequence
		// numbers are negative (unique per op index), so they can never
		// collide with the schedule's own deliver numbering.
		probe := -int64(i) - 1
		w.tried[probe] = true
		if _, err := w.mover.Deliver(step, probe); err == nil {
			w.acked[probe] = true
		}
		if v := w.checkAMO(fmt.Sprintf("op %d (%s)", i, op)); v != "" {
			return v, nil
		}

	case OpRestoreRead:
		ids := w.d.GroupReplicas(w.resolveGroup(op.Group))
		if len(ids) > 0 {
			w.faults.StallReads(ids[op.Index%len(ids)], 0)
		}

	case OpMgrRestart:
		// Tear the manager down and rebuild it purely from proclet
		// re-registration. The fleet keeps running; afterwards the routing
		// epoch must sit above everything the driver ever observed (no
		// regressions under the new manager) and the at-most-once ledger
		// must still balance.
		rctx, rcancel := context.WithTimeout(ctx, settleTimeout)
		mgr, err := w.d.RestartManager(rctx)
		rcancel()
		if err != nil {
			return "", fmt.Errorf("op %d (%s): RestartManager: %w", i, op, err)
		}
		var maxApplied uint64
		for _, v := range w.lastVersion {
			if v > maxApplied {
				maxApplied = v
			}
		}
		if post := mgr.RouteEpoch(); post < maxApplied {
			return fmt.Sprintf("op %d (%s): rebuilt manager recovered epoch %d below applied epoch %d",
				i, op, post, maxApplied), nil
		}
		if err := w.settle(ctx); err != nil {
			return "", fmt.Errorf("op %d (%s): %w", i, op, err)
		}
		if v := w.checkAMO(fmt.Sprintf("op %d (%s)", i, op)); v != "" {
			return v, nil
		}
	}

	// Routing epochs the driver observes must never regress.
	for _, comp := range []string{storeName, proxyName, moverName} {
		v := w.d.RoutingVersion(comp)
		if v < w.lastVersion[comp] {
			return fmt.Sprintf("op %d (%s): routing epoch for %s regressed %d -> %d",
				i, op, comp, w.lastVersion[comp], v), nil
		}
		w.lastVersion[comp] = v
	}
	if v := w.checkControlState(i, op); v != "" {
		return v, nil
	}
	return "", nil
}

// checkControlState asserts the control plane's structural invariants on
// the published state after every op (epoch bounds, hosting bijection,
// replica bookkeeping), and cross-checks it against the live fleet: no
// proclet the control plane believes in may host a component the control
// plane assigns elsewhere (an orphaned hosting would mean a move or crash
// left stale handlers serving).
func (w *world) checkControlState(i int, op Op) string {
	s := w.d.Manager.ControlState()
	if err := cplane.CheckInvariants(s); err != nil {
		return fmt.Sprintf("op %d (%s): control-plane invariant: %v", i, op, err)
	}
	live := map[string]string{} // replica id -> group
	for name, g := range s.Groups {
		for id := range g.Replicas {
			live[id] = name
		}
	}
	for id, p := range w.d.Proclets() {
		gname, ok := live[id]
		if !ok {
			continue // dead or not-yet-registered proclets hold no authority
		}
		for _, c := range p.Hosted() {
			if s.CompGroup[c] != gname {
				return fmt.Sprintf("op %d (%s): orphaned hosting: proclet %s (group %s) hosts %s, control plane assigns it to %s",
					i, op, id, gname, c, s.CompGroup[c])
			}
		}
	}
	return ""
}

// settle blocks until the deployment has converged on the current topology:
// groups are back at their target sizes and the manager's newest routing
// push for each component has been applied by the driver and — for the kv
// group, whose replicas are themselves callers of the routed store — by
// every replica of the group. Observing an applied version v implies the
// replica's balancer picks with assignment v, so workload ops that resume
// after settle see one consistent topology; that fencing is what makes
// schedules deterministic on top of real goroutines and sockets.
func (w *world) settle(ctx context.Context) error {
	deadline := time.Now().Add(settleTimeout)
	for {
		if w.settled() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sim: deployment did not settle within %v", settleTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (w *world) settled() bool {
	kvIDs := w.d.GroupReplicas("kv")
	if len(kvIDs) != w.kvSize {
		return false
	}
	if len(w.d.GroupReplicas(w.moverGroup)) == 0 {
		return false
	}
	for _, comp := range []string{storeName, proxyName} {
		v, addrs := w.d.Manager.LastRouting(comp)
		if v == 0 || len(addrs) != w.kvSize {
			return false
		}
		if w.d.RoutingVersion(comp) < v || w.d.RoutingReplicas(comp) != len(addrs) {
			return false
		}
		for _, id := range kvIDs {
			p, ok := w.d.Proclet(id)
			if !ok {
				return false
			}
			if p.RoutingVersion(comp) < v || p.RoutingReplicas(comp) != len(addrs) {
				return false
			}
		}
	}
	v, addrs := w.d.Manager.LastRouting(moverName)
	if v == 0 || len(addrs) == 0 {
		return false
	}
	if w.d.RoutingVersion(moverName) < v || w.d.RoutingReplicas(moverName) != len(addrs) {
		return false
	}
	return true
}

// RunTrace executes one trace against a fresh deployment and returns the
// first invariant violation it produces ("" for a clean run). The error
// return reports harness failures, not violations.
func RunTrace(ctx context.Context, opts Options, trace []Op) (string, error) {
	opts = opts.withDefaults()
	w, err := newWorld(ctx, opts.Bypass)
	if err != nil {
		return "", err
	}
	defer w.close()
	for i, op := range trace {
		v, err := w.apply(ctx, i, op)
		if err != nil {
			return "", err
		}
		if v != "" {
			return v, nil
		}
	}
	// Final sweep: every still-established expectation must read back, and
	// the at-most-once ledger must balance.
	keys := make([]string, 0, len(w.expect))
	for k := range w.expect {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fctx, cancel := context.WithTimeout(ctx, opTimeout)
		got, err := w.store.Get(fctx, k)
		cancel()
		if err == nil && got != w.expect[k] {
			return fmt.Sprintf("final sweep: read of %q = %d, want %d", k, got, w.expect[k]), nil
		}
	}
	if v := w.checkAMO("final sweep"); v != "" {
		return v, nil
	}
	return "", nil
}

// RunSeed generates the seed's schedule, executes it, and — if it violated
// an invariant — shrinks the failing schedule to a minimal trace.
func RunSeed(ctx context.Context, opts Options, seed uint64) (*Report, error) {
	opts = opts.withDefaults()
	trace := Generate(seed, opts.Ops)
	rep := &Report{Seed: seed, Trace: trace}
	v, err := RunTrace(ctx, opts, trace)
	if err != nil {
		return nil, err
	}
	rep.Violation = v
	if v == "" {
		return rep, nil
	}
	rep.Shrunk, rep.ShrunkViolation, err = Shrink(ctx, opts, trace)
	if err != nil {
		return nil, err
	}
	if rep.ShrunkViolation == "" {
		// Shrinking could not re-trigger anything (budget too small or a
		// schedule-dependent bug); fall back to the full trace.
		rep.Shrunk, rep.ShrunkViolation = trace, v
	}
	return rep, nil
}

// Run executes a campaign of seeded runs and fails t on any violation,
// printing the seed, the violation, and the shrunk reproduction trace.
func Run(t *testing.T, opts Options, seeds ...uint64) {
	t.Helper()
	opts = opts.withDefaults()
	ctx := context.Background()
	for _, seed := range seeds {
		rep, err := RunSeed(ctx, opts, seed)
		if err != nil {
			t.Fatalf("sim: seed %d: harness error: %v", seed, err)
		}
		if rep.Violation == "" {
			if opts.Log != nil {
				opts.Log("sim: seed %d clean (%d ops)", seed, len(rep.Trace))
			}
			continue
		}
		t.Errorf("sim: seed %d violated an invariant:\n  %s\nshrunk reproduction (%d of %d ops):\n%s\n  -> %s\nreplay with: go test ./internal/sim -run TestSimSeed -sim.seed=%d",
			seed, rep.Violation, len(rep.Shrunk), len(rep.Trace), FormatTrace(rep.Shrunk), rep.ShrunkViolation, seed)
	}
}
