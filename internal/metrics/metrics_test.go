package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("Counter not idempotent")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if v := g.Value(); math.Abs(v-1.5) > 1e-9 {
		t.Errorf("value = %v", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	for i := 1; i <= 1000; i++ {
		h.Put(float64(i))
	}
	snap := findSnap(t, r, "lat")
	p50 := snap.Quantile(0.5)
	// Bucketed quantiles are approximate; the median of 1..1000 is ~500 and
	// must land within its power-of-two bucket (512, 1024].
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %v", p50)
	}
	if mean := snap.Mean(); math.Abs(mean-500.5) > 1 {
		t.Errorf("mean = %v", mean)
	}
	if snap.Count != 1000 {
		t.Errorf("count = %d", snap.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Put(float64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("reqs").Add(10)
	r2.Counter("reqs").Add(5)
	r1.Histogram("lat", nil).Put(100)
	r2.Histogram("lat", nil).Put(200)

	merged := MergeAll(r1.Snapshot(), r2.Snapshot())
	if got := merged["reqs"].Value; got != 15 {
		t.Errorf("merged counter = %v", got)
	}
	if got := merged["lat"].Count; got != 2 {
		t.Errorf("merged histogram count = %v", got)
	}
}

func TestMergeMismatchedNames(t *testing.T) {
	a := Snapshot{Name: "a", Kind: KindCounter}
	b := Snapshot{Name: "b", Kind: KindCounter}
	if err := a.Merge(b); err == nil {
		t.Error("merging different metrics succeeded")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Gauge("m")
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if snaps[0].Name != "a" || snaps[1].Name != "z" || snaps[2].Name != "m" {
		t.Errorf("order = %v, %v, %v", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
}

func TestQuantileEmpty(t *testing.T) {
	s := Snapshot{Kind: KindHistogram}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("quantile of empty histogram not NaN")
	}
}

func TestQuickHistogramCountMatchesPuts(t *testing.T) {
	f := func(vals []float64) bool {
		r := NewRegistry()
		h := r.Histogram("q", nil)
		for _, v := range vals {
			h.Put(math.Abs(v))
		}
		snap := findSnapQuiet(r, "q")
		var bucketSum uint64
		for _, b := range snap.Buckets {
			bucketSum += b
		}
		return snap.Count == uint64(len(vals)) && bucketSum == snap.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func findSnap(t *testing.T, r *Registry, name string) Snapshot {
	t.Helper()
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no snapshot %q", name)
	return Snapshot{}
}

func findSnapQuiet(r *Registry, name string) Snapshot {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	return Snapshot{}
}
