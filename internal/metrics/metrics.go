// Package metrics implements the counters, gauges, and histograms exported
// by proclets and aggregated by the global manager (paper Figure 3:
// "Metrics, traces, logs").
//
// Metrics are cheap enough to record on the data path: counters and gauges
// are single atomic operations, and histograms are an atomic increment on a
// precomputed bucket. Snapshots are taken without stopping writers and are
// merged additively by the manager across replicas.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta. It panics if delta is negative.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	v    atomic.Int64 // value in micro-units to allow fractional gauges
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set sets the gauge.
func (g *Gauge) Set(v float64) { g.v.Store(int64(v * 1e6)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v.Add(int64(delta * 1e6)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return float64(g.v.Load()) / 1e6 }

// DefaultBuckets are exponential histogram bucket upper bounds suitable for
// latencies in microseconds: 1us .. ~17s, doubling.
var DefaultBuckets = func() []float64 {
	b := make([]float64, 25)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// A Histogram records a distribution of observations in fixed buckets.
type Histogram struct {
	name    string
	bounds  []float64 // upper bounds, ascending; implicit +Inf bucket at end
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // sum in micro-units
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Put records one observation.
func (h *Histogram) Put(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v * 1e6))
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded observations (only positive observations
// contribute). Count and Sum together give the distribution's mean — e.g.
// frames drained per batched read.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / 1e6 }

// Snapshot is a point-in-time copy of a metric's state, suitable for
// shipping over the control plane. Snapshots of the same metric from
// different replicas merge additively.
type Snapshot struct {
	Name    string    `tag:"1"`
	Kind    uint32    `tag:"2"` // 0 counter, 1 gauge, 2 histogram
	Value   float64   `tag:"3"` // counter or gauge value
	Bounds  []float64 `tag:"4"`
	Buckets []uint64  `tag:"5"`
	Count   uint64    `tag:"6"`
	Sum     float64   `tag:"7"`
}

// Kinds of metrics in a Snapshot.
const (
	KindCounter   = 0
	KindGauge     = 1
	KindHistogram = 2
)

// Merge adds other into s. Both snapshots must describe the same metric.
// Gauges merge by summation, which is what the manager wants when adding up
// per-replica load.
func (s *Snapshot) Merge(other Snapshot) error {
	if s.Name != other.Name || s.Kind != other.Kind {
		return fmt.Errorf("metrics: merging %q/%d with %q/%d", s.Name, s.Kind, other.Name, other.Kind)
	}
	s.Value += other.Value
	s.Count += other.Count
	s.Sum += other.Sum
	if len(s.Buckets) == len(other.Buckets) {
		for i := range s.Buckets {
			s.Buckets[i] += other.Buckets[i]
		}
	}
	return nil
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of a histogram
// snapshot by linear interpolation within the containing bucket.
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Kind != KindHistogram || s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum float64
	lower := 0.0
	for i, c := range s.Buckets {
		next := cum + float64(c)
		var upper float64
		if i < len(s.Bounds) {
			upper = s.Bounds[i]
		} else {
			// +Inf bucket: fall back to the last finite bound.
			upper = lower * 2
			if upper == 0 {
				upper = 1
			}
		}
		if next >= rank && c > 0 {
			frac := (rank - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
		lower = upper
	}
	return lower
}

// Mean returns the average of recorded observations.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// A Registry holds named metrics. The zero value is unusable; use
// NewRegistry. Registries are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry used by the weaver runtime.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use. Pass nil bounds for DefaultBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("metrics: unsorted bounds for %s", name))
		}
		h = &Histogram{
			name:    name,
			bounds:  bounds,
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures the current state of every metric in the registry,
// sorted by name within each kind.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Snapshot
	for _, c := range r.counters {
		out = append(out, Snapshot{Name: c.name, Kind: KindCounter, Value: float64(c.Value()), Count: c.Value()})
	}
	for _, g := range r.gauges {
		out = append(out, Snapshot{Name: g.name, Kind: KindGauge, Value: g.Value()})
	}
	for _, h := range r.histograms {
		s := Snapshot{
			Name:    h.name,
			Kind:    KindHistogram,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.buckets)),
			Count:   h.count.Load(),
			Sum:     float64(h.sum.Load()) / 1e6,
		}
		for i := range h.buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MergeAll merges snapshot slices from many replicas into one map keyed by
// metric name. Snapshots with mismatched shapes are merged best-effort.
func MergeAll(batches ...[]Snapshot) map[string]Snapshot {
	out := map[string]Snapshot{}
	for _, batch := range batches {
		for _, s := range batch {
			cur, ok := out[s.Name]
			if !ok {
				cp := s
				cp.Bounds = append([]float64(nil), s.Bounds...)
				cp.Buckets = append([]uint64(nil), s.Buckets...)
				out[s.Name] = cp
				continue
			}
			_ = cur.Merge(s)
			out[s.Name] = cur
		}
	}
	return out
}
