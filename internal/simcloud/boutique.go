package simcloud

import (
	"math"
	"sort"
)

// CostModel captures the per-RPC overheads of one transport stack. The
// defaults below are calibrated against this repository's measured
// microbenchmarks (BenchmarkCodec*, BenchmarkTransport* in bench_test.go):
// the unversioned codec marshals a boutique-sized payload in single-digit
// microseconds, JSON takes tens of microseconds, and an HTTP/1.1 exchange
// costs several times a bare-TCP frame exchange in CPU on each side.
type CostModel struct {
	// CallerCPU is CPU seconds spent by the calling process per RPC
	// (serialize request, deserialize response, transport bookkeeping).
	CallerCPU float64
	// CalleeCPU is CPU seconds spent by the called process per RPC.
	CalleeCPU float64
	// RTT is the network round-trip time added per RPC.
	RTT float64
}

// Transport cost models, calibrated from bench_test.go measurements on the
// real implementations (see EXPERIMENTS.md for the measured numbers).
var (
	// WeaverCosts: unversioned codec + custom TCP framing.
	WeaverCosts = CostModel{CallerCPU: 15e-6, CalleeCPU: 15e-6, RTT: 150e-6}
	// BaselineCosts: JSON + HTTP/1.1 (the gRPC+proto stand-in).
	BaselineCosts = CostModel{CallerCPU: 110e-6, CalleeCPU: 110e-6, RTT: 250e-6}
)

// call is one component method invocation in a request flow: business CPU
// plus sequential downstream calls issued while handling it.
type call struct {
	comp string
	cpu  float64
	subs []call
}

// Business-logic CPU per method, in seconds. These are the measured
// single-process costs of the real boutique implementations (no
// serialization, no transport), rounded to the microsecond.
const (
	cpuFrontendOp  = 200e-6 // HTTP handling + page assembly and rendering
	cpuCatalogList = 150e-6
	cpuCatalogGet  = 20e-6
	cpuConvert     = 15e-6
	cpuCurrencies  = 30e-6
	cpuCartOp      = 25e-6
	cpuRecommend   = 100e-6
	cpuShipQuote   = 20e-6
	cpuShipOrder   = 25e-6
	cpuCharge      = 30e-6
	cpuEmail       = 30e-6
	cpuCheckout    = 50e-6
	cpuAds         = 25e-6
)

// boutiqueFlows builds the call tree for each load-generator op, mirroring
// internal/boutique's real call structure (e.g. Home converts every one of
// the twelve product prices; Checkout touches seven services).
func boutiqueFlows() map[string]call {
	products := 12
	cartItems := 2

	home := call{comp: "Frontend", cpu: cpuFrontendOp}
	home.subs = append(home.subs, call{comp: "ProductCatalog", cpu: cpuCatalogList})
	for i := 0; i < products; i++ {
		home.subs = append(home.subs, call{comp: "Currency", cpu: cpuConvert})
	}
	home.subs = append(home.subs,
		call{comp: "Currency", cpu: cpuCurrencies},
		call{comp: "AdService", cpu: cpuAds},
	)

	browse := call{comp: "Frontend", cpu: cpuFrontendOp, subs: []call{
		{comp: "ProductCatalog", cpu: cpuCatalogGet},
		{comp: "Currency", cpu: cpuConvert},
		{comp: "Recommendation", cpu: cpuRecommend, subs: []call{
			{comp: "ProductCatalog", cpu: cpuCatalogList},
		}},
		{comp: "AdService", cpu: cpuAds},
	}}

	add := call{comp: "Frontend", cpu: cpuFrontendOp, subs: []call{
		{comp: "ProductCatalog", cpu: cpuCatalogGet},
		{comp: "Cart", cpu: cpuCartOp},
	}}

	viewCart := call{comp: "Frontend", cpu: cpuFrontendOp}
	viewCart.subs = append(viewCart.subs,
		call{comp: "Cart", cpu: cpuCartOp},
		call{comp: "Shipping", cpu: cpuShipQuote},
		call{comp: "Currency", cpu: cpuConvert},
	)
	for i := 0; i < cartItems; i++ {
		viewCart.subs = append(viewCart.subs,
			call{comp: "ProductCatalog", cpu: cpuCatalogGet},
			call{comp: "Currency", cpu: cpuConvert},
		)
	}

	checkout := call{comp: "Frontend", cpu: cpuFrontendOp}
	co := call{comp: "Checkout", cpu: cpuCheckout}
	co.subs = append(co.subs, call{comp: "Cart", cpu: cpuCartOp})
	for i := 0; i < cartItems; i++ {
		co.subs = append(co.subs,
			call{comp: "ProductCatalog", cpu: cpuCatalogGet},
			call{comp: "Currency", cpu: cpuConvert},
		)
	}
	co.subs = append(co.subs,
		call{comp: "Shipping", cpu: cpuShipQuote},
		call{comp: "Currency", cpu: cpuConvert},
		call{comp: "Payment", cpu: cpuCharge},
		call{comp: "Shipping", cpu: cpuShipOrder},
		call{comp: "Cart", cpu: cpuCartOp},
		call{comp: "Email", cpu: cpuEmail},
	)
	checkout.subs = append(checkout.subs,
		call{comp: "Cart", cpu: cpuCartOp}, // AddToCart before checkout, as the locustfile does
		co,
	)

	return map[string]call{
		"index":         home,
		"setCurrency":   home,
		"browseProduct": browse,
		"addToCart":     add,
		"viewCart":      viewCart,
		"checkout":      checkout,
	}
}

// opMix is the locustfile's behavior mix.
var opMix = []struct {
	op string
	w  int
}{
	{"index", 1}, {"setCurrency", 2}, {"browseProduct", 10},
	{"addToCart", 2}, {"viewCart", 3}, {"checkout", 1},
}

// Components lists the boutique's components in the simulation.
var Components = []string{
	"Frontend", "ProductCatalog", "Currency", "Cart", "Recommendation",
	"Shipping", "Payment", "Email", "Checkout", "AdService",
}

// BoutiqueOptions parameterizes one simulated deployment run.
type BoutiqueOptions struct {
	// QPS is the offered request rate.
	QPS float64
	// Costs is the transport cost model.
	Costs CostModel
	// Groups maps component -> colocation group. Components sharing a
	// group call each other without RPC cost. Nil means one group per
	// component (the paper's apples-to-apples configuration).
	Groups map[string]string
	// WarmupSeconds and MeasureSeconds shape the virtual-time run
	// (defaults 90 and 60: enough autoscaler evaluations to settle at the
	// default 5s interval).
	WarmupSeconds  float64
	MeasureSeconds float64
	// MaxPodsPerService caps autoscaling (default 512).
	MaxPodsPerService int
	// Seed drives arrivals and op selection.
	Seed uint64
}

// BoutiqueResult reports Table 2's metrics for one run.
type BoutiqueResult struct {
	QPS            float64 // offered
	CompletedQPS   float64 // completed during measurement window
	TotalCores     float64
	CoresByService map[string]float64
	MedianLatency  float64 // seconds
	P99Latency     float64
	MeanLatency    float64
}

// RunBoutique simulates the boutique under load and reports steady-state
// cores and latency.
func RunBoutique(opts BoutiqueOptions) BoutiqueResult {
	if opts.QPS <= 0 {
		opts.QPS = 1000
	}
	if opts.WarmupSeconds <= 0 {
		opts.WarmupSeconds = 90
	}
	if opts.MeasureSeconds <= 0 {
		opts.MeasureSeconds = 60
	}
	if opts.MaxPodsPerService <= 0 {
		opts.MaxPodsPerService = 512
	}

	groupOf := func(comp string) string {
		if opts.Groups == nil {
			return comp
		}
		if g, ok := opts.Groups[comp]; ok {
			return g
		}
		return comp
	}

	cluster := NewCluster(ClusterConfig{Seed: opts.Seed})
	groups := map[string]bool{}
	for _, c := range Components {
		groups[groupOf(c)] = true
	}
	for g := range groups {
		cluster.AddService(g, 1, 1, opts.MaxPodsPerService)
	}
	cluster.StartAutoscaler()

	flows := boutiqueFlows()
	var opTable []string
	for _, ow := range opMix {
		for i := 0; i < ow.w; i++ {
			opTable = append(opTable, ow.op)
		}
	}

	rng := cluster.Rand()
	eng := cluster.Eng
	horizon := opts.WarmupSeconds + opts.MeasureSeconds + 5

	var (
		window    *windowState
		inWindow  bool
		latencies []float64
		completed int
	)

	// execCall runs one call (and its sequential sub-calls), then k.
	var execCall func(c call, callerGroup string, k func())
	execCall = func(c call, callerGroup string, k func()) {
		g := groupOf(c.comp)
		runBody := func() {
			cluster.Exec(g, c.cpu, func() {
				// Sequential sub-calls.
				i := 0
				var next func()
				next = func() {
					if i >= len(c.subs) {
						k()
						return
					}
					sub := c.subs[i]
					i++
					execCall(sub, g, next)
				}
				next()
			})
		}
		if g == callerGroup {
			// Local procedure call: no serialization, no network.
			runBody()
			return
		}
		// Remote: caller pays CPU, half RTT there, callee-side CPU is
		// folded into the body's queue entry, half RTT back. The external
		// load generator ("client") is not part of the application, so its
		// caller-side CPU is not charged to the cluster.
		chargeCaller := func(k2 func()) {
			if callerGroup == "client" {
				k2()
				return
			}
			cluster.Exec(callerGroup, opts.Costs.CallerCPU, k2)
		}
		chargeCaller(func() {
			eng.After(opts.Costs.RTT/2, func() {
				g2 := g
				cluster.Exec(g2, opts.Costs.CalleeCPU, func() {
					cluster.Exec(g2, c.cpu, func() {
						i := 0
						var next func()
						next = func() {
							if i >= len(c.subs) {
								eng.After(opts.Costs.RTT/2, k)
								return
							}
							sub := c.subs[i]
							i++
							execCall(sub, g2, next)
						}
						next()
					})
				})
			})
		})
	}

	// Poisson arrivals.
	var arrive func()
	arrive = func() {
		if eng.Now() > horizon-1 {
			return
		}
		// Schedule the next arrival.
		gap := rng.ExpFloat64() / opts.QPS
		eng.After(gap, arrive)

		op := opTable[rng.IntN(len(opTable))]
		flow := flows[op]
		start := eng.Now()
		record := inWindow

		// The external hop (load generator to frontend) adds an RTT in
		// both systems.
		eng.After(opts.Costs.RTT/2, func() {
			execCall(flow, "client", func() {
				end := eng.Now() + opts.Costs.RTT/2
				if record {
					latencies = append(latencies, end-start)
					completed++
				}
			})
		})
	}
	eng.After(0, arrive)

	eng.At(opts.WarmupSeconds, func() {
		window = cluster.MarkWindow()
		inWindow = true
	})
	var report Report
	eng.At(opts.WarmupSeconds+opts.MeasureSeconds, func() {
		report = cluster.ReportWindow(window)
		inWindow = false
	})

	eng.Run(horizon)

	sort.Float64s(latencies)
	res := BoutiqueResult{
		QPS:            opts.QPS,
		CompletedQPS:   float64(completed) / opts.MeasureSeconds,
		TotalCores:     report.TotalCores,
		CoresByService: report.CoresByService,
	}
	if n := len(latencies); n > 0 {
		res.MedianLatency = latencies[n/2]
		res.P99Latency = latencies[int(math.Min(float64(n-1), 0.99*float64(n)))]
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / float64(n)
	}
	return res
}

// ColocateAll maps every boutique component into one group, modelling the
// paper's §6.1 co-location experiment.
func ColocateAll() map[string]string {
	out := map[string]string{}
	for _, c := range Components {
		out[c] = "app"
	}
	return out
}
