// Package simcloud is a discrete-event simulator of a cloud deployment:
// services running on autoscaled pods, CPU-consuming request processing,
// and per-RPC serialization and network costs. It is this repository's
// substitute for the GKE testbed in the paper's evaluation (§6.1), used to
// regenerate Table 2 at the paper's full 10,000 QPS scale — something a
// single development machine cannot serve natively.
//
// The simulator is calibrated, not hand-waved: the per-call CPU costs for
// serialization, transport, and business logic are taken from this
// repository's own measured microbenchmarks of the real codecs and
// transports (see bench_test.go and EXPERIMENTS.md), and the workload's
// call structure mirrors the boutique port exactly. What the simulation
// adds is scale: thousands of pods' worth of virtual CPU and an HPA-style
// autoscaler reacting to utilization.
package simcloud

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// event is one scheduled occurrence in virtual time.
type event struct {
	at  float64 // virtual seconds
	seq uint64  // tiebreaker for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core.
type Engine struct {
	now float64
	seq uint64
	pq  eventHeap
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after d virtual seconds.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue empties or virtual time reaches
// horizon. Events scheduled past the horizon stay queued, so Run may be
// called repeatedly with growing horizons.
func (e *Engine) Run(horizon float64) {
	for e.pq.Len() > 0 {
		if e.pq[0].at > horizon {
			e.now = horizon
			return
		}
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
}

// job is one unit of CPU work queued at a pod.
type job struct {
	cpu  float64 // seconds of CPU required
	done func()  // invoked at completion
}

// pod is one replica of a service: `cores` workers draining a FIFO queue.
type pod struct {
	svc     *Service
	cores   int
	busy    int
	queue   []*job
	started bool // pods take time to boot

	busyCPU float64 // accumulated CPU-seconds, for utilization accounting
}

func (p *pod) enqueue(eng *Engine, j *job) {
	if p.busy < p.cores && p.started {
		p.run(eng, j)
		return
	}
	p.queue = append(p.queue, j)
}

func (p *pod) run(eng *Engine, j *job) {
	p.busy++
	p.busyCPU += j.cpu
	eng.After(j.cpu, func() {
		p.busy--
		if len(p.queue) > 0 && p.started {
			next := p.queue[0]
			p.queue = p.queue[1:]
			p.run(eng, next)
		}
		j.done()
	})
}

func (p *pod) boot(eng *Engine) {
	p.started = true
	for p.busy < p.cores && len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		p.run(eng, next)
	}
}

// Service is one autoscaled deployment (a component group).
type Service struct {
	Name         string
	CoresPerPod  int
	MinPods      int
	MaxPods      int
	pods         []*pod
	rr           int
	pendingBoots int

	// Pod-seconds provisioned, integrated over time (for avg cores).
	podSeconds   float64
	lastAccounts float64

	// CPU accounting window for the autoscaler. retiredBusy preserves the
	// busy-CPU history of pods that were scaled away, keeping busyCPU()
	// monotone.
	lastBusy    float64
	retiredBusy float64
}

func (s *Service) accountTo(t float64) {
	s.podSeconds += float64(len(s.pods)) * (t - s.lastAccounts)
	s.lastAccounts = t
}

// dispatch queues a job on the least-loaded pod.
func (s *Service) dispatch(eng *Engine, j *job) {
	if len(s.pods) == 0 {
		// Nothing running yet: queue on a future pod by retrying shortly.
		eng.After(0.01, func() { s.dispatch(eng, j) })
		return
	}
	best := s.pods[0]
	bestLoad := math.MaxInt
	for i := 0; i < len(s.pods); i++ {
		p := s.pods[(i+s.rr)%len(s.pods)]
		load := p.busy + len(p.queue)
		if !p.started {
			load += 1 << 20
		}
		if load < bestLoad {
			best, bestLoad = p, load
		}
	}
	s.rr++
	best.enqueue(eng, j)
}

func (s *Service) busyCPU() float64 {
	total := s.retiredBusy
	for _, p := range s.pods {
		total += p.busyCPU
	}
	return total
}

// Cluster is the simulated deployment.
type Cluster struct {
	Eng      *Engine
	services map[string]*Service
	cfg      ClusterConfig
	rng      *rand.Rand
}

// ClusterConfig parameterizes the platform.
type ClusterConfig struct {
	// PodStartupDelay is the virtual seconds between a scale-up decision
	// and the new pod serving (HPA reaction + container start).
	PodStartupDelay float64
	// ScaleInterval is the autoscaler evaluation period (HPA default 15s).
	ScaleInterval float64
	// TargetUtilization is the HPA CPU target (default 0.65).
	TargetUtilization float64
	// Seed drives workload randomness.
	Seed uint64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.PodStartupDelay <= 0 {
		c.PodStartupDelay = 5
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 5
	}
	if c.TargetUtilization <= 0 {
		c.TargetUtilization = 0.65
	}
	return c
}

// NewCluster returns an empty cluster.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	return &Cluster{
		Eng:      &Engine{},
		services: map[string]*Service{},
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0xda3e39cb94b95bdb)),
	}
}

// AddService registers a service with initial minimum pods (booted
// immediately at time zero).
func (c *Cluster) AddService(name string, coresPerPod, minPods, maxPods int) *Service {
	if coresPerPod <= 0 {
		coresPerPod = 1
	}
	if minPods <= 0 {
		minPods = 1
	}
	if maxPods < minPods {
		maxPods = minPods
	}
	s := &Service{Name: name, CoresPerPod: coresPerPod, MinPods: minPods, MaxPods: maxPods}
	for i := 0; i < minPods; i++ {
		p := &pod{svc: s, cores: coresPerPod, started: true}
		s.pods = append(s.pods, p)
	}
	c.services[name] = s
	return s
}

// Service returns a registered service.
func (c *Cluster) Service(name string) *Service { return c.services[name] }

// Exec queues cpu seconds of work on a service and calls done when it
// completes (after queueing and execution).
func (c *Cluster) Exec(service string, cpu float64, done func()) {
	s := c.services[service]
	if s == nil {
		panic(fmt.Sprintf("simcloud: unknown service %q", service))
	}
	s.dispatch(c.Eng, &job{cpu: cpu, done: done})
}

// StartAutoscaler begins periodic HPA-style evaluations.
func (c *Cluster) StartAutoscaler() {
	var tick func()
	tick = func() {
		c.scaleOnce()
		c.Eng.After(c.cfg.ScaleInterval, tick)
	}
	c.Eng.After(c.cfg.ScaleInterval, tick)
}

func (c *Cluster) scaleOnce() {
	now := c.Eng.Now()
	names := make([]string, 0, len(c.services))
	for n := range c.services {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := c.services[n]
		s.accountTo(now)
		busy := s.busyCPU()
		window := c.cfg.ScaleInterval
		used := (busy - s.lastBusy) / window // CPU-seconds per second = cores in use
		s.lastBusy = busy

		capacity := float64(len(s.pods) * s.CoresPerPod)
		if capacity == 0 {
			continue
		}
		util := used / capacity
		desired := int(math.Ceil(float64(len(s.pods)+s.pendingBoots) * util / c.cfg.TargetUtilization))
		if desired < s.MinPods {
			desired = s.MinPods
		}
		if desired > s.MaxPods {
			desired = s.MaxPods
		}
		current := len(s.pods) + s.pendingBoots
		if desired > current {
			for i := current; i < desired; i++ {
				s.pendingBoots++
				p := &pod{svc: s, cores: s.CoresPerPod}
				c.Eng.After(c.cfg.PodStartupDelay, func() {
					s.accountTo(c.Eng.Now())
					s.pods = append(s.pods, p)
					s.pendingBoots--
					p.boot(c.Eng)
				})
			}
		} else if desired < current && len(s.pods) > desired {
			// HPA scales down conservatively: one pod per interval.
			idx := -1
			for i, p := range s.pods {
				if p.busy == 0 && len(p.queue) == 0 {
					idx = i
					break
				}
			}
			if idx >= 0 && len(s.pods) > s.MinPods {
				s.accountTo(now)
				s.retiredBusy += s.pods[idx].busyCPU
				s.pods = append(s.pods[:idx], s.pods[idx+1:]...)
			}
		}
	}
}

// Pods returns the service's current pod count.
func (s *Service) Pods() int { return len(s.pods) }

// Report summarizes provisioned capacity at the end of a run.
type Report struct {
	// CoresByService is each service's average provisioned cores over the
	// measurement window.
	CoresByService map[string]float64
	// TotalCores is the sum over services.
	TotalCores float64
}

// snapshotCores integrates pod-seconds between two explicit marks; the
// harness calls MarkWindow at the start of the steady-state window and
// ReportWindow at the end.
type windowState struct {
	start      float64
	podSeconds map[string]float64
}

// MarkWindow begins a measurement window.
func (c *Cluster) MarkWindow() *windowState {
	now := c.Eng.Now()
	w := &windowState{start: now, podSeconds: map[string]float64{}}
	for n, s := range c.services {
		s.accountTo(now)
		w.podSeconds[n] = s.podSeconds
	}
	return w
}

// ReportWindow closes the window and reports average provisioned cores.
func (c *Cluster) ReportWindow(w *windowState) Report {
	now := c.Eng.Now()
	dur := now - w.start
	rep := Report{CoresByService: map[string]float64{}}
	if dur <= 0 {
		return rep
	}
	for n, s := range c.services {
		s.accountTo(now)
		cores := (s.podSeconds - w.podSeconds[n]) * float64(s.CoresPerPod) / dur
		rep.CoresByService[n] = cores
		rep.TotalCores += cores
	}
	return rep
}

// Rand returns the cluster's deterministic RNG.
func (c *Cluster) Rand() *rand.Rand { return c.rng }
