package simcloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEvents(t *testing.T) {
	var eng Engine
	var order []int
	eng.At(3, func() { order = append(order, 3) })
	eng.At(1, func() { order = append(order, 1) })
	eng.At(2, func() { order = append(order, 2) })
	eng.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestEngineHorizon(t *testing.T) {
	var eng Engine
	ran := false
	eng.At(5, func() { ran = true })
	eng.Run(4)
	if ran {
		t.Error("event past horizon ran")
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	var eng Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(1, func() { order = append(order, i) })
	}
	eng.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestQuickEngineTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		var eng Engine
		last := -1.0
		monotonic := true
		for _, d := range delays {
			eng.At(float64(d)/100, func() {
				if eng.Now() < last {
					monotonic = false
				}
				last = eng.Now()
			})
		}
		eng.Run(1e9)
		return monotonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPodQueueing(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Seed: 1})
	cluster.AddService("s", 1, 1, 1)
	var done []float64
	for i := 0; i < 3; i++ {
		cluster.Exec("s", 1.0, func() { done = append(done, cluster.Eng.Now()) })
	}
	cluster.Eng.Run(100)
	// One single-core pod: three 1s jobs complete at 1, 2, 3.
	want := []float64{1, 2, 3}
	if len(done) != 3 {
		t.Fatalf("completions = %v", done)
	}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-9 {
			t.Errorf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestAutoscalerAddsPods(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Seed: 1, ScaleInterval: 1, PodStartupDelay: 1})
	s := cluster.AddService("s", 1, 1, 10)
	cluster.StartAutoscaler()

	// Offer 3 cores of load per second for 30 virtual seconds.
	var offer func()
	offer = func() {
		if cluster.Eng.Now() > 30 {
			return
		}
		for i := 0; i < 300; i++ {
			cluster.Exec("s", 0.01, func() {})
		}
		cluster.Eng.After(1, offer)
	}
	cluster.Eng.After(0, offer)
	cluster.Eng.Run(30) // while load is still flowing

	if s.Pods() < 4 {
		t.Errorf("pods = %d, want >= 4 for 3 cores of load at 0.65 target", s.Pods())
	}
}

func TestAutoscalerScalesDownWhenIdle(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Seed: 1, ScaleInterval: 1, PodStartupDelay: 1})
	s := cluster.AddService("s", 1, 1, 10)
	cluster.StartAutoscaler()
	// Brief burst, then silence.
	for i := 0; i < 500; i++ {
		cluster.Exec("s", 0.01, func() {})
	}
	cluster.Eng.Run(60)
	if s.Pods() != s.MinPods {
		t.Errorf("pods = %d after long idle, want %d", s.Pods(), s.MinPods)
	}
}

func TestBoutiqueShapeAtModerateLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	baseline := RunBoutique(BoutiqueOptions{QPS: 3000, Costs: BaselineCosts, Seed: 1, WarmupSeconds: 60, MeasureSeconds: 40})
	weaver := RunBoutique(BoutiqueOptions{QPS: 3000, Costs: WeaverCosts, Seed: 1, WarmupSeconds: 60, MeasureSeconds: 40})
	colocated := RunBoutique(BoutiqueOptions{QPS: 3000, Costs: WeaverCosts, Groups: ColocateAll(), Seed: 1, WarmupSeconds: 60, MeasureSeconds: 40})

	// Table 2's qualitative claims must hold at any scale:
	// baseline costs more and is slower than weaver; full colocation beats
	// both.
	if weaver.TotalCores >= baseline.TotalCores {
		t.Errorf("weaver cores %.1f >= baseline cores %.1f", weaver.TotalCores, baseline.TotalCores)
	}
	if weaver.MedianLatency >= baseline.MedianLatency {
		t.Errorf("weaver p50 %.2fms >= baseline p50 %.2fms", weaver.MedianLatency*1e3, baseline.MedianLatency*1e3)
	}
	if colocated.TotalCores >= weaver.TotalCores {
		t.Errorf("colocated cores %.1f >= weaver cores %.1f", colocated.TotalCores, weaver.TotalCores)
	}
	if colocated.MedianLatency >= weaver.MedianLatency {
		t.Errorf("colocated p50 >= weaver p50")
	}

	// The factors should be in the paper's ballpark (2-4x cost, ~2x
	// latency for baseline/weaver).
	costRatio := baseline.TotalCores / weaver.TotalCores
	if costRatio < 1.4 || costRatio > 6 {
		t.Errorf("cost ratio = %.2f, out of plausible range", costRatio)
	}
	latRatio := baseline.MedianLatency / weaver.MedianLatency
	if latRatio < 1.2 || latRatio > 5 {
		t.Errorf("latency ratio = %.2f, out of plausible range", latRatio)
	}

	// The offered load must actually be served.
	for _, r := range []BoutiqueResult{baseline, weaver, colocated} {
		if r.CompletedQPS < 0.9*r.QPS {
			t.Errorf("completed %.0f of offered %.0f qps", r.CompletedQPS, r.QPS)
		}
	}
}

func TestBoutiqueDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	a := RunBoutique(BoutiqueOptions{QPS: 200, Costs: WeaverCosts, Seed: 42, WarmupSeconds: 20, MeasureSeconds: 20})
	b := RunBoutique(BoutiqueOptions{QPS: 200, Costs: WeaverCosts, Seed: 42, WarmupSeconds: 20, MeasureSeconds: 20})
	if a.TotalCores != b.TotalCores || a.MedianLatency != b.MedianLatency {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestColocationReducesRPCs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	// Partial colocation (frontend+currency+catalog merged) should land
	// between no colocation and full colocation in cores.
	partial := map[string]string{}
	for _, c := range Components {
		partial[c] = c
	}
	partial["Frontend"] = "merged"
	partial["Currency"] = "merged"
	partial["ProductCatalog"] = "merged"

	none := RunBoutique(BoutiqueOptions{QPS: 500, Costs: WeaverCosts, Seed: 3, WarmupSeconds: 30, MeasureSeconds: 30})
	part := RunBoutique(BoutiqueOptions{QPS: 500, Costs: WeaverCosts, Groups: partial, Seed: 3, WarmupSeconds: 30, MeasureSeconds: 30})
	full := RunBoutique(BoutiqueOptions{QPS: 500, Costs: WeaverCosts, Groups: ColocateAll(), Seed: 3, WarmupSeconds: 30, MeasureSeconds: 30})

	if !(full.TotalCores <= part.TotalCores && part.TotalCores <= none.TotalCores) {
		t.Errorf("cores not monotone in colocation: full=%.1f part=%.1f none=%.1f",
			full.TotalCores, part.TotalCores, none.TotalCores)
	}
}
