// Package codec implements the custom serialization format used on the
// weaver data plane.
//
// The format is sequential and carries no field numbers and no type
// information: values are written in a fixed order agreed upon by encoder
// and decoder in advance. This is safe because application rollouts are
// atomic — every encoder and decoder in a deployment runs the exact same
// binary, so both sides always agree on the set of fields and the order in
// which they are encoded (paper §6.1).
//
// Wire rules:
//
//   - bool:          one byte, 0 or 1
//   - uint8/int8:    one byte
//   - uint16..64:    fixed-width little-endian
//   - int16..64:     fixed-width little-endian two's complement
//   - float32/64:    IEEE 754 bits, little-endian
//   - len/count:     unsigned varint (LEB128)
//   - string/[]byte: varint length + raw bytes
//   - slice:         varint count + elements
//   - map:           varint count + key/value pairs in sorted key order
//   - struct:        fields in declaration order
//   - pointer:       one presence byte (0 = nil) + value
//
// Maps are encoded in sorted key order so that encoding is deterministic,
// which the routing layer relies on for request hashing and tests rely on
// for byte-for-byte comparisons.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder serializes values into an internal buffer using the weaver wire
// format. The zero value is ready to use. Encoders may be reused via Reset,
// or recycled across calls with GetEncoder/PutEncoder.
type Encoder struct {
	buf  []byte
	head int // bytes of transport headroom reserved by Reserve
}

// NewEncoder returns an encoder with capacity preallocated for hint bytes.
func NewEncoder(hint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, hint)}
}

// Reset discards the encoder's contents, including any reserved headroom,
// retaining the buffer for reuse.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.head = 0
}

// Reserve sets aside n bytes of scratch headroom at the front of the
// buffer, before any encoded data. The transport uses this to prepend
// framing (length prefix, frame type, request header) in place instead of
// copying the payload into a fresh buffer. Reserve must be called before
// any encoding method; it panics on a non-empty encoder. The headroom
// contents are uninitialized scratch owned by whoever holds Framed().
func (e *Encoder) Reserve(n int) {
	if len(e.buf) != 0 {
		panic("codec: Reserve called on a non-empty encoder")
	}
	if cap(e.buf) < n {
		e.buf = make([]byte, n, n+256)
	} else {
		e.buf = e.buf[:n]
	}
	e.head = n
}

// Headroom reports the number of bytes reserved by Reserve.
func (e *Encoder) Headroom() int { return e.head }

// Data returns the encoded bytes, excluding any reserved headroom. The
// returned slice aliases the encoder's internal buffer and is invalidated
// by the next call to Reset or any encoding method.
func (e *Encoder) Data() []byte { return e.buf[e.head:] }

// Framed returns the reserved headroom followed by the encoded bytes as
// one contiguous slice. Like Data, the result aliases the internal buffer.
func (e *Encoder) Framed() []byte { return e.buf }

// Len reports the number of encoded bytes, excluding headroom.
func (e *Encoder) Len() int { return len(e.buf) - e.head }

// Bool encodes a bool as a single byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Uint8 encodes an unsigned 8-bit integer.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Int8 encodes a signed 8-bit integer.
func (e *Encoder) Int8(v int8) { e.buf = append(e.buf, uint8(v)) }

// Uint16 encodes an unsigned 16-bit integer, little-endian.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// Int16 encodes a signed 16-bit integer.
func (e *Encoder) Int16(v int16) { e.Uint16(uint16(v)) }

// Uint32 encodes an unsigned 32-bit integer, little-endian.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a signed 32-bit integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes an unsigned 64-bit integer, little-endian.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 encodes a signed 64-bit integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Int encodes an int as a 64-bit value.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Uint encodes a uint as a 64-bit value.
func (e *Encoder) Uint(v uint) { e.Uint64(uint64(v)) }

// Float32 encodes an IEEE 754 single-precision float.
func (e *Encoder) Float32(v float32) { e.Uint32(math.Float32bits(v)) }

// Float64 encodes an IEEE 754 double-precision float.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Complex64 encodes a complex64 as two float32s.
func (e *Encoder) Complex64(v complex64) {
	e.Float32(real(v))
	e.Float32(imag(v))
}

// Complex128 encodes a complex128 as two float64s.
func (e *Encoder) Complex128(v complex128) {
	e.Float64(real(v))
	e.Float64(imag(v))
}

// Varint encodes an unsigned integer using LEB128 variable-length encoding.
// It is used for lengths and counts, which are usually small.
func (e *Encoder) Varint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Len64 encodes a non-negative length. It panics if v is negative, which
// indicates a bug in the caller rather than bad input data.
func (e *Encoder) Len64(v int) {
	if v < 0 {
		panic(fmt.Sprintf("codec: negative length %d", v))
	}
	e.Varint(uint64(v))
}

// String encodes a string as a varint length followed by raw bytes.
func (e *Encoder) String(v string) {
	e.Len64(len(v))
	e.buf = append(e.buf, v...)
}

// Bytes encodes a byte slice like a string. A nil slice is encoded
// identically to an empty one.
func (e *Encoder) Bytes(v []byte) {
	e.Len64(len(v))
	e.buf = append(e.buf, v...)
}

// Present encodes a presence marker for pointers and other optional values.
func (e *Encoder) Present(p bool) { e.Bool(p) }

// Raw appends pre-encoded bytes without a length prefix. It is used by
// generated code that has already framed the payload.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Error encodes an error for transmission. Errors cross the wire as strings:
// a presence byte followed by the message. This matches how the paper's
// prototype handles application errors returned from component methods.
func (e *Encoder) Error(err error) {
	if err == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.String(err.Error())
}

// A DecodeError describes malformed or truncated input encountered while
// decoding.
type DecodeError struct {
	Offset int    // byte offset at which decoding failed
	What   string // description of the expected datum
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("codec: decode %s at offset %d: truncated or malformed input", e.What, e.Offset)
}

// Decoder deserializes values from a byte slice produced by an Encoder.
// Decoding methods panic with *DecodeError on malformed input; use Catch to
// convert the panic into an error at an API boundary.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from data. The decoder does not copy
// data; the caller must not mutate it during decoding.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{buf: data}
}

// Reset repoints the decoder at data and rewinds it.
func (d *Decoder) Reset(data []byte) {
	d.buf = data
	d.off = 0
}

// Remaining reports the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done reports whether the decoder has consumed all input.
func (d *Decoder) Done() bool { return d.off == len(d.buf) }

// Offset reports the current read offset.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(what string) {
	panic(&DecodeError{Offset: d.off, What: what})
}

func (d *Decoder) take(n int, what string) []byte {
	if d.Remaining() < n {
		d.fail(what)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Bool decodes a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1, "bool")[0]
	if b > 1 {
		d.fail("bool")
	}
	return b == 1
}

// Uint8 decodes an unsigned 8-bit integer.
func (d *Decoder) Uint8() uint8 { return d.take(1, "uint8")[0] }

// Int8 decodes a signed 8-bit integer.
func (d *Decoder) Int8() int8 { return int8(d.Uint8()) }

// Uint16 decodes an unsigned 16-bit integer.
func (d *Decoder) Uint16() uint16 {
	return binary.LittleEndian.Uint16(d.take(2, "uint16"))
}

// Int16 decodes a signed 16-bit integer.
func (d *Decoder) Int16() int16 { return int16(d.Uint16()) }

// Uint32 decodes an unsigned 32-bit integer.
func (d *Decoder) Uint32() uint32 {
	return binary.LittleEndian.Uint32(d.take(4, "uint32"))
}

// Int32 decodes a signed 32-bit integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes an unsigned 64-bit integer.
func (d *Decoder) Uint64() uint64 {
	return binary.LittleEndian.Uint64(d.take(8, "uint64"))
}

// Int64 decodes a signed 64-bit integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int decodes an int.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Uint decodes a uint.
func (d *Decoder) Uint() uint { return uint(d.Uint64()) }

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() float32 { return math.Float32frombits(d.Uint32()) }

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Complex64 decodes a complex64.
func (d *Decoder) Complex64() complex64 {
	r := d.Float32()
	i := d.Float32()
	return complex(r, i)
}

// Complex128 decodes a complex128.
func (d *Decoder) Complex128() complex128 {
	r := d.Float64()
	i := d.Float64()
	return complex(r, i)
}

// Varint decodes an unsigned LEB128 varint.
func (d *Decoder) Varint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
	}
	d.off += n
	return v
}

// Len64 decodes a length and validates that it cannot exceed the remaining
// input, defending against maliciously large allocations.
func (d *Decoder) Len64(what string) int {
	v := d.Varint()
	if v > uint64(d.Remaining()) {
		d.fail(what + " length")
	}
	return int(v)
}

// String decodes a string.
func (d *Decoder) String() string {
	n := d.Len64("string")
	return string(d.take(n, "string"))
}

// Bytes decodes a byte slice. The result is a copy and does not alias the
// decoder's input.
func (d *Decoder) Bytes() []byte {
	n := d.Len64("bytes")
	b := d.take(n, "bytes")
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Present decodes a presence marker.
func (d *Decoder) Present() bool { return d.Bool() }

// Raw consumes and returns the next n bytes without copying.
func (d *Decoder) Raw(n int) []byte { return d.take(n, "raw") }

// Error decodes an error encoded by Encoder.Error. A decoded non-nil error
// has type *RemoteError.
func (d *Decoder) Error() error {
	if !d.Bool() {
		return nil
	}
	return &RemoteError{Message: d.String()}
}

// RemoteError is an application error returned by a remote component method.
// Only the message survives the trip across the wire.
type RemoteError struct {
	Message string
}

func (e *RemoteError) Error() string { return e.Message }

// Catch recovers a *DecodeError panic raised by decoder methods and stores
// it in *err. Use it in a defer at the boundary where decoding begins:
//
//	func unmarshal(data []byte) (err error) {
//		d := codec.NewDecoder(data)
//		defer codec.Catch(&err)
//		...
//	}
//
// Panics of other types propagate unchanged.
func Catch(err *error) {
	switch r := recover().(type) {
	case nil:
	case *DecodeError:
		*err = r
	default:
		panic(r)
	}
}
