package codec

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"
)

// Marshaler is implemented by types that provide a hand-written or generated
// fast path for the weaver wire format. Auto-encoding prefers Marshaler over
// reflection.
type Marshaler interface {
	WeaverMarshal(*Encoder)
}

// Unmarshaler is the decoding counterpart of Marshaler. WeaverUnmarshal must
// be declared on a pointer receiver so the decoded value is visible to the
// caller.
type Unmarshaler interface {
	WeaverUnmarshal(*Decoder)
}

// engine is a compiled encode/decode program for one Go type. Engines are
// built once per type via reflection and cached, so the per-value cost is a
// walk over precomputed closures rather than repeated reflection queries.
type engine struct {
	enc func(*Encoder, reflect.Value)
	dec func(*Decoder, reflect.Value) // dec stores into an addressable value
}

var (
	enginesMu sync.RWMutex
	engines   = map[reflect.Type]*engine{}
)

var (
	marshalerType   = reflect.TypeOf((*Marshaler)(nil)).Elem()
	unmarshalerType = reflect.TypeOf((*Unmarshaler)(nil)).Elem()
	timeType        = reflect.TypeOf(time.Time{})
	durationType    = reflect.TypeOf(time.Duration(0))
)

// Encode serializes v onto e using the weaver wire format. It panics if v's
// type contains channels, functions, or interfaces other than error, since
// such values have no meaningful wire representation. Encode of a nil
// pointer-to-struct at the top level writes a zero presence byte.
func Encode(e *Encoder, v any) {
	if v == nil {
		panic("codec: Encode(nil)")
	}
	rv := reflect.ValueOf(v)
	engineOf(rv.Type()).enc(e, rv)
}

// Decode deserializes a value of *v's type from d, storing it through v,
// which must be a non-nil pointer. A *DecodeError panic is raised on
// malformed input; wrap calls with Catch.
func Decode(d *Decoder, v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		panic("codec: Decode target must be a non-nil pointer")
	}
	engineOf(rv.Type().Elem()).dec(d, rv.Elem())
}

// EncodePtr encodes the value that ptr points to, without the presence
// byte a pointer field would carry. It is the encoding counterpart of
// Decode/Unmarshal, which always write through a pointer: bytes produced by
// EncodePtr(&v) decode with Unmarshal(data, &v). The RPC hot path uses it
// to serialize args/results structs without copying them.
func EncodePtr(e *Encoder, ptr any) {
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		panic("codec: EncodePtr target must be a non-nil pointer")
	}
	engineOf(rv.Type().Elem()).enc(e, rv.Elem())
}

// Marshal is a convenience wrapper that encodes v into a fresh byte slice.
func Marshal(v any) []byte {
	e := GetEncoder()
	Encode(e, v)
	out := make([]byte, e.Len())
	copy(out, e.Data())
	PutEncoder(e)
	return out
}

// Unmarshal decodes data into v (a non-nil pointer), returning an error for
// malformed input or trailing garbage.
func Unmarshal(data []byte, v any) (err error) {
	defer Catch(&err)
	d := NewDecoder(data)
	Decode(d, v)
	if !d.Done() {
		return &DecodeError{Offset: d.Offset(), What: "trailing bytes"}
	}
	return nil
}

func engineOf(t reflect.Type) *engine {
	enginesMu.RLock()
	eng := engines[t]
	enginesMu.RUnlock()
	if eng != nil {
		return eng
	}

	enginesMu.Lock()
	defer enginesMu.Unlock()
	return engineOfLocked(t)
}

// engineOfLocked builds (or returns) the engine for t with enginesMu held.
// Recursive types are handled by installing a forwarding engine before
// compiling the type's body.
func engineOfLocked(t reflect.Type) *engine {
	if eng := engines[t]; eng != nil {
		return eng
	}
	// Install a placeholder that forwards to the real engine so that
	// self-referential types (e.g. linked lists) terminate.
	fwd := &engine{}
	engines[t] = fwd
	real := compile(t)
	fwd.enc = real.enc
	fwd.dec = real.dec
	return fwd
}

func compile(t reflect.Type) engine {
	// Custom marshalers take precedence. Detect them on the type or its
	// pointer: WeaverUnmarshal is conventionally on *T.
	if t.Implements(marshalerType) && reflect.PointerTo(t).Implements(unmarshalerType) {
		return engine{
			enc: func(e *Encoder, v reflect.Value) {
				v.Interface().(Marshaler).WeaverMarshal(e)
			},
			dec: func(d *Decoder, v reflect.Value) {
				v.Addr().Interface().(Unmarshaler).WeaverUnmarshal(d)
			},
		}
	}

	switch t {
	case timeType:
		return engine{
			enc: func(e *Encoder, v reflect.Value) {
				tm := v.Interface().(time.Time)
				e.Int64(tm.UnixNano())
			},
			dec: func(d *Decoder, v reflect.Value) {
				v.Set(reflect.ValueOf(time.Unix(0, d.Int64()).UTC()))
			},
		}
	case durationType:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Int64(v.Int()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetInt(d.Int64()) },
		}
	}

	switch t.Kind() {
	case reflect.Bool:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Bool(v.Bool()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetBool(d.Bool()) },
		}
	case reflect.Int8:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Int8(int8(v.Int())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetInt(int64(d.Int8())) },
		}
	case reflect.Int16:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Int16(int16(v.Int())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetInt(int64(d.Int16())) },
		}
	case reflect.Int32:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Int32(int32(v.Int())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetInt(int64(d.Int32())) },
		}
	case reflect.Int64, reflect.Int:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Int64(v.Int()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetInt(d.Int64()) },
		}
	case reflect.Uint8:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Uint8(uint8(v.Uint())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetUint(uint64(d.Uint8())) },
		}
	case reflect.Uint16:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Uint16(uint16(v.Uint())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetUint(uint64(d.Uint16())) },
		}
	case reflect.Uint32:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Uint32(uint32(v.Uint())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetUint(uint64(d.Uint32())) },
		}
	case reflect.Uint64, reflect.Uint, reflect.Uintptr:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Uint64(v.Uint()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetUint(d.Uint64()) },
		}
	case reflect.Float32:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Float32(float32(v.Float())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetFloat(float64(d.Float32())) },
		}
	case reflect.Float64:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Float64(v.Float()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetFloat(d.Float64()) },
		}
	case reflect.Complex64:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Complex64(complex64(v.Complex())) },
			dec: func(d *Decoder, v reflect.Value) { v.SetComplex(complex128(d.Complex64())) },
		}
	case reflect.Complex128:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.Complex128(v.Complex()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetComplex(d.Complex128()) },
		}
	case reflect.String:
		return engine{
			enc: func(e *Encoder, v reflect.Value) { e.String(v.String()) },
			dec: func(d *Decoder, v reflect.Value) { v.SetString(d.String()) },
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 && t.Elem() == reflect.TypeOf(byte(0)) {
			return engine{
				enc: func(e *Encoder, v reflect.Value) { e.Bytes(v.Bytes()) },
				dec: func(d *Decoder, v reflect.Value) { v.SetBytes(d.Bytes()) },
			}
		}
		elem := engineOfLocked(t.Elem())
		return engine{
			enc: func(e *Encoder, v reflect.Value) {
				n := v.Len()
				e.Len64(n)
				for i := 0; i < n; i++ {
					elem.enc(e, v.Index(i))
				}
			},
			dec: func(d *Decoder, v reflect.Value) {
				n := int(d.Varint())
				s := reflect.MakeSlice(t, 0, min(n, 1024))
				zero := reflect.Zero(t.Elem())
				for i := 0; i < n; i++ {
					s = reflect.Append(s, zero)
					elem.dec(d, s.Index(i))
				}
				v.Set(s)
			},
		}
	case reflect.Array:
		elem := engineOfLocked(t.Elem())
		n := t.Len()
		return engine{
			enc: func(e *Encoder, v reflect.Value) {
				for i := 0; i < n; i++ {
					elem.enc(e, v.Index(i))
				}
			},
			dec: func(d *Decoder, v reflect.Value) {
				for i := 0; i < n; i++ {
					elem.dec(d, v.Index(i))
				}
			},
		}
	case reflect.Map:
		return compileMap(t)
	case reflect.Pointer:
		elem := engineOfLocked(t.Elem())
		return engine{
			enc: func(e *Encoder, v reflect.Value) {
				if v.IsNil() {
					e.Present(false)
					return
				}
				e.Present(true)
				elem.enc(e, v.Elem())
			},
			dec: func(d *Decoder, v reflect.Value) {
				if !d.Present() {
					v.SetZero()
					return
				}
				p := reflect.New(t.Elem())
				elem.dec(d, p.Elem())
				v.Set(p)
			},
		}
	case reflect.Struct:
		return compileStruct(t)
	default:
		panic(fmt.Sprintf("codec: unsupported type %v (kind %v)", t, t.Kind()))
	}
}

func compileStruct(t reflect.Type) engine {
	type fieldPlan struct {
		index int
		eng   *engine
	}
	var fields []fieldPlan
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Tag.Get("weaver") == "-" {
			continue
		}
		// Unexported fields are skipped: components exchange exported data.
		if !f.IsExported() {
			continue
		}
		fields = append(fields, fieldPlan{index: i, eng: engineOfLocked(f.Type)})
	}
	return engine{
		enc: func(e *Encoder, v reflect.Value) {
			for _, f := range fields {
				f.eng.enc(e, v.Field(f.index))
			}
		},
		dec: func(d *Decoder, v reflect.Value) {
			for _, f := range fields {
				f.eng.dec(d, v.Field(f.index))
			}
		},
	}
}

func compileMap(t reflect.Type) engine {
	key := engineOfLocked(t.Key())
	elem := engineOfLocked(t.Elem())
	keyLess := lessFunc(t.Key())
	return engine{
		enc: func(e *Encoder, v reflect.Value) {
			n := v.Len()
			e.Len64(n)
			keys := v.MapKeys()
			if keyLess != nil {
				sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
			}
			for _, k := range keys {
				key.enc(e, k)
				elem.enc(e, v.MapIndex(k))
			}
		},
		dec: func(d *Decoder, v reflect.Value) {
			n := int(d.Varint())
			m := reflect.MakeMapWithSize(t, min(n, 1024))
			kp := reflect.New(t.Key()).Elem()
			vp := reflect.New(t.Elem()).Elem()
			for i := 0; i < n; i++ {
				kp.SetZero()
				vp.SetZero()
				key.dec(d, kp)
				elem.dec(d, vp)
				m.SetMapIndex(kp, vp)
			}
			v.Set(m)
		},
	}
}

// lessFunc returns an ordering for map keys of type t, or nil when keys of
// that type have no cheap total order (encoding is then iteration-ordered,
// i.e. nondeterministic, which callers must not rely on).
func lessFunc(t reflect.Type) func(a, b reflect.Value) bool {
	switch t.Kind() {
	case reflect.String:
		return func(a, b reflect.Value) bool { return a.String() < b.String() }
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(a, b reflect.Value) bool { return a.Int() < b.Int() }
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return func(a, b reflect.Value) bool { return a.Uint() < b.Uint() }
	case reflect.Float32, reflect.Float64:
		return func(a, b reflect.Value) bool { return a.Float() < b.Float() }
	case reflect.Bool:
		return func(a, b reflect.Value) bool { return !a.Bool() && b.Bool() }
	default:
		return nil
	}
}
