package codec

import (
	"reflect"
	"testing"
)

// Edge cases of the reflection engine beyond the basic round trips in
// codec_test.go.

func TestStructKeyedMap(t *testing.T) {
	type key struct {
		A int32
		B string
	}
	in := map[key]int{
		{A: 1, B: "x"}: 10,
		{A: 2, B: "y"}: 20,
	}
	var out map[key]int
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("out = %v", out)
	}
}

func TestPointerChain(t *testing.T) {
	v := 42
	p := &v
	in := &p // **int
	var out **int
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out == nil || *out == nil || **out != 42 {
		t.Errorf("out = %v", out)
	}

	var nilp **int
	var out2 **int
	if err := Unmarshal(Marshal(nilp), &out2); err != nil {
		t.Fatal(err)
	}
	if out2 != nil {
		t.Errorf("nil pointer decoded as %v", out2)
	}
}

func TestArrayOfStructs(t *testing.T) {
	type pt struct{ X, Y int16 }
	in := [3]pt{{1, 2}, {3, 4}, {5, 6}}
	var out [3]pt
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Errorf("out = %v", out)
	}
}

func TestEmptyStruct(t *testing.T) {
	type empty struct{}
	data := Marshal(empty{})
	if len(data) != 0 {
		t.Errorf("empty struct encoded to %d bytes", len(data))
	}
	var out empty
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedTypePanics(t *testing.T) {
	for _, v := range []any{
		make(chan int),
		func() {},
		map[string]any{"x": 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Marshal(%T) did not panic", v)
				}
			}()
			Marshal(v)
		}()
	}
}

func TestDeeplyNested(t *testing.T) {
	type level3 struct{ V []map[int8][]string }
	type level2 struct {
		L *level3
		M map[string][]level3
	}
	type level1 struct {
		A []level2
		B [2]*level2
	}
	// Note: nil slices and nil maps decode as empty ones (documented), so
	// the input uses empty-but-non-nil values where decode produces them.
	in := level1{
		A: []level2{{
			L: &level3{V: []map[int8][]string{{1: {"a", "b"}}, {2: {}}}},
			M: map[string][]level3{"k": {{V: []map[int8][]string{}}}},
		}},
		B: [2]*level2{nil, {L: &level3{V: []map[int8][]string{}}, M: map[string][]level3{}}},
	}
	var out level1
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("deep round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestNamedBasicTypes(t *testing.T) {
	type Celsius float64
	type ID uint32
	type tagged struct {
		T Celsius
		I ID
	}
	in := tagged{T: 36.6, I: 99}
	var out tagged
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("out = %+v", out)
	}
}

func TestEncodePtrMatchesUnmarshalContract(t *testing.T) {
	type pair struct {
		A string
		B int
	}
	in := pair{A: "x", B: 7}
	var e Encoder
	EncodePtr(&e, &in)
	var out pair
	if err := Unmarshal(e.Data(), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("out = %+v", out)
	}
}

func TestEncodePtrNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodePtr(nil) did not panic")
		}
	}()
	var e Encoder
	var p *int
	EncodePtr(&e, p)
}
