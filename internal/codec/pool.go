package codec

import "sync"

// Encoder pooling. The data plane encodes one payload per RPC; allocating
// a fresh Encoder (and growing its buffer from nil) on every call makes
// serialization a per-call GC treadmill. GetEncoder/PutEncoder recycle
// encoders and their buffers so a steady-state call encodes with zero heap
// allocations.
//
// Ownership rule: a pooled encoder's buffer (everything returned by Data
// and Framed) belongs to the holder until PutEncoder/Release, at which
// point every slice derived from it is invalid. Callers that retain
// encoded bytes past that point must copy them first.

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// maxPooledBuf caps the buffer capacity retained by the pool so one huge
// payload does not pin a large allocation for the life of the process.
const maxPooledBuf = 64 << 10

// GetEncoder returns an empty encoder from the pool. Pass it to PutEncoder
// (or call Release) when the encoded bytes are no longer referenced.
func GetEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// PutEncoder resets e and returns it to the pool. The caller must not use
// e, or any slice obtained from its Data or Framed, afterwards. Oversized
// buffers are dropped rather than pooled.
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	e.Reset()
	encoderPool.Put(e)
}

// Release returns the encoder to the pool. It exists so a pooled encoder
// can travel as an opaque buffer owner (e.g. rpc.BufOwner) through layers
// that know nothing about the codec.
func (e *Encoder) Release() { PutEncoder(e) }
