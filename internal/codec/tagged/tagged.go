// Package tagged implements a self-describing, versioned binary format in
// the style of Protocol Buffers: every field is preceded by a tag carrying a
// field number and a wire type, unknown fields are skippable, and missing
// fields decode to zero values.
//
// The package plays two roles in this repository:
//
//  1. It is the "status quo" serialization baseline in the paper's
//     evaluation (§6.1): a format that must pay for field numbers and type
//     information on every value because its producers and consumers may
//     run different versions.
//  2. It is the format of the envelope↔proclet control-plane pipe
//     (internal/pipe), which genuinely crosses versions during a rollout
//     and therefore must be evolution-tolerant — unlike the data plane,
//     which is unversioned by design.
//
// Wire format: each field is encoded as a varint tag (fieldNumber<<3 |
// wireType) followed by the payload. Wire types follow protobuf:
//
//	0 varint   (bool, integers; signed values use zigzag)
//	1 fixed64  (float64)
//	2 bytes    (string, []byte, nested message, packed repeated)
//	5 fixed32  (float32)
//
// Field numbers are assigned from struct tags `tag:"N"` or, absent a tag,
// from 1-based declaration order. Reordering or removing fields without
// fixing tags is exactly the class of versioning hazard the paper's atomic
// rollouts eliminate; the rollout experiment (EXPERIMENTS.md A5) exploits
// this.
package tagged

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"sync"
	"time"
)

// Wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// Marshal encodes v, which must be a struct or pointer to struct, into the
// tagged wire format.
func Marshal(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("tagged: Marshal of nil %v", rv.Type())
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("tagged: Marshal of non-struct %v", rv.Type())
	}
	prog, err := programOf(rv.Type())
	if err != nil {
		return nil, err
	}
	return prog.marshal(nil, rv), nil
}

// Unmarshal decodes data into v, which must be a non-nil pointer to struct.
// Unknown fields are skipped; absent fields retain their existing values,
// so callers should pass a zeroed target.
func Unmarshal(data []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("tagged: Unmarshal target must be a non-nil pointer")
	}
	rv = rv.Elem()
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("tagged: Unmarshal of non-struct %v", rv.Type())
	}
	prog, err := programOf(rv.Type())
	if err != nil {
		return err
	}
	return prog.unmarshal(data, rv)
}

// field describes how one struct field is encoded.
type field struct {
	num     uint64
	index   int
	kind    reflect.Kind
	typ     reflect.Type
	sub     *program // for nested structs and pointer-to-struct
	elem    *field   // for slices (repeated) and map values
	key     *field   // for map keys
	isTime  bool
	isBytes bool
}

// program is the compiled codec for one struct type.
type program struct {
	typ    reflect.Type
	fields []*field
	byNum  map[uint64]*field
}

var (
	progMu   sync.RWMutex
	programs = map[reflect.Type]*program{}
)

func programOf(t reflect.Type) (*program, error) {
	progMu.RLock()
	p := programs[t]
	progMu.RUnlock()
	if p != nil {
		return p, nil
	}
	progMu.Lock()
	defer progMu.Unlock()
	return programOfLocked(t)
}

func programOfLocked(t reflect.Type) (*program, error) {
	if p := programs[t]; p != nil {
		return p, nil
	}
	p := &program{typ: t, byNum: map[uint64]*field{}}
	programs[t] = p // pre-install for recursive types
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() || sf.Tag.Get("tag") == "-" {
			continue
		}
		num := uint64(len(p.fields) + 1)
		if tag := sf.Tag.Get("tag"); tag != "" {
			n, err := strconv.ParseUint(tag, 10, 32)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("tagged: bad tag %q on %v.%s", tag, t, sf.Name)
			}
			num = n
		}
		f, err := fieldOfLocked(num, i, sf.Type)
		if err != nil {
			return nil, fmt.Errorf("%v.%s: %w", t, sf.Name, err)
		}
		if p.byNum[num] != nil {
			return nil, fmt.Errorf("tagged: duplicate field number %d in %v", num, t)
		}
		p.fields = append(p.fields, f)
		p.byNum[num] = f
	}
	return p, nil
}

func fieldOfLocked(num uint64, index int, t reflect.Type) (*field, error) {
	f := &field{num: num, index: index, kind: t.Kind(), typ: t}
	if t == reflect.TypeOf(time.Time{}) {
		f.isTime = true
		return f, nil
	}
	switch t.Kind() {
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return f, nil
	case reflect.Struct:
		sub, err := programOfLocked(t)
		if err != nil {
			return nil, err
		}
		f.sub = sub
		return f, nil
	case reflect.Pointer:
		if t.Elem().Kind() != reflect.Struct {
			return nil, fmt.Errorf("tagged: unsupported pointer to %v", t.Elem())
		}
		sub, err := programOfLocked(t.Elem())
		if err != nil {
			return nil, err
		}
		f.sub = sub
		return f, nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			f.isBytes = true
			return f, nil
		}
		elem, err := fieldOfLocked(num, -1, t.Elem())
		if err != nil {
			return nil, err
		}
		f.elem = elem
		return f, nil
	case reflect.Map:
		key, err := fieldOfLocked(1, -1, t.Key())
		if err != nil {
			return nil, err
		}
		val, err := fieldOfLocked(2, -1, t.Elem())
		if err != nil {
			return nil, err
		}
		f.key, f.elem = key, val
		return f, nil
	default:
		return nil, fmt.Errorf("tagged: unsupported type %v", t)
	}
}

func appendTag(b []byte, num uint64, wire int) []byte {
	return binary.AppendUvarint(b, num<<3|uint64(wire))
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

func (p *program) marshal(b []byte, v reflect.Value) []byte {
	for _, f := range p.fields {
		b = f.append(b, v.Field(f.index))
	}
	return b
}

// append encodes one field value (including its tag). Zero scalars are
// elided, matching proto3 semantics.
func (f *field) append(b []byte, v reflect.Value) []byte {
	if f.isTime {
		t := v.Interface().(time.Time)
		if t.IsZero() {
			return b
		}
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, zigzag(t.UnixNano()))
	}
	if f.isBytes {
		data := v.Bytes()
		if len(data) == 0 {
			return b
		}
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(data)))
		return append(b, data...)
	}
	switch f.kind {
	case reflect.Bool:
		if !v.Bool() {
			return b
		}
		b = appendTag(b, f.num, wireVarint)
		return append(b, 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Int() == 0 {
			return b
		}
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, zigzag(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if v.Uint() == 0 {
			return b
		}
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, v.Uint())
	case reflect.Float32:
		if v.Float() == 0 {
			return b
		}
		b = appendTag(b, f.num, wireFixed32)
		return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(v.Float())))
	case reflect.Float64:
		if v.Float() == 0 {
			return b
		}
		b = appendTag(b, f.num, wireFixed64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		if s == "" {
			return b
		}
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	case reflect.Struct:
		if v.IsZero() {
			return b
		}
		inner := f.sub.marshal(nil, v)
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(inner)))
		return append(b, inner...)
	case reflect.Pointer:
		if v.IsNil() {
			return b
		}
		inner := f.sub.marshal(nil, v.Elem())
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(inner)))
		return append(b, inner...)
	case reflect.Slice: // repeated: one tagged record per element
		for i := 0; i < v.Len(); i++ {
			b = f.elem.appendAlways(b, v.Index(i))
		}
		return b
	case reflect.Map: // repeated nested (key, value) entries
		iter := v.MapRange()
		for iter.Next() {
			var entry []byte
			entry = f.key.appendAlways(entry, iter.Key())
			entry = f.elem.appendAlways(entry, iter.Value())
			b = appendTag(b, f.num, wireBytes)
			b = binary.AppendUvarint(b, uint64(len(entry)))
			b = append(b, entry...)
		}
		return b
	}
	panic(fmt.Sprintf("tagged: unreachable kind %v", f.kind))
}

// appendAlways encodes a value even if it is the zero value; needed for
// repeated elements and map entries where elision would drop items.
func (f *field) appendAlways(b []byte, v reflect.Value) []byte {
	if f.isTime {
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, zigzag(v.Interface().(time.Time).UnixNano()))
	}
	if f.isBytes {
		data := v.Bytes()
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(data)))
		return append(b, data...)
	}
	switch f.kind {
	case reflect.Bool:
		b = appendTag(b, f.num, wireVarint)
		if v.Bool() {
			return append(b, 1)
		}
		return append(b, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, zigzag(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		b = appendTag(b, f.num, wireVarint)
		return binary.AppendUvarint(b, v.Uint())
	case reflect.Float32:
		b = appendTag(b, f.num, wireFixed32)
		return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(v.Float())))
	case reflect.Float64:
		b = appendTag(b, f.num, wireFixed64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	case reflect.Struct:
		inner := f.sub.marshal(nil, v)
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(inner)))
		return append(b, inner...)
	case reflect.Pointer:
		var inner []byte
		if !v.IsNil() {
			inner = f.sub.marshal(nil, v.Elem())
		}
		b = appendTag(b, f.num, wireBytes)
		b = binary.AppendUvarint(b, uint64(len(inner)))
		return append(b, inner...)
	}
	return f.append(b, v)
}

func (p *program) unmarshal(data []byte, v reflect.Value) error {
	for len(data) > 0 {
		tag, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("tagged: bad tag in %v", p.typ)
		}
		data = data[n:]
		num, wire := tag>>3, int(tag&7)
		f := p.byNum[num]
		if f == nil {
			rest, err := skip(data, wire)
			if err != nil {
				return fmt.Errorf("tagged: skipping field %d in %v: %w", num, p.typ, err)
			}
			data = rest
			continue
		}
		rest, err := f.decode(data, wire, v.Field(f.index))
		if err != nil {
			return fmt.Errorf("tagged: field %d in %v: %w", num, p.typ, err)
		}
		data = rest
	}
	return nil
}

func skip(data []byte, wire int) ([]byte, error) {
	switch wire {
	case wireVarint:
		_, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad varint")
		}
		return data[n:], nil
	case wireFixed64:
		if len(data) < 8 {
			return nil, fmt.Errorf("short fixed64")
		}
		return data[8:], nil
	case wireFixed32:
		if len(data) < 4 {
			return nil, fmt.Errorf("short fixed32")
		}
		return data[4:], nil
	case wireBytes:
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, fmt.Errorf("bad bytes length")
		}
		return data[n+int(l):], nil
	default:
		return nil, fmt.Errorf("unknown wire type %d", wire)
	}
}

func (f *field) decode(data []byte, wire int, v reflect.Value) ([]byte, error) {
	// Repeated fields receive one element per record.
	if f.kind == reflect.Slice && !f.isBytes {
		elem := reflect.New(f.typ.Elem()).Elem()
		rest, err := f.elem.decode(data, wire, elem)
		if err != nil {
			return nil, err
		}
		v.Set(reflect.Append(v, elem))
		return rest, nil
	}
	if f.kind == reflect.Map {
		payload, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		kv := reflect.New(f.typ.Key()).Elem()
		vv := reflect.New(f.typ.Elem()).Elem()
		for len(payload) > 0 {
			tag, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("bad map entry tag")
			}
			payload = payload[n:]
			num, w := tag>>3, int(tag&7)
			var err error
			switch num {
			case 1:
				payload, err = f.key.decode(payload, w, kv)
			case 2:
				payload, err = f.elem.decode(payload, w, vv)
			default:
				payload, err = skip(payload, w)
			}
			if err != nil {
				return nil, err
			}
		}
		if v.IsNil() {
			v.Set(reflect.MakeMap(f.typ))
		}
		v.SetMapIndex(kv, vv)
		return rest, nil
	}

	if f.isTime {
		u, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad time varint")
		}
		v.Set(reflect.ValueOf(time.Unix(0, unzigzag(u)).UTC()))
		return data[n:], nil
	}
	if f.isBytes {
		payload, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		v.SetBytes(out)
		return rest, nil
	}

	switch f.kind {
	case reflect.Bool:
		u, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad bool varint")
		}
		v.SetBool(u != 0)
		return data[n:], nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad int varint")
		}
		v.SetInt(unzigzag(u))
		return data[n:], nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("bad uint varint")
		}
		v.SetUint(u)
		return data[n:], nil
	case reflect.Float32:
		if wire != wireFixed32 || len(data) < 4 {
			return nil, fmt.Errorf("bad float32")
		}
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(data))))
		return data[4:], nil
	case reflect.Float64:
		if wire != wireFixed64 || len(data) < 8 {
			return nil, fmt.Errorf("bad float64")
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		return data[8:], nil
	case reflect.String:
		payload, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		v.SetString(string(payload))
		return rest, nil
	case reflect.Struct:
		payload, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		if err := f.sub.unmarshal(payload, v); err != nil {
			return nil, err
		}
		return rest, nil
	case reflect.Pointer:
		payload, rest, err := takeBytes(data)
		if err != nil {
			return nil, err
		}
		p := reflect.New(f.typ.Elem())
		if err := f.sub.unmarshal(payload, p.Elem()); err != nil {
			return nil, err
		}
		v.Set(p)
		return rest, nil
	}
	return nil, fmt.Errorf("unsupported kind %v", f.kind)
}

func takeBytes(data []byte) (payload, rest []byte, err error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return nil, nil, fmt.Errorf("bad length-delimited payload")
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}
