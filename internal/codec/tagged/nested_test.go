package tagged

import (
	"reflect"
	"testing"
)

// Deeper structural coverage of the tagged (proto-like) format.

type leaf struct {
	N int64  `tag:"1"`
	S string `tag:"2"`
}

type branch struct {
	Leaves []leaf          `tag:"1"`
	ByName map[string]leaf `tag:"2"`
	Self   *branch         `tag:"3"`
}

func TestNestedRepeatedMessages(t *testing.T) {
	in := branch{
		Leaves: []leaf{{N: 1, S: "a"}, {N: 2, S: "b"}, {}},
		ByName: map[string]leaf{"x": {N: 9, S: "nine"}},
		Self: &branch{
			Leaves: []leaf{{N: 3}},
		},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out branch
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Leaves) != 3 || out.Leaves[1].S != "b" {
		t.Errorf("leaves = %+v", out.Leaves)
	}
	if out.ByName["x"].N != 9 {
		t.Errorf("map = %+v", out.ByName)
	}
	if out.Self == nil || len(out.Self.Leaves) != 1 || out.Self.Leaves[0].N != 3 {
		t.Errorf("self = %+v", out.Self)
	}
}

func TestMapOfMessagesAcrossVersions(t *testing.T) {
	// A reader that only knows half the fields still gets the map intact.
	type leafV2 struct {
		N     int64  `tag:"1"`
		S     string `tag:"2"`
		Extra bool   `tag:"3"`
	}
	type holderV2 struct {
		ByName map[string]leafV2 `tag:"2"`
	}
	in := holderV2{ByName: map[string]leafV2{"k": {N: 5, S: "five", Extra: true}}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out branch // field 2 is map[string]leaf; leaf lacks Extra
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	got, ok := out.ByName["k"]
	if !ok || got.N != 5 || got.S != "five" {
		t.Errorf("cross-version map = %+v", out.ByName)
	}
}

func TestRepeatedEmptyMessages(t *testing.T) {
	in := branch{Leaves: []leaf{{}, {}, {}}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out branch
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Leaves) != 3 {
		t.Errorf("empty repeated messages lost: %+v", out.Leaves)
	}
}

func TestDeepRecursionRoundTrip(t *testing.T) {
	// A 50-deep linked structure survives.
	root := &branch{}
	cur := root
	for i := 0; i < 50; i++ {
		cur.Self = &branch{Leaves: []leaf{{N: int64(i)}}}
		cur = cur.Self
	}
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var out branch
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	depth := 0
	for p := out.Self; p != nil; p = p.Self {
		if len(p.Leaves) != 1 || p.Leaves[0].N != int64(depth) {
			t.Fatalf("depth %d corrupted: %+v", depth, p.Leaves)
		}
		depth++
	}
	if depth != 50 {
		t.Errorf("depth = %d", depth)
	}
}

func TestUnsupportedTypesRejected(t *testing.T) {
	type bad1 struct {
		C chan int `tag:"1"`
	}
	if _, err := Marshal(bad1{}); err == nil {
		t.Error("chan accepted")
	}
	type bad2 struct {
		P *int `tag:"1"`
	}
	if _, err := Marshal(bad2{}); err == nil {
		t.Error("pointer-to-scalar accepted")
	}
}

func TestDeterministicForSameStruct(t *testing.T) {
	// Repeated slices are order-preserving (maps are not; skip them).
	in := branch{Leaves: []leaf{{N: 1}, {N: 2}}}
	a, _ := Marshal(in)
	b, _ := Marshal(in)
	if !reflect.DeepEqual(a, b) {
		t.Error("nondeterministic encoding for slice-only struct")
	}
}
