package tagged

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

type point struct {
	X int64   `tag:"1"`
	Y int64   `tag:"2"`
	Z float64 `tag:"3"`
}

type message struct {
	Name   string            `tag:"1"`
	Age    uint32            `tag:"2"`
	Alive  bool              `tag:"3"`
	Pos    point             `tag:"4"`
	Tags   []string          `tag:"5"`
	Attrs  map[string]int64  `tag:"6"`
	Scores []float32         `tag:"7"`
	Ptr    *point            `tag:"8"`
	Blob   []byte            `tag:"9"`
	When   time.Time         `tag:"10"`
	Lookup map[uint32]string `tag:"11"`
}

func TestRoundTrip(t *testing.T) {
	in := message{
		Name:   "weaver",
		Age:    12,
		Alive:  true,
		Pos:    point{X: -1, Y: 2, Z: 3.5},
		Tags:   []string{"a", "", "c"},
		Attrs:  map[string]int64{"k": -9},
		Scores: []float32{1.5, 0, -2},
		Ptr:    &point{X: 7},
		Blob:   []byte{0, 1, 2},
		When:   time.Unix(1234, 5678).UTC(),
		Lookup: map[uint32]string{3: "three"},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out message
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestZeroValuesElided(t *testing.T) {
	data, err := Marshal(message{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("zero message encoded to %d bytes, want 0", len(data))
	}
}

func TestTaggedIsLargerThanUntagged(t *testing.T) {
	// The evaluation's premise: tagged encodings pay per-field overhead.
	// A struct with N set fields costs at least N extra tag bytes.
	in := point{X: 1, Y: 2, Z: 3}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// 3 tags + 1 byte X + 1 byte Y + 8 bytes Z = 14.
	if len(data) < 3+1+1+8 {
		t.Errorf("tagged encoding suspiciously small: %d bytes", len(data))
	}
}

// v1 and v2 simulate two releases of the same message. v2 added a field and
// still decodes v1 bytes; v1 decodes v2 bytes by skipping the unknown field.
type msgV1 struct {
	A string `tag:"1"`
	B int64  `tag:"2"`
}

type msgV2 struct {
	A string `tag:"1"`
	B int64  `tag:"2"`
	C []byte `tag:"3"`
}

func TestForwardAndBackwardCompatibility(t *testing.T) {
	// Old writer, new reader.
	old, err := Marshal(msgV1{A: "x", B: 9})
	if err != nil {
		t.Fatal(err)
	}
	var v2 msgV2
	if err := Unmarshal(old, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.A != "x" || v2.B != 9 || v2.C != nil {
		t.Errorf("new reader decoded %+v", v2)
	}

	// New writer, old reader: unknown field 3 must be skipped.
	newer, err := Marshal(msgV2{A: "y", B: 1, C: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var v1 msgV1
	if err := Unmarshal(newer, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.A != "y" || v1.B != 1 {
		t.Errorf("old reader decoded %+v", v1)
	}
}

func TestImplicitFieldNumbers(t *testing.T) {
	type implicit struct {
		First  string
		Second int64
	}
	data, err := Marshal(implicit{First: "a", Second: 2})
	if err != nil {
		t.Fatal(err)
	}
	var out implicit
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.First != "a" || out.Second != 2 {
		t.Errorf("decoded %+v", out)
	}
}

func TestDuplicateTagRejected(t *testing.T) {
	type dup struct {
		A int64 `tag:"1"`
		B int64 `tag:"1"`
	}
	if _, err := Marshal(dup{}); err == nil {
		t.Error("duplicate tag accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var out message
	for _, data := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{0x0a, 0xff}, // field 1, bytes, impossible length
		{0x0d, 0x01}, // field 1 as fixed32 but truncated
	} {
		if err := Unmarshal(data, &out); err == nil {
			t.Errorf("garbage %v accepted", data)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	type qmsg struct {
		S  string           `tag:"1"`
		I  int64            `tag:"2"`
		U  uint64           `tag:"3"`
		F  float64          `tag:"4"`
		B  bool             `tag:"5"`
		BS []byte           `tag:"6"`
		SS []string         `tag:"7"`
		M  map[string]int64 `tag:"8"`
	}
	f := func(in qmsg) bool {
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out qmsg
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if in.S != out.S || in.I != out.I || in.U != out.U || in.B != out.B {
			return false
		}
		if !(in.F == out.F || (in.F != in.F && out.F != out.F)) {
			return false
		}
		if !bytes.Equal(in.BS, out.BS) {
			return false
		}
		if len(in.SS) != len(out.SS) {
			return false
		}
		for i := range in.SS {
			if in.SS[i] != out.SS[i] {
				return false
			}
		}
		if len(in.M) != len(out.M) {
			return false
		}
		for k, v := range in.M {
			if out.M[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var out message
		_ = Unmarshal(data, &out)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
