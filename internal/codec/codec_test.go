package codec

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestScalarRoundTrips(t *testing.T) {
	var e Encoder
	e.Bool(true)
	e.Bool(false)
	e.Uint8(0xab)
	e.Int8(-5)
	e.Uint16(0xbeef)
	e.Int16(-12345)
	e.Uint32(0xdeadbeef)
	e.Int32(-123456789)
	e.Uint64(0xdeadbeefcafebabe)
	e.Int64(-1234567890123)
	e.Int(-42)
	e.Uint(42)
	e.Float32(3.5)
	e.Float64(-2.25)
	e.Complex64(complex(1, 2))
	e.Complex128(complex(-3, 4))
	e.String("hello, world")
	e.Bytes([]byte{1, 2, 3})
	e.Varint(300)

	d := NewDecoder(e.Data())
	if got := d.Bool(); got != true {
		t.Errorf("Bool = %v, want true", got)
	}
	if got := d.Bool(); got != false {
		t.Errorf("Bool = %v, want false", got)
	}
	if got := d.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := d.Int8(); got != -5 {
		t.Errorf("Int8 = %d", got)
	}
	if got := d.Uint16(); got != 0xbeef {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := d.Int16(); got != -12345 {
		t.Errorf("Int16 = %d", got)
	}
	if got := d.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Int32(); got != -123456789 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Uint64(); got != 0xdeadbeefcafebabe {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Int64(); got != -1234567890123 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Uint(); got != 42 {
		t.Errorf("Uint = %d", got)
	}
	if got := d.Float32(); got != 3.5 {
		t.Errorf("Float32 = %v", got)
	}
	if got := d.Float64(); got != -2.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Complex64(); got != complex(1, 2) {
		t.Errorf("Complex64 = %v", got)
	}
	if got := d.Complex128(); got != complex(-3, 4) {
		t.Errorf("Complex128 = %v", got)
	}
	if got := d.String(); got != "hello, world" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Varint(); got != 300 {
		t.Errorf("Varint = %d", got)
	}
	if !d.Done() {
		t.Errorf("decoder not done, %d bytes remain", d.Remaining())
	}
}

func TestNoTypeInformationOnWire(t *testing.T) {
	// The headline property from the paper: an encoded uint64 is exactly 8
	// bytes, a string is exactly varint(len)+len bytes. No tags, no types.
	var e Encoder
	e.Uint64(7)
	if e.Len() != 8 {
		t.Errorf("uint64 encoded to %d bytes, want 8", e.Len())
	}
	e.Reset()
	e.String("abc")
	if e.Len() != 4 { // 1 length byte + 3 payload bytes
		t.Errorf("string encoded to %d bytes, want 4", e.Len())
	}
}

func TestDecodeErrorTruncated(t *testing.T) {
	var e Encoder
	e.Uint64(12345)
	for cut := 0; cut < 8; cut++ {
		err := func() (err error) {
			defer Catch(&err)
			d := NewDecoder(e.Data()[:cut])
			d.Uint64()
			return nil
		}()
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("cut=%d: got %v, want *DecodeError", cut, err)
		}
	}
}

func TestDecodeErrorBadBool(t *testing.T) {
	err := func() (err error) {
		defer Catch(&err)
		NewDecoder([]byte{7}).Bool()
		return nil
	}()
	if err == nil {
		t.Fatal("decoding byte 7 as bool succeeded, want error")
	}
}

func TestDecodeErrorHugeLength(t *testing.T) {
	// A length prefix larger than the remaining input must fail before
	// allocating.
	var e Encoder
	e.Varint(1 << 40)
	err := func() (err error) {
		defer Catch(&err)
		_ = NewDecoder(e.Data()).String()
		return nil
	}()
	if err == nil {
		t.Fatal("huge length accepted")
	}
}

func TestCatchPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	var err error
	func() {
		defer Catch(&err)
		panic("boom")
	}()
}

func TestErrorRoundTrip(t *testing.T) {
	var e Encoder
	e.Error(nil)
	e.Error(errors.New("kaput"))
	d := NewDecoder(e.Data())
	if err := d.Error(); err != nil {
		t.Errorf("nil error decoded as %v", err)
	}
	err := d.Error()
	if err == nil || err.Error() != "kaput" {
		t.Errorf("error decoded as %v, want kaput", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("decoded error is %T, want *RemoteError", err)
	}
}

type inner struct {
	A int32
	B string
}

type outer struct {
	Name    string
	Count   int
	Ratio   float64
	Flags   []bool
	KV      map[string]int64
	Nested  inner
	PtrSet  *inner
	PtrNil  *inner
	Blob    []byte
	When    time.Time
	HowLong time.Duration
	Matrix  [][]float32
	Fixed   [3]uint16

	hidden int // unexported: skipped
	Skip   int `weaver:"-"`
}

func TestAutoRoundTrip(t *testing.T) {
	in := outer{
		Name:    "weaver",
		Count:   -7,
		Ratio:   1.75,
		Flags:   []bool{true, false, true},
		KV:      map[string]int64{"a": 1, "b": -2},
		Nested:  inner{A: 9, B: "nested"},
		PtrSet:  &inner{A: -1, B: "ptr"},
		Blob:    []byte{9, 8, 7},
		When:    time.Unix(123456, 789).UTC(),
		HowLong: 90 * time.Second,
		Matrix:  [][]float32{{1, 2}, {3}},
		Fixed:   [3]uint16{10, 20, 30},
		hidden:  99,
		Skip:    42,
	}
	data := Marshal(in)
	var out outer
	if err := Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	in.hidden = 0 // skipped fields decode to zero
	in.Skip = 0
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestAutoDeterministicMaps(t *testing.T) {
	m := map[string]int{"x": 1, "y": 2, "z": 3, "w": 4, "v": 5}
	first := Marshal(m)
	for i := 0; i < 20; i++ {
		if got := Marshal(m); !bytes.Equal(got, first) {
			t.Fatalf("map encoding nondeterministic on iteration %d", i)
		}
	}
}

func TestAutoNilVsEmptySlice(t *testing.T) {
	type s struct{ V []int }
	var out s
	if err := Unmarshal(Marshal(s{V: nil}), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.V) != 0 {
		t.Errorf("nil slice decoded to %v", out.V)
	}
}

type listNode struct {
	Val  int
	Next *listNode
}

func TestAutoRecursiveType(t *testing.T) {
	in := &listNode{Val: 1, Next: &listNode{Val: 2, Next: &listNode{Val: 3}}}
	var out *listNode
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 3; want++ {
		if out == nil || out.Val != want {
			t.Fatalf("list decoded wrong at %d: %+v", want, out)
		}
		out = out.Next
	}
	if out != nil {
		t.Errorf("list has trailing nodes")
	}
}

type customMarshal struct {
	X int
	Y int
}

func (c customMarshal) WeaverMarshal(e *Encoder) {
	e.Int(c.X + 1000)
	e.Int(c.Y)
}

func (c *customMarshal) WeaverUnmarshal(d *Decoder) {
	c.X = d.Int() - 1000
	c.Y = d.Int()
}

func TestCustomMarshalerPreferred(t *testing.T) {
	in := customMarshal{X: 5, Y: 6}
	data := Marshal(in)
	// The custom encoding writes X+1000 first; verify it was used.
	d := NewDecoder(data)
	if got := d.Int(); got != 1005 {
		t.Fatalf("custom marshaler not used: first int = %d", got)
	}
	var out customMarshal
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	data := append(Marshal(int64(1)), 0xff)
	var v int64
	if err := Unmarshal(data, &v); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnmarshalBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decode into non-pointer did not panic")
		}
	}()
	var v int
	Decode(NewDecoder(nil), v)
}

// Property-based round-trip tests over randomly generated values.

type quickStruct struct {
	B   bool
	I8  int8
	I16 int16
	I32 int32
	I64 int64
	U8  uint8
	U16 uint16
	U32 uint32
	U64 uint64
	F32 float32
	F64 float64
	S   string
	BS  []byte
	IS  []int32
	M   map[int16]string
	P   *int64
	A   [4]byte
}

func TestQuickAutoRoundTrip(t *testing.T) {
	f := func(in quickStruct) bool {
		data := Marshal(in)
		var out quickStruct
		if err := Unmarshal(data, &out); err != nil {
			t.Logf("unmarshal error: %v", err)
			return false
		}
		return quickEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quickEqual compares with nil/empty slice and map equivalence and NaN
// equality, which DeepEqual does not provide.
func quickEqual(a, b quickStruct) bool {
	normF32 := func(f float32) float32 {
		if f != f {
			return float32(math.NaN())
		}
		return f
	}
	_ = normF32
	if a.B != b.B || a.I8 != b.I8 || a.I16 != b.I16 || a.I32 != b.I32 || a.I64 != b.I64 ||
		a.U8 != b.U8 || a.U16 != b.U16 || a.U32 != b.U32 || a.U64 != b.U64 || a.S != b.S || a.A != b.A {
		return false
	}
	if !(a.F32 == b.F32 || (a.F32 != a.F32 && b.F32 != b.F32)) {
		return false
	}
	if !(a.F64 == b.F64 || (a.F64 != a.F64 && b.F64 != b.F64)) {
		return false
	}
	if !bytes.Equal(a.BS, b.BS) {
		return false
	}
	if len(a.IS) != len(b.IS) {
		return false
	}
	for i := range a.IS {
		if a.IS[i] != b.IS[i] {
			return false
		}
	}
	if len(a.M) != len(b.M) {
		return false
	}
	for k, v := range a.M {
		if bv, ok := b.M[k]; !ok || bv != v {
			return false
		}
	}
	if (a.P == nil) != (b.P == nil) {
		return false
	}
	if a.P != nil && *a.P != *b.P {
		return false
	}
	return true
}

func TestQuickVarint(t *testing.T) {
	f := func(v uint64) bool {
		var e Encoder
		e.Varint(v)
		d := NewDecoder(e.Data())
		return d.Varint() == v && d.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringNeverPanicsOnGarbage(t *testing.T) {
	// Decoding arbitrary bytes must either succeed or produce a DecodeError,
	// never an uncontrolled panic or a huge allocation.
	f := func(data []byte) bool {
		err := func() (err error) {
			defer Catch(&err)
			d := NewDecoder(data)
			_ = d.String()
			return nil
		}()
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.String("first")
	e.Reset()
	e.Uint8(7)
	if e.Len() != 1 || e.Data()[0] != 7 {
		t.Errorf("after Reset: %v", e.Data())
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Len64(-1) did not panic")
		}
	}()
	var e Encoder
	e.Len64(-1)
}
