package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingTarget records operations without doing work.
type countingTarget struct {
	calls atomic.Uint64
	fail  atomic.Bool
}

func (c *countingTarget) Do(ctx context.Context, op Op, user, currency, product string) error {
	c.calls.Add(1)
	if c.fail.Load() {
		return errors.New("injected")
	}
	return nil
}

func TestRunPacesApproximateRate(t *testing.T) {
	target := &countingTarget{}
	rep := Run(context.Background(), target, Options{
		Rate:     500,
		Duration: 2 * time.Second,
		Seed:     1,
	})
	// Expect ~1000 requests; allow generous slack for CI jitter.
	if rep.Sent < 700 || rep.Sent > 1300 {
		t.Errorf("sent = %d, want ~1000", rep.Sent)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d (%s)", rep.Errors, rep.LastErr)
	}
	if rep.OK != rep.Sent {
		t.Errorf("ok = %d, sent = %d", rep.OK, rep.Sent)
	}
	if rep.Quantile(0.5) <= 0 {
		t.Errorf("p50 = %v", rep.Quantile(0.5))
	}
}

func TestRunRecordsErrors(t *testing.T) {
	target := &countingTarget{}
	target.fail.Store(true)
	rep := Run(context.Background(), target, Options{Rate: 200, Duration: 500 * time.Millisecond, Seed: 2})
	if rep.Errors == 0 {
		t.Error("no errors recorded")
	}
	if rep.LastErr != "injected" {
		t.Errorf("lastErr = %q", rep.LastErr)
	}
}

func TestRunSeedDeterminesOpMix(t *testing.T) {
	a := Run(context.Background(), &countingTarget{}, Options{Rate: 300, Duration: time.Second, Seed: 7})
	if len(a.PerOp) < 3 {
		t.Errorf("op mix too narrow: %v", a.PerOp)
	}
	// browseProduct has 10x the weight of index; with ~300 samples the
	// ordering must hold.
	if a.PerOp["browseProduct"] <= a.PerOp["index"] {
		t.Errorf("weights not respected: %v", a.PerOp)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	Run(ctx, &countingTarget{}, Options{Rate: 100, Duration: time.Hour})
	if time.Since(start) > 2*time.Second {
		t.Error("Run ignored context cancellation")
	}
}
