package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// recordingServer mimics the boutique front door and records requests.
func recordingServer(t *testing.T) (*httptest.Server, *requestLog) {
	t.Helper()
	log := &requestLog{}
	mux := http.NewServeMux()
	record := func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		log.add(r.Method + " " + r.URL.Path + " " + string(body))
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}
	mux.HandleFunc("/", record)
	mux.HandleFunc("/cart", record)
	mux.HandleFunc("/cart/checkout", record)
	mux.HandleFunc("/product/", record)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, log
}

type requestLog struct {
	mu   sync.Mutex
	reqs []string
}

func (l *requestLog) add(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reqs = append(l.reqs, s)
}

func (l *requestLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.reqs...)
}

func TestHTTPTargetOps(t *testing.T) {
	srv, log := recordingServer(t)
	target := NewHTTPTarget(srv.URL)
	ctx := context.Background()

	for _, op := range []Op{OpIndex, OpSetCurrency, OpBrowse, OpViewCart, OpAddToCart, OpCheckout} {
		if err := target.Do(ctx, op, "u1", "EUR", "OLJCESPC7Z"); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}

	reqs := log.all()
	// Checkout issues two requests (add + checkout), so 7 total.
	if len(reqs) != 7 {
		t.Fatalf("requests = %d: %v", len(reqs), reqs)
	}
	wantPrefixes := []string{
		"GET / ",
		"GET / ",
		"GET /product/OLJCESPC7Z ",
		"GET /cart ",
		"POST /cart ",
		"POST /cart ",
		"POST /cart/checkout ",
	}
	for i, want := range wantPrefixes {
		if len(reqs[i]) < len(want) || reqs[i][:len(want)] != want {
			t.Errorf("request %d = %q, want prefix %q", i, reqs[i], want)
		}
	}

	// The checkout body must be a well-formed PlaceOrderRequest.
	var order map[string]any
	body := reqs[6][len("POST /cart/checkout "):]
	if err := json.Unmarshal([]byte(body), &order); err != nil {
		t.Fatalf("checkout body: %v", err)
	}
	if order["UserID"] != "u1" || order["UserCurrency"] != "EUR" {
		t.Errorf("checkout order = %v", order)
	}
}

func TestHTTPTargetErrorsOnNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	target := NewHTTPTarget(srv.URL)
	if err := target.Do(context.Background(), OpIndex, "u", "USD", "p"); err == nil {
		t.Error("500 response not reported")
	}
}
