package loadgen

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

// rpcTarget drives a single rpc server directly, so the generator can
// overload one replica's admission control without a full deployment.
type rpcTarget struct {
	client *rpc.Client
	method rpc.MethodID
}

func (t *rpcTarget) Do(ctx context.Context, op Op, user, currency, product string) error {
	cctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	_, err := t.client.Call(cctx, t.method, nil, rpc.CallOptions{})
	return err
}

func TestOverloadShedsFastAndBoundsAcceptedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	startGoroutines := runtime.NumGoroutine()

	// Capacity: 2 slots x (1/5ms) = ~400 req/s plus a 2-deep queue. The
	// generator offers ~3x that.
	srv := rpc.NewServerWithOptions(rpc.ServerOptions{MaxInflight: 2, MaxQueue: 2})
	srv.Register("ovl.Work", func(ctx context.Context, args []byte) ([]byte, error) {
		timer := time.NewTimer(5 * time.Millisecond)
		defer timer.Stop()
		select {
		case <-timer.C:
			return []byte("done"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := rpc.NewClient(addr, rpc.ClientOptions{NumConns: 2})

	shedBefore := metrics.Default.Counter("rpc.server.shed").Value()
	rep := Run(context.Background(), &rpcTarget{client: client, method: rpc.MethodKey("ovl.Work")}, Options{
		Rate:        1200,
		Duration:    1500 * time.Millisecond,
		Warmup:      150 * time.Millisecond,
		MaxInflight: 512,
		Seed:        3,
	})
	sheds := metrics.Default.Counter("rpc.server.shed").Value() - shedBefore
	t.Logf("overload: %s sheds=%d", rep, sheds)

	if sheds == 0 {
		t.Error("server shed nothing at 3x capacity")
	}
	if rep.Errors == 0 {
		t.Error("no request observed an overload error at 3x capacity")
	}
	if rep.OK == 0 {
		t.Fatal("no request succeeded; admission control shed everything")
	}
	// Accepted requests never sit in an unbounded queue: the worst case is
	// the 2-deep queue behind 2 slots of 5ms work. Allow a wide margin for
	// scheduler noise, but far below the 250ms client deadline.
	if p99 := rep.Quantile(0.99); p99 > 150*time.Millisecond {
		t.Errorf("accepted p99 = %v; queueing is not bounded", p99)
	}

	client.Close()
	srv.Close()

	// No goroutine leaks: everything the run spawned must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= startGoroutines+8 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: started with %d, still %d after shutdown",
		startGoroutines, runtime.NumGoroutine())
}
