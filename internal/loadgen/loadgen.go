// Package loadgen is the workload generator used in the evaluation — this
// repository's substitute for Locust (§6.1). It sends a steady, open-loop
// rate of storefront operations at the boutique application, with the same
// behavior mix as the original demo's locustfile, and records end-to-end
// latency distributions.
//
// The generator can drive the application through its HTTP front door
// (HTTPTarget, as Locust does) or through component method calls
// (ComponentTarget), so benchmarks can isolate transport overheads.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/boutique"
)

// Op is one kind of user action.
type Op int

// The operation mix, with the original locustfile's weights.
const (
	OpIndex       Op = iota // weight 1
	OpSetCurrency           // weight 2
	OpBrowse                // weight 10
	OpAddToCart             // weight 2
	OpViewCart              // weight 3
	OpCheckout              // weight 1
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpIndex:
		return "index"
	case OpSetCurrency:
		return "setCurrency"
	case OpBrowse:
		return "browseProduct"
	case OpAddToCart:
		return "addToCart"
	case OpViewCart:
		return "viewCart"
	case OpCheckout:
		return "checkout"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

var opWeights = []struct {
	op Op
	w  int
}{
	{OpIndex, 1},
	{OpSetCurrency, 2},
	{OpBrowse, 10},
	{OpAddToCart, 2},
	{OpViewCart, 3},
	{OpCheckout, 1},
}

var products = []string{
	"OLJCESPC7Z", "66VCHSJNUP", "1YMWWN1N4O", "L9ECAV7KIM", "2ZYFJ3GM2N",
	"0PUK6V6EV0", "LS4PSXUNUM", "9SIQT8TOJO", "6E92ZMYYFZ", "A1B2C3D4E5",
	"F6G7H8I9J0", "K1L2M3N4O5",
}

var currencies = []string{"EUR", "USD", "JPY", "GBP", "TRY", "CAD"}

var checkoutCard = boutique.CreditCard{
	Number:          "4432-8015-6152-0454",
	CVV:             672,
	ExpirationYear:  2039,
	ExpirationMonth: 1,
}

// A Target executes one operation against the application.
type Target interface {
	Do(ctx context.Context, op Op, user, currency, product string) error
}

// HTTPTarget drives the boutique's HTTP front door.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client
}

// NewHTTPTarget returns a target for the given base URL.
func NewHTTPTarget(base string) *HTTPTarget {
	return &HTTPTarget{
		Base: base,
		Client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// Do implements Target.
func (t *HTTPTarget) Do(ctx context.Context, op Op, user, currency, product string) error {
	switch op {
	case OpIndex:
		return t.get(ctx, "/?user="+user)
	case OpSetCurrency:
		return t.get(ctx, "/?user="+user+"&currency="+currency)
	case OpBrowse:
		return t.get(ctx, "/product/"+product+"?user="+user+"&currency="+currency)
	case OpViewCart:
		return t.get(ctx, "/cart?user="+user+"&currency="+currency)
	case OpAddToCart:
		body, _ := json.Marshal(map[string]any{"UserID": user, "ProductID": product, "Quantity": 1})
		return t.post(ctx, "/cart", body)
	case OpCheckout:
		// Guarantee a non-empty cart, as the locustfile does by adding
		// before checking out.
		body, _ := json.Marshal(map[string]any{"UserID": user, "ProductID": product, "Quantity": 1})
		if err := t.post(ctx, "/cart", body); err != nil {
			return err
		}
		order, _ := json.Marshal(boutique.PlaceOrderRequest{
			UserID: user, UserCurrency: currency,
			Address:    boutique.Address{StreetAddress: "1600 Amphitheatre Pkwy", City: "Mountain View", State: "CA", Country: "USA", ZipCode: 94043},
			Email:      user + "@example.com",
			CreditCard: checkoutCard,
		})
		return t.post(ctx, "/cart/checkout", order)
	default:
		return fmt.Errorf("loadgen: unknown op %v", op)
	}
}

func (t *HTTPTarget) get(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+path, nil)
	if err != nil {
		return err
	}
	return t.do(req)
}

func (t *HTTPTarget) post(ctx context.Context, path string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return t.do(req)
}

func (t *HTTPTarget) do(req *http.Request) error {
	resp, err := t.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s %s: %s", req.Method, req.URL.Path, resp.Status)
	}
	return nil
}

// ComponentTarget drives the frontend component directly (no HTTP front
// door), for in-process benchmarks.
type ComponentTarget struct {
	Frontend boutique.Frontend
}

// Do implements Target.
func (t *ComponentTarget) Do(ctx context.Context, op Op, user, currency, product string) error {
	fe := t.Frontend
	switch op {
	case OpIndex:
		_, err := fe.Home(ctx, user, "USD")
		return err
	case OpSetCurrency:
		_, err := fe.Home(ctx, user, currency)
		return err
	case OpBrowse:
		_, err := fe.Product(ctx, user, product, currency)
		return err
	case OpViewCart:
		_, err := fe.ViewCart(ctx, user, currency)
		return err
	case OpAddToCart:
		return fe.AddToCart(ctx, user, product, 1)
	case OpCheckout:
		if err := fe.AddToCart(ctx, user, product, 1); err != nil {
			return err
		}
		_, err := fe.Checkout(ctx, boutique.PlaceOrderRequest{
			UserID: user, UserCurrency: currency,
			Address:    boutique.Address{StreetAddress: "1600 Amphitheatre Pkwy", City: "Mountain View", State: "CA", Country: "USA", ZipCode: 94043},
			Email:      user + "@example.com",
			CreditCard: checkoutCard,
		})
		return err
	default:
		return fmt.Errorf("loadgen: unknown op %v", op)
	}
}

// Options configures a load run.
type Options struct {
	// Rate is the steady request rate in requests/sec.
	Rate float64
	// Duration is how long to generate load.
	Duration time.Duration
	// Warmup is discarded from the report (default 10% of Duration).
	Warmup time.Duration
	// Users is the simulated user population (default 100).
	Users int
	// MaxInflight bounds concurrent requests (default 4096); beyond it,
	// arrivals are counted as dropped rather than queued, keeping the
	// generator open-loop.
	MaxInflight int
	// Seed makes the op sequence reproducible.
	Seed uint64
}

// Report summarizes a load run.
type Report struct {
	Sent      uint64
	OK        uint64
	Errors    uint64
	Dropped   uint64
	Duration  time.Duration
	Achieved  float64 // achieved request rate (completed/duration)
	latencies []time.Duration
	PerOp     map[string]uint64
	LastErr   string
}

// Quantile returns the q-th latency quantile of completed requests.
func (r *Report) Quantile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(r.latencies)-1))
	return r.latencies[i]
}

// Mean returns the mean latency of completed requests.
func (r *Report) Mean() time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.latencies {
		sum += l
	}
	return sum / time.Duration(len(r.latencies))
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("sent=%d ok=%d err=%d dropped=%d rate=%.0f/s p50=%v p90=%v p99=%v mean=%v",
		r.Sent, r.OK, r.Errors, r.Dropped, r.Achieved,
		r.Quantile(0.50), r.Quantile(0.90), r.Quantile(0.99), r.Mean())
}

// Run generates load against target until opts.Duration elapses or ctx is
// canceled, then returns the report.
func Run(ctx context.Context, target Target, opts Options) *Report {
	if opts.Rate <= 0 {
		opts.Rate = 100
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Warmup == 0 {
		opts.Warmup = opts.Duration / 10
	}
	if opts.Users <= 0 {
		opts.Users = 100
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4096
	}

	// Precompute the weighted op table.
	var table []Op
	for _, ow := range opWeights {
		for i := 0; i < ow.w; i++ {
			table = append(table, ow.op)
		}
	}

	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	var (
		mu        sync.Mutex
		latencies []time.Duration
		perOp     = map[string]uint64{}
		lastErr   atomic.Value
	)
	var sent, ok, errs, dropped atomic.Uint64
	sem := make(chan struct{}, opts.MaxInflight)
	var wg sync.WaitGroup

	start := time.Now()
	warmupUntil := start.Add(opts.Warmup)
	deadline := start.Add(opts.Duration)

	dispatch := func() {
		op := table[rng.IntN(len(table))]
		user := fmt.Sprintf("user-%d", rng.IntN(opts.Users))
		currency := currencies[rng.IntN(len(currencies))]
		product := products[rng.IntN(len(products))]

		select {
		case sem <- struct{}{}:
		default:
			dropped.Add(1)
			return
		}
		sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := target.Do(ctx, op, user, currency, product)
			lat := time.Since(t0)
			record := t0.After(warmupUntil)
			if err != nil {
				errs.Add(1)
				lastErr.Store(err.Error())
				return
			}
			ok.Add(1)
			if record {
				mu.Lock()
				latencies = append(latencies, lat)
				perOp[op.String()]++
				mu.Unlock()
			}
		}()
	}

	// Pace in 1ms quanta: at each tick, dispatch however many arrivals the
	// target rate implies have accrued. This keeps the generator open-loop
	// and accurate at rates far above the ticker frequency.
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	var dispatched float64
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case now := <-ticker.C:
			if now.After(deadline) {
				break loop
			}
			due := opts.Rate * now.Sub(start).Seconds()
			for dispatched < due {
				dispatch()
				dispatched++
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := &Report{
		Sent:      sent.Load(),
		OK:        ok.Load(),
		Errors:    errs.Load(),
		Dropped:   dropped.Load(),
		Duration:  elapsed,
		Achieved:  float64(ok.Load()) / elapsed.Seconds(),
		latencies: latencies,
		PerOp:     perOp,
	}
	if e, ok := lastErr.Load().(string); ok {
		rep.LastErr = e
	}
	return rep
}
