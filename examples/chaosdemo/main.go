// The chaosdemo example reproduces §5.3 of the paper: because a weaver
// application is a single binary, automated fault-tolerance testing —
// "systematically failing and restoring [services] and checking for
// correct behavior", which takes a staging cluster for a microservice
// system — is an ordinary Go program.
//
// The demo deploys the Online Boutique across in-process proclets (real
// control-plane pipes, real TCP data plane), runs storefront load, crashes
// random service replicas while the load is flowing, and verifies that:
//
//  1. the storefront keeps serving through crashes (replicas are
//     replicated and calls retry transparently), and
//
//  2. after the manager heals the fleet, a full purchase flow completes.
//
//     go run ./examples/chaosdemo
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"reflect"
	"time"

	"repro/internal/autoscale"
	"repro/internal/boutique"
	"repro/internal/chaos"
	"repro/internal/deploy"
	"repro/internal/loadgen"
	"repro/internal/logging"
	"repro/internal/manager"
	"repro/weaver"
)

func main() {
	ctx := context.Background()

	// Two replicas of the hot services so one crash never causes a full
	// outage.
	d, err := deploy.StartInProcess(ctx, deploy.Options{
		Config: manager.Config{
			App: "chaosdemo",
			Autoscale: map[string]autoscale.Config{
				"ProductCatalog": {MinReplicas: 2, MaxReplicas: 2},
				"Currency":       {MinReplicas: 2, MaxReplicas: 2},
				"Frontend":       {MinReplicas: 1, MaxReplicas: 1},
			},
			Logger: logging.New(logging.Options{Component: "manager", Min: logging.LevelError}),
		},
		Fill: func(impl any, name string, logger *logging.Logger, resolve func(reflect.Type) (any, error)) error {
			listen := func(string) (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
			return weaver.FillComponent(impl, name, logger, resolve, listen)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Stop()

	fe, err := deploy.Get[boutique.Frontend](ctx, d)
	if err != nil {
		log.Fatal(err)
	}
	target := &loadgen.ComponentTarget{Frontend: fe}
	// Prime all routes before the mayhem starts.
	if err := target.Do(ctx, loadgen.OpCheckout, "primer", "USD", "OLJCESPC7Z"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("chaosdemo: crashing ProductCatalog and Currency replicas under load...")
	res, err := chaos.Run(ctx, chaos.Options{
		Deployment:        d,
		TargetGroups:      []string{"ProductCatalog", "Currency"},
		Faults:            6,
		MeanBetweenFaults: 400 * time.Millisecond,
		SettleTime:        2 * time.Second,
		Seed:              1,
		Workload: func(ctx context.Context) error {
			time.Sleep(2 * time.Millisecond) // pace the open-loop probes
			_, err := fe.Home(ctx, "chaos-user", "USD")
			return err
		},
		Invariant: func(ctx context.Context) error {
			// A complete purchase must work once the fleet has healed.
			if err := fe.AddToCart(ctx, "invariant-user", "OLJCESPC7Z", 1); err != nil {
				return fmt.Errorf("add to cart: %w", err)
			}
			order, err := fe.Checkout(ctx, boutique.PlaceOrderRequest{
				UserID:       "invariant-user",
				UserCurrency: "EUR",
				Email:        "chaos@example.com",
				CreditCard: boutique.CreditCard{
					Number: "4432-8015-6152-0454", CVV: 672,
					ExpirationYear: 2039, ExpirationMonth: 1,
				},
			})
			if err != nil {
				return fmt.Errorf("checkout: %w", err)
			}
			if order.OrderID == "" || len(order.Items) != 1 {
				return fmt.Errorf("malformed order after healing: %+v", order)
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	availability := 100.0
	if res.Requests > 0 {
		availability = 100 * float64(res.Requests-res.Errors) / float64(res.Requests)
	}
	fmt.Printf("chaosdemo: %d faults injected, %d requests, %d errors (%.2f%% available), longest outage %v\n",
		res.FaultsInjected, res.Requests, res.Errors, availability, res.LongestOutage.Round(time.Millisecond))
	if res.Failed() {
		fmt.Printf("chaosdemo: INVARIANT VIOLATIONS: %v\n", res.InvariantErrors)
	} else {
		fmt.Println("chaosdemo: all invariants held — purchases work after healing")
	}
}
