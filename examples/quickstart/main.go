// The quickstart example is the paper's Figure 2 "Hello, World!"
// application: one component, one method, initialized with weaver.Init and
// invoked through weaver.Get.
//
// Build and run:
//
//	go run repro/cmd/weavergen ./examples/quickstart   # (already done; weaver_gen.go is checked in)
//	go run ./examples/quickstart
//
// Run it under the multiprocess deployer to see the same code execute with
// the component in a different OS process:
//
//	go build -o /tmp/quickstart ./examples/quickstart
//	go run ./cmd/weaver multi run /tmp/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/weaver"
)

// Hello is a component interface (paper Figure 2).
type Hello interface {
	Greet(ctx context.Context, name string) (string, error)
}

// hello is the component implementation.
type hello struct {
	weaver.Implements[Hello]
}

// Greet returns a greeting.
func (h *hello) Greet(_ context.Context, name string) (string, error) {
	return fmt.Sprintf("Hello, %s!", name), nil
}

func main() {
	ctx := context.Background()
	app, err := weaver.Init(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown(ctx)

	hello, err := weaver.Get[Hello](app)
	if err != nil {
		log.Fatal(err)
	}
	name := "World"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	greeting, err := hello.Greet(ctx, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(greeting)
}
