// The boutique example runs the Online Boutique port (paper §6.1): an
// eleven-service e-commerce application written as weaver components in a
// single binary.
//
// Single process (all components co-located):
//
//	WEAVER_LISTEN_BOUTIQUE=127.0.0.1:8080 go run ./examples/boutique
//
// Multiprocess (one OS process per component, the paper's
// apples-to-apples configuration):
//
//	go build -o /tmp/boutique ./examples/boutique
//	go run ./cmd/weaver multi run /tmp/boutique
//
// Flags:
//
//	-load          drive the storefront with the built-in load generator
//	-rate N        load generator request rate (default 200/s)
//	-duration D    load duration (default 10s)
//	-serve         keep serving until interrupted (default true without -load)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/boutique"
	"repro/internal/loadgen"
	"repro/weaver"
)

func main() {
	load := flag.Bool("load", false, "run the load generator against the storefront")
	rate := flag.Float64("rate", 200, "load generator request rate (requests/sec)")
	duration := flag.Duration("duration", 10*time.Second, "load generator duration")
	flag.Parse()

	ctx := context.Background()
	app, err := weaver.Init(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown(ctx)

	fe, err := weaver.Get[boutique.Frontend](app)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := fe.HTTPAddr(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boutique: storefront at http://%s\n", addr)

	if *load {
		report := loadgen.Run(ctx, loadgen.NewHTTPTarget("http://"+addr), loadgen.Options{
			Rate:     *rate,
			Duration: *duration,
			Seed:     42,
		})
		fmt.Printf("boutique: %s\n", report)
		if report.LastErr != "" {
			fmt.Printf("  last error: %s\n", report.LastErr)
		}
		for op, n := range report.PerOp {
			fmt.Printf("  %-14s %d\n", op, n)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("boutique: shutting down")
}
